#!/usr/bin/env bash
# Repository CI gate. Run from the repo root; fails fast on the first
# broken step.
#
#   1. release build of the whole workspace
#   2. full test suite
#   3. clippy with warnings denied (includes the panic-free restriction
#      lints: unwrap_used / expect_used / panic)
#   4. rustdoc with warnings denied — any workspace call to a
#      `#[deprecated]` predict* shim fails the build here
#   5. fault-injection suite: every mutator over all 40 workloads must
#      yield a typed error or a finite CPI — never a panic; plus the
#      exec-layer suite (injected worker panics / poisoned queue)
#   6. batch determinism: the parallel engine's output is byte-identical
#      to the sequential pipeline over all 40 workloads (release, so the
#      suite also exercises optimized codegen)
#   7. parallel benchmark: sequential-vs-batch walls on both axes,
#      recorded as results/BENCH_parallel.json
#   8. `gpumech lint` over the 40-workload library (nonzero exit on any
#      error-severity finding)
#   9. observability round trip: `gpumech profile` writes a JSONL trace
#      and a Chrome trace, and `gpumech obs-validate` checks the JSONL
#      against the exporter schema and the stage.subsystem.name scheme —
#      including a `gpumech batch --obs-out` trace with exec.* metrics
#  10. resilience: the on-disk cache corruption fan (truncation / bit
#      flips / version skew / zero-length, each quarantined and
#      recomputed byte-identically), the resilience contract suite
#      (deadlines, cancellation, retry, breaker, journal resume), the
#      kill/resume integration test (SIGKILL mid-sweep, `--resume`
#      finishes with zero repeat work), and an obs-validate gate on a
#      resumed run's trace carrying exec.resilience.* metrics
#  11. static verification: release lint over the library must report
#      zero error-severity findings (exit 0), the defective-kernel
#      corpus must be 100% detected with the right finding codes, and a
#      debug run of the cross-check suite must confirm every static
#      bank bound and race verdict against observed per-lane addresses
#  12. serve: the HTTP front door's release suites (parser fuzz fan,
#      socket-level service contract, journal corruption resume), a
#      smoke test of the real binary (spawn, /healthz, predict,
#      /metrics, SIGTERM drain to exit 0), and a quick bench_serve load
#      run whose --obs-out trace must pass obs-validate
#  13. perf gate: the gpumech-perf release suite, a fresh baseline
#      recorded to results/PERF_BASELINE.json whose perf.* trace must
#      validate, a clean `gpumech perf compare` within the disclosed
#      noise tolerance (+40% +2 ms wall, +10% +256 allocs, min-of-N),
#      proof that a fault-injected 300 ms slowdown exits 4, and the
#      folded-stack exporter round-tripped through obs-validate --folded
#  14. sharded sweeps: the partition property suite, the shard-merge
#      corruption fan (every mutation a typed finding, never a panic),
#      the deterministic fake-shard supervisor chaos suite, the
#      exit-code taxonomy test, and a real 3-shard supervised sweep with
#      one shard SIGKILLed mid-run — the auto-merged output must be
#      byte-identical (from jobs_checksum on) to the unsharded reference
#      run, a deliberately corrupted shard file must fail `merge` with
#      exit 5 and a typed finding, and the supervised run's --obs-out
#      trace (shard.* metrics) must pass obs-validate
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo doc (deprecation warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== fault injection =="
cargo test -p gpumech-fault -q

echo "== batch determinism =="
cargo test -p gpumech-exec --release --test batch_determinism -q

echo "== parallel benchmark =="
cargo run --release -p gpumech-bench --bin bench_parallel -- \
  --blocks 48 --json results/BENCH_parallel.json

echo "== gpumech lint =="
./target/release/gpumech lint --min-severity warning

echo "== observability =="
./target/release/gpumech profile sdk_vectoradd --blocks 4 \
  --obs-out target/obs-ci.jsonl --chrome-out target/obs-ci.trace.json > /dev/null
./target/release/gpumech obs-validate target/obs-ci.jsonl
./target/release/gpumech batch sdk_vectoradd bfs_kernel1 --blocks 4 \
  --sweep bw=96,192 --obs-out target/obs-batch-ci.jsonl > /dev/null
./target/release/gpumech obs-validate target/obs-batch-ci.jsonl

echo "== resilience =="
cargo test -p gpumech-exec --release --test cache_corruption -q
cargo test -p gpumech-exec --release --test resilience -q
cargo test -p gpumech-fault --release --test resilience_suite -q
cargo test -p gpumech-cli --release --test kill_resume -q
# A journalled run + resume through the release binary; the resumed
# trace must carry well-formed exec.resilience.* metrics and validate.
rm -f target/ci-journal.jsonl
./target/release/gpumech batch sdk_vectoradd bfs_kernel1 --blocks 4 \
  --journal target/ci-journal.jsonl > /dev/null
./target/release/gpumech batch sdk_vectoradd bfs_kernel1 --blocks 4 \
  --journal target/ci-journal.jsonl --resume \
  --obs-out target/obs-resume-ci.jsonl > /dev/null
./target/release/gpumech obs-validate target/obs-resume-ci.jsonl
grep -q 'exec.resilience.journal_hits' target/obs-resume-ci.jsonl \
  || { echo "resume trace missing exec.resilience.* metrics"; exit 1; }
rm -f target/ci-journal.jsonl

echo "== static verification =="
# Zero Error findings over the 40-workload library: exit 0 is the gate.
./target/release/gpumech lint > /dev/null
cargo test -p gpumech-fault --release --test verify_corpus -q
cargo test -p gpumech-cli --release --test lint_schema -q
# Debug build so the engine's debug_assert cross-checks are live: every
# observed per-lane address pattern must stay within its static verdict.
cargo test -p gpumech-trace --test verify_crosscheck -q

echo "== serve =="
cargo test -p gpumech-serve --release -q
cargo test -p gpumech-fault --release --test journal_suite -q
cargo test -p gpumech-cli --release --test serve_smoke -q
# Quick load harness against the release binary: real sockets, shed +
# deadline taxonomy, SIGTERM drain, SIGKILL/restart chaos. The drained
# server's observability trace must validate like any other export.
cargo run --release -p gpumech-bench --bin bench_serve -- --quick \
  --server-bin target/release/gpumech \
  --obs-out target/obs-serve-ci.jsonl --json target/bench-serve-ci.json
./target/release/gpumech obs-validate target/obs-serve-ci.jsonl
grep -q 'serve.req.ok' target/obs-serve-ci.jsonl \
  || { echo "serve trace missing serve.* metrics"; exit 1; }

echo "== perf gate =="
cargo test -p gpumech-perf --release -q
# Record this host's baseline (committed as results/PERF_BASELINE.json so
# the repo always carries the build machine's latest numbers) and check
# the suite's own telemetry: the perf.* metric family must validate.
./target/release/gpumech perf record --obs-out target/obs-perf-ci.jsonl
./target/release/gpumech obs-validate target/obs-perf-ci.jsonl
grep -q 'perf.alloc.count' target/obs-perf-ci.jsonl \
  || { echo "perf trace missing perf.alloc.* metrics"; exit 1; }
# The gate proper: a clean re-run stays within the disclosed tolerance
# (+40% +2 ms wall, +10% +256 allocs over the recorded min-of-N) ...
./target/release/gpumech perf compare
# ... and a fault-injected 300 ms sleep must be caught with exit code 4.
rc=0
./target/release/gpumech perf compare --slow e2e_batch=300 > /dev/null || rc=$?
[ "$rc" -eq 4 ] \
  || { echo "perf gate missed an injected slowdown (exit $rc, want 4)"; exit 1; }
# Folded-stack export round-trips through the validator.
./target/release/gpumech profile sdk_vectoradd --blocks 4 \
  --folded-out target/obs-ci.folded > /dev/null
./target/release/gpumech obs-validate --folded target/obs-ci.folded

echo "== sharded sweeps =="
cargo test -p gpumech-shard --release -q
cargo test -p gpumech-fault --release --test merge_suite -q
cargo test -p gpumech-fault --release --test supervisor_chaos -q
cargo test -p gpumech-cli --release --test exit_codes -q
cargo test -p gpumech-cli --release --test shard_supervise -q
# A real supervised sweep: 3 shards over a 24-job sweep, shard 0
# SIGKILLed after its first journal line, journal-replay recovery, and
# an auto-merge gated on byte-identity with the unsharded reference.
rm -rf target/ci-shard-sweep target/ci-shard-{ref,merged}.json
./target/release/gpumech batch sdk_vectoradd bfs_kernel1 \
  kmeans_invert_mapping cfd_step_factor hotspot_calculate_temp \
  srad_kernel1 --blocks 4 --sweep warps=8,16,32,64 \
  --json target/ci-shard-ref.json > /dev/null
./target/release/gpumech supervise sdk_vectoradd bfs_kernel1 \
  kmeans_invert_mapping cfd_step_factor hotspot_calculate_temp \
  srad_kernel1 --blocks 4 --sweep warps=8,16,32,64 \
  --shards 3 --dir target/ci-shard-sweep --chaos-kill 0@1 \
  --out target/ci-shard-merged.json --report target/ci-shard-report.md \
  --expect target/ci-shard-ref.json \
  --obs-out target/obs-shard-ci.jsonl > /dev/null
cmp <(sed -n '/"jobs_checksum"/,$p' target/ci-shard-merged.json) \
    <(sed -n '/"jobs_checksum"/,$p' target/ci-shard-ref.json) \
  || { echo "sharded sweep is not byte-identical to the reference"; exit 1; }
./target/release/gpumech obs-validate target/obs-shard-ci.jsonl
grep -q 'shard.supervisor.spawned' target/obs-shard-ci.jsonl \
  || { echo "supervise trace missing shard.* metrics"; exit 1; }
# A corrupted shard file must fail the merge with exit 5 and a typed
# finding — never a silent partial merge.
sed -i 's/"cpi":[0-9]/"cpi":9/' target/ci-shard-sweep/shard-1.json
rc=0
./target/release/gpumech merge target/ci-shard-sweep/shard-*.json \
  > target/ci-shard-merge.log 2>&1 || rc=$?
[ "$rc" -eq 5 ] \
  || { echo "corrupt shard merge exited $rc, want 5"; exit 1; }
grep -q 'corrupt-shard-file' target/ci-shard-merge.log \
  || { echo "merge failure lacks the typed finding"; exit 1; }
# The sharded-vs-unsharded harness: chaos kill, recovery, verified merge,
# and the provenance-stamped report.
cargo run --release -p gpumech-bench --bin bench_shard -- --quick \
  --shard-bin target/release/gpumech --json target/bench-shard-ci.json
rm -rf target/ci-shard-sweep

echo "CI OK"
