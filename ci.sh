#!/usr/bin/env bash
# Repository CI gate. Run from the repo root; fails fast on the first
# broken step.
#
#   1. release build of the whole workspace
#   2. full test suite
#   3. clippy with warnings denied (includes the panic-free restriction
#      lints: unwrap_used / expect_used / panic)
#   4. fault-injection suite: every mutator over all 40 workloads must
#      yield a typed error or a finite CPI — never a panic
#   5. `gpumech lint` over the 40-workload library (nonzero exit on any
#      error-severity finding)
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault injection =="
cargo test -p gpumech-fault -q

echo "== gpumech lint =="
./target/release/gpumech lint --min-severity warning

echo "CI OK"
