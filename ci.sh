#!/usr/bin/env bash
# Repository CI gate. Run from the repo root; fails fast on the first
# broken step.
#
#   1. release build of the whole workspace
#   2. full test suite
#   3. clippy with warnings denied (includes the panic-free restriction
#      lints: unwrap_used / expect_used / panic)
#   4. fault-injection suite: every mutator over all 40 workloads must
#      yield a typed error or a finite CPI — never a panic
#   5. `gpumech lint` over the 40-workload library (nonzero exit on any
#      error-severity finding)
#   6. observability round trip: `gpumech profile` writes a JSONL trace
#      and a Chrome trace, and `gpumech obs-validate` checks the JSONL
#      against the exporter schema and the stage.subsystem.name scheme
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test --workspace -q

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== fault injection =="
cargo test -p gpumech-fault -q

echo "== gpumech lint =="
./target/release/gpumech lint --min-severity warning

echo "== observability =="
./target/release/gpumech profile sdk_vectoradd --blocks 4 \
  --obs-out target/obs-ci.jsonl --chrome-out target/obs-ci.trace.json > /dev/null
./target/release/gpumech obs-validate target/obs-ci.jsonl

echo "CI OK"
