//! Static shared-memory bank-conflict analysis.
//!
//! Shared memory is modeled as `banks` successive `word_bytes`-wide banks
//! with word-interleaved mapping: byte address `a` lives in word
//! `a / word_bytes`, which lives in bank `(a / word_bytes) % banks`. One
//! warp-wide access is conflict-free when no two lanes touch *different
//! words of the same bank*; lanes reading the same word broadcast in one
//! cycle. The predicted conflict degree is the maximum number of distinct
//! words mapped to any single bank — the serialization factor of the
//! access.
//!
//! The degree is evaluated from the affine `Shape` lifted by the race
//! pass, over a *full* warp mask. A full mask is a monotone upper
//! bound: deactivating lanes can only remove words from banks, never add
//! them, so the static degree always dominates the observed one (the
//! debug-build cross-check in `gpumech-trace` asserts exactly this).

use gpumech_isa::{InstKind, Kernel, MemSpace, SimConfig, WARP_SIZE};
use serde::{Deserialize, Serialize};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Severity};
use crate::race::Shape;

/// Shared-memory bank geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankModel {
    /// Number of banks (Fermi/Kepler and later: 32).
    pub banks: u32,
    /// Bank word width in bytes (4 on the modeled generation).
    pub word_bytes: u64,
}

impl Default for BankModel {
    fn default() -> Self {
        BankModel { banks: 32, word_bytes: 4 }
    }
}

impl From<&SimConfig> for BankModel {
    fn from(config: &SimConfig) -> Self {
        BankModel {
            banks: config.shared_mem_banks as u32,
            word_bytes: config.shared_bank_bytes as u64,
        }
    }
}

impl BankModel {
    /// Predicted conflict degree of a full-mask warp access with the given
    /// address shape, and whether the bound is exact (attained when all 32
    /// lanes are active) or only an upper bound.
    #[must_use]
    pub(crate) fn degree_of(&self, shape: Shape) -> (u32, bool) {
        match shape {
            Shape::Top => (WARP_SIZE as u32, false),
            Shape::Affine { base: Some(base), kl, .. } => (self.degree_at(base, kl), true),
            Shape::Affine { base: None, kl, .. } => {
                // The degree is invariant under base shifts by whole words
                // (all words move together, banks rotate), so sweeping the
                // base over one word covers every alignment.
                let max =
                    (0..self.word_bytes).map(|c| self.degree_at(c, kl)).max().unwrap_or(1);
                (max, false)
            }
        }
    }

    /// Degree for a concrete base: max distinct words per bank over a full
    /// warp (lanes sharing a word broadcast and count once).
    fn degree_at(&self, base: u64, kl: u64) -> u32 {
        let word_bytes = self.word_bytes.max(1);
        let banks = u64::from(self.banks.max(1));
        let mut words: Vec<(u64, u64)> = (0..WARP_SIZE as u64)
            .map(|l| {
                let word = base.wrapping_add(kl.wrapping_mul(l)) / word_bytes;
                (word % banks, word)
            })
            .collect();
        words.sort_unstable();
        words.dedup();
        let mut best = 0u32;
        let mut i = 0;
        while i < words.len() {
            let bank = words[i].0;
            let mut n = 0u32;
            while i < words.len() && words[i].0 == bank {
                n += 1;
                i += 1;
            }
            best = best.max(n);
        }
        best.max(1)
    }
}

/// Static verdict for one shared-memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedAccessFact {
    /// PC of the access.
    pub pc: u32,
    /// `true` for `Store(Shared)`, `false` for `Load(Shared)`.
    pub store: bool,
    /// Predicted conflict degree under a full warp mask (1 = conflict-free;
    /// an upper bound on any partial mask).
    pub bank_degree: u32,
    /// `true` when the degree is attained by a full-mask execution (fully
    /// resolved address); `false` when it is only a conservative bound.
    pub exact: bool,
}

pub(crate) fn run(
    kernel: &Kernel,
    cfg: &Cfg,
    shapes: &[Option<Shape>],
    model: &BankModel,
) -> (Vec<SharedAccessFact>, Vec<Diagnostic>) {
    let mut facts = Vec::new();
    let mut diagnostics = Vec::new();
    for (pc, inst) in kernel.insts.iter().enumerate() {
        let store = match inst.kind {
            InstKind::Load(MemSpace::Shared) => false,
            InstKind::Store(MemSpace::Shared) => true,
            _ => continue,
        };
        if !cfg.reachable[pc] {
            continue;
        }
        let shape = shapes[pc].unwrap_or(Shape::Top);
        let (bank_degree, exact) = model.degree_of(shape);
        facts.push(SharedAccessFact { pc: pc as u32, store, bank_degree, exact });
        if bank_degree >= 2 {
            diagnostics.push(Diagnostic::at(
                Severity::Warning,
                "bank-conflict",
                pc as u32,
                format!(
                    "predicted {bank_degree}-way shared-memory bank conflict ({} banks × {} B \
                     words){}",
                    model.banks,
                    model.word_bytes,
                    if exact { "" } else { " — upper bound, address not fully resolved" },
                ),
            ));
        }
    }
    (facts, diagnostics)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn affine(base: Option<u64>, kl: u64) -> Shape {
        Shape::Affine { base, kl, kw: 0 }
    }

    #[test]
    fn stride_one_word_is_conflict_free() {
        let m = BankModel::default();
        assert_eq!(m.degree_of(affine(Some(0), 4)), (1, true));
        assert_eq!(m.degree_of(affine(None, 4)), (1, false));
    }

    #[test]
    fn broadcast_counts_once() {
        let m = BankModel::default();
        // Every lane reads the same word: one word in one bank.
        assert_eq!(m.degree_of(affine(Some(128), 0)), (1, true));
        // Byte stride 1: 32 bytes span 8..=9 words in distinct banks.
        assert!(m.degree_of(affine(None, 1)).0 <= 2);
    }

    #[test]
    fn power_of_two_strides_conflict() {
        let m = BankModel::default();
        // Stride 2 words: lanes hit even banks only, two words per bank.
        assert_eq!(m.degree_of(affine(Some(0), 8)), (2, true));
        // Stride 32 words (128 B): every lane maps to bank 0.
        assert_eq!(m.degree_of(affine(Some(0), 128)), (32, true));
        // Unknown structure: worst case.
        assert_eq!(m.degree_of(Shape::Top), (32, false));
    }

    #[test]
    fn degree_is_alignment_invariant_for_word_multiples() {
        let m = BankModel::default();
        for base in [0u64, 4, 60, 1024] {
            assert_eq!(m.degree_of(affine(Some(base), 8)).0, 2, "base {base}");
        }
    }

    #[test]
    fn custom_geometry_changes_the_verdict() {
        // 16 banks of 8-byte words (Kepler's 8 B mode): a 128 B stride puts
        // lane l at word 16·l, bank (16·l) % 16 = 0 — 32 distinct words in
        // one bank, a full 32-way conflict.
        let m = BankModel { banks: 16, word_bytes: 8 };
        assert_eq!(m.degree_of(affine(Some(0), 128)), (32, true));
        // Stride one 8 B word: 32 consecutive words fold onto 16 banks
        // twice — a 2-way conflict that the 32-bank default avoids.
        assert_eq!(m.degree_of(affine(Some(0), 8)), (2, true));
        assert_eq!(BankModel::default().degree_of(affine(Some(0), 8)), (2, true));
    }
}
