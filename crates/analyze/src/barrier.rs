//! Barrier-divergence verification.
//!
//! `InstKind::Sync` blocks a warp until every warp of its thread block
//! arrives. On real hardware a barrier executed under *divergent* control
//! flow — where some lanes of the block took a path that skips the
//! barrier — deadlocks or silently releases early (both documented GPU
//! failure modes); GPUVerify calls this *barrier divergence* and treats
//! it as a verification error. We do the same: a `Sync` is provably safe
//! only when it executes under uniform control flow.
//!
//! The proof obligation reduces to the divergence pass's influence
//! regions: a `Sync` inside the influence region of a potentially
//! divergent conditional branch (reachable from the branch's successors
//! without passing its reconvergence point) can execute under a partial
//! mask, so it is flagged as an `Error`. A `Sync` outside every such
//! region executes with the full mask the kernel entered with. Branches
//! the divergence lattice proves uniform (`branch_uniform`) split no
//! masks and create no obligation.

use gpumech_isa::kernel::BranchCond;
use gpumech_isa::{InstKind, Kernel};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Severity};

pub(crate) fn run(kernel: &Kernel, cfg: &Cfg, branch_uniform: &[bool]) -> Vec<Diagnostic> {
    let n = kernel.insts.len();
    // For each Sync pc, the divergent branches whose influence region
    // contains it.
    let mut culprits: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (pc, inst) in kernel.insts.iter().enumerate() {
        if inst.kind != InstKind::Branch
            || inst.cond == BranchCond::Always
            || !cfg.reachable[pc]
            || branch_uniform[pc]
        {
            continue;
        }
        let Some(reconv) = inst.reconv else { continue };
        for v in cfg.region_until(&cfg.succs[pc], reconv) {
            if kernel.insts[v as usize].kind == InstKind::Sync {
                culprits[v as usize].push(pc as u32);
            }
        }
    }

    let mut diagnostics = Vec::new();
    for (pc, branches) in culprits.iter().enumerate() {
        if branches.is_empty() || !cfg.reachable[pc] {
            continue;
        }
        let list = branches
            .iter()
            .map(|b| format!("pc {b}"))
            .collect::<Vec<_>>()
            .join(", ");
        diagnostics.push(Diagnostic::at(
            Severity::Error,
            "barrier-divergence",
            pc as u32,
            format!(
                "barrier reachable under divergent control flow (inside the influence region \
                 of branch {list}): lanes that skip it leave the block's warps deadlocked"
            ),
        ));
    }
    diagnostics
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::{KernelBuilder, Operand, ValueOp};

    fn verify(kernel: &Kernel) -> Vec<Diagnostic> {
        let cfg = Cfg::build(kernel);
        let df = crate::dataflow::run(kernel, &cfg);
        let dv = crate::divergence::run(kernel, &cfg, df.written, df.maybe_uninit_reads);
        run(kernel, &cfg, &dv.branch_uniform)
    }

    #[test]
    fn top_level_barrier_is_uniform() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Add, &[Operand::Lane, Operand::Imm(1)]);
        b.sync();
        let k = b.finish(vec![]);
        assert!(verify(&k).is_empty());
    }

    #[test]
    fn barrier_inside_divergent_branch_is_an_error() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(16)]);
        b.if_begin(Operand::Reg(c));
        b.sync();
        b.if_end();
        let k = b.finish(vec![]);
        let diags = verify(&k);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "barrier-divergence");
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn barrier_inside_uniform_branch_is_fine() {
        // The branch condition is block-uniform (a parameter), so the
        // lattice proves the mask never splits.
        let mut b = KernelBuilder::new("k");
        let p = b.param(0);
        let c = b.alu(ValueOp::CmpLt, &[p, Operand::Imm(16)]);
        b.if_begin(Operand::Reg(c));
        b.sync();
        b.if_end();
        let k = b.finish(vec![1]);
        assert!(verify(&k).is_empty());
    }

    #[test]
    fn barrier_after_reconvergence_is_fine() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(16)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Lane, Operand::Imm(1)]);
        b.if_end();
        b.sync();
        let k = b.finish(vec![]);
        assert!(verify(&k).is_empty());
    }

    #[test]
    fn divergent_loop_body_barrier_is_an_error() {
        let mut b = KernelBuilder::new("k");
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        b.sync();
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        // Lane-dependent trip count: lanes exit the loop at different
        // iterations, so the barrier in the body diverges.
        let cont = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Lane]);
        b.loop_end_while(Operand::Reg(cont));
        let k = b.finish(vec![]);
        let diags = verify(&k);
        assert_eq!(diags.len(), 1, "diags: {diags:?}");
        assert_eq!(diags[0].code, "barrier-divergence");
    }
}
