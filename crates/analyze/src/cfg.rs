//! Instruction-level control-flow graph, dominators, and post-dominators.
//!
//! Kernels are small (tens to a few hundred static instructions), so the
//! CFG works at instruction granularity with dense bitset dominator sets —
//! the O(n²) iterative scheme is simpler than Lengauer-Tarjan and plenty
//! fast at this scale.
//!
//! Post-dominance is what the SIMT reconvergence stack relies on: the
//! engine pushes per-path frames at a divergent branch and pops them when
//! the PC reaches the branch's stored reconvergence point. That point must
//! be the *immediate post-dominator* of the branch, or lanes re-merge too
//! early (correctness) or too late (spurious serialization). [`Cfg::ipdom`]
//! computes the ground truth to verify against.

use gpumech_isa::kernel::BranchCond;
use gpumech_isa::{InstKind, Kernel};

use crate::diag::{Diagnostic, Severity};

/// Dense bitset matrix: one row of `n` bits per instruction.
#[derive(Debug, Clone)]
struct BitGrid {
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitGrid {
    fn new(rows: usize, cols: usize) -> Self {
        let words_per_row = cols.div_ceil(64);
        BitGrid { words_per_row, bits: vec![0; rows * words_per_row] }
    }

    fn row(&self, r: usize) -> &[u64] {
        &self.bits[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    fn row_mut(&mut self, r: usize) -> &mut [u64] {
        &mut self.bits[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    fn set(&mut self, r: usize, c: usize) {
        self.row_mut(r)[c / 64] |= 1 << (c % 64);
    }

    fn get(&self, r: usize, c: usize) -> bool {
        self.row(r)[c / 64] & (1 << (c % 64)) != 0
    }

    fn fill_row(&mut self, r: usize) {
        for w in self.row_mut(r) {
            *w = u64::MAX;
        }
    }

    /// `row(dst) &= row(src)`; returns `true` if `dst` changed.
    fn intersect_rows(&mut self, dst: usize, src: usize) -> bool {
        let (d, s) = (dst * self.words_per_row, src * self.words_per_row);
        let mut changed = false;
        for w in 0..self.words_per_row {
            let before = self.bits[d + w];
            let after = before & self.bits[s + w];
            if after != before {
                self.bits[d + w] = after;
                changed = true;
            }
        }
        changed
    }

    /// Members of row `r` that are valid instruction indices.
    fn members(&self, r: usize, n: usize) -> Vec<u32> {
        (0..n).filter(|&c| self.get(r, c)).map(|c| c as u32).collect()
    }
}

/// Instruction-level CFG with reachability and (post-)dominator facts.
#[derive(Debug)]
pub struct Cfg {
    /// Number of instructions.
    pub n: usize,
    /// Successor PCs of each instruction.
    pub succs: Vec<Vec<u32>>,
    /// Predecessor PCs of each instruction.
    pub preds: Vec<Vec<u32>>,
    /// Reachable from the entry (pc 0)?
    pub reachable: Vec<bool>,
    /// Can reach an `Exit` instruction?
    pub reaches_exit: Vec<bool>,
    dom: BitGrid,
    pdom: BitGrid,
}

/// Successor PCs of the instruction at `pc`, assuming in-range targets
/// (callers run [`Kernel::validate`] first).
fn successors(kernel: &Kernel, pc: u32) -> Vec<u32> {
    let inst = &kernel.insts[pc as usize];
    let n = kernel.insts.len() as u32;
    match inst.kind {
        InstKind::Exit => vec![],
        InstKind::Branch => {
            // A validated branch always carries a target; a malformed one
            // falls through like a straight-line instruction.
            let Some(target) = inst.target else {
                return if pc + 1 < n { vec![pc + 1] } else { vec![] };
            };
            if inst.cond == BranchCond::Always {
                vec![target]
            } else if pc + 1 < n && target != pc + 1 {
                vec![target, pc + 1]
            } else {
                vec![target]
            }
        }
        _ if pc + 1 < n => vec![pc + 1],
        _ => vec![],
    }
}

impl Cfg {
    /// Builds the CFG and computes reachability and dominator sets.
    ///
    /// The kernel must already pass [`Kernel::validate`] (all branch targets
    /// in range); this is enforced by [`crate::analyze`] before CFG
    /// construction.
    #[must_use]
    pub fn build(kernel: &Kernel) -> Self {
        let n = kernel.insts.len();
        let succs: Vec<Vec<u32>> = (0..n as u32).map(|pc| successors(kernel, pc)).collect();
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (pc, ss) in succs.iter().enumerate() {
            for &s in ss {
                preds[s as usize].push(pc as u32);
            }
        }

        // Forward reachability from the entry.
        let mut reachable = vec![false; n];
        if n > 0 {
            let mut stack = vec![0u32];
            reachable[0] = true;
            while let Some(v) = stack.pop() {
                for &s in &succs[v as usize] {
                    if !reachable[s as usize] {
                        reachable[s as usize] = true;
                        stack.push(s);
                    }
                }
            }
        }

        // Backward reachability from every Exit.
        let mut reaches_exit = vec![false; n];
        let mut stack: Vec<u32> = (0..n)
            .filter(|&i| kernel.insts[i].kind == InstKind::Exit)
            .map(|i| i as u32)
            .collect();
        for &e in &stack {
            reaches_exit[e as usize] = true;
        }
        while let Some(v) = stack.pop() {
            for &p in &preds[v as usize] {
                if !reaches_exit[p as usize] {
                    reaches_exit[p as usize] = true;
                    stack.push(p);
                }
            }
        }

        let dom = Self::dominators(n, &preds, &reachable);
        let pdom = Self::post_dominators(kernel, n, &succs, &reaches_exit);
        Cfg { n, succs, preds, reachable, reaches_exit, dom, pdom }
    }

    fn dominators(n: usize, preds: &[Vec<u32>], reachable: &[bool]) -> BitGrid {
        let mut dom = BitGrid::new(n, n);
        if n == 0 {
            return dom;
        }
        dom.set(0, 0);
        for (v, _) in reachable.iter().enumerate().skip(1).filter(|(_, r)| **r) {
            dom.fill_row(v);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for v in 1..n {
                if !reachable[v] {
                    continue;
                }
                // dom(v) = {v} ∪ ∩ dom(p): intersect in place, restore the
                // self-bit, and detect change against a snapshot (the
                // intersection may transiently drop the self-bit, so
                // per-operation change tracking would never settle).
                let before = dom.row(v).to_vec();
                for &p in &preds[v] {
                    if reachable[p as usize] {
                        dom.intersect_rows(v, p as usize);
                    }
                }
                dom.set(v, v);
                if dom.row(v) != before.as_slice() {
                    changed = true;
                }
            }
        }
        dom
    }

    fn post_dominators(kernel: &Kernel, n: usize, succs: &[Vec<u32>], reaches_exit: &[bool]) -> BitGrid {
        let mut pdom = BitGrid::new(n, n);
        for (v, _) in reaches_exit.iter().enumerate().filter(|(_, r)| **r) {
            if kernel.insts[v].kind == InstKind::Exit {
                pdom.set(v, v);
            } else {
                pdom.fill_row(v);
            }
        }
        let mut changed = true;
        while changed {
            changed = false;
            for v in (0..n).rev() {
                if !reaches_exit[v] || kernel.insts[v].kind == InstKind::Exit {
                    continue;
                }
                // Post-dominance counts only paths that reach an exit, so
                // successors stuck in infinite loops do not constrain it.
                // Snapshot-compare for the same reason as in `dominators`.
                let before = pdom.row(v).to_vec();
                for &s in &succs[v] {
                    if reaches_exit[s as usize] {
                        pdom.intersect_rows(v, s as usize);
                    }
                }
                pdom.set(v, v);
                if pdom.row(v) != before.as_slice() {
                    changed = true;
                }
            }
        }
        pdom
    }

    /// Does instruction `a` dominate instruction `b`?
    #[must_use]
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        self.dom.get(b as usize, a as usize)
    }

    /// Does instruction `a` post-dominate instruction `b`?
    #[must_use]
    pub fn post_dominates(&self, a: u32, b: u32) -> bool {
        self.pdom.get(b as usize, a as usize)
    }

    /// The immediate post-dominator of `pc`: the closest strict
    /// post-dominator. `None` if `pc` has no strict post-dominator (e.g. it
    /// cannot reach the exit, or paths end at different `Exit`s).
    #[must_use]
    pub fn ipdom(&self, pc: u32) -> Option<u32> {
        let candidates: Vec<u32> = self
            .pdom
            .members(pc as usize, self.n)
            .into_iter()
            .filter(|&c| c != pc)
            .collect();
        candidates
            .iter()
            .copied()
            .find(|&p| candidates.iter().all(|&q| q == p || self.post_dominates(q, p)))
    }

    /// PCs on some path from `from` (inclusive) that does not pass through
    /// `stop` — the *influence region* of a branch whose reconvergence point
    /// is `stop`. Instructions in this region execute under the branch's
    /// (possibly partial) mask.
    #[must_use]
    pub fn region_until(&self, from: &[u32], stop: u32) -> Vec<u32> {
        let mut seen = vec![false; self.n];
        let mut stack: Vec<u32> = Vec::new();
        for &f in from {
            if f != stop && !seen[f as usize] {
                seen[f as usize] = true;
                stack.push(f);
            }
        }
        let mut out = Vec::new();
        while let Some(v) = stack.pop() {
            out.push(v);
            for &s in &self.succs[v as usize] {
                if s != stop && !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        out
    }
}

/// Structural checks over the built CFG:
///
/// * `reconv-mismatch` (Error) — a conditional branch's stored
///   reconvergence PC is not its immediate post-dominator, so the SIMT
///   stack would re-merge lanes at the wrong point;
/// * `irreducible-cfg` (Error) — a retreating edge whose target does not
///   dominate its source: control flow the single-reconvergence-point
///   stack discipline cannot represent;
/// * `no-exit-path` (Warning) — a conditional branch from which no path
///   reaches `Exit` (an unconditionally infinite loop);
/// * `unreachable-code` (Warning) — instructions no entry path reaches.
pub(crate) fn verify(kernel: &Kernel, cfg: &Cfg) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for pc in 0..cfg.n {
        if !cfg.reachable[pc] {
            continue;
        }
        let inst = &kernel.insts[pc];
        if inst.kind != InstKind::Branch || inst.cond == BranchCond::Always {
            continue;
        }
        if !cfg.reaches_exit[pc] {
            diags.push(Diagnostic::at(
                Severity::Warning,
                "no-exit-path",
                pc as u32,
                "no path from this branch reaches Exit; the warp can only \
                 terminate via the dynamic instruction limit",
            ));
            continue;
        }
        let Some(stored) = inst.reconv else {
            diags.push(Diagnostic::at(
                Severity::Error,
                "reconv-mismatch",
                pc as u32,
                "conditional branch carries no reconvergence pc; divergent lanes \
                 could never re-merge",
            ));
            continue;
        };
        match cfg.ipdom(pc as u32) {
            Some(ipdom) if ipdom == stored => {}
            Some(ipdom) => diags.push(Diagnostic::at(
                Severity::Error,
                "reconv-mismatch",
                pc as u32,
                format!(
                    "stored reconvergence pc {stored} is not the immediate \
                     post-dominator (pc {ipdom}); lanes would re-merge at the wrong point"
                ),
            )),
            None => diags.push(Diagnostic::at(
                Severity::Error,
                "reconv-mismatch",
                pc as u32,
                format!(
                    "stored reconvergence pc {stored}, but the branch has no \
                     post-dominator (paths end at different exits)"
                ),
            )),
        }
    }

    // Reducibility: in the linear PC layout the builder produces, every
    // loop back edge jumps to a header that dominates it. A PC-decreasing
    // edge whose target does not dominate its source is a second entry
    // into a loop — irreducible control flow.
    for u in 0..cfg.n {
        if !cfg.reachable[u] {
            continue;
        }
        for &v in &cfg.succs[u] {
            if (v as usize) <= u && !cfg.dominates(v, u as u32) {
                diags.push(Diagnostic::at(
                    Severity::Error,
                    "irreducible-cfg",
                    u as u32,
                    format!(
                        "retreating edge to pc {v} whose target does not dominate \
                         this instruction: loop with multiple entries"
                    ),
                ));
            }
        }
    }

    // Report unreachable instructions as contiguous runs.
    let mut pc = 0;
    while pc < cfg.n {
        if cfg.reachable[pc] {
            pc += 1;
            continue;
        }
        let start = pc;
        while pc < cfg.n && !cfg.reachable[pc] {
            pc += 1;
        }
        diags.push(Diagnostic::at(
            Severity::Warning,
            "unreachable-code",
            start as u32,
            format!("pcs {start}..{} are unreachable from the entry", pc - 1),
        ));
    }
    diags
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::{KernelBuilder, Operand, ValueOp};

    fn if_else_kernel() -> Kernel {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(16)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.if_else();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(2)]);
        b.if_end();
        b.finish(vec![])
        // Layout: 0 cmp, 1 br, 2 then, 3 jump, 4 else, 5 exit.
    }

    #[test]
    fn if_else_ipdom_is_reconvergence_point() {
        let k = if_else_kernel();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.succs[1], vec![4, 2]);
        assert_eq!(cfg.ipdom(1), Some(5));
        assert_eq!(k.insts[1].reconv, Some(5));
        assert!(cfg.post_dominates(5, 1));
        assert!(!cfg.post_dominates(2, 1), "then arm is skippable");
        assert!(cfg.dominates(0, 4));
        assert!(!cfg.dominates(2, 4), "else arm not dominated by then arm");
    }

    #[test]
    fn loop_ipdom_is_fallthrough() {
        let mut b = KernelBuilder::new("k");
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(10)]);
        b.loop_end_while(Operand::Reg(c));
        let k = b.finish(vec![]);
        // Layout: 0 mov, 1 add, 2 cmp, 3 branch(target 1, reconv 4), 4 exit.
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.ipdom(3), Some(4));
        assert!(cfg.dominates(1, 3), "loop head dominates the back edge");
    }

    #[test]
    fn straight_line_everything_reaches_exit() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let cfg = Cfg::build(&k);
        assert!(cfg.reachable.iter().all(|&r| r));
        assert!(cfg.reaches_exit.iter().all(|&r| r));
        assert_eq!(cfg.ipdom(0), Some(1));
    }

    #[test]
    fn region_until_covers_both_arms() {
        let k = if_else_kernel();
        let cfg = Cfg::build(&k);
        let mut region = cfg.region_until(&[4, 2], 5);
        region.sort_unstable();
        assert_eq!(region, vec![2, 3, 4]);
    }

    #[test]
    fn conditional_infinite_loop_still_reaches_exit_statically() {
        // The CFG does not const-fold conditions: the IfNonZero back edge
        // keeps its fallthrough successor, so the loop statically reaches
        // exit even though cond = Imm(1) loops forever dynamically.
        let mut b = KernelBuilder::new("k");
        b.loop_begin();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.loop_end_while(Operand::Imm(1));
        let k = b.finish(vec![]);
        let cfg = Cfg::build(&k);
        assert!(cfg.reaches_exit.iter().all(|&r| r));
    }

    #[test]
    fn unconditional_loop_does_not_reach_exit() {
        use gpumech_isa::StaticInst;
        // 0: alu, 1: jump -> 0, 2: exit (unreachable).
        let alu = StaticInst {
            kind: InstKind::IntAlu,
            op: ValueOp::Mov,
            dst: Some(gpumech_isa::Reg(0)),
            srcs: vec![Operand::Imm(1)],
            target: None,
            cond: BranchCond::Always,
            reconv: None,
        };
        let jump = StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![],
            target: Some(0),
            cond: BranchCond::Always,
            reconv: None,
        };
        let exit = StaticInst {
            kind: InstKind::Exit,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![],
            target: None,
            cond: BranchCond::Always,
            reconv: None,
        };
        let k = Kernel { name: "spin".into(), insts: vec![alu, jump, exit], params: vec![] };
        assert!(k.validate().is_ok());
        let cfg = Cfg::build(&k);
        assert!(!cfg.reaches_exit[0]);
        assert!(!cfg.reaches_exit[1]);
        assert!(cfg.reaches_exit[2]);
        assert!(!cfg.reachable[2]);
        assert_eq!(cfg.ipdom(1), None);
    }
}
