//! Forward/backward register dataflow: initialization and liveness.
//!
//! `NUM_REGS` is 64, so every register set is a single `u64` bitmask and
//! the fixpoints are cheap word operations.
//!
//! Three analyses run over the CFG:
//!
//! * **may-be-uninitialized** (forward, union join): a register is flagged
//!   at a use if *some* entry path reaches it without a write;
//! * **must-be-uninitialized** (forward, intersection join): flagged if
//!   *no* entry path writes it first — a definite read-before-write, which
//!   is an [`Severity::Error`];
//! * **liveness** (backward, union join): used for dead-value reporting
//!   and the register-pressure metric.
//!
//! The functional engine zero-initializes registers, so even an erroneous
//! read-before-write executes deterministically — but it almost always
//! means the kernel author forgot a def, so the definite case rejects the
//! kernel while the path-dependent case only warns. Unread values are
//! merely [`Severity::Info`]: latency-chain and memory-traffic workloads
//! write values purely for their pipeline or DRAM side effects.

use gpumech_isa::Kernel;
use gpumech_isa::kernel::Operand;

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Severity};

/// Results of the register dataflow pass.
pub(crate) struct Dataflow {
    /// Findings (read-before-write, maybe-uninit, unused values).
    pub(crate) diagnostics: Vec<Diagnostic>,
    /// Maximum number of simultaneously live registers (register pressure).
    pub(crate) max_live: u32,
    /// Mask of registers with at least one reachable write.
    pub(crate) written: u64,
    /// Mask of registers that may be read before being written.
    pub(crate) maybe_uninit_reads: u64,
}

/// Bitmask of registers read by the instruction at `pc`.
fn uses(kernel: &Kernel, pc: usize) -> u64 {
    let mut mask = 0u64;
    for op in &kernel.insts[pc].srcs {
        if let Operand::Reg(r) = op {
            mask |= 1 << r.0;
        }
    }
    mask
}

/// Bitmask of the register written by the instruction at `pc`, if any.
fn def(kernel: &Kernel, pc: usize) -> u64 {
    kernel.insts[pc].dst.map_or(0, |r| 1 << r.0)
}

pub(crate) fn run(kernel: &Kernel, cfg: &Cfg) -> Dataflow {
    let n = kernel.insts.len();
    let use_masks: Vec<u64> = (0..n).map(|pc| uses(kernel, pc)).collect();
    let def_masks: Vec<u64> = (0..n).map(|pc| def(kernel, pc)).collect();

    // Forward may-be-uninitialized: least fixpoint from empty, union join.
    // Entry starts with every register uninitialized.
    let mut may_in = vec![0u64; n];
    if n > 0 {
        may_in[0] = u64::MAX;
    }
    loop {
        let mut changed = false;
        for v in 0..n {
            if !cfg.reachable[v] {
                continue;
            }
            let mut inset = if v == 0 { u64::MAX } else { 0 };
            for &p in &cfg.preds[v] {
                let p = p as usize;
                if cfg.reachable[p] {
                    inset |= may_in[p] & !def_masks[p];
                }
            }
            if inset != may_in[v] {
                may_in[v] = inset;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Forward must-be-uninitialized: greatest fixpoint from full,
    // intersection join.
    let mut must_in = vec![u64::MAX; n];
    loop {
        let mut changed = false;
        for v in 1..n {
            if !cfg.reachable[v] {
                continue;
            }
            let mut inset = u64::MAX;
            for &p in &cfg.preds[v] {
                let p = p as usize;
                if cfg.reachable[p] {
                    inset &= must_in[p] & !def_masks[p];
                }
            }
            if inset != must_in[v] {
                must_in[v] = inset;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Backward liveness: least fixpoint from empty.
    let mut live_in = vec![0u64; n];
    let mut live_out = vec![0u64; n];
    loop {
        let mut changed = false;
        for v in (0..n).rev() {
            let mut out = 0u64;
            for &s in &cfg.succs[v] {
                out |= live_in[s as usize];
            }
            let inset = use_masks[v] | (out & !def_masks[v]);
            if out != live_out[v] || inset != live_in[v] {
                live_out[v] = out;
                live_in[v] = inset;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let mut diagnostics = Vec::new();
    let mut written = 0u64;
    let mut maybe_uninit_reads = 0u64;
    let mut max_live = 0u32;
    for v in 0..n {
        if !cfg.reachable[v] {
            continue;
        }
        written |= def_masks[v];
        max_live = max_live.max(live_in[v].count_ones());

        let mut read = use_masks[v];
        while read != 0 {
            let r = read.trailing_zeros();
            read &= read - 1;
            let bit = 1u64 << r;
            if must_in[v] & bit != 0 {
                diagnostics.push(Diagnostic::at(
                    Severity::Error,
                    "read-before-write",
                    v as u32,
                    format!("register r{r} is read but no path from entry writes it first"),
                ));
            } else if may_in[v] & bit != 0 {
                maybe_uninit_reads |= bit;
                diagnostics.push(Diagnostic::at(
                    Severity::Warning,
                    "maybe-uninit-read",
                    v as u32,
                    format!("register r{r} may be read before it is written on some path"),
                ));
            }
        }

        if def_masks[v] != 0 && live_out[v] & def_masks[v] == 0 {
            let r = def_masks[v].trailing_zeros();
            diagnostics.push(Diagnostic::at(
                Severity::Info,
                "unused-value",
                v as u32,
                format!("value written to r{r} is never read (latency filler or dead code)"),
            ));
        }
    }

    Dataflow { diagnostics, max_live, written, maybe_uninit_reads }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::kernel::{KernelBuilder, Reg, ValueOp};
    use gpumech_isa::AddrPattern;

    fn analyze(kernel: &Kernel) -> Dataflow {
        run(kernel, &Cfg::build(kernel))
    }

    #[test]
    fn clean_kernel_has_no_uninit_findings() {
        let mut b = KernelBuilder::new("k");
        let x = b.alu(ValueOp::Mov, &[Operand::Imm(7)]);
        let y = b.alu(ValueOp::Add, &[Operand::Reg(x), Operand::Imm(1)]);
        b.store_pattern(AddrPattern::Coalesced { base: 0, elem_bytes: 8 }, Operand::Reg(y));
        let k = b.finish(vec![]);
        let df = analyze(&k);
        assert!(df.diagnostics.iter().all(|d| d.severity == Severity::Info));
    }

    #[test]
    fn definite_read_before_write_is_an_error() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Add, &[Operand::Reg(Reg(9)), Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let df = analyze(&k);
        let err = df
            .diagnostics
            .iter()
            .find(|d| d.code == "read-before-write")
            .expect("expected a read-before-write error");
        assert_eq!(err.severity, Severity::Error);
        assert_eq!(err.pc, Some(0));
    }

    #[test]
    fn path_dependent_uninit_read_is_a_warning() {
        // x is written only in the then-arm, then read after reconvergence.
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(4)]);
        let x = b.fresh_reg();
        b.if_begin(Operand::Reg(c));
        b.alu_into(x, ValueOp::Mov, &[Operand::Imm(1)]);
        b.if_end();
        let _ = b.alu(ValueOp::Add, &[Operand::Reg(x), Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let df = analyze(&k);
        assert!(df.diagnostics.iter().any(|d| d.code == "maybe-uninit-read"));
        assert!(!df.diagnostics.iter().any(|d| d.code == "read-before-write"));
        assert_ne!(df.maybe_uninit_reads & (1 << x.0), 0);
    }

    #[test]
    fn unused_value_is_reported_as_info() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Mov, &[Operand::Imm(3)]);
        let k = b.finish(vec![]);
        let df = analyze(&k);
        let info = df
            .diagnostics
            .iter()
            .find(|d| d.code == "unused-value")
            .expect("expected an unused-value info");
        assert_eq!(info.severity, Severity::Info);
    }

    #[test]
    fn register_pressure_counts_simultaneously_live_regs() {
        let mut b = KernelBuilder::new("k");
        let a = b.alu(ValueOp::Mov, &[Operand::Imm(1)]);
        let c = b.alu(ValueOp::Mov, &[Operand::Imm(2)]);
        let s = b.alu(ValueOp::Add, &[Operand::Reg(a), Operand::Reg(c)]);
        b.store_pattern(AddrPattern::Coalesced { base: 0, elem_bytes: 8 }, Operand::Reg(s));
        let k = b.finish(vec![]);
        let df = analyze(&k);
        assert!(df.max_live >= 2, "a and c are live together, got {}", df.max_live);
    }
}
