//! Diagnostics: severities, stable codes, and display formatting.

use std::fmt;

use serde::{Deserialize, Serialize};

/// How bad a finding is.
///
/// `Error` findings mean the kernel must not be traced (the trace, and
/// therefore every CPI prediction downstream, would be structurally
/// meaningless). `Warning` findings are suspicious but executable;
/// `Info` findings are observations (e.g. intentionally unused values in
/// latency-chain workloads).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Severity {
    /// Observation; no action needed.
    Info,
    /// Suspicious construct; the kernel still executes deterministically.
    Warning,
    /// Structural defect; the kernel is rejected by the pre-trace hook.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => f.write_str("info"),
            Severity::Warning => f.write_str("warning"),
            Severity::Error => f.write_str("error"),
        }
    }
}

/// Why a kernel was rejected by the pre-trace verification hook, derived
/// from the codes of its Error-severity findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RejectReason {
    /// A structural defect: invalid IR, a corrupt reconvergence PC,
    /// irreducible control flow, or a definite read-before-write.
    Structural,
    /// A barrier reachable under divergent control flow — the kernel would
    /// deadlock on hardware (`barrier-divergence` findings).
    BarrierDivergence,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Structural => f.write_str("structural defect"),
            RejectReason::BarrierDivergence => f.write_str("barrier divergence"),
        }
    }
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Severity level.
    pub severity: Severity,
    /// Stable machine-readable code (e.g. `reconv-mismatch`).
    pub code: String,
    /// PC the finding anchors to, if any.
    pub pc: Option<u32>,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic anchored at `pc`.
    #[must_use]
    pub fn at(severity: Severity, code: &str, pc: u32, message: impl Into<String>) -> Self {
        Diagnostic { severity, code: code.to_string(), pc: Some(pc), message: message.into() }
    }

    /// Builds a kernel-wide diagnostic (no PC).
    #[must_use]
    pub fn global(severity: Severity, code: &str, message: impl Into<String>) -> Self {
        Diagnostic { severity, code: code.to_string(), pc: None, message: message.into() }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "{}[{}] pc {}: {}", self.severity, self.code, pc, self.message),
            None => write!(f, "{}[{}]: {}", self.severity, self.code, self.message),
        }
    }
}
