//! Divergence and lane-affine address analysis.
//!
//! Each register is abstracted by how its value varies *across the lanes of
//! one warp* ([`AbsVal`]):
//!
//! ```text
//!            Divergent            (arbitrary per-lane values)
//!           /        \
//!       Affine(k)     |           (base + k·lane, base warp-uniform, k ≠ 0)
//!           \        /
//!            Uniform              (same unknown value in every lane)
//!               |
//!            Const(c)             (same known value in every lane)
//! ```
//!
//! The analysis is flow-insensitive per register (one abstract value joins
//! every reachable write) with two refinements that make it sound for SIMT
//! execution:
//!
//! * **control-dependence taint** — a write inside the influence region of a
//!   potentially divergent branch (reachable from the branch's successors
//!   without passing its reconvergence point) executes under a partial mask,
//!   so some lanes may keep a stale value: the write is forced to
//!   [`AbsVal::Divergent`];
//! * **never-written registers** are `Const(0)`: the functional engine
//!   zero-initializes the register file, and a register with no reachable
//!   write (or one that is read before its first write) contributes its
//!   initial zero.
//!
//! Branch facts feed the tracer's uniform-branch fast path; address facts
//! ([`CoalesceClass`]) predict the coalescer's behaviour per memory
//! instruction and bound the number of distinct 128-byte lines a warp can
//! touch ([`MemAccess::max_requests`]).

use gpumech_isa::kernel::{BranchCond, NUM_REGS};
use gpumech_isa::{InstKind, Kernel, Operand, ValueOp};
use serde::{Deserialize, Serialize};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Severity};

/// Abstract cross-lane shape of a register value within one warp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsVal {
    /// The same known constant in every lane.
    Const(u64),
    /// The same (unknown) value in every lane.
    Uniform,
    /// `base + k·lane` with a warp-uniform base and `k != 0` (wrapping
    /// arithmetic mod 2^64).
    Affine(u64),
    /// No cross-lane structure.
    Divergent,
}

impl AbsVal {
    /// Same value in every lane?
    #[must_use]
    pub fn is_uniform(self) -> bool {
        matches!(self, AbsVal::Const(_) | AbsVal::Uniform)
    }

    /// Normalizes `Affine(0)` (which is warp-uniform) to `Uniform`.
    fn affine(k: u64) -> Self {
        if k == 0 { AbsVal::Uniform } else { AbsVal::Affine(k) }
    }

    /// Least upper bound in the lattice above.
    #[must_use]
    pub fn join(self, other: Self) -> Self {
        use AbsVal::{Affine, Const, Divergent, Uniform};
        match (self, other) {
            (a, b) if a == b => a,
            (Const(_) | Uniform, Const(_) | Uniform) => Uniform,
            (Affine(_), _) | (_, Affine(_)) | (Divergent, _) | (_, Divergent) => Divergent,
        }
    }

    fn coeff(self) -> u64 {
        if let AbsVal::Affine(k) = self { k } else { 0 }
    }
}

/// Predicted coalescing behaviour of one static memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoalesceClass {
    /// Every lane reads the same address: one request.
    Broadcast,
    /// Lane-affine with a small stride (≤ 8 bytes): adjacent lanes share
    /// cache lines; a full warp touches at most a handful of lines.
    Coalesced,
    /// Lane-affine with the given stride magnitude in bytes: each lane
    /// steps a fixed distance, touching proportionally many lines.
    Strided(u64),
    /// No affine structure: up to one request per lane.
    Scattered,
}

/// Address facts for one static (global) memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemAccess {
    /// Predicted coalescing class.
    pub class: CoalesceClass,
    /// Sound upper bound on distinct 128-byte lines one warp touches in a
    /// single execution of this instruction (the coalescer's request count).
    pub max_requests: u32,
}

const LINE_BYTES: u64 = 128;
const MAX_LANES: u64 = 32;

fn classify(addr: AbsVal) -> MemAccess {
    match addr {
        AbsVal::Const(_) | AbsVal::Uniform => {
            MemAccess { class: CoalesceClass::Broadcast, max_requests: 1 }
        }
        AbsVal::Affine(k) => {
            // Stride magnitude: a descending progression (k = -m mod 2^64)
            // spans the same bytes as an ascending one.
            let mag = k.min(k.wrapping_neg());
            // Lanes 0..32 span at most 31·mag bytes; an interval of length L
            // covers at most L/128 + 2 distinct lines.
            let lines = (mag.saturating_mul(MAX_LANES - 1) / LINE_BYTES + 2).min(MAX_LANES);
            let class = if mag <= 8 {
                CoalesceClass::Coalesced
            } else {
                CoalesceClass::Strided(mag)
            };
            MemAccess { class, max_requests: lines as u32 }
        }
        AbsVal::Divergent => {
            MemAccess { class: CoalesceClass::Scattered, max_requests: MAX_LANES as u32 }
        }
    }
}

/// Abstract value of an operand given the current register state.
/// `None` is bottom: the register has no resolved write yet.
fn operand_val(op: Operand, values: &[Option<AbsVal>; NUM_REGS]) -> Option<AbsVal> {
    Some(match op {
        Operand::Reg(r) => return values[r.0 as usize],
        Operand::Imm(v) => AbsVal::Const(v),
        // Within one warp, global tid = warp-uniform base + lane, and
        // tid-in-block likewise; the raw lane index trivially so.
        Operand::Tid | Operand::Lane | Operand::TidInBlock => AbsVal::Affine(1),
        Operand::Block | Operand::WarpInBlock | Operand::Param(_) => AbsVal::Uniform,
    })
}

/// Abstract transfer function mirroring `WarpMachine::eval`.
fn transfer(op: ValueOp, args: &[AbsVal]) -> AbsVal {
    use AbsVal::{Const, Divergent, Uniform};
    let all_uniform = |args: &[AbsVal]| args.iter().all(|a| a.is_uniform());
    if args.contains(&Divergent) {
        // Every op here is per-lane pointwise, so divergence propagates.
        return Divergent;
    }
    match op {
        ValueOp::Mov => args.first().copied().unwrap_or(Const(0)),
        ValueOp::Add => {
            let k = args.iter().fold(0u64, |k, a| k.wrapping_add(a.coeff()));
            match args.iter().try_fold(0u64, |s, a| match a {
                Const(c) => Some(s.wrapping_add(*c)),
                _ => None,
            }) {
                Some(sum) if k == 0 => Const(sum),
                _ => AbsVal::affine(k),
            }
        }
        ValueOp::Sub => {
            let k = args[0].coeff().wrapping_sub(args[1].coeff());
            match (args[0], args[1]) {
                (Const(a), Const(b)) => Const(a.wrapping_sub(b)),
                _ => AbsVal::affine(k),
            }
        }
        ValueOp::Mul => {
            let affine_count = args.iter().filter(|a| matches!(a, AbsVal::Affine(_))).count();
            match affine_count {
                0 => match args.iter().try_fold(1u64, |p, a| match a {
                    Const(c) => Some(p.wrapping_mul(*c)),
                    _ => None,
                }) {
                    Some(prod) => Const(prod),
                    None => Uniform,
                },
                // c·(base + k·lane) = c·base + (c·k)·lane needs every other
                // factor to be a known constant.
                1 if args.iter().all(|a| matches!(a, Const(_) | AbsVal::Affine(_))) => {
                    let k = args.iter().fold(1u64, |p, a| match a {
                        Const(c) => p.wrapping_mul(*c),
                        AbsVal::Affine(k) => p.wrapping_mul(*k),
                        _ => p,
                    });
                    AbsVal::affine(k)
                }
                _ => Divergent,
            }
        }
        ValueOp::Shl => match (args[0], args[1]) {
            (Const(a), Const(s)) => Const(a << (s & 63)),
            // a << s = a·2^s (wrapping), so an affine value keeps its shape.
            (AbsVal::Affine(k), Const(s)) => AbsVal::affine(k << (s & 63)),
            (a, s) if a.is_uniform() && s.is_uniform() => Uniform,
            _ => Divergent,
        },
        ValueOp::Div
        | ValueOp::Rem
        | ValueOp::And
        | ValueOp::Xor
        | ValueOp::Shr
        | ValueOp::Min
        | ValueOp::Max
        | ValueOp::CmpLt
        | ValueOp::CmpEq
        | ValueOp::CmpNe
        | ValueOp::Hash => {
            if all_uniform(args) { Uniform } else { Divergent }
        }
        ValueOp::Select => match args[0] {
            Const(c) => args[if c != 0 { 1 } else { 2 }],
            Uniform => args[1].join(args[2]),
            _ => Divergent,
        },
    }
}

/// Results of the divergence pass.
pub(crate) struct Divergence {
    /// Final abstract value per register (bottom resolved to `Const(0)`).
    pub(crate) reg_values: [AbsVal; NUM_REGS],
    /// Per-pc: is the branch at this pc statically warp-uniform?
    /// (`true` also for unconditional branches; `false` for non-branches.)
    pub(crate) branch_uniform: Vec<bool>,
    /// Per-pc address facts for global memory instructions.
    pub(crate) mem: Vec<Option<MemAccess>>,
    /// Info-level findings (divergent branches, scattered accesses).
    pub(crate) diagnostics: Vec<Diagnostic>,
}

pub(crate) fn run(
    kernel: &Kernel,
    cfg: &Cfg,
    written: u64,
    maybe_uninit_reads: u64,
) -> Divergence {
    let n = kernel.insts.len();

    // Influence regions: influenced[pc] lists the conditional branches whose
    // divergence taints a write at pc.
    let mut influenced: Vec<Vec<u32>> = vec![Vec::new(); n];
    for pc in 0..n {
        let inst = &kernel.insts[pc];
        if inst.kind != InstKind::Branch || inst.cond == BranchCond::Always || !cfg.reachable[pc] {
            continue;
        }
        // Validation guarantees conditional branches carry a reconvergence
        // pc; skip the influence region of a malformed one.
        let Some(reconv) = inst.reconv else { continue };
        for v in cfg.region_until(&cfg.succs[pc], reconv) {
            influenced[v as usize].push(pc as u32);
        }
    }

    // Seed: registers with no reachable write hold their initial zero, and
    // registers that may be read before written contribute it as well.
    let mut values: [Option<AbsVal>; NUM_REGS] = [None; NUM_REGS];
    for (r, v) in values.iter_mut().enumerate() {
        let bit = 1u64 << r;
        if written & bit == 0 || maybe_uninit_reads & bit != 0 {
            *v = Some(AbsVal::Const(0));
        }
    }

    let branch_divergent = |pc: u32, values: &[Option<AbsVal>; NUM_REGS]| -> bool {
        let inst = &kernel.insts[pc as usize];
        match operand_val(inst.srcs[0], values) {
            Some(v) => !v.is_uniform(),
            None => false, // unresolved yet; later rounds re-check
        }
    };

    loop {
        let mut changed = false;
        for (pc, infl) in influenced.iter().enumerate() {
            if !cfg.reachable[pc] {
                continue;
            }
            let inst = &kernel.insts[pc];
            let Some(dst) = inst.dst else { continue };
            let args: Option<Vec<AbsVal>> =
                inst.srcs.iter().map(|&s| operand_val(s, &values)).collect();
            let Some(args) = args else { continue };
            let mut result = match inst.kind {
                // A load's value is a pure function of its address
                // (deterministic memory), so a warp-uniform address loads a
                // warp-uniform value.
                InstKind::Load(_) => {
                    if args[0].is_uniform() { AbsVal::Uniform } else { AbsVal::Divergent }
                }
                _ => transfer(inst.op, &args),
            };
            if infl.iter().any(|&b| branch_divergent(b, &values)) {
                // Written under a possibly partial mask: inactive lanes keep
                // their old value, so the register may differ across lanes.
                result = AbsVal::Divergent;
            }
            let slot = &mut values[dst.0 as usize];
            let joined = slot.map_or(result, |old| old.join(result));
            if *slot != Some(joined) {
                *slot = Some(joined);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    let reg_values: [AbsVal; NUM_REGS] =
        std::array::from_fn(|r| values[r].unwrap_or(AbsVal::Const(0)));

    let mut branch_uniform = vec![false; n];
    let mut mem: Vec<Option<MemAccess>> = vec![None; n];
    let mut diagnostics = Vec::new();
    for pc in 0..n {
        let inst = &kernel.insts[pc];
        if inst.kind == InstKind::Branch {
            if inst.cond == BranchCond::Always {
                branch_uniform[pc] = true;
            } else {
                let uniform = cfg.reachable[pc]
                    && operand_val(inst.srcs[0], &values)
                        .is_some_and(AbsVal::is_uniform);
                branch_uniform[pc] = uniform;
                if cfg.reachable[pc] && !uniform {
                    diagnostics.push(Diagnostic::at(
                        Severity::Info,
                        "divergent-branch",
                        pc as u32,
                        "branch condition is lane-dependent; the warp may diverge here",
                    ));
                }
            }
        }
        if inst.kind.is_global_mem() && cfg.reachable[pc] {
            let addr = operand_val(inst.srcs[0], &values).unwrap_or(AbsVal::Const(0));
            let access = classify(addr);
            if access.class == CoalesceClass::Scattered {
                diagnostics.push(Diagnostic::at(
                    Severity::Info,
                    "scattered-access",
                    pc as u32,
                    "address has no cross-lane affine structure; up to 32 requests per warp",
                ));
            }
            mem[pc] = Some(access);
        }
    }

    Divergence { reg_values, branch_uniform, mem, diagnostics }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::{AddrPattern, KernelBuilder};

    fn analyze(kernel: &Kernel) -> Divergence {
        let cfg = Cfg::build(kernel);
        let df = crate::dataflow::run(kernel, &cfg);
        run(kernel, &cfg, df.written, df.maybe_uninit_reads)
    }

    #[test]
    fn join_laws() {
        use AbsVal::{Affine, Const, Divergent, Uniform};
        assert_eq!(Const(3).join(Const(3)), Const(3));
        assert_eq!(Const(3).join(Const(4)), Uniform);
        assert_eq!(Uniform.join(Const(4)), Uniform);
        assert_eq!(Affine(4).join(Affine(4)), Affine(4));
        assert_eq!(Affine(4).join(Affine(8)), Divergent);
        assert_eq!(Affine(4).join(Uniform), Divergent);
        assert_eq!(Divergent.join(Const(0)), Divergent);
    }

    #[test]
    fn coalesced_pattern_is_affine() {
        let mut b = KernelBuilder::new("k");
        let v = b.load_pattern(AddrPattern::Coalesced { base: 1 << 32, elem_bytes: 4 });
        b.store_pattern(AddrPattern::Coalesced { base: 2 << 32, elem_bytes: 4 }, Operand::Reg(v));
        let k = b.finish(vec![]);
        let d = analyze(&k);
        let accesses: Vec<MemAccess> = d.mem.iter().flatten().copied().collect();
        assert_eq!(accesses.len(), 2);
        for a in accesses {
            assert_eq!(a.class, CoalesceClass::Coalesced);
            assert!(a.max_requests <= 3, "4-byte stride spans ≤ 2 lines, bound {}", a.max_requests);
        }
    }

    #[test]
    fn strided_and_random_patterns_classify() {
        let mut b = KernelBuilder::new("k");
        let _ = b.load_pattern(AddrPattern::Strided { base: 0, stride_bytes: 256 });
        let _ = b.load_pattern(AddrPattern::Random { base: 0, region_bytes: 1 << 20, salt: 7 });
        let _ = b.load_pattern(AddrPattern::Broadcast { addr: 64 });
        let k = b.finish(vec![]);
        let d = analyze(&k);
        let accesses: Vec<MemAccess> = d.mem.iter().flatten().copied().collect();
        assert_eq!(accesses[0].class, CoalesceClass::Strided(256));
        assert_eq!(accesses[0].max_requests, 32);
        assert_eq!(accesses[1].class, CoalesceClass::Scattered);
        assert_eq!(accesses[2].class, CoalesceClass::Broadcast);
        assert_eq!(accesses[2].max_requests, 1);
    }

    #[test]
    fn uniform_loop_branch_is_uniform() {
        let mut b = KernelBuilder::new("k");
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(10)]);
        b.loop_end_while(Operand::Reg(c));
        let k = b.finish(vec![]);
        let d = analyze(&k);
        let branch_pc = k.insts.iter().position(|i| i.kind == InstKind::Branch).unwrap();
        assert!(d.branch_uniform[branch_pc]);
        assert!(!d.diagnostics.iter().any(|dg| dg.code == "divergent-branch"));
    }

    #[test]
    fn lane_dependent_branch_is_divergent_and_taints_region() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(16)]);
        let x = b.alu(ValueOp::Mov, &[Operand::Imm(5)]);
        b.if_begin(Operand::Reg(c));
        b.alu_into(x, ValueOp::Mov, &[Operand::Imm(9)]);
        b.if_end();
        // x is 9 in lanes 0..16 and 5 elsewhere: divergent after reconv.
        b.store_pattern(AddrPattern::Coalesced { base: 0, elem_bytes: 4 }, Operand::Reg(x));
        let k = b.finish(vec![]);
        let d = analyze(&k);
        let branch_pc = k.insts.iter().position(|i| i.kind == InstKind::Branch).unwrap();
        assert!(!d.branch_uniform[branch_pc]);
        assert_eq!(d.reg_values[x.0 as usize], AbsVal::Divergent);
    }

    #[test]
    fn uniform_load_value_is_uniform() {
        let mut b = KernelBuilder::new("k");
        let v = b.load(gpumech_isa::MemSpace::Global, Operand::Imm(256));
        let c = b.alu(ValueOp::CmpNe, &[Operand::Reg(v), Operand::Imm(0)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Reg(v), Operand::Imm(1)]);
        b.if_end();
        let k = b.finish(vec![]);
        let d = analyze(&k);
        assert_eq!(d.reg_values[v.0 as usize], AbsVal::Uniform);
        let branch_pc = k.insts.iter().position(|i| i.kind == InstKind::Branch).unwrap();
        assert!(d.branch_uniform[branch_pc], "branch on a broadcast-loaded value is uniform");
    }

    #[test]
    fn negative_stride_counts_as_coalesced() {
        // addr = base - 4·lane, built as Sub(base, 4·lane).
        let mut b = KernelBuilder::new("k");
        let off = b.alu(ValueOp::Mul, &[Operand::Lane, Operand::Imm(4)]);
        let addr = b.alu(ValueOp::Sub, &[Operand::Imm(1 << 20), Operand::Reg(off)]);
        let _ = b.load(gpumech_isa::MemSpace::Global, Operand::Reg(addr));
        let k = b.finish(vec![]);
        let d = analyze(&k);
        let access = d.mem.iter().flatten().next().copied().unwrap();
        assert_eq!(access.class, CoalesceClass::Coalesced);
    }
}
