//! Whole-kernel static analysis and linting over the GPUMech kernel IR.
//!
//! GPUMech's accuracy rests on the functional trace being *structurally
//! correct*: the SIMT reconvergence stack must re-merge lanes exactly at
//! each branch's immediate post-dominator, and the interval model's memory
//! statistics assume the coalescer sees the access pattern the kernel was
//! designed to produce. This crate checks those properties *before* a
//! single instruction is traced, and computes facts the tracer can exploit:
//!
//! * [`cfg::Cfg`] — instruction-level CFG with dominators/post-dominators;
//!   verifies every conditional branch's stored reconvergence PC is the
//!   true immediate post-dominator and that control flow is reducible;
//! * register dataflow — definite read-before-write (Error),
//!   path-dependent uninitialized reads (Warning), unread values (Info),
//!   and register pressure;
//! * [`divergence`] — classifies each branch warp-uniform vs potentially
//!   divergent and each global memory access by [`CoalesceClass`], with a
//!   sound per-warp bound on coalescer requests;
//! * [`KernelMetrics`] — static instruction mix and summary counts.
//!
//! The single entry point is [`analyze`]; the result carries
//! [`Diagnostic`]s (with [`Severity`] levels) plus the per-pc fact tables.
//! `gpumech-trace` runs it as a pre-trace hook: kernels with Error-level
//! findings are rejected, and statically uniform branches skip the per-lane
//! reconvergence-stack work. The `gpumech lint` CLI subcommand exposes the
//! same analysis to humans and CI.
//!
//! # Example
//!
//! ```
//! use gpumech_isa::{AddrPattern, KernelBuilder, Operand, ValueOp};
//!
//! let mut b = KernelBuilder::new("axpy");
//! let x = b.load_pattern(AddrPattern::Coalesced { base: 1 << 32, elem_bytes: 4 });
//! let y = b.alu(ValueOp::Add, &[Operand::Reg(x), Operand::Param(0)]);
//! b.store_pattern(AddrPattern::Coalesced { base: 2 << 32, elem_bytes: 4 }, Operand::Reg(y));
//! let kernel = b.finish(vec![3]);
//!
//! let analysis = gpumech_analyze::analyze(&kernel);
//! assert!(!analysis.has_errors());
//! assert_eq!(analysis.metrics.coalesced_accesses, 2);
//! ```

pub mod cfg;
mod dataflow;
pub mod diag;
pub mod divergence;
mod metrics;

use gpumech_isa::Kernel;
use serde::{Deserialize, Serialize};

pub use cfg::Cfg;
pub use diag::{Diagnostic, Severity};
pub use divergence::{AbsVal, CoalesceClass, MemAccess};
pub use metrics::KernelMetrics;

/// Everything the analyzer learned about one kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelAnalysis {
    /// Name of the analyzed kernel.
    pub kernel_name: String,
    /// All findings, sorted by (descending severity, pc).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-pc: `true` if the instruction is a branch that provably cannot
    /// split the warp (uniform condition or unconditional). `false` for
    /// non-branches and whenever the analysis could not prove uniformity.
    pub branch_uniform: Vec<bool>,
    /// Per-pc address facts for global memory instructions.
    pub coalescing: Vec<Option<MemAccess>>,
    /// Static summary metrics.
    pub metrics: KernelMetrics,
}

impl KernelAnalysis {
    /// Any Error-severity findings? Such kernels are rejected by the
    /// pre-trace hook.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// The most severe finding, or `None` if the kernel is clean.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Is the branch at `pc` statically warp-uniform? Returns `false` for
    /// out-of-range pcs, so callers can query unconditionally.
    #[must_use]
    pub fn is_branch_uniform(&self, pc: u32) -> bool {
        self.branch_uniform.get(pc as usize).copied().unwrap_or(false)
    }

    /// Findings at or above `min`, in severity order.
    #[must_use]
    pub fn diagnostics_at_least(&self, min: Severity) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity >= min).collect()
    }
}

/// Runs the full static analysis over `kernel`.
///
/// [`Kernel::validate`] runs first: a kernel that fails basic validation
/// gets a single `invalid-kernel` Error and empty fact tables (every
/// `branch_uniform` entry `false`), so downstream consumers degrade to the
/// conservative path.
#[must_use]
pub fn analyze(kernel: &Kernel) -> KernelAnalysis {
    let _span = gpumech_obs::span!("analyze.lint.kernel", name = kernel.name.as_str());
    let n = kernel.insts.len();
    if let Err(e) = kernel.validate() {
        gpumech_obs::counter!("analyze.lint.invalid_kernels", 1u64);
        return KernelAnalysis {
            kernel_name: kernel.name.clone(),
            diagnostics: vec![Diagnostic::global(
                Severity::Error,
                "invalid-kernel",
                format!("kernel failed validation: {e}"),
            )],
            branch_uniform: vec![false; n],
            coalescing: vec![None; n],
            metrics: KernelMetrics { insts: n as u32, ..KernelMetrics::default() },
        };
    }

    let cfg = Cfg::build(kernel);
    let mut diagnostics = cfg::verify(kernel, &cfg);
    let df = dataflow::run(kernel, &cfg);
    diagnostics.extend(df.diagnostics);
    let dv = divergence::run(kernel, &cfg, df.written, df.maybe_uninit_reads);
    diagnostics.extend(dv.diagnostics.iter().cloned());
    let metrics = metrics::compute(kernel, &cfg, &dv, df.written, df.max_live);

    diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.pc.cmp(&b.pc)));

    gpumech_obs::counter!("analyze.lint.kernels", 1u64);
    gpumech_obs::counter!("analyze.lint.diagnostics", diagnostics.len() as u64);

    KernelAnalysis {
        kernel_name: kernel.name.clone(),
        diagnostics,
        branch_uniform: dv.branch_uniform,
        coalescing: dv.mem,
        metrics,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::kernel::{BranchCond, Reg};
    use gpumech_isa::{AddrPattern, InstKind, KernelBuilder, Operand, ValueOp};

    fn divergent_if_kernel() -> Kernel {
        let mut b = KernelBuilder::new("div-if");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(8)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Lane, Operand::Imm(1)]);
        b.if_end();
        b.finish(vec![])
    }

    #[test]
    fn clean_kernel_analyzes_without_errors() {
        let analysis = analyze(&divergent_if_kernel());
        assert!(!analysis.has_errors());
        assert_eq!(analysis.metrics.divergent_branches, 1);
        assert_eq!(analysis.kernel_name, "div-if");
    }

    #[test]
    fn corrupted_reconvergence_pc_is_rejected() {
        let mut k = divergent_if_kernel();
        let branch_pc =
            k.insts.iter().position(|i| i.kind == InstKind::Branch).expect("has a branch");
        // Point reconvergence at the instruction after the branch instead of
        // the true post-dominator. Still passes validate (in range), but the
        // SIMT stack would re-merge mid-arm.
        k.insts[branch_pc].reconv = Some(branch_pc as u32 + 1);
        assert!(k.validate().is_ok(), "corruption must survive basic validation");
        let analysis = analyze(&k);
        assert!(analysis.has_errors());
        assert!(
            analysis.diagnostics.iter().any(|d| d.code == "reconv-mismatch"
                && d.severity == Severity::Error
                && d.pc == Some(branch_pc as u32)),
            "diagnostics: {:?}",
            analysis.diagnostics
        );
    }

    #[test]
    fn read_before_write_is_rejected() {
        let mut b = KernelBuilder::new("uninit");
        let _ = b.alu(ValueOp::Add, &[Operand::Reg(Reg(17)), Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let analysis = analyze(&k);
        assert!(analysis.has_errors());
        assert!(analysis.diagnostics.iter().any(|d| d.code == "read-before-write"));
    }

    #[test]
    fn invalid_kernel_gets_single_error_and_empty_facts() {
        let k = Kernel { name: "bad".into(), insts: vec![], params: vec![] };
        let analysis = analyze(&k);
        assert!(analysis.has_errors());
        assert_eq!(analysis.diagnostics.len(), 1);
        assert_eq!(analysis.diagnostics[0].code, "invalid-kernel");
        assert!(analysis.branch_uniform.is_empty());
    }

    #[test]
    fn irreducible_cfg_is_rejected() {
        // Jump into the middle of a loop body from outside it.
        use gpumech_isa::StaticInst;
        let jump = |target: u32| StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![],
            target: Some(target),
            cond: BranchCond::Always,
            reconv: None,
        };
        let cond_jump = |target: u32, reconv: u32, cond: Operand| StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![cond],
            target: Some(target),
            cond: BranchCond::IfNonZero,
            reconv: Some(reconv),
        };
        let alu = StaticInst {
            kind: InstKind::IntAlu,
            op: ValueOp::Mov,
            dst: Some(Reg(0)),
            srcs: vec![Operand::Imm(1)],
            target: None,
            cond: BranchCond::Always,
            reconv: None,
        };
        let k = Kernel {
            name: "irreducible".into(),
            insts: vec![
                // 0: enter loop at pc 2 (skipping header at 1)
                jump(2),
                // 1: loop header
                alu.clone(),
                // 2: loop body (second entry point)
                alu,
                // 3: back edge to header at 1 — header does not dominate it
                cond_jump(1, 4, Operand::Param(0)),
                // 4: exit
                StaticInst {
                    kind: InstKind::Exit,
                    op: ValueOp::Mov,
                    dst: None,
                    srcs: vec![],
                    target: None,
                    cond: BranchCond::Always,
                    reconv: None,
                },
            ],
            params: vec![1],
        };
        assert!(k.validate().is_ok());
        let analysis = analyze(&k);
        assert!(
            analysis.diagnostics.iter().any(|d| d.code == "irreducible-cfg"),
            "diagnostics: {:?}",
            analysis.diagnostics
        );
    }

    #[test]
    fn unreachable_code_is_a_warning() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Mov, &[Operand::Imm(1)]);
        let mut k = b.finish(vec![]);
        // Prepend a jump that skips the mov, making it dead.
        k.insts.insert(
            0,
            gpumech_isa::StaticInst {
                kind: InstKind::Branch,
                op: ValueOp::Mov,
                dst: None,
                srcs: vec![],
                target: Some(2),
                cond: BranchCond::Always,
                reconv: None,
            },
        );
        // Layout now: 0 jump->2, 1 mov (dead), 2 exit.
        assert!(k.validate().is_ok());
        let analysis = analyze(&k);
        let warn = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "unreachable-code")
            .expect("expected unreachable-code warning");
        assert_eq!(warn.severity, Severity::Warning);
        assert_eq!(warn.pc, Some(1));
        assert!(!analysis.has_errors());
    }

    #[test]
    fn analysis_serializes_to_json_and_back() {
        let mut b = KernelBuilder::new("roundtrip");
        let v = b.load_pattern(AddrPattern::Strided { base: 0, stride_bytes: 512 });
        b.store_pattern(AddrPattern::Coalesced { base: 1 << 30, elem_bytes: 8 }, Operand::Reg(v));
        let k = b.finish(vec![]);
        let analysis = analyze(&k);
        let json = serde_json::to_string(&analysis).expect("serialize");
        let back: KernelAnalysis = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.kernel_name, analysis.kernel_name);
        assert_eq!(back.branch_uniform, analysis.branch_uniform);
        assert_eq!(back.coalescing, analysis.coalescing);
        assert_eq!(back.metrics, analysis.metrics);
        assert_eq!(back.diagnostics, analysis.diagnostics);
    }
}
