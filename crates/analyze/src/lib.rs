//! Whole-kernel static analysis and linting over the GPUMech kernel IR.
//!
//! GPUMech's accuracy rests on the functional trace being *structurally
//! correct*: the SIMT reconvergence stack must re-merge lanes exactly at
//! each branch's immediate post-dominator, and the interval model's memory
//! statistics assume the coalescer sees the access pattern the kernel was
//! designed to produce. This crate checks those properties *before* a
//! single instruction is traced, and computes facts the tracer can exploit:
//!
//! * [`cfg::Cfg`] — instruction-level CFG with dominators/post-dominators;
//!   verifies every conditional branch's stored reconvergence PC is the
//!   true immediate post-dominator and that control flow is reducible;
//! * register dataflow — definite read-before-write (Error),
//!   path-dependent uninitialized reads (Warning), unread values (Info),
//!   and register pressure;
//! * [`divergence`] — classifies each branch warp-uniform vs potentially
//!   divergent and each global memory access by [`CoalesceClass`], with a
//!   sound per-warp bound on coalescer requests;
//! * [`KernelMetrics`] — static instruction mix and summary counts;
//! * verification passes — barrier-divergence proof obligations (Error),
//!   cross-warp shared-memory race detection under a two-thread
//!   abstraction (Warning), and a static [`BankModel`] bank-conflict
//!   degree per shared access (Warning); see DESIGN.md "Static
//!   verification".
//!
//! The single entry point is [`analyze`]; the result carries
//! [`Diagnostic`]s (with [`Severity`] levels) plus the per-pc fact tables.
//! `gpumech-trace` runs it as a pre-trace hook: kernels with Error-level
//! findings are rejected, and statically uniform branches skip the per-lane
//! reconvergence-stack work. The `gpumech lint` CLI subcommand exposes the
//! same analysis to humans and CI.
//!
//! # Example
//!
//! ```
//! use gpumech_isa::{AddrPattern, KernelBuilder, Operand, ValueOp};
//!
//! let mut b = KernelBuilder::new("axpy");
//! let x = b.load_pattern(AddrPattern::Coalesced { base: 1 << 32, elem_bytes: 4 });
//! let y = b.alu(ValueOp::Add, &[Operand::Reg(x), Operand::Param(0)]);
//! b.store_pattern(AddrPattern::Coalesced { base: 2 << 32, elem_bytes: 4 }, Operand::Reg(y));
//! let kernel = b.finish(vec![3]);
//!
//! let analysis = gpumech_analyze::analyze(&kernel);
//! assert!(!analysis.has_errors());
//! assert_eq!(analysis.metrics.coalesced_accesses, 2);
//! ```

pub mod banks;
mod barrier;
pub mod cfg;
mod dataflow;
pub mod diag;
pub mod divergence;
mod metrics;
mod race;

use gpumech_isa::Kernel;
use serde::{Deserialize, Serialize};

pub use banks::{BankModel, SharedAccessFact};
pub use cfg::Cfg;
pub use diag::{Diagnostic, RejectReason, Severity};
pub use divergence::{AbsVal, CoalesceClass, MemAccess};
pub use metrics::KernelMetrics;
pub use race::RacePair;

/// Everything the analyzer learned about one kernel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelAnalysis {
    /// Name of the analyzed kernel.
    pub kernel_name: String,
    /// All findings, sorted by (descending severity, pc).
    pub diagnostics: Vec<Diagnostic>,
    /// Per-pc: `true` if the instruction is a branch that provably cannot
    /// split the warp (uniform condition or unconditional). `false` for
    /// non-branches and whenever the analysis could not prove uniformity.
    pub branch_uniform: Vec<bool>,
    /// Per-pc address facts for global memory instructions.
    pub coalescing: Vec<Option<MemAccess>>,
    /// Static bank-conflict verdicts for shared-memory instructions, in
    /// ascending pc order.
    pub shared_accesses: Vec<SharedAccessFact>,
    /// Pairs of shared-memory accesses that may race across warps within
    /// one barrier interval, sorted and deduplicated.
    pub race_pairs: Vec<RacePair>,
    /// Static summary metrics.
    pub metrics: KernelMetrics,
}

impl KernelAnalysis {
    /// Any Error-severity findings? Such kernels are rejected by the
    /// pre-trace hook.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// The most severe finding, or `None` if the kernel is clean.
    #[must_use]
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Is the branch at `pc` statically warp-uniform? Returns `false` for
    /// out-of-range pcs, so callers can query unconditionally.
    #[must_use]
    pub fn is_branch_uniform(&self, pc: u32) -> bool {
        self.branch_uniform.get(pc as usize).copied().unwrap_or(false)
    }

    /// Findings at or above `min`, in severity order.
    #[must_use]
    pub fn diagnostics_at_least(&self, min: Severity) -> Vec<&Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity >= min).collect()
    }

    /// Static bank-conflict verdict for the shared-memory instruction at
    /// `pc`, if there is one.
    #[must_use]
    pub fn shared_fact(&self, pc: u32) -> Option<&SharedAccessFact> {
        self.shared_accesses.iter().find(|f| f.pc == pc)
    }

    /// Why the pre-trace hook rejects this kernel, or `None` if it is
    /// accepted. Barrier divergence is reported preferentially: it is the
    /// one defect class that deadlocks real hardware rather than merely
    /// invalidating the model.
    #[must_use]
    pub fn reject_reason(&self) -> Option<RejectReason> {
        if !self.has_errors() {
            return None;
        }
        let barrier = self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error && d.code == "barrier-divergence");
        Some(if barrier { RejectReason::BarrierDivergence } else { RejectReason::Structural })
    }
}

/// Runs the full static analysis over `kernel`.
///
/// [`Kernel::validate`] runs first: a kernel that fails basic validation
/// gets a single `invalid-kernel` Error and empty fact tables (every
/// `branch_uniform` entry `false`), so downstream consumers degrade to the
/// conservative path.
#[must_use]
pub fn analyze(kernel: &Kernel) -> KernelAnalysis {
    analyze_with_banks(kernel, &BankModel::default())
}

/// [`analyze`] with an explicit shared-memory bank geometry (e.g. built
/// [`From`] a [`gpumech_isa::SimConfig`]) instead of the default
/// 32-bank × 4 B model.
#[must_use]
pub fn analyze_with_banks(kernel: &Kernel, bank_model: &BankModel) -> KernelAnalysis {
    let _span = gpumech_obs::span!("analyze.lint.kernel", name = kernel.name.as_str());
    let n = kernel.insts.len();
    if let Err(e) = kernel.validate() {
        gpumech_obs::counter!("analyze.lint.invalid_kernels", 1u64);
        return KernelAnalysis {
            kernel_name: kernel.name.clone(),
            diagnostics: vec![Diagnostic::global(
                Severity::Error,
                "invalid-kernel",
                format!("kernel failed validation: {e}"),
            )],
            branch_uniform: vec![false; n],
            coalescing: vec![None; n],
            shared_accesses: Vec::new(),
            race_pairs: Vec::new(),
            metrics: KernelMetrics { insts: n as u32, ..KernelMetrics::default() },
        };
    }

    let cfg = Cfg::build(kernel);
    let mut diagnostics = cfg::verify(kernel, &cfg);
    let df = dataflow::run(kernel, &cfg);
    diagnostics.extend(df.diagnostics);
    let dv = divergence::run(kernel, &cfg, df.written, df.maybe_uninit_reads);
    diagnostics.extend(dv.diagnostics.iter().cloned());

    let barrier_diags = barrier::run(kernel, &cfg, &dv.branch_uniform);
    let races = race::run(kernel, &cfg, &dv.branch_uniform, df.written, df.maybe_uninit_reads);
    let (shared_accesses, bank_diags) = banks::run(kernel, &cfg, &races.shapes, bank_model);

    let mut metrics = metrics::compute(kernel, &cfg, &dv, df.written, df.max_live);
    metrics.divergent_syncs = barrier_diags.len() as u32;
    metrics.race_pairs = races.pairs.len() as u32;
    metrics.bank_conflicted_accesses =
        shared_accesses.iter().filter(|f| f.bank_degree >= 2).count() as u32;
    metrics.max_bank_degree =
        shared_accesses.iter().map(|f| f.bank_degree).max().unwrap_or(0);

    gpumech_obs::counter!("analyze.verify.barrier_errors", barrier_diags.len() as u64);
    gpumech_obs::counter!("analyze.verify.race_pairs", races.pairs.len() as u64);
    gpumech_obs::counter!("analyze.bank.accesses", shared_accesses.len() as u64);
    gpumech_obs::counter!(
        "analyze.bank.conflicted",
        u64::from(metrics.bank_conflicted_accesses)
    );

    diagnostics.extend(barrier_diags);
    diagnostics.extend(races.diagnostics);
    diagnostics.extend(bank_diags);
    diagnostics.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.pc.cmp(&b.pc)));

    gpumech_obs::counter!("analyze.lint.kernels", 1u64);
    gpumech_obs::counter!("analyze.lint.diagnostics", diagnostics.len() as u64);

    KernelAnalysis {
        kernel_name: kernel.name.clone(),
        diagnostics,
        branch_uniform: dv.branch_uniform,
        coalescing: dv.mem,
        shared_accesses,
        race_pairs: races.pairs,
        metrics,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::kernel::{BranchCond, Reg};
    use gpumech_isa::{AddrPattern, InstKind, KernelBuilder, Operand, ValueOp};

    fn divergent_if_kernel() -> Kernel {
        let mut b = KernelBuilder::new("div-if");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(8)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Lane, Operand::Imm(1)]);
        b.if_end();
        b.finish(vec![])
    }

    #[test]
    fn clean_kernel_analyzes_without_errors() {
        let analysis = analyze(&divergent_if_kernel());
        assert!(!analysis.has_errors());
        assert_eq!(analysis.metrics.divergent_branches, 1);
        assert_eq!(analysis.kernel_name, "div-if");
    }

    #[test]
    fn corrupted_reconvergence_pc_is_rejected() {
        let mut k = divergent_if_kernel();
        let branch_pc =
            k.insts.iter().position(|i| i.kind == InstKind::Branch).expect("has a branch");
        // Point reconvergence at the instruction after the branch instead of
        // the true post-dominator. Still passes validate (in range), but the
        // SIMT stack would re-merge mid-arm.
        k.insts[branch_pc].reconv = Some(branch_pc as u32 + 1);
        assert!(k.validate().is_ok(), "corruption must survive basic validation");
        let analysis = analyze(&k);
        assert!(analysis.has_errors());
        assert!(
            analysis.diagnostics.iter().any(|d| d.code == "reconv-mismatch"
                && d.severity == Severity::Error
                && d.pc == Some(branch_pc as u32)),
            "diagnostics: {:?}",
            analysis.diagnostics
        );
    }

    #[test]
    fn read_before_write_is_rejected() {
        let mut b = KernelBuilder::new("uninit");
        let _ = b.alu(ValueOp::Add, &[Operand::Reg(Reg(17)), Operand::Imm(1)]);
        let k = b.finish(vec![]);
        let analysis = analyze(&k);
        assert!(analysis.has_errors());
        assert!(analysis.diagnostics.iter().any(|d| d.code == "read-before-write"));
    }

    #[test]
    fn invalid_kernel_gets_single_error_and_empty_facts() {
        let k = Kernel { name: "bad".into(), insts: vec![], params: vec![] };
        let analysis = analyze(&k);
        assert!(analysis.has_errors());
        assert_eq!(analysis.diagnostics.len(), 1);
        assert_eq!(analysis.diagnostics[0].code, "invalid-kernel");
        assert!(analysis.branch_uniform.is_empty());
    }

    #[test]
    fn irreducible_cfg_is_rejected() {
        // Jump into the middle of a loop body from outside it.
        use gpumech_isa::StaticInst;
        let jump = |target: u32| StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![],
            target: Some(target),
            cond: BranchCond::Always,
            reconv: None,
        };
        let cond_jump = |target: u32, reconv: u32, cond: Operand| StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![cond],
            target: Some(target),
            cond: BranchCond::IfNonZero,
            reconv: Some(reconv),
        };
        let alu = StaticInst {
            kind: InstKind::IntAlu,
            op: ValueOp::Mov,
            dst: Some(Reg(0)),
            srcs: vec![Operand::Imm(1)],
            target: None,
            cond: BranchCond::Always,
            reconv: None,
        };
        let k = Kernel {
            name: "irreducible".into(),
            insts: vec![
                // 0: enter loop at pc 2 (skipping header at 1)
                jump(2),
                // 1: loop header
                alu.clone(),
                // 2: loop body (second entry point)
                alu,
                // 3: back edge to header at 1 — header does not dominate it
                cond_jump(1, 4, Operand::Param(0)),
                // 4: exit
                StaticInst {
                    kind: InstKind::Exit,
                    op: ValueOp::Mov,
                    dst: None,
                    srcs: vec![],
                    target: None,
                    cond: BranchCond::Always,
                    reconv: None,
                },
            ],
            params: vec![1],
        };
        assert!(k.validate().is_ok());
        let analysis = analyze(&k);
        assert!(
            analysis.diagnostics.iter().any(|d| d.code == "irreducible-cfg"),
            "diagnostics: {:?}",
            analysis.diagnostics
        );
    }

    #[test]
    fn unreachable_code_is_a_warning() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Mov, &[Operand::Imm(1)]);
        let mut k = b.finish(vec![]);
        // Prepend a jump that skips the mov, making it dead.
        k.insts.insert(
            0,
            gpumech_isa::StaticInst {
                kind: InstKind::Branch,
                op: ValueOp::Mov,
                dst: None,
                srcs: vec![],
                target: Some(2),
                cond: BranchCond::Always,
                reconv: None,
            },
        );
        // Layout now: 0 jump->2, 1 mov (dead), 2 exit.
        assert!(k.validate().is_ok());
        let analysis = analyze(&k);
        let warn = analysis
            .diagnostics
            .iter()
            .find(|d| d.code == "unreachable-code")
            .expect("expected unreachable-code warning");
        assert_eq!(warn.severity, Severity::Warning);
        assert_eq!(warn.pc, Some(1));
        assert!(!analysis.has_errors());
    }

    #[test]
    fn analysis_serializes_to_json_and_back() {
        let mut b = KernelBuilder::new("roundtrip");
        let v = b.load_pattern(AddrPattern::Strided { base: 0, stride_bytes: 512 });
        b.store_pattern(AddrPattern::Coalesced { base: 1 << 30, elem_bytes: 8 }, Operand::Reg(v));
        let k = b.finish(vec![]);
        let analysis = analyze(&k);
        let json = serde_json::to_string(&analysis).expect("serialize");
        let back: KernelAnalysis = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.kernel_name, analysis.kernel_name);
        assert_eq!(back.branch_uniform, analysis.branch_uniform);
        assert_eq!(back.coalescing, analysis.coalescing);
        assert_eq!(back.shared_accesses, analysis.shared_accesses);
        assert_eq!(back.race_pairs, analysis.race_pairs);
        assert_eq!(back.metrics, analysis.metrics);
        assert_eq!(back.diagnostics, analysis.diagnostics);
    }

    #[test]
    fn verification_facts_surface_in_the_analysis() {
        use gpumech_isa::MemSpace;
        // shared[lane·128] store: 32-way bank conflict and a cross-warp
        // W/W self-race; plus a divergent barrier.
        let mut b = KernelBuilder::new("defective");
        let off = b.alu(ValueOp::Mul, &[Operand::Lane, Operand::Imm(128)]);
        let v = b.alu(ValueOp::Mov, &[Operand::Imm(1)]);
        b.store(MemSpace::Shared, Operand::Reg(off), Operand::Reg(v));
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(16)]);
        b.if_begin(Operand::Reg(c));
        b.sync();
        b.if_end();
        let k = b.finish(vec![]);
        let analysis = analyze(&k);
        assert!(analysis.has_errors());
        assert_eq!(analysis.reject_reason(), Some(RejectReason::BarrierDivergence));
        assert_eq!(analysis.metrics.divergent_syncs, 1);
        assert_eq!(analysis.metrics.max_bank_degree, 32);
        assert_eq!(analysis.metrics.bank_conflicted_accesses, 1);
        assert_eq!(analysis.metrics.race_pairs, 1);
        let fact = analysis.shared_fact(2).expect("store fact");
        assert!(fact.store);
        assert!(fact.exact);
        for code in ["barrier-divergence", "shared-race", "bank-conflict"] {
            assert!(
                analysis.diagnostics.iter().any(|d| d.code == code),
                "missing {code}: {:?}",
                analysis.diagnostics
            );
        }
    }
}
