//! Static per-kernel metrics: instruction mix, register pressure, and
//! divergence/coalescing summaries.

use gpumech_isa::kernel::BranchCond;
use gpumech_isa::{InstKind, Kernel, MemSpace};
use serde::{Deserialize, Serialize};

use crate::cfg::Cfg;
use crate::divergence::{CoalesceClass, Divergence};

/// Summary statistics the linter reports per kernel.
///
/// These are *static* counts over the kernel IR (one per static
/// instruction), not dynamic execution counts — loops count once.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KernelMetrics {
    /// Total static instructions.
    pub insts: u32,
    /// Static instructions reachable from the entry.
    pub reachable_insts: u32,
    /// Integer-ALU instructions.
    pub int_alu: u32,
    /// Floating-point instructions (add/mul/fma/div latency classes).
    pub fp: u32,
    /// Special-function-unit instructions.
    pub sfu: u32,
    /// Global-memory loads.
    pub global_loads: u32,
    /// Global-memory stores.
    pub global_stores: u32,
    /// Shared-memory accesses (loads and stores).
    pub shared_accesses: u32,
    /// Branch instructions (conditional and unconditional).
    pub branches: u32,
    /// Conditional branches that may diverge the warp.
    pub divergent_branches: u32,
    /// Barrier instructions.
    pub syncs: u32,
    /// Global accesses predicted [`CoalesceClass::Broadcast`].
    pub broadcast_accesses: u32,
    /// Global accesses predicted [`CoalesceClass::Coalesced`].
    pub coalesced_accesses: u32,
    /// Global accesses predicted [`CoalesceClass::Strided`].
    pub strided_accesses: u32,
    /// Global accesses predicted [`CoalesceClass::Scattered`].
    pub scattered_accesses: u32,
    /// Distinct registers written by reachable code.
    pub regs_written: u32,
    /// Written registers whose value is classified lane-divergent.
    pub divergent_regs: u32,
    /// Maximum simultaneously live registers (register pressure).
    pub max_live_regs: u32,
    /// Barriers reachable under divergent control flow
    /// (`barrier-divergence` errors).
    pub divergent_syncs: u32,
    /// Cross-warp may-race pairs of shared accesses within one barrier
    /// interval.
    pub race_pairs: u32,
    /// Shared accesses with a predicted bank-conflict degree of 2 or more.
    pub bank_conflicted_accesses: u32,
    /// Largest predicted bank-conflict degree over all shared accesses
    /// (1 = conflict-free; 0 when the kernel has no shared accesses).
    pub max_bank_degree: u32,
}

pub(crate) fn compute(
    kernel: &Kernel,
    cfg: &Cfg,
    dv: &Divergence,
    written: u64,
    max_live: u32,
) -> KernelMetrics {
    let mut m = KernelMetrics {
        insts: kernel.insts.len() as u32,
        reachable_insts: cfg.reachable.iter().filter(|&&r| r).count() as u32,
        regs_written: written.count_ones(),
        divergent_regs: (0..64)
            .filter(|&r| written >> r & 1 != 0 && dv.reg_values[r] == crate::AbsVal::Divergent)
            .count() as u32,
        max_live_regs: max_live,
        ..KernelMetrics::default()
    };
    for (pc, inst) in kernel.insts.iter().enumerate() {
        match inst.kind {
            InstKind::IntAlu => m.int_alu += 1,
            InstKind::FpAdd | InstKind::FpMul | InstKind::FpFma | InstKind::FpDiv => m.fp += 1,
            InstKind::Sfu => m.sfu += 1,
            InstKind::Load(MemSpace::Global) => m.global_loads += 1,
            InstKind::Store(MemSpace::Global) => m.global_stores += 1,
            InstKind::Load(MemSpace::Shared) | InstKind::Store(MemSpace::Shared) => {
                m.shared_accesses += 1;
            }
            InstKind::Branch => {
                m.branches += 1;
                if inst.cond != BranchCond::Always && !dv.branch_uniform[pc] {
                    m.divergent_branches += 1;
                }
            }
            InstKind::Sync => m.syncs += 1,
            InstKind::Exit => {}
        }
        if let Some(access) = dv.mem[pc] {
            match access.class {
                CoalesceClass::Broadcast => m.broadcast_accesses += 1,
                CoalesceClass::Coalesced => m.coalesced_accesses += 1,
                CoalesceClass::Strided(_) => m.strided_accesses += 1,
                CoalesceClass::Scattered => m.scattered_accesses += 1,
            }
        }
    }
    m
}
