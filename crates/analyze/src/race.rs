//! Shared-memory race detection under a two-thread abstraction.
//!
//! GPUVerify-style reasoning specialized to this IR: two *abstract
//! threads* — lane `l1` of warp `w1` and lane `l2` of warp `w2` with
//! `w1 != w2`, both in the same thread block — execute the kernel, and a
//! race is a pair of shared-memory accesses (at least one a store) that
//! can touch the same byte within the same *barrier interval*.
//!
//! Two deliberate semantic choices, documented in DESIGN.md:
//!
//! * **Intra-warp pairs never race.** The functional engine executes a
//!   warp in lockstep, one whole instruction at a time, so two accesses
//!   by lanes of the same warp are totally ordered (classic pre-Volta
//!   warp-synchronous semantics — exactly what the tracer implements).
//! * **Cross-warp pairs are unordered between barriers.** Warps of one
//!   block progress independently; only `Sync` aligns them. Any
//!   conflicting cross-warp pair inside one barrier interval is reported.
//!
//! Addresses are lifted into a *block-affine shape*
//! `base + kl·lane + kw·warp_in_block` ([`Shape`]); the lane coefficient
//! distinguishes `Operand::Lane` (which repeats across warps — the classic
//! reduction-tree race) from `Operand::TidInBlock` (which does not). The
//! may-alias test enumerates both abstract threads exactly when the base
//! is known and degrades to "may alias" when it is not — conservative in
//! the detection direction.

use std::collections::HashMap;

use gpumech_isa::kernel::{BranchCond, NUM_REGS};
use gpumech_isa::{InstKind, Kernel, MemSpace, Operand, ValueOp, WARP_SIZE};
use serde::{Deserialize, Serialize};

use crate::cfg::Cfg;
use crate::diag::{Diagnostic, Severity};

/// Warps-per-block bound the two-thread alias solver enumerates (the
/// CUDA architectural ceiling of 1024 threads per block).
const MAX_WARPS_PER_BLOCK: u64 = 32;

/// Symbolic per-thread shared-memory address: how the address varies over
/// the lane index and the warp-in-block index of the accessing thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Shape {
    /// `base + kl·lane + kw·warp_in_block` (wrapping mod 2^64).
    /// `base = None` means an unknown warp-uniform base that may differ
    /// between the two abstract threads (e.g. a loop-carried offset).
    Affine {
        /// Known base byte offset, when the whole chain is constant.
        base: Option<u64>,
        /// Lane coefficient.
        kl: u64,
        /// Warp-in-block coefficient.
        kw: u64,
    },
    /// No per-thread structure derivable.
    Top,
}

impl Shape {
    fn konst(c: u64) -> Self {
        Shape::Affine { base: Some(c), kl: 0, kw: 0 }
    }

    fn unknown_uniform() -> Self {
        Shape::Affine { base: None, kl: 0, kw: 0 }
    }

    /// Same value in every lane of a warp (no lane/warp variation)?
    fn is_uniform(self) -> bool {
        matches!(self, Shape::Affine { kl: 0, kw: 0, .. })
    }

    fn join(self, other: Self) -> Self {
        match (self, other) {
            (a, b) if a == b => a,
            (
                Shape::Affine { base: b1, kl: k1, kw: w1 },
                Shape::Affine { base: b2, kl: k2, kw: w2 },
            ) if k1 == k2 && w1 == w2 => {
                Shape::Affine { base: if b1 == b2 { b1 } else { None }, kl: k1, kw: w1 }
            }
            _ => Shape::Top,
        }
    }

    /// Multiplies the whole shape by a known constant.
    fn scale(self, c: u64) -> Self {
        match self {
            Shape::Affine { base, kl, kw } => Shape::Affine {
                base: base.map(|b| b.wrapping_mul(c)),
                kl: kl.wrapping_mul(c),
                kw: kw.wrapping_mul(c),
            },
            Shape::Top => Shape::Top,
        }
    }

    fn add(self, other: Self) -> Self {
        match (self, other) {
            (
                Shape::Affine { base: b1, kl: k1, kw: w1 },
                Shape::Affine { base: b2, kl: k2, kw: w2 },
            ) => Shape::Affine {
                base: match (b1, b2) {
                    (Some(a), Some(b)) => Some(a.wrapping_add(b)),
                    _ => None,
                },
                kl: k1.wrapping_add(k2),
                kw: w1.wrapping_add(w2),
            },
            _ => Shape::Top,
        }
    }

    fn neg(self) -> Self {
        self.scale(u64::MAX) // ·(−1 mod 2^64)
    }
}

/// Shape of a raw operand. Mirrors the engine's special-register values:
/// `tid = block·tpb + 32·warp_in_block + lane`, whose block term is an
/// unknown uniform here (it cancels only for same-warp comparisons, which
/// the race analysis never makes).
fn seed(op: Operand, values: &[Option<Shape>; NUM_REGS]) -> Option<Shape> {
    Some(match op {
        Operand::Reg(r) => return values[r.0 as usize],
        Operand::Imm(v) => Shape::konst(v),
        Operand::Lane => Shape::Affine { base: Some(0), kl: 1, kw: 0 },
        Operand::WarpInBlock => Shape::Affine { base: Some(0), kl: 0, kw: 1 },
        Operand::TidInBlock => Shape::Affine { base: Some(0), kl: 1, kw: 32 },
        Operand::Tid => Shape::Affine { base: None, kl: 1, kw: 32 },
        Operand::Block | Operand::Param(_) => Shape::unknown_uniform(),
    })
}

/// Abstract transfer function over [`Shape`], mirroring
/// [`crate::divergence`]'s transfer on the richer domain.
fn transfer(op: ValueOp, args: &[Shape]) -> Shape {
    if args.contains(&Shape::Top) {
        return Shape::Top;
    }
    let all_uniform = args.iter().all(|a| a.is_uniform());
    match op {
        ValueOp::Mov => args.first().copied().unwrap_or_else(|| Shape::konst(0)),
        ValueOp::Add => args.iter().copied().fold(Shape::konst(0), Shape::add),
        ValueOp::Sub => args[0].add(args[1].neg()),
        ValueOp::Mul => {
            let varying = args.iter().filter(|a| !a.is_uniform()).count();
            match varying {
                0 => match args.iter().try_fold(1u64, |p, a| match a {
                    Shape::Affine { base: Some(c), kl: 0, kw: 0 } => Some(p.wrapping_mul(*c)),
                    _ => None,
                }) {
                    Some(prod) => Shape::konst(prod),
                    None => Shape::unknown_uniform(),
                },
                1 if args
                    .iter()
                    .all(|a| !a.is_uniform() || matches!(a, Shape::Affine { base: Some(_), .. })) =>
                {
                    let c = args.iter().fold(1u64, |p, a| match a {
                        Shape::Affine { base: Some(c), kl: 0, kw: 0 } => p.wrapping_mul(*c),
                        _ => p,
                    });
                    args.iter().copied().find(|a| !a.is_uniform()).map_or(Shape::Top, |v| v.scale(c))
                }
                _ => Shape::Top,
            }
        }
        ValueOp::Shl => match args[1] {
            // a << s = a·2^s (wrapping), so the shape scales.
            Shape::Affine { base: Some(s), kl: 0, kw: 0 } => args[0].scale(1u64 << (s & 63)),
            _ if all_uniform => Shape::unknown_uniform(),
            _ => Shape::Top,
        },
        ValueOp::Select => match args[0] {
            Shape::Affine { base: Some(c), kl: 0, kw: 0 } => args[if c != 0 { 1 } else { 2 }],
            Shape::Affine { kl: 0, kw: 0, .. } => args[1].join(args[2]),
            _ => Shape::Top,
        },
        ValueOp::Div
        | ValueOp::Rem
        | ValueOp::And
        | ValueOp::Xor
        | ValueOp::Shr
        | ValueOp::Min
        | ValueOp::Max
        | ValueOp::CmpLt
        | ValueOp::CmpEq
        | ValueOp::CmpNe
        | ValueOp::Hash => {
            if all_uniform {
                Shape::unknown_uniform()
            } else {
                Shape::Top
            }
        }
    }
}

/// A pair of shared-memory access PCs that may race across warps within
/// one barrier interval (`a <= b`; `a == b` is a self-race, e.g. every
/// warp storing to `shared[lane]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RacePair {
    /// Lower PC of the pair.
    pub a: u32,
    /// Higher PC of the pair.
    pub b: u32,
}

/// Results of the race pass.
pub(crate) struct Races {
    /// Per-pc address shape for reachable shared accesses.
    pub(crate) shapes: Vec<Option<Shape>>,
    /// May-racing pairs, sorted and deduplicated.
    pub(crate) pairs: Vec<RacePair>,
    /// `shared-race` warnings, one per pair.
    pub(crate) diagnostics: Vec<Diagnostic>,
}

/// Global flow-insensitive fixpoint over [`Shape`] with the same
/// control-dependence taint rule as the divergence pass: a write under a
/// possibly partial mask may leave lanes disagreeing about which write
/// they observed, so it is forced to [`Shape::Top`].
fn global_fixpoint(
    kernel: &Kernel,
    cfg: &Cfg,
    branch_uniform: &[bool],
    written: u64,
    maybe_uninit_reads: u64,
) -> [Option<Shape>; NUM_REGS] {
    let n = kernel.insts.len();
    let mut tainted = vec![false; n];
    for (pc, inst) in kernel.insts.iter().enumerate() {
        if inst.kind != InstKind::Branch
            || inst.cond == BranchCond::Always
            || !cfg.reachable[pc]
            || branch_uniform[pc]
        {
            continue;
        }
        let Some(reconv) = inst.reconv else { continue };
        for v in cfg.region_until(&cfg.succs[pc], reconv) {
            tainted[v as usize] = true;
        }
    }

    let mut values: [Option<Shape>; NUM_REGS] = [None; NUM_REGS];
    for (r, v) in values.iter_mut().enumerate() {
        let bit = 1u64 << r;
        if written & bit == 0 || maybe_uninit_reads & bit != 0 {
            *v = Some(Shape::konst(0));
        }
    }

    loop {
        let mut changed = false;
        for (pc, inst) in kernel.insts.iter().enumerate() {
            if !cfg.reachable[pc] {
                continue;
            }
            let Some(dst) = inst.dst else { continue };
            let args: Option<Vec<Shape>> = inst.srcs.iter().map(|&s| seed(s, &values)).collect();
            let Some(args) = args else { continue };
            let mut result = match inst.kind {
                InstKind::Load(_) => {
                    // A loaded value is a hash of its address: uniform for a
                    // uniform address, structureless otherwise.
                    if args[0].is_uniform() { Shape::unknown_uniform() } else { Shape::Top }
                }
                _ => transfer(inst.op, &args),
            };
            if tainted[pc] {
                result = Shape::Top;
            }
            let slot = &mut values[dst.0 as usize];
            let joined = slot.map_or(result, |old| old.join(result));
            if *slot != Some(joined) {
                *slot = Some(joined);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    values
}

/// Resolves `op` at `pc` with intra-block backward substitution: a
/// definition in the same basic block executes under the same active mask
/// as the access, so every active lane carries exactly that value and the
/// control-dependence taint does not apply to it. Registers defined
/// outside the block fall back to the (tainted) global fixpoint.
fn local_shape(
    kernel: &Kernel,
    cfg: &Cfg,
    values: &[Option<Shape>; NUM_REGS],
    pc: usize,
    op: Operand,
    depth: u32,
) -> Shape {
    let Operand::Reg(r) = op else {
        return seed(op, values).unwrap_or_else(|| Shape::konst(0));
    };
    let fallback = || values[r.0 as usize].unwrap_or_else(|| Shape::konst(0));
    if depth == 0 {
        return fallback();
    }
    // Walk backwards while the predecessor chain is straight-line: the
    // instruction at p has exactly one predecessor, p-1, and that
    // predecessor is not a branch (mask changes only at block boundaries).
    let mut p = pc;
    while p > 0 && cfg.preds[p].as_slice() == [p as u32 - 1] {
        p -= 1;
        let inst = &kernel.insts[p];
        if inst.kind == InstKind::Branch {
            break;
        }
        if inst.dst != Some(r) {
            continue;
        }
        let args: Vec<Shape> = inst
            .srcs
            .iter()
            .map(|&s| local_shape(kernel, cfg, values, p, s, depth - 1))
            .collect();
        return match inst.kind {
            InstKind::Load(_) => {
                if args.first().is_some_and(|a| a.is_uniform()) {
                    Shape::unknown_uniform()
                } else {
                    Shape::Top
                }
            }
            _ => transfer(inst.op, &args),
        };
    }
    fallback()
}

/// One reachable shared-memory access.
struct SharedAccess {
    pc: u32,
    store: bool,
    shape: Shape,
}

/// For each barrier-interval start (the entry plus every `Sync`
/// successor), the set of access indices reachable without crossing
/// another `Sync` — accesses that can share a dynamic barrier interval.
fn interval_cohorts(kernel: &Kernel, cfg: &Cfg, accesses: &[SharedAccess]) -> Vec<Vec<usize>> {
    let n = kernel.insts.len();
    if n == 0 {
        return Vec::new();
    }
    let mut starts: Vec<u32> = vec![0];
    for pc in 0..n {
        if kernel.insts[pc].kind == InstKind::Sync && cfg.reachable[pc] {
            starts.extend(cfg.succs[pc].iter().copied());
        }
    }
    starts.sort_unstable();
    starts.dedup();

    let index_of: HashMap<u32, usize> = accesses.iter().enumerate().map(|(i, a)| (a.pc, i)).collect();
    let mut cohorts = Vec::with_capacity(starts.len());
    for &s in &starts {
        let mut seen = vec![false; n];
        let mut stack = vec![s];
        seen[s as usize] = true;
        let mut members = Vec::new();
        while let Some(v) = stack.pop() {
            if let Some(&i) = index_of.get(&v) {
                members.push(i);
            }
            // A Sync ends the interval: do not traverse past it.
            if kernel.insts[v as usize].kind == InstKind::Sync {
                continue;
            }
            for &succ in &cfg.succs[v as usize] {
                if !seen[succ as usize] {
                    seen[succ as usize] = true;
                    stack.push(succ);
                }
            }
        }
        members.sort_unstable();
        cohorts.push(members);
    }
    cohorts
}

/// Address → warp-membership bitmask over all (lane, warp) thread pairs
/// of one access with a fully known shape.
fn address_warps(base: u64, kl: u64, kw: u64) -> HashMap<u64, u32> {
    let mut map = HashMap::with_capacity(WARP_SIZE * MAX_WARPS_PER_BLOCK as usize);
    for w in 0..MAX_WARPS_PER_BLOCK {
        for l in 0..WARP_SIZE as u64 {
            let addr = base.wrapping_add(kl.wrapping_mul(l)).wrapping_add(kw.wrapping_mul(w));
            *map.entry(addr).or_insert(0u32) |= 1 << w;
        }
    }
    map
}

/// Can the two accesses touch the same byte from *different* warps?
fn may_alias(a: Shape, b: Shape, maps: &mut [Option<HashMap<u64, u32>>], ia: usize, ib: usize) -> bool {
    let (Shape::Affine { base: ba, kl: kla, kw: kwa }, Shape::Affine { base: bb, kl: klb, kw: kwb }) =
        (a, b)
    else {
        return true; // Top: no structure to refute with.
    };
    let (Some(ba), Some(bb)) = (ba, bb) else {
        return true; // Unknown base may place the accesses anywhere.
    };
    if maps[ia].is_none() {
        maps[ia] = Some(address_warps(ba, kla, kwa));
    }
    if maps[ib].is_none() {
        maps[ib] = Some(address_warps(bb, klb, kwb));
    }
    let (ma, mb) = (maps[ia].clone(), &maps[ib]);
    let (Some(ma), Some(mb)) = (ma.as_ref(), mb.as_ref()) else { return true };
    for (addr, wb) in mb {
        if let Some(wa) = ma.get(addr) {
            // Same byte reachable by two different warps unless both sides
            // pin it to the same single warp (intra-warp: ordered, no race).
            if !(wa == wb && wa.count_ones() == 1) {
                return true;
            }
        }
    }
    false
}

pub(crate) fn run(
    kernel: &Kernel,
    cfg: &Cfg,
    branch_uniform: &[bool],
    written: u64,
    maybe_uninit_reads: u64,
) -> Races {
    let n = kernel.insts.len();
    let values = global_fixpoint(kernel, cfg, branch_uniform, written, maybe_uninit_reads);

    let mut shapes: Vec<Option<Shape>> = vec![None; n];
    let mut accesses: Vec<SharedAccess> = Vec::new();
    for (pc, inst) in kernel.insts.iter().enumerate() {
        let store = match inst.kind {
            InstKind::Load(MemSpace::Shared) => false,
            InstKind::Store(MemSpace::Shared) => true,
            _ => continue,
        };
        if !cfg.reachable[pc] {
            continue;
        }
        let shape = local_shape(kernel, cfg, &values, pc, inst.srcs[0], 16);
        shapes[pc] = Some(shape);
        accesses.push(SharedAccess { pc: pc as u32, store, shape });
    }
    if accesses.is_empty() {
        return Races { shapes, pairs: Vec::new(), diagnostics: Vec::new() };
    }

    // Candidate pairs: both members of some barrier-interval cohort.
    let mut candidate = vec![false; accesses.len() * accesses.len()];
    for cohort in interval_cohorts(kernel, cfg, &accesses) {
        for (x, &i) in cohort.iter().enumerate() {
            for &j in &cohort[x..] {
                candidate[i * accesses.len() + j] = true;
            }
        }
    }

    let mut maps: Vec<Option<HashMap<u64, u32>>> = vec![None; accesses.len()];
    let mut pairs = Vec::new();
    let mut diagnostics = Vec::new();
    for i in 0..accesses.len() {
        for j in i..accesses.len() {
            if !candidate[i * accesses.len() + j] {
                continue;
            }
            let (a, b) = (&accesses[i], &accesses[j]);
            if !a.store && !b.store {
                continue;
            }
            if !may_alias(a.shape, b.shape, &mut maps, i, j) {
                continue;
            }
            pairs.push(RacePair { a: a.pc, b: b.pc });
            let kind = if a.store && b.store { "W/W" } else { "R/W" };
            let resolved = matches!(
                (a.shape, b.shape),
                (Shape::Affine { base: Some(_), .. }, Shape::Affine { base: Some(_), .. })
            );
            let what = |x: &SharedAccess| if x.store { "store" } else { "load" };
            diagnostics.push(Diagnostic::at(
                Severity::Warning,
                "shared-race",
                a.pc,
                format!(
                    "possible cross-warp {kind} race: shared {} here and shared {} at pc {} \
                     may touch the same address within one barrier interval{}",
                    what(a),
                    what(b),
                    b.pc,
                    if resolved { "" } else { " (address not statically resolved)" },
                ),
            ));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    Races { shapes, pairs, diagnostics }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::KernelBuilder;

    fn races_of(kernel: &Kernel) -> Races {
        let cfg = Cfg::build(kernel);
        let df = crate::dataflow::run(kernel, &cfg);
        let dv = crate::divergence::run(kernel, &cfg, df.written, df.maybe_uninit_reads);
        run(kernel, &cfg, &dv.branch_uniform, df.written, df.maybe_uninit_reads)
    }

    #[test]
    fn lane_indexed_store_self_races_across_warps() {
        // Every warp writes shared[lane]: warp 0 lane 3 and warp 1 lane 3
        // collide — the classic unsynchronized reduction-tree hazard.
        let mut b = KernelBuilder::new("k");
        let v = b.alu(ValueOp::Mov, &[Operand::Imm(7)]);
        b.store(MemSpace::Shared, Operand::Lane, Operand::Reg(v));
        let k = b.finish(vec![]);
        let r = races_of(&k);
        assert_eq!(r.pairs.len(), 1);
        assert_eq!(r.pairs[0].a, r.pairs[0].b);
        assert!(r.diagnostics.iter().any(|d| d.code == "shared-race"));
    }

    #[test]
    fn block_unique_addresses_do_not_race() {
        // shared[tid_in_block·4] is distinct for every thread of the block.
        let mut b = KernelBuilder::new("k");
        let off = b.alu(ValueOp::Mul, &[Operand::TidInBlock, Operand::Imm(4)]);
        let v = b.alu(ValueOp::Mov, &[Operand::Imm(1)]);
        b.store(MemSpace::Shared, Operand::Reg(off), Operand::Reg(v));
        let _ = b.load(MemSpace::Shared, Operand::Reg(off));
        let k = b.finish(vec![]);
        let r = races_of(&k);
        assert!(r.pairs.is_empty(), "pairs: {:?}", r.pairs);
    }

    #[test]
    fn barrier_separates_store_from_load() {
        // store shared[tib·4+4] ; sync ; load shared[tib·4] — the barrier
        // splits the intervals, so the cross-warp R/W pair cannot collide.
        let mut b = KernelBuilder::new("k");
        let off = b.alu(ValueOp::Mul, &[Operand::TidInBlock, Operand::Imm(4)]);
        let neighbour = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Imm(4)]);
        let v = b.alu(ValueOp::Mov, &[Operand::Imm(1)]);
        b.store(MemSpace::Shared, Operand::Reg(neighbour), Operand::Reg(v));
        b.sync();
        let _ = b.load(MemSpace::Shared, Operand::Reg(off));
        let k = b.finish(vec![]);
        let r = races_of(&k);
        assert!(r.pairs.is_empty(), "pairs: {:?}", r.pairs);
    }

    #[test]
    fn missing_barrier_neighbour_exchange_races() {
        // Same kernel without the sync: warp 0's lane 31 writes the byte
        // warp 1's lane 0 reads (tib 32·4 = (31+1)·4).
        let mut b = KernelBuilder::new("k");
        let off = b.alu(ValueOp::Mul, &[Operand::TidInBlock, Operand::Imm(4)]);
        let neighbour = b.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Imm(4)]);
        let v = b.alu(ValueOp::Mov, &[Operand::Imm(1)]);
        let store_pc = b.pc();
        b.store(MemSpace::Shared, Operand::Reg(neighbour), Operand::Reg(v));
        let _ = b.load(MemSpace::Shared, Operand::Reg(off));
        let k = b.finish(vec![]);
        let r = races_of(&k);
        assert_eq!(r.pairs.len(), 1, "pairs: {:?}", r.pairs);
        assert_eq!(r.pairs[0].a, store_pc);
    }

    #[test]
    fn unknown_base_is_conservatively_racy() {
        // Address = lane + param-derived offset: the base is unknown, so
        // the W/W self-pair must be reported.
        let mut b = KernelBuilder::new("k");
        let off = b.alu(ValueOp::Add, &[Operand::Lane, Operand::Param(0)]);
        let v = b.alu(ValueOp::Mov, &[Operand::Imm(1)]);
        b.store(MemSpace::Shared, Operand::Reg(off), Operand::Reg(v));
        let k = b.finish(vec![1]);
        let r = races_of(&k);
        assert_eq!(r.pairs.len(), 1);
        let d = &r.diagnostics[0];
        assert!(d.message.contains("not statically resolved") || d.message.contains("W/W"));
    }

    #[test]
    fn shape_transfer_laws() {
        let lane = Shape::Affine { base: Some(0), kl: 1, kw: 0 };
        assert_eq!(transfer(ValueOp::Mul, &[lane, Shape::konst(4)]), Shape::Affine {
            base: Some(0),
            kl: 4,
            kw: 0
        });
        assert_eq!(
            transfer(ValueOp::Add, &[lane, Shape::unknown_uniform()]),
            Shape::Affine { base: None, kl: 1, kw: 0 }
        );
        assert_eq!(transfer(ValueOp::Hash, &[lane]), Shape::Top);
        assert_eq!(
            lane.join(Shape::Affine { base: Some(8), kl: 1, kw: 0 }),
            Shape::Affine { base: None, kl: 1, kw: 0 }
        );
        assert_eq!(lane.join(Shape::Affine { base: Some(0), kl: 2, kw: 0 }), Shape::Top);
    }
}
