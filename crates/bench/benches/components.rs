//! Criterion micro-benchmarks of the pipeline components (Section VI-D's
//! cost breakdown): trace generation, functional cache simulation, the
//! interval algorithm, warp clustering, and the analytical models.

use criterion::{criterion_group, criterion_main, Criterion};
use gpumech_core::{
    build_profile, multithreading_cpi, select_representative, SelectionMethod,
};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_mem::simulate_hierarchy;
use gpumech_trace::workloads;

fn benches(c: &mut Criterion) {
    let w = workloads::by_name("cfd_compute_flux").expect("bundled").with_blocks(32);
    let cfg = SimConfig::table1();
    let trace = w.trace().expect("trace");
    let mem = simulate_hierarchy(&trace, &cfg);
    let profiles: Vec<_> =
        trace.warps.iter().map(|wt| build_profile(wt, &cfg, &mem)).collect();

    let mut group = c.benchmark_group("components");
    group.sample_size(10);
    group.bench_function("trace_generation", |b| b.iter(|| w.trace().expect("trace")));
    group.bench_function("cache_simulation", |b| {
        b.iter(|| simulate_hierarchy(&trace, &cfg));
    });
    group.bench_function("interval_algorithm_all_warps", |b| {
        b.iter(|| {
            trace
                .warps
                .iter()
                .map(|wt| build_profile(wt, &cfg, &mem))
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("interval_algorithm_one_warp", |b| {
        b.iter(|| build_profile(&trace.warps[0], &cfg, &mem));
    });
    group.bench_function("kmeans_clustering", |b| {
        b.iter(|| select_representative(&profiles, SelectionMethod::Clustering));
    });
    let rep = select_representative(&profiles, SelectionMethod::Clustering);
    group.bench_function("multiwarp_model", |b| {
        b.iter(|| multithreading_cpi(&profiles[rep], 32, SchedulingPolicy::RoundRobin));
    });
    group.finish();
}

criterion_group!(components, benches);
criterion_main!(components);
