//! Micro-benchmarks of the pipeline components (Section VI-D's cost
//! breakdown): static analysis, trace generation (with and without the
//! analysis-guided uniform-branch fast path), functional cache simulation,
//! the interval algorithm, warp clustering, and the analytical models.
//!
//! Run with `cargo bench --bench components` (plain wall-clock timing; see
//! [`gpumech_bench::bench_wall`]).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use gpumech_bench::bench_wall;
use gpumech_core::{build_profile, multithreading_cpi, select_representative, SelectionMethod};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_mem::simulate_hierarchy;
use gpumech_trace::{trace_kernel_opts, workloads, TraceOptions};

fn main() {
    let w = workloads::by_name("cfd_compute_flux").expect("bundled").with_blocks(32);
    let cfg = SimConfig::table1();
    let trace = w.trace().expect("trace");
    let mem = simulate_hierarchy(&trace, &cfg);
    let profiles: Vec<_> = trace.warps.iter().map(|wt| build_profile(wt, &cfg, &mem)).collect();

    println!("components ({}, {} blocks)", w.name, 32);
    bench_wall("static_analysis", 100, || gpumech_analyze::analyze(&w.kernel));
    let fast = bench_wall("trace_generation", 50, || w.trace().expect("trace"));
    let slow = bench_wall("trace_generation_no_fast_path", 50, || {
        trace_kernel_opts(
            &w.kernel,
            w.launch,
            TraceOptions { uniform_branch_fast_path: false },
        )
        .expect("trace")
    });
    println!(
        "  -> uniform-branch fast path: {:+.1}% wall time",
        100.0 * (fast.as_secs_f64() / slow.as_secs_f64() - 1.0)
    );
    bench_wall("cache_simulation", 10, || simulate_hierarchy(&trace, &cfg));
    bench_wall("interval_algorithm_all_warps", 10, || {
        trace.warps.iter().map(|wt| build_profile(wt, &cfg, &mem)).collect::<Vec<_>>()
    });
    bench_wall("interval_algorithm_one_warp", 100, || build_profile(&trace.warps[0], &cfg, &mem));
    bench_wall("kmeans_clustering", 10, || {
        select_representative(&profiles, SelectionMethod::Clustering)
    });
    let rep = select_representative(&profiles, SelectionMethod::Clustering);
    bench_wall("multiwarp_model", 100, || {
        multithreading_cpi(&profiles[rep], 32, SchedulingPolicy::RoundRobin)
    });
}
