//! Section VI-D: GPUMech model time versus the cycle-level oracle, on a
//! small representative grid.
//!
//! Run with `cargo bench --bench speedup` (plain wall-clock timing; see
//! [`gpumech_bench::bench_wall`]).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use gpumech_bench::bench_wall;
use gpumech_core::{Gpumech, PredictionRequest};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_timing::simulate;
use gpumech_trace::workloads;

const BLOCKS: usize = 32;

fn bench_kernel(name: &str) {
    let w = workloads::by_name(name).expect("bundled workload").with_blocks(BLOCKS);
    let trace = w.trace().expect("trace");
    let cfg = SimConfig::table1();
    let model = Gpumech::new(cfg.clone());

    println!("speedup/{name} ({BLOCKS} blocks)");
    let oracle = bench_wall("oracle_timing_sim", 5, || {
        simulate(&trace, &cfg, SchedulingPolicy::RoundRobin).expect("sim")
    });
    let analysis_t = bench_wall("gpumech_analysis", 5, || model.analyze(&trace).expect("analysis"));
    let analysis = model.analyze(&trace).expect("analysis");
    let predict_t = bench_wall("gpumech_predict", 20, || {
        model.run(&PredictionRequest::from_analysis(&analysis)).expect("predict")
    });
    let speedup = oracle.as_secs_f64() / (analysis_t + predict_t).as_secs_f64();
    println!("  -> model speedup over oracle: {speedup:.1}x");
}

fn main() {
    for name in ["cfd_step_factor", "cfd_compute_flux", "kmeans_invert_mapping"] {
        bench_kernel(name);
    }
}
