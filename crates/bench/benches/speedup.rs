//! Criterion benchmark for Section VI-D: GPUMech model time versus the
//! cycle-level oracle, on a small representative grid (Criterion runs each
//! benchmark many times, so the grid is kept modest).

use criterion::{criterion_group, criterion_main, Criterion};
use gpumech_core::{Gpumech, Model, SelectionMethod};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_timing::simulate;
use gpumech_trace::workloads;

const BLOCKS: usize = 32;

fn bench_kernel(c: &mut Criterion, name: &str) {
    let w = workloads::by_name(name).expect("bundled workload").with_blocks(BLOCKS);
    let trace = w.trace().expect("trace");
    let cfg = SimConfig::table1();
    let model = Gpumech::new(cfg.clone());

    let mut group = c.benchmark_group(format!("speedup/{name}"));
    group.sample_size(10);
    group.bench_function("oracle_timing_sim", |b| {
        b.iter(|| simulate(&trace, &cfg, SchedulingPolicy::RoundRobin).expect("sim"));
    });
    group.bench_function("gpumech_analysis", |b| {
        b.iter(|| model.analyze(&trace).expect("analysis"));
    });
    let analysis = model.analyze(&trace).expect("analysis");
    group.bench_function("gpumech_predict", |b| {
        b.iter(|| {
            model.predict_from_analysis(
                &analysis,
                SchedulingPolicy::RoundRobin,
                Model::MtMshrBand,
                SelectionMethod::Clustering,
            )
        });
    });
    group.finish();
}

fn benches(c: &mut Criterion) {
    for name in ["cfd_step_factor", "cfd_compute_flux", "kmeans_invert_mapping"] {
        bench_kernel(c, name);
    }
}

criterion_group!(speedup, benches);
criterion_main!(speedup);
