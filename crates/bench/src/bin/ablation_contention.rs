//! Ablation of the contention-model engineering decisions documented in
//! DESIGN.md: the core-level normalization of Equation 17, the MSHR
//! throughput roofline, and the DRAM bandwidth roofline. Each variant
//! disables exactly one decision; errors are MT_MSHR_BAND vs the oracle.
//!
//! Usage: `ablation_contention [--blocks N]`

use gpumech_core::contention::contention_cpi_with;
use gpumech_core::{
    multithreading_cpi, select_representative, ContentionOptions, CpiStack, Gpumech,
    SchedulingPolicy, SelectionMethod,
};
use gpumech_isa::SimConfig;
use gpumech_timing::simulate;
use gpumech_trace::workloads;

const KERNELS: [&str; 10] = [
    "srad_kernel1",
    "kmeans_invert_mapping",
    "cfd_step_factor",
    "cfd_compute_flux",
    "bfs_kernel1",
    "parboil_sad_calc8",
    "parboil_spmv",
    "sdk_transpose",
    "sdk_vectoradd",
    "hotspot_calculate_temp",
];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = args
        .iter()
        .position(|a| a == "--blocks")
        .and_then(|i| args.get(i + 1))
        .map_or(64, |s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));

    let cfg = SimConfig::table1();
    let model = Gpumech::new(cfg.clone());
    let policy = SchedulingPolicy::RoundRobin;

    let variants: [(&str, ContentionOptions); 4] = [
        ("full", ContentionOptions::default()),
        (
            "printed-eq17",
            ContentionOptions { core_level_normalization: false, ..Default::default() },
        ),
        ("no-mshr-roofline", ContentionOptions { mshr_roofline: false, ..Default::default() }),
        (
            "paper-dram-cap",
            ContentionOptions { dram_roofline: false, ..Default::default() },
        ),
    ];

    println!("# Ablation: contention-model engineering decisions (MT_MSHR_BAND error)");
    println!("# variants: full model / Equation 17 as printed / no MSHR roofline /");
    println!("#           paper's half-backlog DRAM cap instead of the roofline\n");
    print!("{:<26}{:>10}", "kernel", "oracle");
    for (name, _) in &variants {
        print!("{name:>18}");
    }
    println!();

    let mut sums = [0.0f64; 4];
    for name in KERNELS {
        let w = workloads::by_name(name).unwrap_or_else(|| gpumech_bench::fail(format!("unknown kernel {name}"))).with_blocks(blocks);
        let trace = w.trace().unwrap_or_else(|e| gpumech_bench::fail(format!("trace failed: {e}")));
        let oracle = simulate(&trace, &cfg, policy).unwrap_or_else(|e| gpumech_bench::fail(format!("oracle failed: {e}"))).cpi();
        let analysis = model.analyze(&trace).unwrap_or_else(|e| gpumech_bench::fail(format!("analysis failed: {e}")));
        let rep = select_representative(&analysis.profiles, SelectionMethod::Clustering);
        let profile = &analysis.profiles[rep];
        let warps = analysis.effective_warps;
        let mt = multithreading_cpi(profile, warps, policy);

        print!("{name:<26}{oracle:>10.2}");
        for (i, (_, opts)) in variants.iter().enumerate() {
            let rc = contention_cpi_with(
                profile,
                &cfg,
                warps,
                analysis.mem.avg_miss_latency(),
                mt.cpi,
                *opts,
            );
            let cpi = CpiStack::multi_warp(profile, &analysis.mem, &mt, &rc).total();
            let err = (cpi - oracle).abs() / oracle;
            sums[i] += err;
            print!("{:>17.1}%", 100.0 * err);
        }
        println!();
    }
    print!("{:<26}{:>10}", "MEAN ERROR", "");
    for s in sums {
        print!("{:>17.1}%", 100.0 * s / KERNELS.len() as f64);
    }
    println!();
}
