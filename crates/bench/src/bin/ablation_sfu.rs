//! Ablation of the SFU-contention extension (the resource-contention
//! generalization Section IV-B1 leaves as future work).
//!
//! Sweeps SFU lanes per core on SFU-heavy kernels and reports the oracle
//! CPI together with the full model's prediction with and without the SFU
//! stage. At the Table I default (32 lanes) the stage is inert; on narrow
//! units only the SFU-aware model tracks the oracle.
//!
//! Usage: `ablation_sfu [--blocks N]`

use gpumech_core::contention::sfu_cpi;
use gpumech_core::{Gpumech, PredictionRequest, SchedulingPolicy};
use gpumech_isa::SimConfig;
use gpumech_timing::simulate;
use gpumech_trace::workloads;

const KERNELS: [&str; 3] = ["sdk_blackscholes", "parboil_mriq_computeQ", "sdk_montecarlo"];

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = args
        .iter()
        .position(|a| a == "--blocks")
        .and_then(|i| args.get(i + 1))
        .map_or(64, |s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));

    println!("# Ablation: SFU-contention extension (RR policy)");
    println!("# sweep: 32 (Table I default), 8, 4 SFU lanes per core\n");
    println!(
        "{:<26}{:>6}{:>10}{:>12}{:>12}{:>10}{:>10}",
        "kernel", "lanes", "oracle", "with-sfu", "without", "err-with", "err-wo"
    );

    for name in KERNELS {
        let w = workloads::by_name(name).unwrap_or_else(|| gpumech_bench::fail(format!("unknown kernel {name}"))).with_blocks(blocks);
        let trace = w.trace().unwrap_or_else(|e| gpumech_bench::fail(format!("trace failed: {e}")));
        for lanes in [32usize, 8, 4] {
            let cfg = SimConfig::table1().with_sfu_per_core(lanes);
            let oracle = simulate(&trace, &cfg, SchedulingPolicy::RoundRobin)
                .unwrap_or_else(|e| gpumech_bench::fail(format!("oracle failed: {e}")))
                .cpi();
            let model = Gpumech::new(cfg.clone());
            let analysis = model.analyze(&trace).unwrap_or_else(|e| gpumech_bench::fail(format!("analysis failed: {e}")));
            let p = model
                .run(&PredictionRequest::from_analysis(&analysis))
                .unwrap_or_else(|e| gpumech_bench::fail(format!("prediction failed: {e}")));
            let with_sfu = p.cpi_total();
            // "Without" removes the SFU share the stage contributed.
            let rep = &analysis.profiles[p.representative];
            let sfu_share = sfu_cpi(rep, &cfg, with_sfu - p.contention.cpi_sfu);
            let without = with_sfu - sfu_share;
            println!(
                "{name:<26}{lanes:>6}{oracle:>10.2}{with_sfu:>12.2}{without:>12.2}{:>9.1}%{:>9.1}%",
                100.0 * (with_sfu - oracle).abs() / oracle,
                100.0 * (without - oracle).abs() / oracle,
            );
        }
    }
    println!("\nat 32 lanes the two models coincide; on narrow units the SFU-blind\nmodel underestimates SFU-heavy kernels");
}
