//! Parallel batch-prediction benchmark: the batch engine versus the
//! sequential pipeline over the full 40-workload library, on both
//! parallelism axes.
//!
//! Axis 1 (threads): one batch job per workload at the Table I machine,
//! run sequentially and then through [`BatchEngine`] at each requested
//! worker count. Every batch prediction is asserted byte-identical to the
//! sequential one (canonical JSON, wall-clock timings zeroed). The engine
//! clamps workers to the host's available parallelism, so on a 1-CPU host
//! every requested count runs one thread and this axis is flat by design.
//!
//! Axis 2 (cache): a design-space sweep — every workload at several DRAM
//! bandwidths, a prediction-only axis — run naively (full re-analysis per
//! point, the paper's "detailed re-exploration" strawman) and through the
//! engine, whose profile cache collapses the sweep to one analysis per
//! kernel (Section VI-D's re-exploration argument). This is the headline
//! batch-vs-sequential number: the batch feature is the pool *plus* the
//! cache, and the cache speedup holds at any core count.
//!
//! Every timed section reports the minimum over `--reps` runs (default 3);
//! shared hosts jitter far too much for single-shot walls.
//!
//! Usage: `bench_parallel [--blocks N] [--workers 1,2,4,8] [--reps N]
//!         [--json PATH]`

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpumech_core::{Gpumech, Prediction, PredictionRequest};
use gpumech_exec::{canonical_prediction_json, BatchEngine, BatchJob};
use gpumech_isa::SimConfig;
use gpumech_trace::{workloads, KernelTrace};
use serde::Serialize;

/// Bandwidth sweep for the cache axis: prediction-only configurations
/// that share one analysis per kernel.
const BW_SWEEP: [f64; 6] = [32.0, 48.0, 96.0, 192.0, 384.0, 768.0];

/// One worker-count measurement on the thread axis.
#[derive(Serialize)]
struct WorkerPoint {
    requested_workers: usize,
    effective_workers: usize,
    wall_ms: f64,
    speedup_vs_sequential: f64,
    identical_to_sequential: bool,
}

/// The cache-axis measurement (the headline batch-vs-sequential number).
#[derive(Serialize)]
struct CacheSweep {
    points_per_kernel: usize,
    jobs: usize,
    requested_workers: usize,
    effective_workers: usize,
    sequential_ms: f64,
    batch_ms: f64,
    speedup: f64,
    cache_entries: usize,
    identical_to_sequential: bool,
}

/// The whole report, written by `--json` (ci.sh commits it as
/// `BENCH_parallel.json`). `git_commit` and `config_fingerprint` tie the
/// numbers to the exact build and Table I machine they measured, so two
/// archived reports are comparable only when both provenance fields match.
#[derive(Serialize)]
struct Report {
    git_commit: String,
    config_fingerprint: u64,
    blocks: usize,
    kernels: usize,
    host_cpus: usize,
    reps: usize,
    sequential_ms: f64,
    workers: Vec<WorkerPoint>,
    cache_sweep: CacheSweep,
}

fn ms(t: Duration) -> f64 {
    1e3 * t.as_secs_f64()
}

fn canon(p: &Prediction) -> String {
    canonical_prediction_json(p).unwrap_or_else(|e| gpumech_bench::fail(e))
}

/// Minimum wall time of `f` over `reps` runs.
fn min_wall<F: FnMut()>(reps: usize, mut f: F) -> Duration {
    (1..=reps.max(1))
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .min()
        .unwrap_or(Duration::ZERO)
}

fn sequential_run(jobs: &[BatchJob]) -> Vec<Prediction> {
    jobs.iter()
        .map(|j| {
            Gpumech::new(j.cfg.clone())
                .run(&PredictionRequest::from_trace(&j.trace))
                .unwrap_or_else(|e| gpumech_bench::fail(format_args!("{}: {e}", j.label)))
        })
        .collect()
}

fn batch_run(workers: usize, jobs: &[BatchJob]) -> (Vec<Prediction>, usize) {
    let engine = BatchEngine::new(workers);
    let out: Vec<Prediction> = engine
        .run(jobs)
        .into_iter()
        .zip(jobs)
        .map(|(r, j)| {
            r.unwrap_or_else(|e| gpumech_bench::fail(format_args!("{}: {e}", j.label)))
        })
        .collect();
    (out, engine.cache().len())
}

fn assert_identical(got: &[Prediction], want: &[String], what: &str) -> bool {
    let same = got.len() == want.len()
        && got.iter().zip(want).all(|(p, w)| &canon(p) == w);
    if !same {
        gpumech_bench::fail(format_args!("{what}: batch output diverged from sequential"));
    }
    same
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks: usize = flag(&args, "--blocks")
        .map_or(48, |s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));
    let reps: usize = flag(&args, "--reps")
        .map_or(3, |s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--reps expects a number")));
    let worker_counts: Vec<usize> = flag(&args, "--workers").map_or_else(
        || vec![1, 2, 4, 8],
        |s| {
            s.split(',')
                .map(|v| {
                    v.parse()
                        .unwrap_or_else(|_| gpumech_bench::fail("--workers expects N,N,..."))
                })
                .collect()
        },
    );

    let cfg = SimConfig::table1();
    let traces: Vec<(String, Arc<KernelTrace>)> = workloads::all()
        .iter()
        .map(|w| {
            let w = w.clone().with_blocks(blocks);
            let t = w.trace().unwrap_or_else(|e| {
                gpumech_bench::fail(format_args!("{}: trace failed: {e}", w.name))
            });
            (w.name, Arc::new(t))
        })
        .collect();
    let jobs: Vec<BatchJob> = traces
        .iter()
        .map(|(name, t)| BatchJob::new(name.clone(), Arc::clone(t), cfg.clone()))
        .collect();
    let mut sweep_jobs: Vec<BatchJob> = Vec::with_capacity(traces.len() * BW_SWEEP.len());
    for (name, t) in &traces {
        for bw in BW_SWEEP {
            sweep_jobs.push(BatchJob::new(
                format!("{name} @ bw={bw}"),
                Arc::clone(t),
                cfg.clone().with_dram_bandwidth(bw),
            ));
        }
    }

    println!(
        "# bench_parallel: {} kernels, {blocks} blocks, host cpus {}, min of {reps} rep(s)",
        jobs.len(),
        cpus()
    );

    // Warm-up, untimed: the first run that retains all analyses at once
    // pays a one-off heap-growth cost (page faults on first touch) that
    // belongs to neither side of the comparison.
    drop(BatchEngine::new(4).run(&jobs));

    // Sequential baseline over the 40-workload batch.
    let seq_t = min_wall(reps, || drop(sequential_run(&jobs)));
    let seq_canon: Vec<String> = sequential_run(&jobs).iter().map(canon).collect();
    println!("sequential ({} kernels): {seq_t:.2?}", jobs.len());

    // Thread axis.
    let mut points = Vec::new();
    for &workers in &worker_counts {
        let wall = min_wall(reps, || drop(batch_run(workers, &jobs)));
        let (out, _) = batch_run(workers, &jobs);
        let identical = assert_identical(&out, &seq_canon, "thread axis");
        let effective = BatchEngine::new(workers).effective_workers();
        let speedup = seq_t.as_secs_f64() / wall.as_secs_f64();
        println!(
            "workers={workers} (effective {effective}): {wall:.2?} \
             ({speedup:.2}x vs sequential, identical output)"
        );
        points.push(WorkerPoint {
            requested_workers: workers,
            effective_workers: effective,
            wall_ms: ms(wall),
            speedup_vs_sequential: speedup,
            identical_to_sequential: identical,
        });
    }

    // Cache axis: the bandwidth sweep, sequential re-analysis vs batch.
    let naive_t = min_wall(reps, || drop(sequential_run(&sweep_jobs)));
    let naive_canon: Vec<String> = sequential_run(&sweep_jobs).iter().map(canon).collect();
    let batch_t = min_wall(reps, || drop(batch_run(4, &sweep_jobs)));
    let (out, cache_entries) = batch_run(4, &sweep_jobs);
    let identical = assert_identical(&out, &naive_canon, "cache axis");
    let speedup = naive_t.as_secs_f64() / batch_t.as_secs_f64();
    let effective = BatchEngine::new(4).effective_workers();
    println!(
        "sweep x{}: sequential {naive_t:.2?}, batch {batch_t:.2?} at 4 workers \
         (effective {effective}) -> {speedup:.2}x, {cache_entries} analyses for {} jobs, \
         identical output",
        BW_SWEEP.len(),
        sweep_jobs.len(),
    );

    if let Some(path) = flag(&args, "--json") {
        let report = Report {
            git_commit: gpumech_perf::git_commit(),
            config_fingerprint: gpumech_exec::analysis_config_fingerprint(&cfg),
            blocks,
            kernels: traces.len(),
            host_cpus: cpus(),
            reps,
            sequential_ms: ms(seq_t),
            workers: points,
            cache_sweep: CacheSweep {
                points_per_kernel: BW_SWEEP.len(),
                jobs: sweep_jobs.len(),
                requested_workers: 4,
                effective_workers: effective,
                sequential_ms: ms(naive_t),
                batch_ms: ms(batch_t),
                speedup,
                cache_entries,
                identical_to_sequential: identical,
            },
        };
        let json = serde_json::to_string_pretty(&report)
            .unwrap_or_else(|e| gpumech_bench::fail(format_args!("serialize report: {e}")));
        std::fs::write(&path, json)
            .unwrap_or_else(|e| gpumech_bench::fail(format_args!("write {path}: {e}")));
        println!("report written to {path}");
    }
}

fn cpus() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}
