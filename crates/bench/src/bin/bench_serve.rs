//! Self-driving load harness for `gpumech serve`: spawns the real binary
//! as a child process, hammers it over real sockets, and writes a
//! latency/shed/error-taxonomy report (`results/BENCH_serve.json`).
//!
//! Three phases, all against production code paths:
//!
//! 1. **Load** — `--clients` concurrent clients (≥8 by default) send a
//!    deterministic request mix (valid predicts with debug holds for
//!    queue pressure, unknown kernels, invalid configs, 1 ms deadlines)
//!    and the harness reports p50/p90/p99 latency, shed rate, and the
//!    typed error taxonomy.
//! 2. **Chaos clients** — mid-body disconnects; the server must keep
//!    answering.
//! 3. **Crash/restart** — one server is drained with SIGTERM under load
//!    (must exit 0 with a summary and an `--obs-out` trace); another is
//!    SIGKILLed mid-load over the same `--cache-dir`, and a restart must
//!    pass `/readyz`, quarantine nothing, and predict byte-identically
//!    to the first server's answer.
//!
//! Usage: `bench_serve [--clients N] [--requests N] [--quick]
//!         [--server-bin PATH] [--cache-dir DIR] [--obs-out PATH]
//!         [--json PATH]`

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use gpumech_serve::{send_sigkill, send_sigterm};
use serde::Serialize;

/// Kernels the valid-predict mix cycles through: small, fast, and
/// behaviorally distinct.
const KERNELS: [&str; 4] =
    ["sdk_vectoradd", "bfs_kernel1", "kmeans_invert_mapping", "cfd_step_factor"];

#[derive(Serialize)]
struct LatencyStats {
    p50_ms: f64,
    p90_ms: f64,
    p99_ms: f64,
    max_ms: f64,
    mean_ms: f64,
}

#[derive(Serialize)]
struct ChaosReport {
    mid_body_disconnects: usize,
    survived_mid_body: bool,
    sigkill_mid_load: bool,
    restart_ready_ms: f64,
    restart_prediction_identical: bool,
    quarantined_cache_entries: usize,
}

#[derive(Serialize)]
struct DrainReport {
    exit_code: i32,
    clean_exit: bool,
    in_flight_completed: u64,
    obs_trace: String,
}

/// `git_commit` and `config_fingerprint` tie the numbers to the exact
/// build and Table I machine they measured — archived reports are only
/// comparable when both provenance fields match.
#[derive(Serialize)]
struct Report {
    git_commit: String,
    config_fingerprint: u64,
    clients: usize,
    requests_per_client: usize,
    total_requests: usize,
    wall_ms: f64,
    throughput_rps: f64,
    ok: u64,
    shed: u64,
    shed_rate: f64,
    latency_ok: LatencyStats,
    latency_all: LatencyStats,
    taxonomy: BTreeMap<String, u64>,
    statuses: BTreeMap<String, u64>,
    chaos: ChaosReport,
    drain: DrainReport,
}

/// One observed request: status, typed error code ("ok" for 200), wall.
#[derive(Clone)]
struct Obs {
    status: u16,
    code: String,
    ms: f64,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1)).cloned()
}

fn switch(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// The `gpumech` binary: `--server-bin`, or a sibling of this executable.
fn server_bin(args: &[String]) -> PathBuf {
    if let Some(p) = flag(args, "--server-bin") {
        return PathBuf::from(p);
    }
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("gpumech")))
        .unwrap_or_else(|| gpumech_bench::fail("cannot locate the gpumech binary"))
}

struct ServerProc {
    child: Child,
    addr: SocketAddr,
    stdout: BufReader<std::process::ChildStdout>,
}

/// Spawns `gpumech serve` and scrapes the bound port from the first
/// stdout line (`gpumech-serve listening on http://ADDR`).
fn spawn_server(bin: &Path, extra: &[&str]) -> ServerProc {
    let mut child = Command::new(bin)
        .arg("serve")
        .args(["--port", "0"])
        .args(extra)
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("spawn {}: {e}", bin.display())));
    let mut stdout = BufReader::new(
        child.stdout.take().unwrap_or_else(|| gpumech_bench::fail("no child stdout")),
    );
    let mut line = String::new();
    if stdout.read_line(&mut line).unwrap_or(0) == 0 {
        let _ = child.kill();
        gpumech_bench::fail("server exited before announcing its port");
    }
    let addr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| gpumech_bench::fail(format_args!("bad announce line: {line:?}")));
    ServerProc { child, addr, stdout }
}

/// Sends raw bytes, reads to EOF, returns (status, body).
fn send_raw(addr: SocketAddr, raw: &[u8]) -> Result<(u16, String), String> {
    let mut s = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    s.set_read_timeout(Some(Duration::from_secs(60))).map_err(|e| e.to_string())?;
    s.write_all(raw).map_err(|e| format!("write: {e}"))?;
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).map_err(|e| format!("read: {e}"))?;
    let text = String::from_utf8_lossy(&buf);
    let (head, body) =
        text.split_once("\r\n\r\n").ok_or_else(|| format!("bad response: {text:?}"))?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| format!("bad status line: {head:?}"))?;
    Ok((status, body.to_string()))
}

fn predict_raw(body: &str) -> Vec<u8> {
    format!(
        "POST /predict HTTP/1.1\r\nhost: bench\r\ncontent-type: application/json\r\n\
         content-length: {}\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

fn get(addr: SocketAddr, path: &str) -> Result<(u16, String), String> {
    send_raw(addr, format!("GET {path} HTTP/1.1\r\nhost: bench\r\n\r\n").as_bytes())
}

/// Extracts the typed error code from a response body, or "ok".
fn error_code(status: u16, body: &str) -> String {
    if status == 200 {
        return "ok".to_string();
    }
    body.split("\"error\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .unwrap_or("untyped")
        .to_string()
}

/// The deterministic request mix for client `i`, request `j`.
fn request_body(i: usize, j: usize, hold_ms: u64) -> String {
    let k = KERNELS[(i + j) % KERNELS.len()];
    match (i + 3 * j) % 8 {
        5 => "{\"kernel\":\"no_such_kernel\"}".to_string(),
        6 => format!("{{\"kernel\":\"{k}\",\"mshrs\":0}}"),
        7 => format!("{{\"kernel\":\"{k}\",\"blocks\":2,\"deadline_ms\":1,\"hold_ms\":50}}"),
        _ => format!("{{\"kernel\":\"{k}\",\"blocks\":2,\"hold_ms\":{hold_ms}}}"),
    }
}

fn stats(mut ms: Vec<f64>) -> LatencyStats {
    if ms.is_empty() {
        return LatencyStats { p50_ms: 0.0, p90_ms: 0.0, p99_ms: 0.0, max_ms: 0.0, mean_ms: 0.0 };
    }
    ms.sort_by(f64::total_cmp);
    let q = |p: f64| -> f64 {
        let idx = ((ms.len() - 1) as f64 * p).round() as usize;
        ms[idx.min(ms.len() - 1)]
    };
    let mean = ms.iter().sum::<f64>() / ms.len() as f64;
    LatencyStats {
        p50_ms: q(0.50),
        p90_ms: q(0.90),
        p99_ms: q(0.99),
        max_ms: ms[ms.len() - 1],
        mean_ms: mean,
    }
}

/// Phase 1: concurrent clients over real sockets.
fn load_phase(addr: SocketAddr, clients: usize, requests: usize, hold_ms: u64) -> Vec<Obs> {
    let mut handles = Vec::with_capacity(clients);
    for i in 0..clients {
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::with_capacity(requests);
            for j in 0..requests {
                let body = request_body(i, j, hold_ms);
                let t0 = Instant::now();
                match send_raw(addr, &predict_raw(&body)) {
                    Ok((status, resp_body)) => out.push(Obs {
                        status,
                        code: error_code(status, &resp_body),
                        ms: t0.elapsed().as_secs_f64() * 1e3,
                    }),
                    Err(e) => out.push(Obs {
                        status: 0,
                        code: format!("transport: {e}"),
                        ms: t0.elapsed().as_secs_f64() * 1e3,
                    }),
                }
            }
            out
        }));
    }
    handles
        .into_iter()
        .flat_map(|h| h.join().unwrap_or_else(|_| gpumech_bench::fail("client panicked")))
        .collect()
}

/// Phase 2: clients that promise a body and vanish mid-write.
fn mid_body_chaos(addr: SocketAddr, n: usize) -> bool {
    for _ in 0..n {
        if let Ok(mut s) = TcpStream::connect(addr) {
            let _ = s.write_all(b"POST /predict HTTP/1.1\r\ncontent-length: 64\r\n\r\n{\"ker");
            drop(s);
        }
    }
    // The server must still answer after digesting the carcasses.
    std::thread::sleep(Duration::from_millis(300));
    matches!(get(addr, "/healthz"), Ok((200, _)))
}

fn count_quarantined(dir: &Path) -> usize {
    let Ok(rd) = std::fs::read_dir(dir) else { return 0 };
    rd.filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "quarantine"))
        .count()
}

#[allow(clippy::too_many_lines)]
fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = switch(&args, "--quick");
    let clients: usize =
        flag(&args, "--clients").and_then(|v| v.parse().ok()).unwrap_or(8).max(1);
    let requests: usize = flag(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 3 } else { 12 })
        .max(1);
    let hold_ms: u64 = if quick { 10 } else { 25 };
    let bin = server_bin(&args);
    let scratch = std::env::temp_dir().join(format!("gpumech-bench-serve-{}", std::process::id()));
    let cache_dir = flag(&args, "--cache-dir")
        .map_or_else(|| scratch.join("cache"), PathBuf::from);
    let obs_out = flag(&args, "--obs-out")
        .map_or_else(|| scratch.join("serve-obs.jsonl"), PathBuf::from);
    let _ = std::fs::create_dir_all(&scratch);

    // ---- Server 1: load + mid-body chaos + SIGTERM drain -------------
    let cache_flag = cache_dir.to_string_lossy().to_string();
    let obs_flag = obs_out.to_string_lossy().to_string();
    let mut srv = spawn_server(
        &bin,
        &[
            "--workers", "2", "--queue-cap", "2", "--debug-hooks",
            "--cache-dir", &cache_flag, "--obs-out", &obs_flag,
        ],
    );
    eprintln!("server 1 on {} (pid {})", srv.addr, srv.child.id());

    // A reference prediction for the byte-identity check after restart.
    let reference = send_raw(srv.addr, &predict_raw("{\"kernel\":\"sdk_vectoradd\",\"blocks\":2}"))
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("reference predict: {e}")));
    if reference.0 != 200 {
        gpumech_bench::fail(format_args!("reference predict failed: {}", reference.1));
    }

    let t0 = Instant::now();
    let observations = load_phase(srv.addr, clients, requests, hold_ms);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    let survived_mid_body = mid_body_chaos(srv.addr, if quick { 4 } else { 8 });
    if !survived_mid_body {
        gpumech_bench::fail("server stopped answering after mid-body disconnects");
    }

    // SIGTERM with work in flight: the straggler must complete, the
    // process must exit 0 and write its observability trace.
    let addr = srv.addr;
    let straggler = std::thread::spawn(move || {
        send_raw(addr, &predict_raw("{\"kernel\":\"sdk_vectoradd\",\"blocks\":2,\"hold_ms\":400}"))
    });
    std::thread::sleep(Duration::from_millis(150));
    if !send_sigterm(srv.child.id()) {
        gpumech_bench::fail("could not SIGTERM server 1");
    }
    let straggler = straggler.join().unwrap_or_else(|_| gpumech_bench::fail("straggler panicked"));
    let in_flight_completed = u64::from(matches!(&straggler, Ok((200, _))));
    let status = srv
        .child
        .wait()
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("wait server 1: {e}")));
    let mut rest = String::new();
    let _ = srv.stdout.read_to_string(&mut rest);
    let exit_code = status.code().unwrap_or(-1);
    if exit_code != 0 {
        gpumech_bench::fail(format_args!("server 1 exited {exit_code}: {rest}"));
    }
    if !obs_out.exists() {
        gpumech_bench::fail("server 1 wrote no --obs-out trace");
    }
    let mut stderr_text = String::new();
    if let Some(mut e) = srv.child.stderr.take() {
        let _ = e.read_to_string(&mut stderr_text);
    }
    if stderr_text.contains("panicked") {
        gpumech_bench::fail(format_args!("server 1 panicked:\n{stderr_text}"));
    }

    // ---- Server 2: SIGKILL mid-load over the same cache ---------------
    let mut srv2 = spawn_server(&bin, &["--workers", "2", "--debug-hooks", "--cache-dir", &cache_flag]);
    eprintln!("server 2 on {} (pid {})", srv2.addr, srv2.child.id());
    let addr2 = srv2.addr;
    let mut murdered_clients = Vec::new();
    for i in 0..4usize {
        murdered_clients.push(std::thread::spawn(move || {
            let k = KERNELS[i % KERNELS.len()];
            // Transport errors are the expected outcome here.
            let _ = send_raw(
                addr2,
                &predict_raw(&format!("{{\"kernel\":\"{k}\",\"blocks\":4,\"hold_ms\":500}}")),
            );
        }));
    }
    std::thread::sleep(Duration::from_millis(200));
    if !send_sigkill(srv2.child.id()) {
        gpumech_bench::fail("could not SIGKILL server 2");
    }
    let _ = srv2.child.wait();
    for h in murdered_clients {
        let _ = h.join();
    }

    // ---- Server 3: restart over the killed server's cache -------------
    let t_restart = Instant::now();
    let mut srv3 = spawn_server(
        &bin,
        &["--workers", "2", "--cache-dir", &cache_flag, "--warm", "sdk_vectoradd"],
    );
    eprintln!("server 3 on {} (pid {})", srv3.addr, srv3.child.id());
    let restart_ready_ms = loop {
        match get(srv3.addr, "/readyz") {
            Ok((200, _)) => break t_restart.elapsed().as_secs_f64() * 1e3,
            _ if t_restart.elapsed() > Duration::from_secs(60) => {
                gpumech_bench::fail("restarted server never became ready")
            }
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    let after = send_raw(srv3.addr, &predict_raw("{\"kernel\":\"sdk_vectoradd\",\"blocks\":2}"))
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("post-restart predict: {e}")));
    let restart_prediction_identical = after == reference;
    if !restart_prediction_identical {
        gpumech_bench::fail(format_args!(
            "post-restart prediction diverged from pre-crash reference:\n{}\nvs\n{}",
            after.1, reference.1
        ));
    }
    let quarantined = count_quarantined(&cache_dir);
    if quarantined != 0 {
        gpumech_bench::fail(format_args!("SIGKILL corrupted {quarantined} cache entr(ies)"));
    }
    let _ = send_sigterm(srv3.child.id());
    let s3 = srv3.child.wait().map(|s| s.code().unwrap_or(-1)).unwrap_or(-1);
    if s3 != 0 {
        gpumech_bench::fail(format_args!("server 3 exited {s3}"));
    }

    // ---- Report -------------------------------------------------------
    let total = observations.len();
    let ok = observations.iter().filter(|o| o.status == 200).count() as u64;
    let shed = observations.iter().filter(|o| o.status == 429).count() as u64;
    let mut taxonomy: BTreeMap<String, u64> = BTreeMap::new();
    let mut statuses: BTreeMap<String, u64> = BTreeMap::new();
    for o in &observations {
        *taxonomy.entry(o.code.clone()).or_default() += 1;
        *statuses.entry(o.status.to_string()).or_default() += 1;
    }
    let report = Report {
        git_commit: gpumech_perf::git_commit(),
        config_fingerprint: gpumech_exec::analysis_config_fingerprint(
            &gpumech_isa::SimConfig::table1(),
        ),
        clients,
        requests_per_client: requests,
        total_requests: total,
        wall_ms,
        throughput_rps: total as f64 / (wall_ms / 1e3).max(1e-9),
        ok,
        shed,
        shed_rate: shed as f64 / (total as f64).max(1.0),
        latency_ok: stats(
            observations.iter().filter(|o| o.status == 200).map(|o| o.ms).collect(),
        ),
        latency_all: stats(observations.iter().map(|o| o.ms).collect()),
        taxonomy,
        statuses,
        chaos: ChaosReport {
            mid_body_disconnects: if quick { 4 } else { 8 },
            survived_mid_body,
            sigkill_mid_load: true,
            restart_ready_ms,
            restart_prediction_identical,
            quarantined_cache_entries: quarantined,
        },
        drain: DrainReport {
            exit_code,
            clean_exit: true,
            in_flight_completed,
            obs_trace: obs_flag.clone(),
        },
    };

    if observations.iter().any(|o| o.status == 0) {
        let bad: Vec<&str> = observations
            .iter()
            .filter(|o| o.status == 0)
            .map(|o| o.code.as_str())
            .collect();
        gpumech_bench::fail(format_args!("transport failures under load: {bad:?}"));
    }

    println!(
        "# bench_serve: {clients} clients x {requests} requests ({total} total) in {wall_ms:.0} ms"
    );
    println!(
        "ok {ok}  shed {shed} ({:.1}%)  p50 {:.1} ms  p99 {:.1} ms",
        100.0 * report.shed_rate, report.latency_ok.p50_ms, report.latency_ok.p99_ms
    );
    for (code, n) in &report.taxonomy {
        println!("  {code:<24}{n}");
    }
    println!(
        "chaos: mid-body ok; SIGKILL->restart ready in {restart_ready_ms:.0} ms, \
         prediction identical, 0 quarantined"
    );
    println!("drain: exit 0, in-flight completed, obs trace at {obs_flag}");

    if let Some(path) = flag(&args, "--json") {
        let json = serde_json::to_string_pretty(&report)
            .unwrap_or_else(|e| gpumech_bench::fail(format_args!("serialize report: {e}")));
        std::fs::write(&path, json)
            .unwrap_or_else(|e| gpumech_bench::fail(format_args!("write {path}: {e}")));
        println!("report written to {path}");
    }
    let _ = std::fs::remove_dir_all(&scratch);
}
