//! Sharded-sweep harness: runs the same sweep unsharded and under the
//! crash-tolerant supervisor (with a chaos kill armed), verifies the
//! merged output byte-identical to the reference, and writes a
//! provenance-stamped report (`results/BENCH_shard.json`).
//!
//! Three phases, all against the real `gpumech` binary:
//!
//! 1. **Reference** — one unsharded `batch --json` run of the sweep.
//! 2. **Supervised** — the same sweep split across `--shards` child
//!    processes via [`gpumech_shard::supervise()`], with one shard
//!    SIGKILLed mid-run ([`ChaosKill`]) to exercise journal-replay
//!    recovery under time pressure.
//! 3. **Verified merge** — the shard files (plus journals) are merged
//!    and the result compared to the reference from `jobs_checksum` on;
//!    any deviation fails the harness.
//!
//! Usage: `bench_shard [--shard-bin PATH] [--shards N] [--quick]
//!         [--json PATH]`

use std::path::PathBuf;
use std::time::Instant;

use gpumech_shard::{
    merge_files, supervise, verify_expectation, ChaosKill, MergeOptions, SupervisorConfig,
};
use serde::Serialize;

/// Sweep kernels: small, behaviorally distinct, enough work that the
/// chaos kill has a window to land.
const KERNELS: [&str; 6] = [
    "sdk_vectoradd",
    "bfs_kernel1",
    "kmeans_invert_mapping",
    "cfd_step_factor",
    "hotspot_calculate_temp",
    "srad_kernel1",
];

#[derive(Serialize)]
struct ShardLine {
    shard: u32,
    spawns: u32,
    restarts: u32,
    done: bool,
}

/// `git_commit` and `config_fingerprint` tie the numbers to the exact
/// build and Table I machine they measured.
#[derive(Serialize)]
struct Report {
    git_commit: String,
    config_fingerprint: u64,
    shards: u32,
    jobs: usize,
    reference_wall_ms: f64,
    supervised_wall_ms: f64,
    speedup: f64,
    chaos_kill_fired: bool,
    restarts: u32,
    merge_files_ok: usize,
    merge_notes: usize,
    byte_identical: bool,
    per_shard: Vec<ShardLine>,
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn switch(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn shard_bin(args: &[String]) -> PathBuf {
    if let Some(p) = flag(args, "--shard-bin") {
        return PathBuf::from(p);
    }
    std::env::current_exe()
        .ok()
        .and_then(|p| p.parent().map(|d| d.join("gpumech")))
        .unwrap_or_else(|| gpumech_bench::fail("cannot locate the gpumech binary"))
}

fn run_reference(bin: &PathBuf, sweep: &[String], out: &PathBuf) -> f64 {
    let t0 = Instant::now();
    let status = std::process::Command::new(bin)
        .args(sweep)
        .arg("--json")
        .arg(out)
        .stdout(std::process::Stdio::null())
        .status()
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("spawn reference: {e}")));
    if !status.success() {
        gpumech_bench::fail(format_args!("reference batch failed: {status}"));
    }
    t0.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = switch(&args, "--quick");
    let shards: u32 = flag(&args, "--shards").and_then(|v| v.parse().ok()).unwrap_or(3).max(1);
    let bin = shard_bin(&args);
    let scratch =
        std::env::temp_dir().join(format!("gpumech-bench-shard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(&scratch)
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("scratch dir: {e}")));

    // The sweep: every kernel at several warp counts. --quick halves the
    // axis; the full run gives the chaos kill a wider window.
    let warp_axis = if quick { "warps=16,32" } else { "warps=8,16,32,64" };
    let sweep_points = if quick { 2 } else { 4 };
    let mut sweep: Vec<String> = vec!["batch".to_string()];
    sweep.extend(KERNELS.iter().map(|k| (*k).to_string()));
    sweep.extend(["--blocks", "4", "--sweep", warp_axis].iter().map(|s| (*s).to_string()));
    let jobs = KERNELS.len() * sweep_points;

    // ---- Phase 1: unsharded reference --------------------------------
    let reference = scratch.join("ref.json");
    let reference_wall_ms = run_reference(&bin, &sweep, &reference);
    eprintln!("reference: {jobs} job(s) in {reference_wall_ms:.0} ms");

    // ---- Phase 2: supervised sharded run with a chaos kill -----------
    let sweep_dir = scratch.join("sweep");
    let mut cfg = SupervisorConfig::new(bin, sweep_dir.clone(), shards);
    cfg.shared_args = sweep.clone();
    cfg.poll_ms = 10;
    cfg.chaos_kills = vec![ChaosKill { shard: 0, after_journal_lines: 1 }];
    let t0 = Instant::now();
    let summary = supervise(&cfg)
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("supervise: {e}")));
    let supervised_wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    if summary.result_paths.len() != shards as usize {
        gpumech_bench::fail(format_args!(
            "only {} of {shards} shard(s) completed",
            summary.result_paths.len()
        ));
    }
    let restarts: u32 = summary.shards.iter().map(|s| s.restarts).sum();
    eprintln!(
        "supervised: {shards} shard(s) in {supervised_wall_ms:.0} ms, {restarts} restart(s)"
    );

    // ---- Phase 3: verified merge + byte identity ---------------------
    let journals: Vec<PathBuf> = (0..shards).map(|i| cfg.journal_path(i)).collect();
    let outcome = merge_files(
        &summary.result_paths,
        &MergeOptions { quarantine: false, journals },
    );
    let Some(merged) = outcome.merged else {
        for f in &outcome.findings {
            eprintln!("finding: {f}");
        }
        gpumech_bench::fail("supervised sweep did not merge cleanly");
    };
    let merged_text = merged
        .render_json()
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("render merged: {e}")));
    let reference_text = std::fs::read_to_string(&reference)
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("read reference: {e}")));
    if let Some(mismatch) = verify_expectation(&merged_text, &reference_text) {
        gpumech_bench::fail(format_args!("sharded run diverged from reference: {mismatch}"));
    }
    eprintln!("merge: byte-identical to the unsharded reference");

    let report = Report {
        git_commit: gpumech_perf::git_commit(),
        config_fingerprint: gpumech_exec::analysis_config_fingerprint(
            &gpumech_isa::SimConfig::table1(),
        ),
        shards,
        jobs,
        reference_wall_ms,
        supervised_wall_ms,
        speedup: reference_wall_ms / supervised_wall_ms.max(1e-9),
        chaos_kill_fired: restarts > 0,
        restarts,
        merge_files_ok: outcome.files_ok,
        merge_notes: outcome.notes.len(),
        byte_identical: true,
        per_shard: summary
            .shards
            .iter()
            .map(|s| ShardLine {
                shard: s.shard,
                spawns: s.spawns,
                restarts: s.restarts,
                done: s.done,
            })
            .collect(),
    };
    let path = flag(&args, "--json").unwrap_or_else(|| "results/BENCH_shard.json".to_string());
    if let Some(dir) = PathBuf::from(&path).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let json = serde_json::to_string_pretty(&report)
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("serialize report: {e}")));
    std::fs::write(&path, json)
        .unwrap_or_else(|e| gpumech_bench::fail(format_args!("write {path}: {e}")));
    let _ = std::fs::remove_dir_all(&scratch);
    eprintln!("report written to {path}");
}
