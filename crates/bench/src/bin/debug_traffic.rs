//! Debug utility: compares the functional cache simulation's DRAM-traffic
//! estimate against the timing oracle's actual DRAM request count, per
//! kernel. Large disagreement means access-order-dependent cache behaviour
//! (a known limitation shared with the paper's methodology).
//!
//! Usage: `debug_traffic [--blocks N] [kernel ...]`

use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_mem::simulate_hierarchy;
use gpumech_timing::simulate;
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut blocks = 128usize;
    let mut mshrs = 32usize;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--blocks" {
            blocks = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| gpumech_bench::fail("--blocks expects a number"));
        } else if a == "--mshrs" {
            mshrs = it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| gpumech_bench::fail("--mshrs expects a number"));
        } else {
            names.push(a);
        }
    }
    if names.is_empty() {
        names = vec![
            "srad_kernel1".into(),
            "sdk_vectoradd".into(),
            "parboil_sad_calc8".into(),
            "kmeans_invert_mapping".into(),
            "bfs_kernel1".into(),
        ];
    }
    let cfg = SimConfig::default().with_mshrs(mshrs);
    println!(
        "{:<28}{:>14}{:>14}{:>10}{:>12}{:>10}",
        "kernel", "func dram", "oracle dram", "ratio", "oracle cpi", "dram util"
    );
    for name in names {
        let w = workloads::by_name(&name).unwrap_or_else(|| gpumech_bench::fail(format!("unknown kernel {name}"))).with_blocks(blocks);
        let trace = w.trace().unwrap_or_else(|e| gpumech_bench::fail(format!("trace failed: {e}")));
        let stats = simulate_hierarchy(&trace, &cfg);
        let func_dram: u64 = stats
            .load_pcs()
            .chain(stats.store_pcs())
            .map(|pc| stats.pc_stats(pc).map_or(0, |s| s.dram_reqs))
            .sum();
        let oracle = simulate(&trace, &cfg, SchedulingPolicy::RoundRobin).unwrap_or_else(|e| gpumech_bench::fail(format!("oracle failed: {e}")));
        println!(
            "{:<28}{:>14}{:>14}{:>10.3}{:>12.3}{:>10.3}",
            name,
            func_dram,
            oracle.dram_requests,
            oracle.dram_requests as f64 / func_dram.max(1) as f64,
            oracle.cpi(),
            oracle.dram_utilization,
        );
    }
}
