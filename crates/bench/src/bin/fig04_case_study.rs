//! Figure 4: the SRAD case study — how each modeling component reduces
//! error on a memory-divergent kernel.
//!
//! Evaluates Naive_Interval → MT → MT_MSHR → MT_MSHR_BAND on the SRAD
//! analogue and prints the per-component relative CPI error, mirroring the
//! paper's bar chart.
//!
//! Usage: `fig04_case_study [--blocks N] [--kernel NAME]`

use gpumech_bench::{evaluate_kernel, pct, Experiment};
use gpumech_core::Model;
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = arg_value(&args, "--blocks").map(|s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));
    let kernel = arg_value(&args, "--kernel").unwrap_or_else(|| "srad_kernel1".to_string());

    let mut exp = Experiment::baseline();
    exp.label = "fig4-case-study".to_string();
    if let Some(b) = blocks {
        exp = exp.with_blocks(b);
    }

    let w = workloads::by_name(&kernel).unwrap_or_else(|| gpumech_bench::fail(format!("unknown kernel {kernel}")));
    println!("# Figure 4: per-component error, kernel {kernel} (RR policy)");
    let e = evaluate_kernel(&w, &exp);
    println!("# oracle CPI = {:.3}\n", e.oracle_cpi);
    println!("{:<18}{:>12}{:>14}", "model", "CPI", "error");
    for m in [Model::NaiveInterval, Model::Mt, Model::MtMshr, Model::MtMshrBand] {
        let p = e.prediction(m);
        println!("{:<18}{:>12.3}{:>14}", m.to_string(), p.cpi_total(), pct(e.error(m)));
    }
    println!(
        "\npaper reference: modeling multithreading, MSHRs, and DRAM bandwidth\n\
         each cuts the SRAD error further (Figure 4's staircase)"
    );
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
