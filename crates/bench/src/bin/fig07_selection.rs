//! Figure 7: representative-warp selection methods on control-divergent
//! kernels.
//!
//! For every control-divergent workload, predicts CPI with MAX, MIN, and
//! Clustering selection (full GPUMech model, RR policy) and prints the
//! relative error of each, sorted by the clustering error — the same
//! presentation as the paper's figure.
//!
//! Usage: `fig07_selection [--blocks N]`

use gpumech_core::{Gpumech, PredictionRequest, SelectionMethod};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_timing::simulate;
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = arg_value(&args, "--blocks").map(|s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));

    let cfg = SimConfig::table1();
    let model = Gpumech::new(cfg.clone());
    let policy = SchedulingPolicy::RoundRobin;

    println!("# Figure 7: representative-warp selection on control-divergent kernels");
    println!("# methods: MAX / MIN / Clustering (full MT_MSHR_BAND model, RR)\n");

    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    for w in workloads::control_divergent() {
        let w = match blocks {
            Some(b) => w.with_blocks(b),
            None => w,
        };
        let trace = w.trace().unwrap_or_else(|e| gpumech_bench::fail(format!("trace failed: {e}")));
        let oracle = simulate(&trace, &cfg, policy).unwrap_or_else(|e| gpumech_bench::fail(format!("oracle failed: {e}"))).cpi();
        let analysis = model.analyze(&trace).unwrap_or_else(|e| gpumech_bench::fail(format!("analysis failed: {e}")));
        let err = |sel: SelectionMethod| {
            let p = model
                .run(&PredictionRequest::from_analysis(&analysis).policy(policy).selection(sel))
                .unwrap_or_else(|e| gpumech_bench::fail(format!("prediction failed: {e}")));
            (p.cpi_total() - oracle).abs() / oracle
        };
        rows.push((
            w.name.clone(),
            err(SelectionMethod::Max),
            err(SelectionMethod::Min),
            err(SelectionMethod::Clustering),
        ));
        eprintln!("  done {}", w.name);
    }
    rows.sort_by(|a, b| a.3.total_cmp(&b.3));

    println!("{:<28}{:>10}{:>10}{:>12}", "kernel", "MAX", "MIN", "Clustering");
    for (name, mx, mn, cl) in &rows {
        println!("{name:<28}{:>10}{:>10}{:>12}", pct(*mx), pct(*mn), pct(*cl));
    }
    let mean = |f: fn(&(String, f64, f64, f64)) -> f64| {
        rows.iter().map(f).sum::<f64>() / rows.len() as f64
    };
    println!(
        "{:<28}{:>10}{:>10}{:>12}",
        "MEAN",
        pct(mean(|r| r.1)),
        pct(mean(|r| r.2)),
        pct(mean(|r| r.3)),
    );
    println!(
        "\npaper reference: on control-divergent kernels the clustering method\n\
         usually has the best accuracy; for some kernels all three tie"
    );
}

fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
