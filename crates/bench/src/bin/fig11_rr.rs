//! Figure 11: model comparison for the round-robin policy.
//!
//! Runs all 40 workloads under the Table I machine with RR scheduling,
//! evaluates the five Table II models against the cycle-level oracle, and
//! prints per-kernel relative CPI errors plus the paper's summary metrics
//! (mean error per model; fraction of kernels under 20% error for
//! GPUMech vs Markov_Chain).
//!
//! Usage: `fig11_rr [--blocks N] [--json PATH]`

use gpumech_bench::{
    dump_json, evaluate_kernel, fraction_below, mean_error, pct, print_error_table, Experiment,
    KernelEval,
};
use gpumech_core::Model;
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = arg_value(&args, "--blocks").map(|s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));
    let json = arg_value(&args, "--json");

    let mut exp = Experiment::baseline();
    exp.label = "fig11-rr".to_string();
    if let Some(b) = blocks {
        exp = exp.with_blocks(b);
    }

    println!("# Figure 11: model comparison, round-robin policy");
    println!("# machine: Table I (16 cores, 32 warps/core, 32 MSHRs, 192 GB/s)\n");

    let evals: Vec<KernelEval> = workloads::all()
        .iter()
        .map(|w| {
            let e = evaluate_kernel(w, &exp);
            eprintln!(
                "  done {:<28} oracle {:>8.3} cpi  ({:>6.2?} sim, {:>6.2?} model)",
                e.name,
                e.oracle_cpi,
                e.oracle_time,
                e.analysis_time + e.predict_time
            );
            e
        })
        .collect();

    print_error_table(&evals, &Model::ALL);

    println!();
    for m in Model::ALL {
        println!(
            "{:<16} mean error {:>7}   kernels under 20% error: {}",
            m.to_string(),
            pct(mean_error(&evals, m)),
            pct(fraction_below(&evals, m, 0.20)),
        );
    }
    println!(
        "\npaper reference: GPUMech 13.2% mean error (RR), Markov_Chain 62.9%;\n\
         75% of kernels under 20% error for GPUMech vs 50% for Markov_Chain"
    );

    if let Some(path) = json {
        dump_json(&evals, &path).unwrap_or_else(|e| gpumech_bench::fail(format!("write json failed: {e}")));
        eprintln!("wrote {path}");
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
