//! Figure 12: model comparison for the greedy-then-oldest policy.
//!
//! Identical to the Figure 11 harness but with GTO scheduling in both the
//! oracle and the models.
//!
//! Usage: `fig12_gto [--blocks N] [--json PATH]`

use gpumech_bench::{
    dump_json, evaluate_kernel, fraction_below, mean_error, pct, print_error_table, Experiment,
    KernelEval,
};
use gpumech_core::Model;
use gpumech_isa::SchedulingPolicy;
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = arg_value(&args, "--blocks").map(|s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));
    let json = arg_value(&args, "--json");

    let mut exp = Experiment::baseline().with_policy(SchedulingPolicy::GreedyThenOldest);
    exp.label = "fig12-gto".to_string();
    if let Some(b) = blocks {
        exp = exp.with_blocks(b);
    }

    println!("# Figure 12: model comparison, greedy-then-oldest policy");
    println!("# machine: Table I\n");

    let evals: Vec<KernelEval> = workloads::all()
        .iter()
        .map(|w| {
            let e = evaluate_kernel(w, &exp);
            eprintln!("  done {:<28} oracle {:>8.3} cpi", e.name, e.oracle_cpi);
            e
        })
        .collect();

    print_error_table(&evals, &Model::ALL);

    println!();
    for m in Model::ALL {
        println!(
            "{:<16} mean error {:>7}   kernels under 20% error: {}",
            m.to_string(),
            pct(mean_error(&evals, m)),
            pct(fraction_below(&evals, m, 0.20)),
        );
    }
    println!("\npaper reference: GPUMech 14.0% mean error (GTO), Markov_Chain 65.3%");

    if let Some(path) = json {
        dump_json(&evals, &path).unwrap_or_else(|e| gpumech_bench::fail(format!("write json failed: {e}")));
        eprintln!("wrote {path}");
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
