//! Figure 13: mean model error versus resident warps per core
//! (8, 16, 32, 48), round-robin policy.
//!
//! The paper's headline: the baselines' errors *grow* with warp count
//! (more warps → more contention they ignore) while GPUMech stays flat.
//!
//! Usage: `fig13_warps [--blocks N] [--json PATH]`

use gpumech_bench::{dump_json, evaluate_kernel, mean_error, pct, Experiment, KernelEval};
use gpumech_core::Model;
use gpumech_isa::SimConfig;
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = arg_value(&args, "--blocks").map(|s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));
    let json = arg_value(&args, "--json");

    println!("# Figure 13: mean error vs warps per core (RR policy)");
    println!("# sweep: 8, 16, 32, 48 resident warps\n");

    let mut all_evals: Vec<KernelEval> = Vec::new();
    let mut rows: Vec<(usize, Vec<f64>)> = Vec::new();
    for warps in [8usize, 16, 32, 48] {
        let mut exp = Experiment::baseline();
        exp.cfg = SimConfig::table1().with_warps_per_core(warps);
        exp.label = format!("warps={warps}");
        if let Some(b) = blocks {
            exp = exp.with_blocks(b);
        }
        let evals: Vec<KernelEval> =
            workloads::all().iter().map(|w| evaluate_kernel(w, &exp)).collect();
        eprintln!("  swept warps={warps}");
        let errs: Vec<f64> = Model::ALL.iter().map(|&m| mean_error(&evals, m)).collect();
        rows.push((warps, errs));
        all_evals.extend(evals);
    }

    print!("{:<8}", "warps");
    for m in Model::ALL {
        print!("{:>16}", m.to_string());
    }
    println!();
    for (warps, errs) in &rows {
        print!("{warps:<8}");
        for e in errs {
            print!("{:>16}", pct(*e));
        }
        println!();
    }
    println!(
        "\npaper reference: all models except MT_MSHR/MT_MSHR_BAND degrade as\n\
         warps increase; GPUMech's error is highest at 8 warps and flat after"
    );

    if let Some(path) = json {
        dump_json(&all_evals, &path).unwrap_or_else(|e| gpumech_bench::fail(format!("write json failed: {e}")));
        eprintln!("wrote {path}");
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
