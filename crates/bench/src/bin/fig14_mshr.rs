//! Figure 14: mean model error versus MSHR entries (64, 96, 128, 256),
//! round-robin policy.
//!
//! The paper's point: with more MSHRs the MSHR queueing shrinks (MT and
//! MT_MSHR converge) but DRAM queueing *grows* (more in-flight requests),
//! so only MT_MSHR_BAND tracks the oracle across the sweep.
//!
//! Usage: `fig14_mshr [--blocks N] [--json PATH]`

use gpumech_bench::{dump_json, evaluate_kernel, mean_error, pct, Experiment, KernelEval};
use gpumech_core::Model;
use gpumech_isa::SimConfig;
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = arg_value(&args, "--blocks").map(|s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));
    let json = arg_value(&args, "--json");

    println!("# Figure 14: mean error vs MSHR entries (RR policy)");
    println!("# sweep: 64, 96, 128, 256 entries\n");

    let mut all_evals: Vec<KernelEval> = Vec::new();
    let mut rows: Vec<(usize, Vec<f64>)> = Vec::new();
    for mshrs in [64usize, 96, 128, 256] {
        let mut exp = Experiment::baseline();
        exp.cfg = SimConfig::table1().with_mshrs(mshrs);
        exp.label = format!("mshrs={mshrs}");
        if let Some(b) = blocks {
            exp = exp.with_blocks(b);
        }
        let evals: Vec<KernelEval> =
            workloads::all().iter().map(|w| evaluate_kernel(w, &exp)).collect();
        eprintln!("  swept mshrs={mshrs}");
        rows.push((mshrs, Model::ALL.iter().map(|&m| mean_error(&evals, m)).collect()));
        all_evals.extend(evals);
    }

    print!("{:<8}", "mshrs");
    for m in Model::ALL {
        print!("{:>16}", m.to_string());
    }
    println!();
    for (mshrs, errs) in &rows {
        print!("{mshrs:<8}");
        for e in errs {
            print!("{:>16}", pct(*e));
        }
        println!();
    }
    println!(
        "\npaper reference: MT vs MT_MSHR error gap shrinks with more MSHRs;\n\
         every model except MT_MSHR_BAND degrades as entries increase"
    );

    if let Some(path) = json {
        dump_json(&all_evals, &path).unwrap_or_else(|e| gpumech_bench::fail(format!("write json failed: {e}")));
        eprintln!("wrote {path}");
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
