//! Figure 15: mean model error versus DRAM bandwidth
//! (64, 128, 192, 256 GB/s), round-robin policy.
//!
//! Lower bandwidth means higher DRAM queueing delays, so bandwidth-blind
//! models degrade sharply at 64 GB/s while MT_MSHR_BAND degrades least.
//!
//! Usage: `fig15_dram [--blocks N] [--json PATH]`

use gpumech_bench::{dump_json, evaluate_kernel, mean_error, pct, Experiment, KernelEval};
use gpumech_core::Model;
use gpumech_isa::SimConfig;
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = arg_value(&args, "--blocks").map(|s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));
    let json = arg_value(&args, "--json");

    println!("# Figure 15: mean error vs DRAM bandwidth (RR policy)");
    println!("# sweep: 64, 128, 192, 256 GB/s\n");

    let mut all_evals: Vec<KernelEval> = Vec::new();
    let mut rows: Vec<(u32, Vec<f64>)> = Vec::new();
    for bw in [64u32, 128, 192, 256] {
        let mut exp = Experiment::baseline();
        exp.cfg = SimConfig::table1().with_dram_bandwidth(f64::from(bw));
        exp.label = format!("dram={bw}GB/s");
        if let Some(b) = blocks {
            exp = exp.with_blocks(b);
        }
        let evals: Vec<KernelEval> =
            workloads::all().iter().map(|w| evaluate_kernel(w, &exp)).collect();
        eprintln!("  swept dram bandwidth={bw} GB/s");
        rows.push((bw, Model::ALL.iter().map(|&m| mean_error(&evals, m)).collect()));
        all_evals.extend(evals);
    }

    print!("{:<8}", "GB/s");
    for m in Model::ALL {
        print!("{:>16}", m.to_string());
    }
    println!();
    for (bw, errs) in &rows {
        print!("{bw:<8}");
        for e in errs {
            print!("{:>16}", pct(*e));
        }
        println!();
    }
    println!(
        "\npaper reference: GPUMech 26.1% at 64 GB/s and under 17.8% elsewhere;\n\
         the gap between MT_MSHR_BAND and the rest shrinks as bandwidth grows"
    );

    if let Some(path) = json {
        dump_json(&all_evals, &path).unwrap_or_else(|e| gpumech_bench::fail(format!("write json failed: {e}")));
        eprintln!("wrote {path}");
    }
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
