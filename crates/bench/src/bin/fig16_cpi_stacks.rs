//! Figure 16: CPI stacks versus warp count for three kernels with distinct
//! memory-divergence degrees, with the oracle CPI alongside.
//!
//! Kernels (as in the paper): `cfd_step_factor` (coalesced),
//! `cfd_compute_flux` (medium divergence), `kmeans_invert_mapping`
//! (maximal divergence + write traffic). For each warp count in
//! {8, 16, 32, 48} the harness prints the predicted CPI stack (BASE, DEP,
//! L1, L2, DRAM, MSHR, QUEUE), the stack total, and the measured oracle
//! CPI — all normalized by the 8-warp oracle CPI, as in the paper's plot.
//!
//! Usage: `fig16_cpi_stacks [--blocks N]`

use gpumech_core::{CpiStack, Gpumech, PredictionRequest, StallCategory};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_timing::simulate;
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let blocks = arg_value(&args, "--blocks").map(|s| s.parse().unwrap_or_else(|_| gpumech_bench::fail("--blocks expects a number")));

    let policy = SchedulingPolicy::RoundRobin;
    println!("# Figure 16: CPI stacks vs warps per core (RR policy)");
    println!("# all values normalized by each kernel's 8-warp oracle CPI\n");

    for w in workloads::figure16() {
        let w = match blocks {
            Some(b) => w.with_blocks(b),
            None => w,
        };
        let trace = w.trace().unwrap_or_else(|e| gpumech_bench::fail(format!("trace failed: {e}")));
        println!("== {} ({}) ==", w.name, w.description);

        let mut rows: Vec<(usize, CpiStack, f64)> = Vec::new();
        for warps in [8usize, 16, 32, 48] {
            let cfg = SimConfig::table1().with_warps_per_core(warps);
            let oracle = simulate(&trace, &cfg, policy).unwrap_or_else(|e| gpumech_bench::fail(format!("oracle failed: {e}"))).cpi();
            let model = Gpumech::new(cfg);
            let analysis = model.analyze(&trace).unwrap_or_else(|e| gpumech_bench::fail(format!("analysis failed: {e}")));
            let p = model
                .run(&PredictionRequest::from_analysis(&analysis).policy(policy))
                .unwrap_or_else(|e| gpumech_bench::fail(format!("prediction failed: {e}")));
            rows.push((warps, p.cpi, oracle));
            eprintln!("  {}: warps={warps} done", w.name);
        }
        let norm = rows[0].2; // 8-warp oracle CPI

        print!("{:<8}", "warps");
        for cat in StallCategory::ALL {
            print!("{:>8}", cat.to_string());
        }
        println!("{:>10}{:>10}", "TOTAL", "oracle");
        for (warps, stack, oracle) in &rows {
            print!("{warps:<8}");
            for cat in StallCategory::ALL {
                print!("{:>8.3}", stack.get(cat) / norm);
            }
            println!("{:>10.3}{:>10.3}", stack.total() / norm, oracle / norm);
        }
        println!();
    }
    println!(
        "paper reference: cfd_step_factor scales well (DRAM-latency bound);\n\
         cfd_compute_flux saturates around 32 warps as MSHR grows;\n\
         kmeans_invert_mapping is dominated by QUEUE (write traffic), not DRAM"
    );
}

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}
