//! Renders the recorded experiment JSONs (`results/*.json`) into a single
//! markdown report — the machine-generated companion to EXPERIMENTS.md.
//!
//! Usage: `report [--dir results] [--out results/report.md]`

use std::collections::BTreeMap;
use std::path::Path;

use gpumech_bench::{fraction_below, mean_error, KernelEval};
use gpumech_core::Model;

fn load(dir: &Path, name: &str) -> Option<Vec<KernelEval>> {
    let path = dir.join(name);
    let text = std::fs::read_to_string(&path).ok()?;
    serde_json::from_str(&text).ok()
}

fn model_header() -> String {
    let mut s = String::from("| config |");
    for m in Model::ALL {
        s.push_str(&format!(" {m} |"));
    }
    s.push_str("\n|---|");
    s.push_str(&"---|".repeat(Model::ALL.len()));
    s.push('\n');
    s
}

fn sweep_table(evals: &[KernelEval]) -> String {
    // Group by config label, preserving first-seen order via BTreeMap over
    // insertion index.
    let mut order: Vec<String> = Vec::new();
    let mut groups: BTreeMap<String, Vec<&KernelEval>> = BTreeMap::new();
    for e in evals {
        if !groups.contains_key(&e.config_label) {
            order.push(e.config_label.clone());
        }
        groups.entry(e.config_label.clone()).or_default().push(e);
    }
    let mut out = model_header();
    for label in order {
        let evals: Vec<KernelEval> = groups[&label].iter().map(|&e| e.clone()).collect();
        out.push_str(&format!("| {label} |"));
        for m in Model::ALL {
            out.push_str(&format!(" {:.1}% |", 100.0 * mean_error(&evals, m)));
        }
        out.push('\n');
    }
    out
}

fn per_kernel_table(evals: &[KernelEval], top: usize) -> String {
    let mut rows: Vec<&KernelEval> = evals.iter().collect();
    rows.sort_by(|a, b| {
        b.error(Model::MtMshrBand).total_cmp(&a.error(Model::MtMshrBand))
    });
    let mut out = String::from("| kernel | oracle CPI | GPUMech error |\n|---|---|---|\n");
    for e in rows.iter().take(top) {
        out.push_str(&format!(
            "| {} | {:.2} | {:.1}% |\n",
            e.name,
            e.oracle_cpi,
            100.0 * e.error(Model::MtMshrBand)
        ));
    }
    out
}

/// Aggregates model warnings across evaluations: distinct warning text →
/// the kernels (deduplicated, first-seen order) that produced it.
fn warning_table(evals: &[KernelEval]) -> String {
    let mut order: Vec<String> = Vec::new();
    let mut kernels: BTreeMap<String, Vec<String>> = BTreeMap::new();
    for e in evals {
        for w in gpumech_bench::distinct_warnings(&e.predictions) {
            if !kernels.contains_key(&w) {
                order.push(w.clone());
            }
            let ks = kernels.entry(w).or_default();
            if !ks.contains(&e.name) {
                ks.push(e.name.clone());
            }
        }
    }
    if order.is_empty() {
        return "(no model warnings recorded)\n".to_string();
    }
    let mut out = String::from("| warning | kernels |\n|---|---|\n");
    for w in order {
        out.push_str(&format!("| {w} | {} |\n", kernels[&w].join(", ")));
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let get = |flag: &str| {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
    };
    let dir = get("--dir").unwrap_or_else(|| "results".to_string());
    let out_path = get("--out").unwrap_or_else(|| format!("{dir}/report.md"));
    let dir = Path::new(&dir);

    let mut out = String::from("# GPUMech reproduction — generated report\n\n");
    out.push_str("Mean relative CPI error per model (lower is better).\n\n");

    let mut all_evals: Vec<KernelEval> = Vec::new();
    for (file, title) in [
        ("fig11.json", "Figure 11 — round-robin policy"),
        ("fig12.json", "Figure 12 — greedy-then-oldest policy"),
        ("fig13.json", "Figure 13 — warps per core sweep"),
        ("fig14.json", "Figure 14 — MSHR entries sweep"),
        ("fig15.json", "Figure 15 — DRAM bandwidth sweep"),
    ] {
        let Some(evals) = load(dir, file) else {
            out.push_str(&format!("## {title}\n\n(missing {file})\n\n"));
            continue;
        };
        out.push_str(&format!("## {title}\n\n"));
        out.push_str(&sweep_table(&evals));
        if file == "fig11.json" {
            out.push_str(&format!(
                "\nGPUMech kernels under 20% error: {:.1}%; Markov_Chain: {:.1}%.\n",
                100.0 * fraction_below(&evals, Model::MtMshrBand, 0.2),
                100.0 * fraction_below(&evals, Model::MarkovChain, 0.2),
            ));
            out.push_str("\nHardest kernels for the full model:\n\n");
            out.push_str(&per_kernel_table(&evals, 8));
        }
        out.push('\n');
        all_evals.extend(evals);
    }

    // Model warnings would otherwise be dropped on the floor here — every
    // Prediction carries them through the JSON dumps, so surface them.
    out.push_str("## Model warnings\n\n");
    out.push_str(&warning_table(&all_evals));
    out.push('\n');

    std::fs::write(&out_path, &out)
        .unwrap_or_else(|e| gpumech_bench::fail(format!("write report failed: {e}")));
    println!("wrote {out_path}");
}
