//! Section VI-D: GPUMech's modeling speed versus detailed timing
//! simulation.
//!
//! For a set of representative kernels, measures (a) the cycle-level
//! oracle's runtime, (b) the one-time GPUMech analysis cost (functional
//! cache simulation + interval algorithm over every warp + clustering),
//! and (c) the per-configuration prediction cost (multi-warp + contention
//! models on the representative warp). Reports both the full-pipeline
//! speedup and the explore-another-configuration speedup, mirroring the
//! paper's 97x claim and its observation that re-exploration is cheaper
//! still.
//!
//! Usage: `speedup [--blocks N] [kernel ...]`

use std::time::Duration;

use gpumech_bench::{evaluate_kernel, Experiment};
use gpumech_trace::workloads;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut blocks = None;
    let mut names: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        if a == "--blocks" {
            blocks = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| gpumech_bench::fail("--blocks expects a number")));
        } else {
            names.push(a);
        }
    }
    if names.is_empty() {
        names = vec![
            "cfd_step_factor".into(),
            "cfd_compute_flux".into(),
            "kmeans_invert_mapping".into(),
            "sdk_vectoradd".into(),
            "parboil_sgemm".into(),
            "bfs_kernel1".into(),
            "parboil_sad_calc8".into(),
            "hotspot_calculate_temp".into(),
        ];
    }

    let mut exp = Experiment::baseline();
    exp.label = "speedup".to_string();
    if let Some(b) = blocks {
        exp = exp.with_blocks(b);
    }

    println!("# Section VI-D: modeling speed vs detailed timing simulation\n");
    println!(
        "{:<26}{:>12}{:>12}{:>12}{:>10}{:>12}",
        "kernel", "oracle", "analysis", "predict", "speedup", "re-explore"
    );
    let (mut tot_o, mut tot_a, mut tot_p) = (Duration::ZERO, Duration::ZERO, Duration::ZERO);
    for name in &names {
        let w = workloads::by_name(name).unwrap_or_else(|| gpumech_bench::fail(format!("unknown kernel {name}")));
        let e = evaluate_kernel(&w, &exp);
        let model_t = e.analysis_time + e.predict_time;
        println!(
            "{:<26}{:>12.2?}{:>12.2?}{:>12.2?}{:>9.0}x{:>11.0}x",
            e.name,
            e.oracle_time,
            e.analysis_time,
            e.predict_time,
            e.oracle_time.as_secs_f64() / model_t.as_secs_f64(),
            e.oracle_time.as_secs_f64() / e.predict_time.as_secs_f64().max(1e-9),
        );
        tot_o += e.oracle_time;
        tot_a += e.analysis_time;
        tot_p += e.predict_time;
    }
    let model_t = (tot_a + tot_p).as_secs_f64();
    println!(
        "\nTOTAL: oracle {tot_o:.2?}, model {:?} -> {:.0}x full-pipeline speedup, {:.0}x when re-exploring configurations",
        tot_a + tot_p,
        tot_o.as_secs_f64() / model_t,
        tot_o.as_secs_f64() / tot_p.as_secs_f64().max(1e-9),
    );
    println!("paper reference: GPUMech is ~97x faster than detailed simulation");
}
