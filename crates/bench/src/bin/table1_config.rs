//! Table I: the simulated machine configuration.
//!
//! Prints the active `SimConfig` in the paper's Table I layout so runs are
//! self-documenting.
//!
//! Usage: `table1_config`

use gpumech_isa::SimConfig;

fn main() {
    let cfg = SimConfig::table1();
    if let Err(e) = cfg.validate() {
        gpumech_bench::fail(format!("Table I config invalid: {e}"));
    }
    println!("# Table I: simulation configuration");
    println!("{:<28}{}", "Number of cores", cfg.num_cores);
    println!("{:<28}{} GHz", "Clock", cfg.clock_ghz);
    println!("{:<28}{}", "SIMT width", cfg.simt_width);
    println!(
        "{:<28}{} threads ({} warps)",
        "Maximum threads/core",
        cfg.max_warps_per_core * 32,
        cfg.max_warps_per_core
    );
    println!("{:<28}{} warp-instruction/cycle", "Issue width", cfg.issue_width);
    println!(
        "{:<28}normal FP {} cycles, int {} cycles, SFU {} cycles",
        "Instruction latencies",
        cfg.latencies.fp_add,
        cfg.latencies.int_alu,
        cfg.latencies.sfu
    );
    println!("{:<28}{} KiB (software managed)", "Shared memory", cfg.shared_mem_kib);
    println!(
        "{:<28}{} KB, {} B line, {} cycles, {}-way, {} MSHR entries",
        "L1 cache",
        cfg.l1.size_bytes / 1024,
        cfg.l1.line_bytes,
        cfg.l1.latency,
        cfg.l1.assoc,
        cfg.num_mshrs
    );
    println!(
        "{:<28}{} KB, {} B line, {} cycles, {}-way",
        "L2 cache",
        cfg.l2.size_bytes / 1024,
        cfg.l2.line_bytes,
        cfg.l2.latency,
        cfg.l2.assoc
    );
    println!(
        "{:<28}{} GB/s bandwidth, {} cycles access latency",
        "DRAM", cfg.dram_bandwidth_gbps, cfg.dram_latency
    );
    println!(
        "{:<28}{:.3} cycles per 128 B line",
        "  -> bus service time",
        cfg.dram_service_cycles()
    );
}
