//! Table II: the evaluated models.
//!
//! Usage: `table2_models`

use gpumech_core::Model;

fn main() {
    println!("# Table II: evaluated models");
    println!("{:<18}description", "model");
    for m in Model::ALL {
        let desc = match m {
            Model::NaiveInterval => "optimistic overlap (Equation 1)",
            Model::MarkovChain => "Markov-chain multithreading model (Chen & Aamodt, HPCA 2009)",
            Model::Mt => "modeling multithreading (Section IV-A)",
            Model::MtMshr => "multithreading + MSHR contention (Section IV-B1)",
            Model::MtMshrBand => {
                "multithreading + MSHR + DRAM bandwidth (Section IV-B2) — GPUMech"
            }
        };
        println!("{:<18}{desc}", m.to_string());
    }
}
