//! Table III: stall types of CPI stacks.
//!
//! Usage: `table3_stall_types`

use gpumech_core::StallCategory;

fn main() {
    println!("# Table III: stall types of CPI stacks");
    println!("{:<14}stall type", "abbreviation");
    for cat in StallCategory::ALL {
        let desc = match cat {
            StallCategory::Base => "instruction issue cycles",
            StallCategory::Dep => "compute dependencies",
            StallCategory::L1 => "L1 hits",
            StallCategory::L2 => "L2 hits",
            StallCategory::Dram => "DRAM access latency (no queueing)",
            StallCategory::Mshr => "MSHR queueing delay",
            StallCategory::Queue => "DRAM queueing delay",
        };
        println!("{:<14}{desc}", cat.to_string());
    }
}
