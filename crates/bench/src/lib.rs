//! Shared experiment harness for regenerating the paper's tables and
//! figures.
//!
//! Every `fig*`/`table*` binary in `src/bin/` is a thin wrapper over this
//! library: [`evaluate_kernel`] runs the timing oracle once and all five
//! Table II models against it, [`KernelEval::error`] computes the paper's
//! validation metric (relative CPI error), and the formatting helpers print
//! the same rows/series the paper plots. Results can also be dumped as
//! JSON for EXPERIMENTS.md bookkeeping.

use std::time::{Duration, Instant};

use gpumech_core::{Gpumech, Model, Prediction, PredictionRequest, SelectionMethod};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_timing::{simulate, TimingResult};
use gpumech_trace::{KernelTrace, Workload};
use serde::{Deserialize, Serialize};

/// Grid size (blocks) used by the experiment harnesses.
///
/// The bundled workloads default to 192 blocks (3x occupancy of the
/// Table I machine, as the paper requires); the harnesses keep that but
/// allow an override for quick runs via [`Experiment::blocks`].
pub const DEFAULT_BLOCKS: usize = 192;

/// Prints `error: {msg}` to stderr and exits with a failure code.
///
/// The harness binaries treat any setup failure (unknown kernel, bad flag,
/// oracle error) as fatal; this keeps that behaviour while avoiding a
/// panic and its backtrace.
pub fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1)
}

/// One kernel evaluated under one configuration and policy: the oracle
/// result and every model's prediction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KernelEval {
    /// Workload name.
    pub name: String,
    /// Machine configuration used.
    pub config_label: String,
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
    /// Oracle (cycle-level) CPI.
    pub oracle_cpi: f64,
    /// Oracle wall-clock runtime.
    pub oracle_time: Duration,
    /// Model predictions in Table II order.
    pub predictions: Vec<Prediction>,
    /// Wall-clock time of the one-time analysis (cache sim + interval
    /// algorithm over all warps + clustering).
    pub analysis_time: Duration,
    /// Wall-clock time of the per-(model, policy) prediction step.
    pub predict_time: Duration,
}

impl KernelEval {
    /// Relative CPI error of `model` versus the oracle:
    /// `|CPI_model - CPI_sim| / CPI_sim`.
    #[must_use]
    pub fn error(&self, model: Model) -> f64 {
        let p = self.prediction(model);
        (p.cpi_total() - self.oracle_cpi).abs() / self.oracle_cpi
    }

    /// The prediction of one model. Exits the process if `model` was not
    /// evaluated (a harness programming error).
    #[must_use]
    pub fn prediction(&self, model: Model) -> &Prediction {
        self.predictions
            .iter()
            .find(|p| p.model == model)
            .unwrap_or_else(|| fail(format_args!("model {model} missing from evaluation")))
    }
}

/// Experiment configuration shared by the harness binaries.
#[derive(Debug, Clone)]
pub struct Experiment {
    /// Machine configuration.
    pub cfg: SimConfig,
    /// Human-readable label for the configuration (axis value in sweeps).
    pub label: String,
    /// Scheduling policy.
    pub policy: SchedulingPolicy,
    /// Grid size override (`None` keeps each workload's default grid).
    pub blocks: Option<usize>,
    /// Representative-warp selection method.
    pub selection: SelectionMethod,
}

impl Experiment {
    /// Baseline experiment: Table I machine, round-robin, clustering.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            cfg: SimConfig::table1(),
            label: "table1".to_string(),
            policy: SchedulingPolicy::RoundRobin,
            blocks: None,
            selection: SelectionMethod::Clustering,
        }
    }

    /// Same experiment under a different policy.
    #[must_use]
    pub fn with_policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Same experiment with a reduced grid (quick runs).
    #[must_use]
    pub fn with_blocks(mut self, blocks: usize) -> Self {
        self.blocks = Some(blocks);
        self
    }
}

/// Runs the oracle and all five models for one workload.
///
/// Exits the process (via [`fail`]) if tracing, simulation, or modeling
/// fails — harness binaries treat any failure as fatal.
#[must_use]
pub fn evaluate_kernel(workload: &Workload, exp: &Experiment) -> KernelEval {
    let w = match exp.blocks {
        Some(b) => workload.clone().with_blocks(b),
        None => workload.clone(),
    };
    let trace = w.trace().unwrap_or_else(|e| fail(format_args!("{}: trace failed: {e}", w.name)));
    evaluate_trace(&w.name, &trace, exp)
}

/// Deduplicated model warnings across all predictions of an evaluation,
/// in first-seen order.
#[must_use]
pub fn distinct_warnings(predictions: &[Prediction]) -> Vec<String> {
    let mut seen: Vec<String> = Vec::new();
    for p in predictions {
        for w in &p.warnings {
            if !seen.contains(w) {
                seen.push(w.clone());
            }
        }
    }
    seen
}

/// [`evaluate_kernel`] over a pre-generated trace.
///
/// Model warnings are printed to stderr (deduplicated) rather than
/// silently dropped; they also remain on each serialized [`Prediction`]
/// so JSON dumps carry them.
///
/// Exits the process (via [`fail`]) if simulation or modeling fails.
#[must_use]
pub fn evaluate_trace(name: &str, trace: &KernelTrace, exp: &Experiment) -> KernelEval {
    let _span = gpumech_obs::span!("bench.eval.kernel", name = name, policy = exp.policy.to_string());
    let t0 = Instant::now();
    let oracle: TimingResult = simulate(trace, &exp.cfg, exp.policy)
        .unwrap_or_else(|e| fail(format_args!("{name}: oracle failed: {e}")));
    let oracle_time = t0.elapsed();

    let model = Gpumech::new(exp.cfg.clone());
    let t1 = Instant::now();
    let analysis = model
        .analyze(trace)
        .unwrap_or_else(|e| fail(format_args!("{name}: analysis failed: {e}")));
    let analysis_time = t1.elapsed();

    let t2 = Instant::now();
    let predictions: Vec<Prediction> = Model::ALL
        .iter()
        .map(|&m| {
            let req = PredictionRequest::from_analysis(&analysis)
                .policy(exp.policy)
                .model(m)
                .selection(exp.selection);
            model
                .run(&req)
                .unwrap_or_else(|e| fail(format_args!("{name}: prediction failed: {e}")))
        })
        .collect();
    let predict_time = t2.elapsed();

    let warnings = distinct_warnings(&predictions);
    gpumech_obs::counter!("bench.eval.kernels", 1u64);
    gpumech_obs::counter!("bench.eval.warnings", warnings.len() as u64);
    for w in &warnings {
        eprintln!("warning: {name}: {w}");
    }

    KernelEval {
        name: name.to_string(),
        config_label: exp.label.clone(),
        policy: exp.policy,
        oracle_cpi: oracle.cpi(),
        oracle_time,
        predictions,
        analysis_time,
        predict_time,
    }
}

/// Minimal wall-clock micro-benchmark used by the `benches/` binaries
/// (`harness = false`): one warm-up call, then `iters` timed iterations.
/// Prints and returns the mean per-iteration time.
///
/// This replaces an external benchmarking framework: the build environment
/// is offline, and plain `Instant` timing is plenty for the coarse
/// "tracer not regressed" / "model vs oracle" comparisons recorded in
/// EXPERIMENTS.md.
pub fn bench_wall<T>(label: &str, iters: u32, mut f: impl FnMut() -> T) -> Duration {
    assert!(iters > 0, "bench_wall needs at least one iteration");
    std::hint::black_box(f()); // warm-up
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let per = t0.elapsed() / iters;
    println!("{label:<44} {per:>12.3?}  (mean of {iters})");
    per
}

/// Mean of `values`.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() { 0.0 } else { values.iter().sum::<f64>() / values.len() as f64 }
}

/// Mean relative error of one model across evaluations.
#[must_use]
pub fn mean_error(evals: &[KernelEval], model: Model) -> f64 {
    mean(&evals.iter().map(|e| e.error(model)).collect::<Vec<_>>())
}

/// Fraction of evaluations with error below `threshold` for one model
/// (the paper's "75% of kernels have less than 20% error" style metric).
#[must_use]
pub fn fraction_below(evals: &[KernelEval], model: Model, threshold: f64) -> f64 {
    if evals.is_empty() {
        return 0.0;
    }
    evals.iter().filter(|e| e.error(model) < threshold).count() as f64 / evals.len() as f64
}

/// Formats a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Prints a per-kernel error table for the given models.
pub fn print_error_table(evals: &[KernelEval], models: &[Model]) {
    print!("{:<28}", "kernel");
    print!("{:>10}", "oracle");
    for m in models {
        print!("{:>16}", m.to_string());
    }
    println!();
    for e in evals {
        print!("{:<28}{:>10.3}", e.name, e.oracle_cpi);
        for &m in models {
            print!("{:>16}", pct(e.error(m)));
        }
        println!();
    }
    print!("{:<28}{:>10}", "MEAN ERROR", "");
    for &m in models {
        print!("{:>16}", pct(mean_error(evals, m)));
    }
    println!();
}

/// Writes evaluations as JSON to `path` (used to record EXPERIMENTS.md
/// data).
///
/// # Errors
///
/// Propagates I/O and serialization errors.
pub fn dump_json(evals: &[KernelEval], path: &str) -> Result<(), Box<dyn std::error::Error>> {
    std::fs::write(path, serde_json::to_string_pretty(evals)?)?;
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_trace::workloads;

    #[test]
    fn evaluate_kernel_produces_all_models() {
        let w = workloads::by_name("sdk_vectoradd").unwrap();
        let exp = Experiment::baseline().with_blocks(8);
        let e = evaluate_kernel(&w, &exp);
        assert_eq!(e.predictions.len(), 5);
        assert!(e.oracle_cpi > 0.0);
        for m in Model::ALL {
            assert!(e.error(m).is_finite());
        }
    }

    #[test]
    fn mean_and_fraction_helpers() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(pct(0.132), "13.2%");
    }
}
