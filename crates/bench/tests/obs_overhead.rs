//! Observability overhead regression test.
//!
//! Two guarantees, both recorded in EXPERIMENTS.md:
//!
//! 1. With no recorder installed, an instrumentation probe is one relaxed
//!    atomic load and a branch — effectively free.
//! 2. With a recorder installed, the full pipeline stays within a small
//!    constant factor of the uninstrumented run, because hot loops
//!    aggregate locally and emit once per stage.
//!
//! Bounds are deliberately generous (shared CI machines jitter); they
//! exist to catch gross regressions such as a span per instruction, not to
//! benchmark precisely.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

use gpumech_bench::bench_wall;
use gpumech_core::{Gpumech, PredictionRequest};
use gpumech_isa::SimConfig;
use gpumech_obs::Recorder;
use gpumech_trace::{workloads, KernelTrace};

/// Serializes the tests: both manipulate the process-global recorder.
static OBS_LOCK: Mutex<()> = Mutex::new(());

fn obs_lock() -> std::sync::MutexGuard<'static, ()> {
    OBS_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn pipeline_once(trace: &KernelTrace) -> f64 {
    let model = Gpumech::new(SimConfig::table1());
    let p = model
        .run(&PredictionRequest::from_trace(trace))
        .expect("bundled workloads model cleanly");
    p.cpi_total()
}

#[test]
fn enabled_recorder_overhead_stays_bounded() {
    let _serial = obs_lock();
    for name in ["sdk_vectoradd", "bfs_kernel1", "kmeans_invert_mapping"] {
        let w = workloads::by_name(name).unwrap().with_blocks(4);
        let trace = w.trace().unwrap();

        assert!(gpumech_obs::installed().is_none(), "leftover recorder from another test");
        let off = bench_wall(&format!("{name} pipeline obs=off"), 5, || pipeline_once(&trace));

        let rec = Arc::new(Recorder::new());
        let on = {
            let _installed = gpumech_obs::install(Arc::clone(&rec));
            bench_wall(&format!("{name} pipeline obs=on"), 5, || pipeline_once(&trace))
        };

        let snap = rec.snapshot();
        assert!(!snap.spans.is_empty(), "{name}: enabled run recorded no spans");
        assert!(snap.invalid_names.is_empty(), "{name}: bad names {:?}", snap.invalid_names);

        let bound = off * 5 + Duration::from_millis(5);
        assert!(
            on < bound,
            "{name}: instrumented pipeline too slow: {on:?} vs {off:?} uninstrumented"
        );
    }
}

#[test]
fn disabled_probe_costs_one_branch() {
    let _serial = obs_lock();
    assert!(gpumech_obs::installed().is_none(), "leftover recorder from another test");
    // 100 probes per timed iteration; the value expression must not even
    // be evaluated on the disabled path.
    let per = bench_wall("disabled probes x100", 100_000, || {
        for i in 0..100u64 {
            gpumech_obs::counter!("bench.micro.probe", i * 2);
        }
    });
    // 100 disabled probes in well under 100 us — orders of magnitude of
    // headroom over the ~ns they actually take.
    assert!(per < Duration::from_micros(100), "disabled probes too slow: {per:?} per 100");
}

#[test]
fn disabled_alloc_counting_costs_one_relaxed_load() {
    // With no AllocScope live, the counting global allocator adds one
    // relaxed load and a branch per alloc/free. Same budget discipline as
    // the probe test: 100 boxed allocations in well under 100 us means
    // the counting path stayed out of the fast path.
    assert!(!gpumech_perf::counting_enabled(), "leftover AllocScope from another test");
    let per = bench_wall("disabled alloc counting x100", 10_000, || {
        for i in 0..100u64 {
            std::hint::black_box(Box::new(i));
        }
    });
    assert!(per < Duration::from_micros(100), "disabled-path allocs too slow: {per:?} per 100");
}
