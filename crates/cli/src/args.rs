//! Minimal flag parser for the CLI — positional arguments plus
//! `--flag value` pairs, with typed accessors and unknown-flag detection.
//! Deliberately dependency-free (the workspace keeps its dependency
//! surface to the crates DESIGN.md justifies).

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: positionals in order, flags as key → value, and
/// boolean switches as a presence set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    flags: BTreeMap<String, String>,
    switches: Vec<String>,
}

/// Error produced while parsing or interpreting arguments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// A flag value failed to parse.
    BadValue {
        /// The flag name.
        flag: String,
        /// The unparsable text.
        value: String,
    },
    /// A flag not in the accepted set appeared.
    UnknownFlag(String),
    /// A required positional argument is absent.
    MissingPositional(&'static str),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingValue(flag) => write!(f, "flag --{flag} requires a value"),
            ArgError::BadValue { flag, value } => {
                write!(f, "flag --{flag} has invalid value {value:?}")
            }
            ArgError::UnknownFlag(flag) => write!(f, "unknown flag --{flag}"),
            ArgError::MissingPositional(name) => write!(f, "missing required argument <{name}>"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses `argv` (without the program/subcommand names), accepting only
    /// the flags in `allowed`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for unknown flags or flags missing a value.
    pub fn parse<I>(argv: I, allowed: &[&str]) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = String>,
    {
        Self::parse_with_switches(argv, allowed, &[])
    }

    /// Parses `argv` accepting valued `--flag value` pairs from `allowed`
    /// plus boolean `--switch` names (no value) from `switches`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for unknown flags or valued flags missing a
    /// value.
    pub fn parse_with_switches<I>(
        argv: I,
        allowed: &[&str],
        switches: &[&str],
    ) -> Result<Self, ArgError>
    where
        I: IntoIterator<Item = String>,
    {
        let mut out = Args::default();
        let mut it = argv.into_iter();
        while let Some(a) = it.next() {
            if let Some(name) = a.strip_prefix("--") {
                if switches.contains(&name) {
                    out.switches.push(name.to_string());
                } else if allowed.contains(&name) {
                    let value =
                        it.next().ok_or_else(|| ArgError::MissingValue(name.to_string()))?;
                    out.flags.insert(name.to_string(), value);
                } else {
                    return Err(ArgError::UnknownFlag(name.to_string()));
                }
            } else {
                out.positionals.push(a);
            }
        }
        Ok(out)
    }

    /// Whether the boolean switch `--name` was present.
    #[must_use]
    pub fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }

    /// The `i`-th positional argument.
    #[must_use]
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// The `i`-th positional, required.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::MissingPositional`] when absent.
    pub fn required(&self, i: usize, name: &'static str) -> Result<&str, ArgError> {
        self.positional(i).ok_or(ArgError::MissingPositional(name))
    }

    /// A string flag.
    #[must_use]
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A typed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when the value does not parse.
    pub fn flag_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.flags.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue {
                flag: name.to_string(),
                value: v.clone(),
            }),
        }
    }

    /// An optional typed flag.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError::BadValue`] when present but unparsable.
    pub fn flag_opt<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, ArgError> {
        match self.flags.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| ArgError::BadValue { flag: name.to_string(), value: v.clone() }),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(ToString::to_string).collect()
    }

    #[test]
    fn positionals_and_flags_separate() {
        let a = Args::parse(argv(&["kernel1", "--blocks", "64", "extra"]), &["blocks"]).unwrap();
        assert_eq!(a.positional(0), Some("kernel1"));
        assert_eq!(a.positional(1), Some("extra"));
        assert_eq!(a.flag("blocks"), Some("64"));
        assert_eq!(a.flag_or("blocks", 0usize).unwrap(), 64);
    }

    #[test]
    fn unknown_flags_are_rejected() {
        let e = Args::parse(argv(&["--bogus", "1"]), &["blocks"]).unwrap_err();
        assert_eq!(e, ArgError::UnknownFlag("bogus".into()));
    }

    #[test]
    fn missing_value_is_rejected() {
        let e = Args::parse(argv(&["--blocks"]), &["blocks"]).unwrap_err();
        assert_eq!(e, ArgError::MissingValue("blocks".into()));
    }

    #[test]
    fn bad_typed_value_is_reported() {
        let a = Args::parse(argv(&["--blocks", "lots"]), &["blocks"]).unwrap();
        assert!(matches!(a.flag_or("blocks", 1usize), Err(ArgError::BadValue { .. })));
        assert!(matches!(a.flag_opt::<usize>("blocks"), Err(ArgError::BadValue { .. })));
    }

    #[test]
    fn defaults_and_required() {
        let a = Args::parse(argv(&[]), &["blocks"]).unwrap();
        assert_eq!(a.flag_or("blocks", 7usize).unwrap(), 7);
        assert_eq!(a.flag_opt::<usize>("blocks").unwrap(), None);
        assert!(matches!(a.required(0, "kernel"), Err(ArgError::MissingPositional("kernel"))));
    }

    #[test]
    fn switches_parse_without_values() {
        let a = Args::parse_with_switches(
            argv(&["--resume", "--blocks", "8", "kernel1"]),
            &["blocks"],
            &["resume"],
        )
        .unwrap();
        assert!(a.switch("resume"));
        assert!(!a.switch("json"));
        assert_eq!(a.flag_or("blocks", 0usize).unwrap(), 8);
        assert_eq!(a.positional(0), Some("kernel1"));
        // A switch name is not a valued flag and vice versa.
        let e = Args::parse_with_switches(argv(&["--resume", "x"]), &["blocks"], &[]).unwrap_err();
        assert_eq!(e, ArgError::UnknownFlag("resume".into()));
    }

    #[test]
    fn errors_render_helpfully() {
        assert_eq!(ArgError::UnknownFlag("x".into()).to_string(), "unknown flag --x");
        assert_eq!(
            ArgError::MissingPositional("kernel").to_string(),
            "missing required argument <kernel>"
        );
    }
}
