//! Subcommand implementations. Every command returns the text it would
//! print, so tests assert on output without process spawning.

use std::fmt;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use gpumech_analyze::{analyze, KernelAnalysis, Severity};
use gpumech_core::{
    summarize_population, Gpumech, Model, Prediction, PredictionRequest, SchedulingPolicy,
    SelectionMethod, StallCategory, Weighting,
};
use gpumech_exec::{
    analysis_config_fingerprint, job_fingerprints, BatchEngine, BatchError, BatchJob,
    BatchOptions, ExecError, ProfileCache,
};
use gpumech_isa::{Kernel, SimConfig};
use gpumech_obs::Recorder;
use gpumech_perf::{
    baseline::BASELINE_VERSION, run_suite, suite_config, Baseline, SuiteOptions, Tolerance,
    STAGE_NAMES,
};
use gpumech_shard::{
    merge_files, rejected_fingerprint, supervise, verify_expectation, ChaosKill, CounterEntry,
    FindingKind, JobRow, MergeFinding, MergeOptions, MergeOutcome, ShardSpec, SupervisorConfig,
    SweepManifest, SweepReport,
};
use gpumech_timing::simulate;
use gpumech_trace::{workloads, TraceError, Workload};
use serde::Value;

use crate::args::{ArgError, Args};
use crate::USAGE;

/// Error surfaced to the user by the CLI.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing or validation failed.
    Args(ArgError),
    /// The named workload does not exist.
    UnknownKernel(String),
    /// The named subcommand does not exist.
    UnknownCommand(String),
    /// A flag accepted only specific values.
    BadChoice {
        /// The flag name.
        flag: &'static str,
        /// The offending value.
        value: String,
        /// The accepted values.
        expected: &'static str,
    },
    /// The machine configuration assembled from `--warps`/`--mshrs`/`--bw`/
    /// `--sfu` flags failed validation.
    Config(String),
    /// The underlying library failed.
    Model(String),
    /// Writing an output file failed.
    Io(std::io::Error),
    /// `lint` found error-severity diagnostics. The report still carries
    /// the full rendered output so `main` can print it before exiting
    /// nonzero.
    LintFailed {
        /// Rendered lint report (same text a clean run would print).
        report: String,
        /// Number of error-severity findings.
        errors: usize,
    },
    /// `obs-validate` found schema or naming violations in a JSONL trace.
    /// The report carries one line per violation so `main` can print it
    /// before exiting nonzero.
    ObsInvalid {
        /// Rendered problem list, one line each.
        report: String,
        /// Number of violations.
        problems: usize,
    },
    /// `perf compare` found stages regressed beyond the noise tolerance.
    /// The report carries the full comparison table so `main` can print
    /// it before exiting nonzero.
    PerfRegression {
        /// Rendered comparison table (same text a clean run would print).
        report: String,
        /// Number of regressed stages.
        regressions: usize,
    },
    /// `merge` (or the auto-merge after `supervise`) found typed merge
    /// findings — corrupt shard files, cross-sweep mixes, coverage gaps,
    /// duplicate conflicts, or a byte mismatch against `--expect`. The
    /// report carries one line per finding so `main` can print it before
    /// exiting nonzero; no merged output is written.
    MergeFailed {
        /// Rendered finding list, one line each.
        report: String,
        /// Number of findings.
        findings: usize,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}\n\n{USAGE}"),
            CliError::UnknownKernel(k) => {
                write!(f, "unknown kernel {k:?}; run `gpumech list` for the catalogue")
            }
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?}\n\n{USAGE}"),
            CliError::BadChoice { flag, value, expected } => {
                write!(f, "--{flag} must be one of {expected}, got {value:?}")
            }
            CliError::Config(e) => {
                write!(f, "invalid machine configuration: {e} (run `gpumech config` for defaults)")
            }
            CliError::Model(e) => write!(f, "modeling failed: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::LintFailed { errors, .. } => {
                write!(f, "lint found {errors} error-severity finding(s)")
            }
            CliError::ObsInvalid { problems, .. } => {
                write!(f, "observability trace failed validation with {problems} problem(s)")
            }
            CliError::PerfRegression { regressions, .. } => {
                write!(f, "perf compare found {regressions} regressed stage(s)")
            }
            CliError::MergeFailed { findings, .. } => {
                write!(f, "merge failed with {findings} finding(s); no merged output written")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

const MACHINE_FLAGS: [&str; 5] = ["blocks", "warps", "mshrs", "bw", "sfu"];

/// Serializes installation of the process-global recorder. The recorder
/// slot is shared by every thread, so concurrent commands (the test
/// harness runs them in parallel) must take turns.
static OBS_SERIAL: Mutex<()> = Mutex::new(());

/// Runs `f` under a freshly installed recorder when `--obs-out` was given
/// and writes the JSONL export afterwards; without the flag, runs `f`
/// directly with observability disabled (one atomic load per probe).
fn with_obs<F>(args: &Args, f: F) -> Result<String, CliError>
where
    F: FnOnce() -> Result<String, CliError>,
{
    let Some(path) = args.flag("obs-out") else {
        return f();
    };
    let _serial = OBS_SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Arc::new(Recorder::new());
    let result = {
        let _installed = gpumech_obs::install(Arc::clone(&rec));
        f()
    };
    let mut out = result?;
    std::fs::write(path, gpumech_obs::to_jsonl(&rec.snapshot()))?;
    out.push_str(&format!("observability trace written to {path}\n"));
    Ok(out)
}

fn machine_config(args: &Args) -> Result<SimConfig, CliError> {
    let mut cfg = SimConfig::table1();
    if let Some(w) = args.flag_opt::<usize>("warps")? {
        cfg = cfg.with_warps_per_core(w);
    }
    if let Some(m) = args.flag_opt::<usize>("mshrs")? {
        cfg = cfg.with_mshrs(m);
    }
    if let Some(b) = args.flag_opt::<f64>("bw")? {
        cfg = cfg.with_dram_bandwidth(b);
    }
    if let Some(s) = args.flag_opt::<usize>("sfu")? {
        cfg = cfg.with_sfu_per_core(s);
    }
    cfg.validate().map_err(|e| CliError::Config(e.to_string()))?;
    Ok(cfg)
}

fn lookup(args: &Args) -> Result<Workload, CliError> {
    let name = args.required(0, "kernel")?;
    let w = workloads::by_name(name).ok_or_else(|| CliError::UnknownKernel(name.to_string()))?;
    Ok(match args.flag_opt::<usize>("blocks")? {
        Some(b) => w.with_blocks(b),
        None => w,
    })
}

fn policy(args: &Args) -> Result<SchedulingPolicy, CliError> {
    match args.flag("policy").unwrap_or("rr") {
        "rr" => Ok(SchedulingPolicy::RoundRobin),
        "gto" => Ok(SchedulingPolicy::GreedyThenOldest),
        other => Err(CliError::BadChoice {
            flag: "policy",
            value: other.to_string(),
            expected: "rr|gto",
        }),
    }
}

fn model_kind(args: &Args) -> Result<Model, CliError> {
    match args.flag("model").unwrap_or("full") {
        "naive" => Ok(Model::NaiveInterval),
        "markov" => Ok(Model::MarkovChain),
        "mt" => Ok(Model::Mt),
        "mt_mshr" => Ok(Model::MtMshr),
        "full" | "mt_mshr_band" => Ok(Model::MtMshrBand),
        other => Err(CliError::BadChoice {
            flag: "model",
            value: other.to_string(),
            expected: "naive|markov|mt|mt_mshr|full",
        }),
    }
}

/// Dispatches one invocation; returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing bad arguments, unknown kernels or
/// commands, or failures in the underlying library.
pub fn run<I>(argv: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = String>,
{
    let mut it = argv.into_iter();
    let command = it.next().unwrap_or_else(|| "help".to_string());
    let rest: Vec<String> = it.collect();
    match command.as_str() {
        "list" => cmd_list(&Args::parse(rest, &[])?),
        "config" => cmd_config(&Args::parse(rest, &MACHINE_FLAGS)?),
        "trace" => cmd_trace(&Args::parse(rest, &["blocks", "json"])?),
        "predict" => {
            let args = Args::parse(
                rest,
                &["blocks", "warps", "mshrs", "bw", "sfu", "policy", "model", "selection",
                  "obs-out"],
            )?;
            with_obs(&args, || cmd_predict(&args))
        }
        "simulate" => {
            let args = Args::parse(
                rest,
                &["blocks", "warps", "mshrs", "bw", "sfu", "policy", "obs-out"],
            )?;
            with_obs(&args, || cmd_simulate(&args))
        }
        "compare" => {
            let args = Args::parse(
                rest,
                &["blocks", "warps", "mshrs", "bw", "sfu", "policy", "obs-out"],
            )?;
            with_obs(&args, || cmd_compare(&args))
        }
        "stacks" => {
            let args = Args::parse(rest, &["blocks", "policy", "obs-out"])?;
            with_obs(&args, || cmd_stacks(&args))
        }
        "profile" => cmd_profile(&Args::parse(
            rest,
            &["blocks", "warps", "mshrs", "bw", "sfu", "obs-out", "chrome-out", "folded-out"],
        )?),
        "intervals" => {
            let args = Args::parse(
                rest,
                &["blocks", "warps", "mshrs", "bw", "sfu", "limit", "obs-out"],
            )?;
            with_obs(&args, || cmd_intervals(&args))
        }
        "batch" => {
            // `batch` always records (it surfaces exec.cache/exec.resilience
            // counters in its summary), so it installs its own recorder
            // rather than going through `with_obs`.
            let args = Args::parse_with_switches(
                rest,
                &["blocks", "warps", "mshrs", "bw", "sfu", "policy", "model", "selection",
                  "workers", "sweep", "json", "cache-dir", "obs-out", "timeout-ms",
                  "deadline-ms", "retries", "breaker-threshold", "journal", "shard"],
                &["resume", "oracle"],
            )?;
            cmd_batch(&args)
        }
        "merge" => {
            let args =
                Args::parse(rest, &["out", "report", "expect", "journals", "obs-out"])?;
            with_obs(&args, || cmd_merge(&args))
        }
        "supervise" => {
            let args = Args::parse_with_switches(
                rest,
                &["shards", "dir", "shard-bin", "restart-budget", "heartbeat-ms", "poll-ms",
                  "deadline-ms", "drain-ms", "chaos-kill", "blocks", "warps", "mshrs", "bw",
                  "sfu", "policy", "model", "selection", "workers", "sweep", "cache-dir",
                  "timeout-ms", "retries", "breaker-threshold", "out", "report", "expect",
                  "obs-out"],
                &["oracle"],
            )?;
            with_obs(&args, || cmd_supervise(&args))
        }
        "perf" => {
            let args = Args::parse(
                rest,
                &["out", "baseline", "iters", "warmup", "slow", "tolerance", "obs-out"],
            )?;
            with_obs(&args, || cmd_perf(&args))
        }
        "serve" => {
            let args = Args::parse_with_switches(
                rest,
                &["addr", "port", "workers", "queue-cap", "request-timeout-ms",
                  "read-timeout-ms", "drain-ms", "max-body-bytes", "max-header-bytes",
                  "cache-dir", "warm", "breaker-threshold", "obs-out"],
                &["debug-hooks"],
            )?;
            with_obs(&args, || cmd_serve(&args))
        }
        "lint" => cmd_lint(&Args::parse(rest, &["format", "min-severity", "from-json"])?),
        "obs-validate" => cmd_obs_validate(&Args::parse_with_switches(rest, &[], &["folded"])?),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn cmd_list(_args: &Args) -> Result<String, CliError> {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28}{:<10}{:<12}{:<8}description\n",
        "name", "suite", "divergence", "cdiv"
    ));
    for w in workloads::all() {
        out.push_str(&format!(
            "{:<28}{:<10}{:<12}{:<8}{}\n",
            w.name,
            w.suite.to_string(),
            format!("{:?}", w.divergence).to_lowercase(),
            if w.control_divergent { "yes" } else { "-" },
            w.description,
        ));
    }
    Ok(out)
}

fn cmd_config(args: &Args) -> Result<String, CliError> {
    let cfg = machine_config(args)?;
    Ok(format!(
        "cores: {}\nclock: {} GHz\nwarps/core: {}\nissue width: {}\n\
         L1: {} KB, {}-way, {} cycles, {} MSHRs\nL2: {} KB, {}-way, {} cycles\n\
         DRAM: {} GB/s, {} cycles (service {:.3} cyc/line)\nSFU lanes: {} (initiation interval {})\n",
        cfg.num_cores,
        cfg.clock_ghz,
        cfg.max_warps_per_core,
        cfg.issue_width,
        cfg.l1.size_bytes / 1024,
        cfg.l1.assoc,
        cfg.l1.latency,
        cfg.num_mshrs,
        cfg.l2.size_bytes / 1024,
        cfg.l2.assoc,
        cfg.l2.latency,
        cfg.dram_bandwidth_gbps,
        cfg.dram_latency,
        cfg.dram_service_cycles(),
        cfg.sfu_per_core,
        cfg.sfu_initiation_interval(),
    ))
}

fn cmd_trace(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let mut out = format!(
        "kernel: {}\nwarps: {}\ntotal instructions: {}\nglobal memory instructions: {}\n",
        trace.name,
        trace.warps.len(),
        trace.total_insts(),
        trace.total_global_mem_insts(),
    );
    let lens: Vec<usize> = trace.warps.iter().map(gpumech_trace::WarpTrace::len).collect();
    let min = lens.iter().min().copied().unwrap_or(0);
    let max = lens.iter().max().copied().unwrap_or(0);
    out.push_str(&format!(
        "per-warp length: min {min}, max {max}, mean {:.1}\n",
        trace.total_insts() as f64 / trace.warps.len().max(1) as f64
    ));
    if let Some(path) = args.flag("json") {
        let json = serde_json::to_string(&trace).map_err(|e| CliError::Model(e.to_string()))?;
        std::fs::write(path, json)?;
        out.push_str(&format!("trace written to {path}\n"));
    }
    Ok(out)
}

fn render_prediction(p: &Prediction, header: &str) -> String {
    let mut out = format!("{header}\n");
    out.push_str(&format!(
        "predicted CPI: {:.3}  (IPC {:.3})\n",
        p.cpi_total(),
        p.ipc()
    ));
    out.push_str(&format!(
        "  multithreading {:.3} + contention {:.3} (MSHR {:.3}, QUEUE {:.3}, SFU {:.3})\n",
        p.multithreading.cpi,
        p.contention.cpi,
        p.contention.cpi_mshr,
        p.contention.cpi_queue,
        p.contention.cpi_sfu,
    ));
    out.push_str(&format!(
        "  representative warp: #{} (single-warp CPI {:.2}), {} warps/core\n",
        p.representative, p.single_warp_cpi, p.warps_per_core
    ));
    out.push_str(&format!("  {}\n", p.cpi.render_bar(60)));
    for w in &p.warnings {
        out.push_str(&format!("  warning: {w}\n"));
    }
    out
}

/// Parses `--selection max|min|clustering|weighted` into the request's
/// (method, weighting) pair. `weighted` is clustering selection with
/// population weighting, matching [`PredictionRequest::population_weighted`].
fn selection_flags(args: &Args) -> Result<(SelectionMethod, Weighting), CliError> {
    match args.flag("selection").unwrap_or("clustering") {
        "max" => Ok((SelectionMethod::Max, Weighting::SingleRepresentative)),
        "min" => Ok((SelectionMethod::Min, Weighting::SingleRepresentative)),
        "clustering" => Ok((SelectionMethod::Clustering, Weighting::SingleRepresentative)),
        "weighted" => Ok((SelectionMethod::Clustering, Weighting::PopulationWeighted)),
        other => Err(CliError::BadChoice {
            flag: "selection",
            value: other.to_string(),
            expected: "max|min|clustering|weighted",
        }),
    }
}

fn cmd_predict(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;
    let pol = policy(args)?;
    let kind = model_kind(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let model = Gpumech::new(cfg);
    let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;
    let (sel, weighting) = selection_flags(args)?;
    let req = PredictionRequest::from_analysis(&analysis)
        .policy(pol)
        .model(kind)
        .selection(sel)
        .weighting(weighting);
    let p = model.run(&req).map_err(|e| CliError::Model(e.to_string()))?;
    Ok(render_prediction(&p, &format!("kernel: {} ({} policy, {})", w.name, pol, kind)))
}

fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;
    let pol = policy(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let t0 = std::time::Instant::now();
    let r = simulate(&trace, &cfg, pol).map_err(|e| CliError::Model(e.to_string()))?;
    let dt = t0.elapsed();
    Ok(format!(
        "kernel: {} ({pol} policy)\ncycles: {}\ninstructions: {}\nCPI: {:.3}  (IPC {:.3})\n\
         DRAM requests: {}  (bus utilization {:.1}%)\nsimulated in {dt:.2?}\n",
        w.name,
        r.cycles,
        r.insts,
        r.cpi(),
        r.ipc(),
        r.dram_requests,
        100.0 * r.dram_utilization,
    ))
}

fn cmd_compare(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;
    let pol = policy(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let oracle = simulate(&trace, &cfg, pol).map_err(|e| CliError::Model(e.to_string()))?;
    let model = Gpumech::new(cfg);
    let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;

    let mut out = format!(
        "kernel: {} ({pol} policy)\noracle CPI: {:.3}\n\n{:<16}{:>10}{:>10}\n",
        w.name,
        oracle.cpi(),
        "model",
        "CPI",
        "error"
    );
    for kind in Model::ALL {
        let p = model
            .run(&PredictionRequest::from_analysis(&analysis).policy(pol).model(kind))
            .map_err(|e| CliError::Model(e.to_string()))?;
        let err = (p.cpi_total() - oracle.cpi()).abs() / oracle.cpi();
        out.push_str(&format!(
            "{:<16}{:>10.3}{:>9.1}%\n",
            kind.to_string(),
            p.cpi_total(),
            100.0 * err
        ));
    }
    Ok(out)
}

fn cmd_stacks(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let pol = policy(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let mut out = format!("kernel: {} ({pol} policy)\n", w.name);
    out.push_str(&format!("{:<8}", "warps"));
    for cat in StallCategory::ALL {
        out.push_str(&format!("{:>8}", cat.to_string()));
    }
    out.push_str(&format!("{:>10}\n", "CPI"));
    for warps in [8usize, 16, 32, 48] {
        let cfg = SimConfig::table1().with_warps_per_core(warps);
        let model = Gpumech::new(cfg);
        let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;
        let p = model
            .run(&PredictionRequest::from_analysis(&analysis).policy(pol))
            .map_err(|e| CliError::Model(e.to_string()))?;
        out.push_str(&format!("{warps:<8}"));
        for cat in StallCategory::ALL {
            out.push_str(&format!("{:>8.2}", p.cpi.get(cat)));
        }
        out.push_str(&format!("{:>10.2}\n", p.cpi_total()));
    }
    Ok(out)
}

/// One `--sweep AXIS=V1,V2,...` axis applied to the base configuration.
/// Without the flag, the base configuration is the single point. Swept
/// values are *not* validated here: the batch engine validates every job's
/// full configuration and reports bad points as per-job errors, so one
/// out-of-range sweep value cannot sink the rest of the batch.
fn sweep_configs(args: &Args, base: &SimConfig) -> Result<Vec<(String, SimConfig)>, CliError> {
    let Some(spec) = args.flag("sweep") else {
        return Ok(vec![(String::new(), base.clone())]);
    };
    let bad = || CliError::BadChoice {
        flag: "sweep",
        value: spec.to_string(),
        expected: "AXIS=V1,V2,... with AXIS one of warps|mshrs|bw|sfu",
    };
    let (axis, values) = spec.split_once('=').ok_or_else(bad)?;
    let mut out = Vec::new();
    for v in values.split(',').filter(|v| !v.is_empty()) {
        let cfg = match axis {
            "warps" => base.clone().with_warps_per_core(v.parse().map_err(|_| bad())?),
            "mshrs" => base.clone().with_mshrs(v.parse().map_err(|_| bad())?),
            "bw" => base.clone().with_dram_bandwidth(v.parse().map_err(|_| bad())?),
            "sfu" => base.clone().with_sfu_per_core(v.parse().map_err(|_| bad())?),
            _ => return Err(bad()),
        };
        out.push((format!(" @ {axis}={v}"), cfg));
    }
    if out.is_empty() {
        return Err(bad());
    }
    Ok(out)
}

/// One entry of the unified sweep enumeration: a runnable job, or a
/// kernel rejected by static verification (one typed failure row per
/// sweep point — every shard enumerates it identically).
enum SweepEntry {
    /// A job that will run (if this shard owns it).
    Run(BatchJob),
    /// A rejected kernel's placeholder for one sweep point.
    Rejected(BatchError),
}

fn cmd_batch(args: &Args) -> Result<String, CliError> {
    let cfg = machine_config(args)?;
    let pol = policy(args)?;
    let kind = model_kind(args)?;
    let (sel, weighting) = selection_flags(args)?;
    let workers: usize = args.flag_or("workers", 4)?;
    let blocks = args.flag_opt::<usize>("blocks")?;
    let shard: ShardSpec = match args.flag("shard") {
        None => ShardSpec::single(),
        Some(s) => s.parse().map_err(|_| CliError::BadChoice {
            flag: "shard",
            value: s.to_string(),
            expected: "i/N with 0 <= i < N",
        })?,
    };
    let oracle = args.switch("oracle");

    // Kernel set: explicit names, or the whole catalogue for none/"all".
    let mut names: Vec<String> = Vec::new();
    let mut i = 0;
    while let Some(p) = args.positional(i) {
        names.push(p.to_string());
        i += 1;
    }
    let selected: Vec<Workload> = if names.is_empty() || names == ["all"] {
        workloads::all()
    } else {
        names
            .iter()
            .map(|n| workloads::by_name(n).ok_or_else(|| CliError::UnknownKernel(n.clone())))
            .collect::<Result<_, _>>()?
    };

    let points = sweep_configs(args, &cfg)?;
    // The unified enumeration every shard of this sweep computes
    // identically: kernel x sweep point, in order, rejected kernels
    // inline at their position. The manifest (and therefore shard
    // ownership, coverage checking, and merge splice order) is derived
    // from exactly this list.
    let mut entries: Vec<SweepEntry> = Vec::with_capacity(selected.len() * points.len());
    for w in &selected {
        let w = match blocks {
            Some(b) => w.clone().with_blocks(b),
            None => w.clone(),
        };
        match w.trace() {
            Ok(t) => {
                let trace = Arc::new(t);
                for (suffix, cfg) in &points {
                    let mut job = BatchJob::new(
                        format!("{}{suffix}", w.name),
                        Arc::clone(&trace),
                        cfg.clone(),
                    );
                    job.policy = pol;
                    job.model = kind;
                    job.selection = sel;
                    job.weighting = weighting;
                    entries.push(SweepEntry::Run(job));
                }
            }
            Err(TraceError::RejectedByAnalysis { kernel, findings, .. }) => {
                for (suffix, _) in &points {
                    entries.push(SweepEntry::Rejected(BatchError {
                        label: format!("{}{suffix}", w.name),
                        config_fingerprint: 0,
                        error: ExecError::RejectedByAnalysis {
                            kernel: kernel.clone(),
                            findings: findings.clone(),
                        },
                    }));
                }
            }
            Err(e) => return Err(CliError::Model(format!("{}: {e}", w.name))),
        }
    }

    // Stable fingerprints in enumeration order: the journal key for
    // runnable jobs, a synthetic label hash for rejected ones.
    let runnable: Vec<BatchJob> = entries
        .iter()
        .filter_map(|e| match e {
            SweepEntry::Run(j) => Some(j.clone()),
            SweepEntry::Rejected(_) => None,
        })
        .collect();
    let mut run_fps = job_fingerprints(&runnable).into_iter();
    let entry_fps: Vec<u64> = entries
        .iter()
        .map(|e| match e {
            SweepEntry::Run(_) => run_fps.next().unwrap_or(0),
            SweepEntry::Rejected(err) => rejected_fingerprint(&err.label),
        })
        .collect();
    let manifest = SweepManifest::new(
        shard,
        &gpumech_perf::git_commit(),
        analysis_config_fingerprint(&cfg),
        &entry_fps,
    );

    // This shard's slice of the sweep, in enumeration order.
    let owned: Vec<usize> =
        (0..entries.len()).filter(|&i| shard.owns(entry_fps[i])).collect();
    let jobs: Vec<BatchJob> = owned
        .iter()
        .filter_map(|&i| match &entries[i] {
            SweepEntry::Run(j) => Some(j.clone()),
            SweepEntry::Rejected(_) => None,
        })
        .collect();

    let opts = BatchOptions {
        timeout_ms: args.flag_opt("timeout-ms")?,
        deadline_ms: args.flag_opt("deadline-ms")?,
        retries: args.flag_or("retries", 0u32)?,
        breaker_threshold: args.flag_opt("breaker-threshold")?,
        journal: args.flag("journal").map(std::path::PathBuf::from),
        resume: args.switch("resume"),
        ..BatchOptions::default()
    };
    if opts.resume && opts.journal.is_none() {
        return Err(CliError::Args(ArgError::MissingValue(
            "journal (required by --resume)".to_string(),
        )));
    }

    let cache = match args.flag("cache-dir") {
        Some(dir) => ProfileCache::with_disk(dir),
        None => ProfileCache::in_memory(),
    };
    let engine = BatchEngine::with_cache(workers, cache);
    let effective = engine.effective_workers();
    if effective < workers {
        eprintln!(
            "warning: --workers {workers} exceeds this host's available parallelism; \
             running with {effective} worker(s)"
        );
    }
    // Always record: the summary surfaces exec.cache / exec.resilience /
    // shard.partition counters whether or not --obs-out asked for the
    // full trace.
    let _serial = OBS_SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Arc::new(Recorder::new());
    let t0 = std::time::Instant::now();
    let (results, oracles) = {
        let _installed = gpumech_obs::install(Arc::clone(&rec));
        gpumech_obs::counter!("shard.partition.owned", owned.len() as u64);
        gpumech_obs::counter!("shard.partition.skipped", (entries.len() - owned.len()) as u64);
        let results = engine.run_with(&jobs, &opts);
        // Oracle pass (--oracle): the cycle-level simulator over each
        // *successful* owned job, for the model-vs-oracle report table.
        let oracles: Vec<Option<f64>> = if oracle {
            jobs.iter()
                .zip(&results)
                .map(|(job, r)| {
                    r.as_ref().ok().and_then(|_| {
                        simulate(&job.trace, &job.cfg, job.policy).ok().map(|o| o.cpi())
                    })
                })
                .collect()
        } else {
            vec![None; jobs.len()]
        };
        (results, oracles)
    };
    let dt = t0.elapsed();
    let snap = rec.snapshot();

    let mut out = format!(
        "# batch: {} job(s) ({} kernel(s) x {} config(s)), workers={workers}\n",
        entries.len(),
        selected.len(),
        points.len(),
    );
    if !shard.is_single() {
        out.push_str(&format!(
            "# shard {shard}: owns {} of {} job(s)\n",
            owned.len(),
            entries.len()
        ));
    }
    out.push_str(&format!("{:<40}{:>10}{:>10}\n", "job", "CPI", "IPC"));

    // One row per *owned* enumeration entry, in enumeration order. Row
    // bytes are independent of which shard produced them: cache-layer
    // warnings (environment-dependent) are stripped, and everything else
    // is deterministic — that is what makes a sharded merge byte-identical
    // to an unsharded run.
    let mut rows: Vec<JobRow> = Vec::with_capacity(owned.len());
    let mut failures = 0usize;
    let mut run_ix = 0usize;
    for &i in &owned {
        let fingerprint = gpumech_shard::fingerprint_hex(entry_fps[i]);
        match &entries[i] {
            SweepEntry::Rejected(e) => {
                failures += 1;
                out.push_str(&format!("{:<40}  skipped: {}\n", e.label, e.error));
                rows.push(JobRow {
                    label: e.label.clone(),
                    fingerprint,
                    cpi: None,
                    ipc: None,
                    stack: None,
                    oracle_cpi: None,
                    error: Some(e.to_string()),
                    warnings: Vec::new(),
                });
            }
            SweepEntry::Run(job) => {
                let (r, oracle_cpi) = (&results[run_ix], oracles[run_ix]);
                run_ix += 1;
                match r {
                    Ok(p) => {
                        out.push_str(&format!(
                            "{:<40}{:>10.3}{:>10.3}\n",
                            job.label,
                            p.cpi_total(),
                            p.ipc()
                        ));
                        for w in &p.warnings {
                            out.push_str(&format!("    warning: {w}\n"));
                        }
                        rows.push(JobRow {
                            label: job.label.clone(),
                            fingerprint,
                            cpi: Some(p.cpi_total()),
                            ipc: Some(p.ipc()),
                            stack: Some(p.cpi),
                            oracle_cpi,
                            error: None,
                            warnings: p
                                .warnings
                                .iter()
                                .filter(|w| !w.starts_with("cache: "))
                                .cloned()
                                .collect(),
                        });
                    }
                    Err(e) => {
                        failures += 1;
                        out.push_str(&format!("{:<40}  error: {}\n", job.label, e.error));
                        rows.push(JobRow {
                            label: job.label.clone(),
                            fingerprint,
                            cpi: None,
                            ipc: None,
                            stack: None,
                            oracle_cpi: None,
                            // The full payload: kernel name + config
                            // fingerprint + underlying error.
                            error: Some(e.to_string()),
                            warnings: Vec::new(),
                        });
                    }
                }
            }
        }
    }
    out.push_str(&format!(
        "# {} ok, {failures} failed; {} cached analysis(es); {dt:.2?} wall\n",
        owned.len() - failures,
        engine.cache().len(),
    ));
    // Cache, resilience, and partition behaviour, visible without
    // --obs-out: every counter the run incremented, by family.
    for family in ["exec.cache.", "exec.resilience.", "shard."] {
        let line: Vec<String> = snap
            .counters
            .iter()
            .filter(|(name, _)| name.starts_with(family))
            .map(|(name, agg)| {
                let short = name.rsplit('.').next().unwrap_or(name);
                format!("{short}={}", agg.total)
            })
            .collect();
        if !line.is_empty() {
            let label = family.trim_end_matches('.');
            out.push_str(&format!("# {label}: {}\n", line.join(" ")));
        }
    }
    if let Some(path) = args.flag("json") {
        let mut counters: Vec<CounterEntry> = snap
            .counters
            .iter()
            .map(|(name, agg)| CounterEntry { name: (*name).to_string(), total: agg.total })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let report = SweepReport {
            manifest,
            workers: workers as u64,
            cache_entries: engine.cache().len() as u64,
            counters,
            jobs_checksum: String::new(), // recomputed on render
            jobs: rows,
        };
        report
            .write(std::path::Path::new(path))
            .map_err(CliError::Model)?;
        out.push_str(&format!("batch report written to {path}\n"));
    }
    if let Some(path) = args.flag("obs-out") {
        std::fs::write(path, gpumech_obs::to_jsonl(&snap))?;
        out.push_str(&format!("observability trace written to {path}\n"));
    }
    Ok(out)
}

/// Finishes a merge: runs the `--expect` byte-identity check, converts
/// findings into the exit-code-5 error, and writes `--out` / `--report`
/// on success. Shared by `merge` and the auto-merge after `supervise`.
fn finish_merge(args: &Args, mut outcome: MergeOutcome) -> Result<String, CliError> {
    if let (Some(m), Some(expect)) = (&outcome.merged, args.flag("expect")) {
        let expect_text = std::fs::read_to_string(expect)
            .map_err(|e| CliError::Model(format!("--expect {expect}: {e}")))?;
        let merged_text = m.render_json().map_err(CliError::Model)?;
        match verify_expectation(&merged_text, &expect_text) {
            None => outcome.notes.push(format!(
                "byte-identical to the reference run {expect} (from jobs_checksum on)"
            )),
            Some(detail) => outcome.findings.push(MergeFinding {
                kind: FindingKind::ExpectationMismatch,
                path: expect.to_string(),
                detail,
            }),
        }
    }
    if !outcome.findings.is_empty() {
        let mut report = String::new();
        for f in &outcome.findings {
            report.push_str(&format!("finding: {f}\n"));
        }
        for q in &outcome.quarantined {
            report.push_str(&format!("quarantined: {q}\n"));
        }
        return Err(CliError::MergeFailed { report, findings: outcome.findings.len() });
    }
    let Some(m) = outcome.merged else {
        // Unreachable: a merge without findings always carries output.
        return Err(CliError::Model("merge produced no output and no findings".to_string()));
    };
    let ok = m.rows.iter().filter(|r| r.error.is_none()).count();
    let mut out = format!(
        "# merge: {} shard file(s), {} row(s) ({ok} ok, {} failed), sweep {}\n",
        outcome.files_ok,
        m.rows.len(),
        m.rows.len() - ok,
        m.manifest.sweep_fingerprint,
    );
    for note in &outcome.notes {
        out.push_str(&format!("# note: {note}\n"));
    }
    if let Some(path) = args.flag("out") {
        m.write_json(std::path::Path::new(path)).map_err(CliError::Model)?;
        out.push_str(&format!("merged sweep written to {path}\n"));
    }
    if let Some(path) = args.flag("report") {
        std::fs::write(path, m.render_markdown())?;
        out.push_str(&format!("sweep report written to {path}\n"));
    }
    Ok(out)
}

/// `gpumech merge`: union shard result files into one verified sweep.
/// Any typed finding — corrupt file, cross-sweep mix, coverage gap,
/// duplicate conflict, journal corruption, `--expect` mismatch — aborts
/// with exit code 5 and no merged output.
fn cmd_merge(args: &Args) -> Result<String, CliError> {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut i = 0;
    while let Some(p) = args.positional(i) {
        paths.push(PathBuf::from(p));
        i += 1;
    }
    if paths.is_empty() {
        return Err(CliError::Args(ArgError::MissingValue(
            "shard result file(s) to merge".to_string(),
        )));
    }
    let journals: Vec<PathBuf> = args
        .flag("journals")
        .map(|list| list.split(',').filter(|s| !s.is_empty()).map(PathBuf::from).collect())
        .unwrap_or_default();
    let outcome = merge_files(&paths, &MergeOptions { quarantine: true, journals });
    finish_merge(args, outcome)
}

/// `gpumech supervise`: run a sharded sweep under the crash-tolerant
/// local supervisor, then auto-merge the shard results.
fn cmd_supervise(args: &Args) -> Result<String, CliError> {
    let shards: u32 = args.flag_or("shards", 3u32)?;
    let dir = PathBuf::from(args.flag("dir").unwrap_or("gpumech-sweep"));
    let program = match args.flag("shard-bin") {
        Some(p) => PathBuf::from(p),
        None => std::env::current_exe()
            .map_err(|e| CliError::Model(format!("cannot locate the gpumech binary: {e}")))?,
    };

    // Shard children run `batch` with the forwarded sweep definition; the
    // supervisor appends --shard/--journal/--json/--resume per child.
    let mut shared = vec!["batch".to_string()];
    let mut i = 0;
    while let Some(p) = args.positional(i) {
        shared.push(p.to_string());
        i += 1;
    }
    for f in ["blocks", "warps", "mshrs", "bw", "sfu", "policy", "model", "selection",
              "workers", "sweep", "cache-dir", "timeout-ms", "retries", "breaker-threshold"]
    {
        if let Some(v) = args.flag(f) {
            shared.push(format!("--{f}"));
            shared.push(v.to_string());
        }
    }
    if args.switch("oracle") {
        shared.push("--oracle".to_string());
    }

    let mut chaos_kills: Vec<ChaosKill> = Vec::new();
    if let Some(spec) = args.flag("chaos-kill") {
        for part in spec.split(',').filter(|s| !s.is_empty()) {
            chaos_kills.push(part.parse().map_err(|_| CliError::BadChoice {
                flag: "chaos-kill",
                value: part.to_string(),
                expected: "shard@lines[,shard@lines...]",
            })?);
        }
    }

    let mut cfg = SupervisorConfig::new(program, dir, shards);
    cfg.shared_args = shared;
    cfg.restart_budget = args.flag_or("restart-budget", 3u32)?;
    cfg.heartbeat_ms = args.flag_or("heartbeat-ms", 30_000u64)?;
    cfg.poll_ms = args.flag_or("poll-ms", 25u64)?;
    cfg.deadline_ms = args.flag_opt("deadline-ms")?;
    cfg.drain_ms = args.flag_or("drain-ms", 2_000u64)?;
    cfg.chaos_kills = chaos_kills;
    cfg.handle_signals = true;

    let summary = supervise(&cfg).map_err(|e| CliError::Model(e.to_string()))?;
    let mut out = summary.render();
    if summary.drained {
        out.push_str("# drained before completion; shard journals remain valid for --resume\n");
        return Ok(out);
    }

    // Auto-merge the completed shards, cross-checking every journal.
    let journals: Vec<PathBuf> = (0..shards).map(|i| cfg.journal_path(i)).collect();
    let outcome = merge_files(
        &summary.result_paths,
        &MergeOptions { quarantine: true, journals },
    );
    out.push_str(&finish_merge(args, outcome)?);
    Ok(out)
}

/// `gpumech serve`: run the hardened HTTP prediction service until a
/// drain is requested (SIGTERM/ctrl-c), then return the run summary.
///
/// The "listening on" line is printed (and flushed) *before* the accept
/// loop blocks, so callers that spawn the process — the smoke test, the
/// load harness, an orchestrator — can scrape the bound port from the
/// first line of stdout.
fn cmd_serve(args: &Args) -> Result<String, CliError> {
    let warm: Vec<String> = match args.flag("warm") {
        None => Vec::new(),
        Some("all") => workloads::all().iter().map(|w| w.name.to_string()).collect(),
        Some(list) => list
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect(),
    };
    let cfg = gpumech_serve::ServeConfig {
        addr: args.flag("addr").unwrap_or("127.0.0.1").to_string(),
        port: args.flag_or("port", 0u16)?,
        workers: args.flag_or("workers", 4usize)?,
        queue_cap: args.flag_or("queue-cap", 32usize)?,
        read_timeout_ms: args.flag_or("read-timeout-ms", 2_000u64)?,
        request_timeout_ms: args.flag_or("request-timeout-ms", 30_000u64)?,
        drain_ms: args.flag_or("drain-ms", 5_000u64)?,
        max_header_bytes: args.flag_or("max-header-bytes", 8 * 1024usize)?,
        max_body_bytes: args.flag_or("max-body-bytes", 64 * 1024usize)?,
        breaker_threshold: args.flag_opt("breaker-threshold")?,
        cache_dir: args.flag("cache-dir").map(std::path::PathBuf::from),
        warm,
        debug_hooks: args.switch("debug-hooks"),
        handle_signals: true,
    };
    let server = gpumech_serve::Server::bind(cfg).map_err(|e| CliError::Model(e.to_string()))?;
    println!("gpumech-serve listening on http://{}", server.local_addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    let summary = server.run().map_err(|e| CliError::Model(e.to_string()))?;
    Ok(format!("{summary}\n"))
}

/// The traced portion of `profile`: everything that should land inside
/// the installed recorder's spans runs here, between install and snapshot.
fn profile_pipeline(
    w: &Workload,
    cfg: SimConfig,
) -> Result<(gpumech_core::Analysis, Prediction), CliError> {
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let model = Gpumech::new(cfg);
    let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;
    let p = model
        .run(&PredictionRequest::from_analysis(&analysis))
        .map_err(|e| CliError::Model(e.to_string()))?;
    Ok((analysis, p))
}

fn cmd_profile(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;

    // `profile` is the observability entry point: it always records, and
    // appends the per-stage report and recorder summary to its output.
    let _serial = OBS_SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
    let rec = Arc::new(Recorder::new());
    let profiled = {
        let _installed = gpumech_obs::install(Arc::clone(&rec));
        profile_pipeline(&w, cfg)
    };
    let (analysis, p) = profiled?;
    let pop = summarize_population(&analysis.profiles);
    let rep = p.representative;
    let s = analysis.profiles[rep].summary();

    let mut out = format!("kernel: {}\n\n== warp population ==\n", w.name);
    out.push_str(&format!(
        "warps: {}\nper-warp IPC: min {:.4}, mean {:.4}, max {:.4} (cv {:.2})\n\
         per-warp instructions: min {}, mean {:.1}, max {}\n",
        pop.num_warps,
        pop.perf_min,
        pop.perf_mean,
        pop.perf_max,
        pop.perf_cv,
        pop.insts_min,
        pop.insts_mean,
        pop.insts_max,
    ));
    out.push_str(&format!("\n== representative warp #{rep} ==\n"));
    out.push_str(&format!(
        "intervals: {} (avg {:.1} insts, avg stall {:.1} cycles)\n\
         instructions: {} ({} loads, {} stores)\n\
         stall cycles: {:.0} total — {:.0} compute, {:.0} memory\n\
         divergence degree: {:.1} requests per memory instruction\n\
         MSHR-allocating requests/inst: {:.2}\nDRAM-reaching requests/inst: {:.2}\n\
         avg miss latency (no queueing): {:.0} cycles\n",
        s.num_intervals,
        s.avg_interval_insts,
        s.avg_stall_cycles,
        s.total_insts,
        s.load_insts,
        s.store_insts,
        s.total_stall_cycles,
        s.compute_stall_cycles,
        s.memory_stall_cycles,
        s.divergence_degree,
        s.mshr_reqs_per_inst,
        s.dram_reqs_per_inst,
        analysis.mem.avg_miss_latency(),
    ));
    out.push_str("\n== pipeline stages ==\n");
    out.push_str(&p.report.render());
    let snap = rec.snapshot();
    out.push_str("\n== recorder ==\n");
    out.push_str(&gpumech_obs::render_tree(&snap));
    if let Some(path) = args.flag("obs-out") {
        std::fs::write(path, gpumech_obs::to_jsonl(&snap))?;
        out.push_str(&format!("observability trace written to {path}\n"));
    }
    if let Some(path) = args.flag("chrome-out") {
        std::fs::write(path, gpumech_obs::to_chrome_trace(&snap))?;
        out.push_str(&format!("Chrome trace written to {path}\n"));
    }
    if let Some(path) = args.flag("folded-out") {
        std::fs::write(path, gpumech_perf::to_folded(&snap))?;
        out.push_str(&format!("folded stacks written to {path}\n"));
    }
    // Self-time attribution: where the wall time actually went, not just
    // which stage contained it.
    let attrs = gpumech_perf::attribute(&snap);
    if !attrs.is_empty() {
        out.push_str("\n== self-time attribution ==\n");
        out.push_str(&format!(
            "{:<44}{:>6}{:>12}{:>12}{:>12}\n",
            "span", "count", "total", "self", "child"
        ));
        for a in &attrs {
            out.push_str(&format!(
                "{:<44}{:>6}{:>11.3}m{:>11.3}m{:>11.3}m\n",
                a.name,
                a.count,
                a.total_ns as f64 / 1e6,
                a.self_ns as f64 / 1e6,
                a.child_ns as f64 / 1e6,
            ));
        }
    }
    Ok(out)
}

/// Parses `--slow stage=millis[,stage=millis...]` into suite slowdowns —
/// the fault hook the perf-gate acceptance test uses.
fn parse_slow(args: &Args) -> Result<Vec<(String, u64)>, CliError> {
    let Some(spec) = args.flag("slow") else {
        return Ok(Vec::new());
    };
    let bad = |value: &str| CliError::BadChoice {
        flag: "slow",
        value: value.to_string(),
        expected: "stage=millis[,stage=millis...] with a known stage name",
    };
    spec.split(',')
        .map(|part| {
            let (name, ms) = part.split_once('=').ok_or_else(|| bad(part))?;
            if !STAGE_NAMES.contains(&name) {
                return Err(bad(part));
            }
            let ms: u64 = ms.parse().map_err(|_| bad(part))?;
            Ok((name.to_string(), ms))
        })
        .collect()
}

/// `gpumech perf record|compare`: run the named micro-benchmark suite and
/// either persist a baseline or gate against one.
fn cmd_perf(args: &Args) -> Result<String, CliError> {
    let action = args.required(0, "record|compare")?;
    let opts = SuiteOptions {
        iters: args.flag_or("iters", 5u32)?,
        warmup: args.flag_or("warmup", 2u32)?,
        slow: parse_slow(args)?,
    };
    match action {
        "record" => cmd_perf_record(args, &opts),
        "compare" => cmd_perf_compare(args, &opts),
        other => Err(CliError::BadChoice {
            flag: "perf",
            value: other.to_string(),
            expected: "record|compare",
        }),
    }
}

/// Default baseline location, shared by `record` and `compare`.
const PERF_BASELINE_PATH: &str = "results/PERF_BASELINE.json";

fn render_suite_table(results: &[gpumech_perf::BenchResult]) -> String {
    let mut out = format!(
        "{:<12}{:>12}{:>12}{:>10}{:>14}{:>14}\n",
        "stage", "min", "mean", "allocs", "alloc_bytes", "peak_live"
    );
    for r in results {
        out.push_str(&format!(
            "{:<12}{:>11.3}m{:>11.3}m{:>10}{:>14}{:>14}\n",
            r.name,
            r.min_ns as f64 / 1e6,
            r.mean_ns as f64 / 1e6,
            r.allocs,
            r.alloc_bytes,
            r.peak_live_bytes,
        ));
    }
    out
}

fn cmd_perf_record(args: &Args, opts: &SuiteOptions) -> Result<String, CliError> {
    let results = run_suite(opts).map_err(|e| CliError::Model(e.to_string()))?;
    let baseline = Baseline {
        version: BASELINE_VERSION,
        git_commit: gpumech_perf::git_commit(),
        config_fingerprint: analysis_config_fingerprint(&suite_config()),
        iters: opts.iters,
        warmup: opts.warmup,
        results,
    };
    let path = args.flag("out").unwrap_or(PERF_BASELINE_PATH);
    if let Some(parent) = std::path::Path::new(path).parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut json = baseline.to_json().map_err(|e| CliError::Model(e.to_string()))?;
    json.push('\n');
    std::fs::write(path, json)?;
    let mut out = format!(
        "# perf record: {} stage(s), min-of-{} after {} warmup, commit {}\n",
        baseline.results.len(),
        baseline.iters,
        baseline.warmup,
        baseline.git_commit,
    );
    out.push_str(&render_suite_table(&baseline.results));
    out.push_str(&format!("baseline written to {path}\n"));
    Ok(out)
}

fn cmd_perf_compare(args: &Args, opts: &SuiteOptions) -> Result<String, CliError> {
    let path = args.flag("baseline").unwrap_or(PERF_BASELINE_PATH);
    let text = std::fs::read_to_string(path)?;
    let base = Baseline::from_json(&text).map_err(|e| CliError::Model(e.to_string()))?;
    let tol_pct: f64 = args.flag_or("tolerance", 40.0)?;
    let tol = Tolerance { rel: tol_pct / 100.0, ..Tolerance::default() };
    let results = run_suite(opts).map_err(|e| CliError::Model(e.to_string()))?;
    let cmp = gpumech_perf::compare(&base, &results, tol);
    let mut report = format!("# baseline: {path} (commit {})\n", base.git_commit);
    if base.config_fingerprint != analysis_config_fingerprint(&suite_config()) {
        report.push_str(
            "# warning: baseline was recorded against a different machine configuration\n",
        );
    }
    report.push_str(&cmp.render());
    let regressions = cmp.regressions();
    if regressions > 0 {
        Err(CliError::PerfRegression { report, regressions })
    } else {
        Ok(report)
    }
}

fn cmd_intervals(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;
    let limit: usize = args.flag_or("limit", 20)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let model = Gpumech::new(cfg);
    let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;
    let rep = gpumech_core::select_representative(&analysis.profiles, SelectionMethod::Clustering);
    let profile = &analysis.profiles[rep];

    let mut out = format!(
        "kernel: {} — representative warp #{rep} ({} intervals, showing {})\n\n",
        w.name,
        profile.intervals.len(),
        limit.min(profile.intervals.len())
    );
    out.push_str(&format!(
        "{:<6}{:>7}{:>10}{:>10}{:>8}{:>8}{:>9}{:>9}  cause\n",
        "#", "insts", "stall", "loads", "stores", "reqs", "mshr", "dram"
    ));
    for (i, iv) in profile.intervals.iter().take(limit).enumerate() {
        let cause = match iv.cause {
            gpumech_core::StallCause::None => "-".to_string(),
            gpumech_core::StallCause::Compute => "compute".to_string(),
            gpumech_core::StallCause::Memory { pc } => format!("load@pc{pc}"),
        };
        out.push_str(&format!(
            "{:<6}{:>7}{:>10.1}{:>10}{:>8}{:>8.1}{:>9.2}{:>9.2}  {cause}\n",
            i, iv.insts, iv.stall_cycles, iv.load_insts, iv.store_insts, iv.mem_reqs,
            iv.mshr_reqs, iv.dram_reqs,
        ));
    }
    if profile.intervals.len() > limit {
        out.push_str(&format!("... {} more (use --limit)\n", profile.intervals.len() - limit));
    }
    Ok(out)
}

fn field_u64(v: &Value, key: &str) -> Option<u64> {
    v.get_field(key).and_then(Value::as_u64)
}

fn field_str<'a>(v: &'a Value, key: &str) -> Option<&'a str> {
    match v.get_field(key) {
        Some(Value::Str(s)) => Some(s),
        _ => None,
    }
}

fn u64_or_null(v: &Value, key: &str) -> bool {
    matches!(v.get_field(key), Some(Value::Null)) || field_u64(v, key).is_some()
}

fn num_or_null(v: &Value, key: &str) -> bool {
    matches!(v.get_field(key), Some(Value::Null))
        || v.get_field(key).and_then(Value::as_f64).is_some()
}

/// Stage families a conforming export may emit under — the short crate
/// names of every instrumented layer (`test` covers unit-test fixtures).
const STAGE_FAMILIES: [&str; 14] = [
    "isa", "analyze", "trace", "mem", "timing", "core", "exec", "serve", "cli", "bench", "fault",
    "perf", "shard", "test",
];

/// Subsystems the `perf.*` family is allowed to emit under: the suite's
/// stage spans, the allocation counters, and the benchmark metrics.
const PERF_SUBSYSTEMS: [&str; 3] = ["suite", "alloc", "bench"];

/// Checks one scheme-shaped name against the stage-family allowlist, and
/// the `perf.*` family against its subsystem allowlist.
fn check_name_family(name: &str, what: &str, lineno: usize, problems: &mut Vec<String>) {
    let mut segs = name.split('.');
    let stage = segs.next().unwrap_or("");
    if !STAGE_FAMILIES.contains(&stage) {
        problems.push(format!(
            "line {lineno}: {what} name {name:?} uses unknown stage family {stage:?}"
        ));
        return;
    }
    if stage == "perf" {
        let sub = segs.next().unwrap_or("");
        if !PERF_SUBSYSTEMS.contains(&sub) {
            problems.push(format!(
                "line {lineno}: {what} name {name:?} outside the perf.* family \
                 (subsystem must be one of suite|alloc|bench)"
            ));
        }
    }
}

/// Checks the `name` field of an obs line against the
/// `stage.subsystem.name` scheme and the stage-family allowlist.
fn check_obs_name(v: &Value, what: &str, lineno: usize, problems: &mut Vec<String>) {
    match field_str(v, "name") {
        None => problems.push(format!("line {lineno}: {what} missing string \"name\"")),
        Some(name) if !gpumech_obs::valid_metric_name(name) => problems.push(format!(
            "line {lineno}: {what} name {name:?} outside the stage.subsystem.name scheme"
        )),
        Some(name) => check_name_family(name, what, lineno, problems),
    }
}

const METRIC_KINDS: [&str; 3] = ["counter", "gauge", "histogram"];

fn check_obs_kind(v: &Value, what: &str, lineno: usize, problems: &mut Vec<String>) {
    match field_str(v, "kind") {
        Some(k) if METRIC_KINDS.contains(&k) => {}
        Some(k) => problems.push(format!(
            "line {lineno}: {what} kind {k:?} not one of counter|gauge|histogram"
        )),
        None => problems.push(format!("line {lineno}: {what} missing string \"kind\"")),
    }
}

/// Schema check for one parsed JSONL line; tallies the line type into
/// `counts` (meta, span, metric, aggregate) and appends problems.
fn check_obs_line(v: &Value, lineno: usize, counts: &mut [usize; 4], problems: &mut Vec<String>) {
    let Some(ty) = field_str(v, "type") else {
        problems.push(format!("line {lineno}: missing string \"type\" field"));
        return;
    };
    match ty {
        "meta" => {
            counts[0] += 1;
            if field_u64(v, "version") != Some(1) {
                problems.push(format!("line {lineno}: meta version must be 1"));
            }
            if field_u64(v, "dropped_samples").is_none() {
                problems.push(format!("line {lineno}: meta missing integer \"dropped_samples\""));
            }
            match v.get_field("invalid_names") {
                Some(Value::Array(names)) => {
                    for n in names {
                        if let Value::Str(s) = n {
                            problems.push(format!(
                                "line {lineno}: recorder saw name {s:?} outside the \
                                 stage.subsystem.name scheme"
                            ));
                        }
                    }
                }
                _ => problems
                    .push(format!("line {lineno}: meta missing \"invalid_names\" array")),
            }
        }
        "span" => {
            counts[1] += 1;
            for key in ["id", "thread", "start_ns"] {
                if field_u64(v, key).is_none() {
                    problems.push(format!("line {lineno}: span missing integer {key:?}"));
                }
            }
            for key in ["dur_ns", "parent"] {
                if !u64_or_null(v, key) {
                    problems.push(format!("line {lineno}: span {key:?} must be integer or null"));
                }
            }
            check_obs_name(v, "span", lineno, problems);
        }
        "metric" => {
            counts[2] += 1;
            check_obs_kind(v, "metric", lineno, problems);
            check_obs_name(v, "metric", lineno, problems);
            if field_u64(v, "ts_ns").is_none() {
                problems.push(format!("line {lineno}: metric missing integer \"ts_ns\""));
            }
            if !num_or_null(v, "value") {
                problems.push(format!("line {lineno}: metric \"value\" must be number or null"));
            }
        }
        "aggregate" => {
            counts[3] += 1;
            check_obs_kind(v, "aggregate", lineno, problems);
            check_obs_name(v, "aggregate", lineno, problems);
            // Histogram aggregates carry the quantile-histogram schema:
            // count/sum plus min/max and p50/p90/p99 (number, or null
            // before any finite observation) and populated log buckets.
            if field_str(v, "kind") == Some("histogram") {
                if field_u64(v, "count").is_none() {
                    problems
                        .push(format!("line {lineno}: histogram missing integer \"count\""));
                }
                for key in ["min", "max", "p50", "p90", "p99"] {
                    if !num_or_null(v, key) {
                        problems.push(format!(
                            "line {lineno}: histogram {key:?} must be number or null"
                        ));
                    }
                }
                match v.get_field("buckets") {
                    Some(Value::Array(_)) => {}
                    _ => problems
                        .push(format!("line {lineno}: histogram missing \"buckets\" array")),
                }
            }
        }
        other => problems.push(format!("line {lineno}: unknown line type {other:?}")),
    }
}

/// Validates a `--folded-out` folded-stack export: every line is
/// `frame(;frame)* <u64>` with scheme-valid frame names.
fn validate_folded(path: &str, text: &str) -> Result<String, CliError> {
    let mut problems: Vec<String> = Vec::new();
    let mut stacks = 0usize;
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            problems.push(format!("line {lineno}: empty line"));
            continue;
        }
        let Some((stack, value)) = line.rsplit_once(' ') else {
            problems.push(format!("line {lineno}: no value column (expected \"stack <u64>\")"));
            continue;
        };
        if value.parse::<u64>().is_err() {
            problems.push(format!("line {lineno}: value {value:?} is not an unsigned integer"));
        }
        for frame in stack.split(';') {
            if !gpumech_obs::valid_metric_name(frame) {
                problems.push(format!(
                    "line {lineno}: frame {frame:?} outside the stage.subsystem.name scheme"
                ));
            } else {
                check_name_family(frame, "frame", lineno, &mut problems);
            }
        }
        stacks += 1;
    }
    if problems.is_empty() {
        Ok(format!("{path}: valid folded stacks — {stacks} stack line(s)\n"))
    } else {
        let mut report = String::new();
        for p in &problems {
            report.push_str(&format!("{path}: {p}\n"));
        }
        Err(CliError::ObsInvalid { report, problems: problems.len() })
    }
}

/// Validates a `--obs-out` JSONL trace: every line parses, matches one of
/// the four schemas, and every span/metric name is within the
/// `stage.subsystem.name` scheme (including the stage-family and
/// `perf.*` allowlists). With `--folded`, validates a folded-stack
/// export instead. Exits nonzero on any violation.
fn cmd_obs_validate(args: &Args) -> Result<String, CliError> {
    let path = args.required(0, "path")?;
    let text = std::fs::read_to_string(path)?;
    if args.switch("folded") {
        return validate_folded(path, &text);
    }
    let mut problems: Vec<String> = Vec::new();
    let mut counts = [0usize; 4];
    for (i, line) in text.lines().enumerate() {
        let lineno = i + 1;
        if line.trim().is_empty() {
            problems.push(format!("line {lineno}: empty line"));
            continue;
        }
        match serde_json::parse_value(line) {
            Err(e) => problems.push(format!("line {lineno}: not valid JSON: {e}")),
            Ok(v) => check_obs_line(&v, lineno, &mut counts, &mut problems),
        }
    }
    if counts[0] != 1 {
        problems.push(format!("expected exactly one meta line, found {}", counts[0]));
    }
    if problems.is_empty() {
        Ok(format!(
            "{path}: valid — {} span(s), {} metric sample(s), {} aggregate(s); \
             all names within stage.subsystem.name\n",
            counts[1], counts[2], counts[3]
        ))
    } else {
        let mut report = String::new();
        for p in &problems {
            report.push_str(&format!("{path}: {p}\n"));
        }
        Err(CliError::ObsInvalid { report, problems: problems.len() })
    }
}

fn cmd_lint(args: &Args) -> Result<String, CliError> {
    let target = args.positional(0).unwrap_or("all");
    let min = match args.flag("min-severity").unwrap_or("info") {
        "info" => Severity::Info,
        "warning" => Severity::Warning,
        "error" => Severity::Error,
        other => {
            return Err(CliError::BadChoice {
                flag: "min-severity",
                value: other.to_string(),
                expected: "info|warning|error",
            })
        }
    };
    // Kernels to lint: a JSON file of serialized kernels (external input),
    // or the named catalogue workload, or the whole catalogue.
    let kernels: Vec<Kernel> = if let Some(path) = args.flag("from-json") {
        let text = std::fs::read_to_string(path)?;
        // Accept both a single kernel object and an array of kernels.
        serde_json::from_str::<Vec<Kernel>>(&text)
            .or_else(|_| serde_json::from_str::<Kernel>(&text).map(|k| vec![k]))
            .map_err(|e| CliError::Model(format!("{path}: {e}")))?
    } else if target == "all" {
        workloads::all().into_iter().map(|w| w.kernel).collect()
    } else {
        vec![workloads::by_name(target)
            .ok_or_else(|| CliError::UnknownKernel(target.to_string()))?
            .kernel]
    };

    let analyses: Vec<(String, KernelAnalysis)> =
        kernels.iter().map(|k| (k.name.clone(), analyze(k))).collect();
    let count = |sev| {
        analyses
            .iter()
            .flat_map(|(_, a)| &a.diagnostics)
            .filter(|d| d.severity == sev)
            .count()
    };
    let (errors, warnings, infos) =
        (count(Severity::Error), count(Severity::Warning), count(Severity::Info));

    let report = match args.flag("format").unwrap_or("text") {
        "json" => {
            let objs: Vec<&KernelAnalysis> = analyses.iter().map(|(_, a)| a).collect();
            let mut s =
                serde_json::to_string_pretty(&objs).map_err(|e| CliError::Model(e.to_string()))?;
            s.push('\n');
            s
        }
        "text" => {
            let mut out = String::new();
            for (name, a) in &analyses {
                let m = &a.metrics;
                out.push_str(&format!(
                    "{:<28}{:<9}{:>6} insts  {:>2}/{:<2} branches divergent  \
                     mem b/c/s/x {}/{}/{}/{}",
                    name,
                    a.max_severity().map_or("clean".to_string(), |s| s.to_string()),
                    m.insts,
                    m.divergent_branches,
                    m.branches,
                    m.broadcast_accesses,
                    m.coalesced_accesses,
                    m.strided_accesses,
                    m.scattered_accesses,
                ));
                if m.shared_accesses > 0 {
                    out.push_str(&format!(
                        "  shared {}: {} race pair(s), {}-way banks",
                        m.shared_accesses, m.race_pairs, m.max_bank_degree,
                    ));
                }
                out.push('\n');
                for d in a.diagnostics_at_least(min) {
                    out.push_str(&format!("    {d}\n"));
                }
            }
            out.push_str(&format!(
                "\nlinted {} kernel(s): {errors} error(s), {warnings} warning(s), \
                 {infos} info(s)\n",
                analyses.len()
            ));
            out
        }
        other => {
            return Err(CliError::BadChoice {
                flag: "format",
                value: other.to_string(),
                expected: "text|json",
            })
        }
    };

    if errors > 0 {
        Err(CliError::LintFailed { report, errors })
    } else {
        Ok(report)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn run_ok(argv: &[&str]) -> String {
        run(argv.iter().map(ToString::to_string)).expect("command succeeds")
    }

    fn run_err(argv: &[&str]) -> CliError {
        run(argv.iter().map(ToString::to_string)).expect_err("command fails")
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["help"]).contains("USAGE"));
        assert!(run_ok(&[]).contains("USAGE"), "no args defaults to help");
    }

    #[test]
    fn list_names_all_40_workloads() {
        let out = run_ok(&["list"]);
        assert_eq!(out.lines().count(), 41, "header + 40 rows");
        assert!(out.contains("kmeans_invert_mapping"));
        assert!(out.contains("cfd_step_factor"));
    }

    #[test]
    fn config_reflects_overrides() {
        let out = run_ok(&["config", "--mshrs", "64", "--bw", "96"]);
        assert!(out.contains("64 MSHRs"));
        assert!(out.contains("96 GB/s"));
        assert!(out.contains("cores: 16"));
    }

    #[test]
    fn trace_reports_statistics() {
        let out = run_ok(&["trace", "sdk_vectoradd", "--blocks", "2"]);
        assert!(out.contains("warps: 16"));
        assert!(out.contains("total instructions:"));
    }

    #[test]
    fn predict_outputs_cpi_and_stack_bar() {
        let out = run_ok(&["predict", "sdk_vectoradd", "--blocks", "8"]);
        assert!(out.contains("predicted CPI:"));
        assert!(out.contains("=BASE:"), "stack bar legend expected: {out}");
    }

    #[test]
    fn predict_weighted_selection_works() {
        let out =
            run_ok(&["predict", "lud_diagonal", "--blocks", "8", "--selection", "weighted"]);
        assert!(out.contains("predicted CPI:"));
    }

    #[test]
    fn simulate_and_compare_run() {
        let out = run_ok(&["simulate", "sdk_vectoradd", "--blocks", "4"]);
        assert!(out.contains("cycles:"));
        let out = run_ok(&["compare", "sdk_vectoradd", "--blocks", "4"]);
        assert!(out.contains("Naive_Interval"));
        assert!(out.contains("MT_MSHR_BAND"));
    }

    #[test]
    fn stacks_sweeps_warp_counts() {
        let out = run_ok(&["stacks", "sdk_vectoradd", "--blocks", "8"]);
        assert!(out.contains("QUEUE"));
        assert_eq!(out.lines().filter(|l| l.starts_with(char::is_numeric)).count(), 4);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(matches!(run_err(&["predict"]), CliError::Args(_)));
        assert!(matches!(run_err(&["predict", "nope"]), CliError::UnknownKernel(_)));
        assert!(matches!(run_err(&["frobnicate"]), CliError::UnknownCommand(_)));
        assert!(matches!(
            run_err(&["predict", "sdk_vectoradd", "--blocks", "4", "--policy", "fifo"]),
            CliError::BadChoice { flag: "policy", .. }
        ));
        assert!(matches!(
            run_err(&["predict", "sdk_vectoradd", "--bogus", "1"]),
            CliError::Args(ArgError::UnknownFlag(_))
        ));
    }

    #[test]
    fn out_of_range_machine_flags_are_rejected_with_one_line_messages() {
        // Every subcommand that accepts machine flags must reject
        // out-of-range values with a typed Config error whose message is a
        // single actionable line (main prints it and exits nonzero).
        for argv in [
            &["predict", "sdk_vectoradd", "--warps", "100000"][..],
            &["predict", "sdk_vectoradd", "--mshrs", "0"],
            &["predict", "sdk_vectoradd", "--bw", "0.5"],
            &["simulate", "sdk_vectoradd", "--warps", "0"],
            &["compare", "sdk_vectoradd", "--bw", "-3"],
            &["config", "--sfu", "64"],
            &["profile", "sdk_vectoradd", "--mshrs", "9999999"],
            &["intervals", "sdk_vectoradd", "--warps", "100000"],
        ] {
            let e = run_err(argv);
            assert!(matches!(e, CliError::Config(_)), "{argv:?} gave {e:?}");
            let msg = e.to_string();
            assert_eq!(msg.lines().count(), 1, "multi-line message for {argv:?}: {msg}");
            assert!(msg.contains("gpumech config"), "message not actionable: {msg}");
        }
    }

    #[test]
    fn bad_flag_values_are_rejected_per_subcommand() {
        assert!(matches!(
            run_err(&["predict", "sdk_vectoradd", "--model", "quantum"]),
            CliError::BadChoice { flag: "model", .. }
        ));
        assert!(matches!(
            run_err(&["predict", "sdk_vectoradd", "--selection", "random"]),
            CliError::BadChoice { flag: "selection", .. }
        ));
        assert!(matches!(
            run_err(&["simulate", "sdk_vectoradd", "--policy", "lifo"]),
            CliError::BadChoice { flag: "policy", .. }
        ));
        for cmd in ["trace", "predict", "simulate", "compare", "stacks", "profile", "intervals"] {
            assert!(
                matches!(run_err(&[cmd, "no_such_kernel"]), CliError::UnknownKernel(_)),
                "{cmd} should reject unknown kernels"
            );
            assert!(matches!(run_err(&[cmd]), CliError::Args(_)), "{cmd} requires a kernel");
        }
    }

    #[test]
    fn profile_reports_population_and_representative() {
        let out = run_ok(&["profile", "cfd_compute_flux", "--blocks", "4"]);
        assert!(out.contains("warp population"));
        assert!(out.contains("representative warp"));
        assert!(out.contains("divergence degree"));
    }

    #[test]
    fn profile_appends_stage_report_and_recorder_tree() {
        let out = run_ok(&["profile", "sdk_vectoradd", "--blocks", "4"]);
        assert!(out.contains("== pipeline stages =="), "{out}");
        assert!(out.contains("core.pipeline.cachesim"));
        assert!(out.contains("core.pipeline.predict"));
        assert!(out.contains("== recorder =="));
        assert!(out.contains("spans (wall clock):"));
        assert!(out.contains("core.pipeline.analyze"));
        assert!(out.contains("counters:"));
    }

    /// A unique temp path for tests that write files.
    fn tmp_path(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gpumech-cli-{}-{tag}", std::process::id()))
    }

    #[test]
    fn obs_out_writes_a_trace_that_validates() {
        let path = tmp_path("predict.jsonl");
        let path_s = path.to_string_lossy().to_string();
        let out = run_ok(&["predict", "sdk_vectoradd", "--blocks", "4", "--obs-out", &path_s]);
        assert!(out.contains("observability trace written to"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"type\":\"meta\""));
        assert!(text.contains("\"type\":\"span\""));
        let verdict = run_ok(&["obs-validate", &path_s]);
        assert!(verdict.contains("valid"), "{verdict}");
        assert!(verdict.contains("all names within stage.subsystem.name"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn profile_chrome_out_is_trace_event_json() {
        let path = tmp_path("profile.trace.json");
        let path_s = path.to_string_lossy().to_string();
        let out = run_ok(&["profile", "sdk_vectoradd", "--blocks", "4", "--chrome-out", &path_s]);
        assert!(out.contains("Chrome trace written to"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.contains("\"ph\":\"X\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn obs_validate_rejects_bad_names_and_schema() {
        let path = tmp_path("bad.jsonl");
        let path_s = path.to_string_lossy().to_string();
        std::fs::write(
            &path,
            "{\"type\":\"meta\",\"version\":1,\"dropped_samples\":0,\"invalid_names\":[]}\n\
             {\"type\":\"span\",\"id\":1,\"parent\":null,\"name\":\"NotAValidName\",\
              \"thread\":0,\"start_ns\":0,\"dur_ns\":5,\"attrs\":{}}\n\
             {\"type\":\"metric\",\"kind\":\"thermometer\",\"name\":\"a.b.c\",\
              \"value\":1,\"ts_ns\":0,\"span\":null}\n\
             not json\n",
        )
        .unwrap();
        let e = run_err(&["obs-validate", &path_s]);
        let CliError::ObsInvalid { report, problems } = e else {
            panic!("expected ObsInvalid, got {e:?}");
        };
        // Four problems: the off-scheme span name, the unknown metric
        // kind, the scheme-valid but unknown-family metric name "a.b.c",
        // and the non-JSON line.
        assert_eq!(problems, 4, "{report}");
        assert!(report.contains("outside the stage.subsystem.name scheme"));
        assert!(report.contains("thermometer"));
        assert!(report.contains("unknown stage family \"a\""));
        assert!(report.contains("not valid JSON"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn obs_validate_requires_path_and_existing_file() {
        assert!(matches!(run_err(&["obs-validate"]), CliError::Args(_)));
        assert!(matches!(
            run_err(&["obs-validate", "/no/such/file.jsonl"]),
            CliError::Io(_)
        ));
    }

    #[test]
    fn intervals_lists_the_representative_profile() {
        let out = run_ok(&["intervals", "srad_kernel1", "--blocks", "4", "--limit", "5"]);
        assert!(out.contains("representative warp"));
        assert!(out.contains("load@pc") || out.contains("compute"));
        assert!(out.contains("more (use --limit)"));
    }

    #[test]
    fn lint_all_is_clean_over_the_workload_library() {
        let out = run_ok(&["lint"]);
        assert!(out.contains("linted 40 kernel(s): 0 error(s)"), "{out}");
        assert!(out.contains("kmeans_invert_mapping"));
    }

    #[test]
    fn lint_single_kernel_shows_divergence_findings() {
        let out = run_ok(&["lint", "bfs_kernel1", "--min-severity", "info"]);
        assert!(out.contains("linted 1 kernel(s)"), "{out}");
    }

    #[test]
    fn lint_json_round_trips() {
        let out = run_ok(&["lint", "sdk_vectoradd", "--format", "json"]);
        let parsed: Vec<KernelAnalysis> = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(parsed.len(), 1);
        assert!(!parsed[0].has_errors());
    }

    #[test]
    fn lint_rejects_bad_flag_values() {
        assert!(matches!(
            run_err(&["lint", "--format", "xml"]),
            CliError::BadChoice { flag: "format", .. }
        ));
        assert!(matches!(
            run_err(&["lint", "--min-severity", "fatal"]),
            CliError::BadChoice { flag: "min-severity", .. }
        ));
        assert!(matches!(run_err(&["lint", "nope"]), CliError::UnknownKernel(_)));
    }

    #[test]
    fn batch_sweeps_kernels_and_configs() {
        let out = run_ok(&[
            "batch", "sdk_vectoradd", "bfs_kernel1", "--blocks", "4", "--workers", "2",
            "--sweep", "warps=8,32",
        ]);
        assert!(out.contains("4 job(s) (2 kernel(s) x 2 config(s)), workers=2"), "{out}");
        assert!(out.contains("sdk_vectoradd @ warps=8"));
        assert!(out.contains("bfs_kernel1 @ warps=32"));
        assert!(out.contains("4 ok, 0 failed"));
    }

    #[test]
    fn batch_json_report_is_machine_readable() {
        let path = tmp_path("batch.json");
        let path_s = path.to_string_lossy().to_string();
        let out = run_ok(&[
            "batch", "sdk_vectoradd", "--blocks", "4", "--workers", "2", "--json", &path_s,
        ]);
        assert!(out.contains("batch report written to"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let v = serde_json::parse_value(&text).unwrap();
        assert_eq!(v.get_field("workers").and_then(Value::as_u64), Some(2));
        assert_eq!(v.get_field("cache_entries").and_then(Value::as_u64), Some(1));
        let Some(Value::Array(jobs)) = v.get_field("jobs") else {
            panic!("jobs array missing: {text}");
        };
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].get_field("cpi").and_then(Value::as_f64).unwrap() > 0.0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_isolates_bad_sweep_points_per_job() {
        // warps=0 fails validation for its job only; the good point and the
        // other kernel still succeed.
        let out = run_ok(&[
            "batch", "sdk_vectoradd", "--blocks", "4", "--sweep", "warps=0,8",
        ]);
        assert!(out.contains("1 ok, 1 failed"), "{out}");
        assert!(out.contains("error:"), "{out}");
        assert!(out.contains("sdk_vectoradd @ warps=8"));
    }

    #[test]
    fn batch_rejects_bad_arguments() {
        assert!(matches!(run_err(&["batch", "no_such_kernel"]), CliError::UnknownKernel(_)));
        for sweep in ["warps", "volts=1,2", "warps=abc", "warps="] {
            assert!(
                matches!(
                    run_err(&["batch", "sdk_vectoradd", "--sweep", sweep]),
                    CliError::BadChoice { flag: "sweep", .. }
                ),
                "sweep {sweep:?} should be rejected"
            );
        }
    }

    #[test]
    fn batch_resume_requires_a_journal() {
        let e = run_err(&["batch", "sdk_vectoradd", "--blocks", "4", "--resume"]);
        assert!(
            matches!(&e, CliError::Args(ArgError::MissingValue(f)) if f.contains("journal")),
            "{e:?}"
        );
    }

    #[test]
    fn batch_deadline_zero_fails_every_job_with_a_typed_error() {
        let out = run_ok(&[
            "batch", "sdk_vectoradd", "bfs_kernel1", "--blocks", "4", "--workers", "1",
            "--deadline-ms", "0",
        ]);
        assert!(out.contains("0 ok, 2 failed"), "{out}");
        assert!(out.contains("deadline exceeded"), "{out}");
    }

    #[test]
    fn batch_journal_then_resume_replays_byte_identically() {
        let journal = tmp_path("batch-journal.jsonl");
        let journal_s = journal.to_string_lossy().to_string();
        let _ = std::fs::remove_file(&journal);
        let first_json = tmp_path("batch-first.json");
        let second_json = tmp_path("batch-second.json");
        let argv = |json: &std::path::Path, resume: bool| {
            let mut v = vec![
                "batch".to_string(),
                "sdk_vectoradd".to_string(),
                "bfs_kernel1".to_string(),
                "--blocks".to_string(),
                "4".to_string(),
                "--workers".to_string(),
                "1".to_string(),
                "--journal".to_string(),
                journal_s.clone(),
                "--json".to_string(),
                json.to_string_lossy().to_string(),
            ];
            if resume {
                v.push("--resume".to_string());
            }
            v
        };
        run(argv(&first_json, false)).expect("first run succeeds");
        run(argv(&second_json, true)).expect("resumed run succeeds");
        // The journal holds each job exactly once, and the replayed rows
        // match the computed ones byte for byte (compare from the jobs
        // array on: cache_entries legitimately differs, since the resumed
        // run performed zero analyses).
        let lines = std::fs::read_to_string(&journal).unwrap();
        assert_eq!(lines.lines().count(), 2);
        let first = std::fs::read_to_string(&first_json).unwrap();
        let second = std::fs::read_to_string(&second_json).unwrap();
        let tail = |s: &str| s[s.find("\"jobs\"").unwrap()..].to_string();
        assert_eq!(tail(&first), tail(&second));
        for p in [&journal, &first_json, &second_json] {
            let _ = std::fs::remove_file(p);
        }
    }

    #[test]
    fn gto_policy_flag_is_accepted() {
        let out = run_ok(&["predict", "sdk_vectoradd", "--blocks", "4", "--policy", "gto"]);
        assert!(out.contains("gto policy"));
    }

    #[test]
    fn batch_human_output_surfaces_cache_and_resilience_counters() {
        // DRAM bandwidth is a prediction-only axis, so with one worker the
        // second sweep point must hit the profile cache — and the human
        // summary must say so without --obs-out or --json.
        let out = run_ok(&[
            "batch", "sdk_vectoradd", "--blocks", "4", "--workers", "1",
            "--sweep", "bw=96,192",
        ]);
        assert!(out.contains("# exec.cache:"), "{out}");
        assert!(out.contains("misses=1"), "{out}");
        assert!(out.contains("hits=1"), "{out}");
    }

    #[test]
    fn profile_folded_out_round_trips_through_obs_validate() {
        let path = tmp_path("profile.folded");
        let path_s = path.to_string_lossy().to_string();
        let out =
            run_ok(&["profile", "sdk_vectoradd", "--blocks", "4", "--folded-out", &path_s]);
        assert!(out.contains("folded stacks written to"), "{out}");
        assert!(out.contains("== self-time attribution =="), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("core.pipeline.analyze"), "{text}");
        let verdict = run_ok(&["obs-validate", "--folded", &path_s]);
        assert!(verdict.contains("valid folded stacks"), "{verdict}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn obs_validate_folded_rejects_malformed_stacks() {
        let path = tmp_path("bad.folded");
        let path_s = path.to_string_lossy().to_string();
        std::fs::write(
            &path,
            "exec.batch.run;NotAFrame 100\n\
             exec.batch.run\n\
             zzz.bogus.family 5\n\
             exec.batch.run notanumber\n",
        )
        .unwrap();
        let e = run_err(&["obs-validate", "--folded", &path_s]);
        let CliError::ObsInvalid { report, problems } = e else {
            panic!("expected ObsInvalid, got {e:?}");
        };
        assert_eq!(problems, 4, "{report}");
        assert!(report.contains("outside the stage.subsystem.name scheme"));
        assert!(report.contains("unknown stage family \"zzz\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn perf_record_writes_a_parseable_baseline_covering_every_stage() {
        let path = tmp_path("perf-baseline.json");
        let path_s = path.to_string_lossy().to_string();
        let out =
            run_ok(&["perf", "record", "--out", &path_s, "--iters", "1", "--warmup", "0"]);
        assert!(out.contains("baseline written to"), "{out}");
        let text = std::fs::read_to_string(&path).unwrap();
        let base = gpumech_perf::Baseline::from_json(&text).expect("baseline parses back");
        assert_eq!(base.iters, 1);
        for stage in gpumech_perf::STAGE_NAMES {
            let r = base
                .results
                .iter()
                .find(|r| r.name == stage)
                .unwrap_or_else(|| panic!("stage {stage} missing from baseline"));
            assert!(r.min_ns > 0, "{stage} recorded zero time");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn perf_obs_out_trace_validates_with_perf_family_metrics() {
        let trace = tmp_path("perf-obs.jsonl");
        let trace_s = trace.to_string_lossy().to_string();
        let base = tmp_path("perf-obs-baseline.json");
        let base_s = base.to_string_lossy().to_string();
        run_ok(&[
            "perf", "record", "--out", &base_s, "--iters", "1", "--warmup", "0",
            "--obs-out", &trace_s,
        ]);
        let text = std::fs::read_to_string(&trace).unwrap();
        assert!(text.contains("perf.alloc.count"), "{text}");
        assert!(text.contains("perf.bench.min_ns"), "{text}");
        let verdict = run_ok(&["obs-validate", &trace_s]);
        assert!(verdict.contains("valid"), "{verdict}");
        for p in [&trace, &base] {
            std::fs::remove_file(p).unwrap();
        }
    }

    #[test]
    fn perf_compare_passes_clean_and_gates_injected_slowdowns() {
        let path = tmp_path("perf-gate.json");
        let path_s = path.to_string_lossy().to_string();
        run_ok(&["perf", "record", "--out", &path_s, "--iters", "2", "--warmup", "1"]);
        // A clean re-run on the same machine stays within a generous
        // tolerance (wide headroom keeps this robust on loaded CI hosts).
        let out = run_ok(&[
            "perf", "compare", "--baseline", &path_s, "--iters", "2", "--warmup", "1",
            "--tolerance", "1000",
        ]);
        assert!(out.contains("# perf compare"), "{out}");
        assert!(!out.contains("REGRESSED"), "clean compare regressed: {out}");
        // A fault-injected 500 ms sleep in one stage must trip the gate
        // even at that tolerance, and only that stage may regress.
        let e = run_err(&[
            "perf", "compare", "--baseline", &path_s, "--iters", "2", "--warmup", "1",
            "--tolerance", "1000", "--slow", "e2e_batch=500",
        ]);
        let CliError::PerfRegression { report, regressions } = e else {
            panic!("expected PerfRegression, got {e:?}");
        };
        assert_eq!(regressions, 1, "{report}");
        assert!(report.contains("REGRESSED"), "{report}");
        let regressed: Vec<&str> = report
            .lines()
            .filter(|l| l.contains("REGRESSED"))
            .collect();
        assert!(regressed.iter().all(|l| l.starts_with("e2e_batch")), "{report}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn perf_rejects_bad_actions_and_slow_specs() {
        assert!(matches!(
            run_err(&["perf", "tune"]),
            CliError::BadChoice { flag: "perf", .. }
        ));
        assert!(matches!(run_err(&["perf"]), CliError::Args(_)));
        for spec in ["e2e_batch", "nope=5", "trace=abc", "trace=1,nope=2"] {
            assert!(
                matches!(
                    run_err(&["perf", "compare", "--slow", spec]),
                    CliError::BadChoice { flag: "slow", .. }
                ),
                "slow spec {spec:?} should be rejected"
            );
        }
    }

    #[test]
    fn perf_compare_without_a_baseline_is_a_plain_io_error() {
        let e = run_err(&["perf", "compare", "--baseline", "/no/such/baseline.json"]);
        assert!(matches!(e, CliError::Io(_)), "{e:?}");
    }
}
