//! Subcommand implementations. Every command returns the text it would
//! print, so tests assert on output without process spawning.

use std::fmt;

use gpumech_analyze::{analyze, KernelAnalysis, Severity};
use gpumech_core::{
    summarize_population, Gpumech, Model, Prediction, SchedulingPolicy, SelectionMethod,
    StallCategory,
};
use gpumech_isa::SimConfig;
use gpumech_timing::simulate;
use gpumech_trace::{workloads, Workload};

use crate::args::{ArgError, Args};
use crate::USAGE;

/// Error surfaced to the user by the CLI.
#[derive(Debug)]
pub enum CliError {
    /// Argument parsing or validation failed.
    Args(ArgError),
    /// The named workload does not exist.
    UnknownKernel(String),
    /// The named subcommand does not exist.
    UnknownCommand(String),
    /// A flag accepted only specific values.
    BadChoice {
        /// The flag name.
        flag: &'static str,
        /// The offending value.
        value: String,
        /// The accepted values.
        expected: &'static str,
    },
    /// The machine configuration assembled from `--warps`/`--mshrs`/`--bw`/
    /// `--sfu` flags failed validation.
    Config(String),
    /// The underlying library failed.
    Model(String),
    /// Writing an output file failed.
    Io(std::io::Error),
    /// `lint` found error-severity diagnostics. The report still carries
    /// the full rendered output so `main` can print it before exiting
    /// nonzero.
    LintFailed {
        /// Rendered lint report (same text a clean run would print).
        report: String,
        /// Number of error-severity findings.
        errors: usize,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}\n\n{USAGE}"),
            CliError::UnknownKernel(k) => {
                write!(f, "unknown kernel {k:?}; run `gpumech list` for the catalogue")
            }
            CliError::UnknownCommand(c) => write!(f, "unknown command {c:?}\n\n{USAGE}"),
            CliError::BadChoice { flag, value, expected } => {
                write!(f, "--{flag} must be one of {expected}, got {value:?}")
            }
            CliError::Config(e) => {
                write!(f, "invalid machine configuration: {e} (run `gpumech config` for defaults)")
            }
            CliError::Model(e) => write!(f, "modeling failed: {e}"),
            CliError::Io(e) => write!(f, "io error: {e}"),
            CliError::LintFailed { errors, .. } => {
                write!(f, "lint found {errors} error-severity finding(s)")
            }
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

const MACHINE_FLAGS: [&str; 5] = ["blocks", "warps", "mshrs", "bw", "sfu"];

fn machine_config(args: &Args) -> Result<SimConfig, CliError> {
    let mut cfg = SimConfig::table1();
    if let Some(w) = args.flag_opt::<usize>("warps")? {
        cfg = cfg.with_warps_per_core(w);
    }
    if let Some(m) = args.flag_opt::<usize>("mshrs")? {
        cfg = cfg.with_mshrs(m);
    }
    if let Some(b) = args.flag_opt::<f64>("bw")? {
        cfg = cfg.with_dram_bandwidth(b);
    }
    if let Some(s) = args.flag_opt::<usize>("sfu")? {
        cfg = cfg.with_sfu_per_core(s);
    }
    cfg.validate().map_err(|e| CliError::Config(e.to_string()))?;
    Ok(cfg)
}

fn lookup(args: &Args) -> Result<Workload, CliError> {
    let name = args.required(0, "kernel")?;
    let w = workloads::by_name(name).ok_or_else(|| CliError::UnknownKernel(name.to_string()))?;
    Ok(match args.flag_opt::<usize>("blocks")? {
        Some(b) => w.with_blocks(b),
        None => w,
    })
}

fn policy(args: &Args) -> Result<SchedulingPolicy, CliError> {
    match args.flag("policy").unwrap_or("rr") {
        "rr" => Ok(SchedulingPolicy::RoundRobin),
        "gto" => Ok(SchedulingPolicy::GreedyThenOldest),
        other => Err(CliError::BadChoice {
            flag: "policy",
            value: other.to_string(),
            expected: "rr|gto",
        }),
    }
}

fn model_kind(args: &Args) -> Result<Model, CliError> {
    match args.flag("model").unwrap_or("full") {
        "naive" => Ok(Model::NaiveInterval),
        "markov" => Ok(Model::MarkovChain),
        "mt" => Ok(Model::Mt),
        "mt_mshr" => Ok(Model::MtMshr),
        "full" | "mt_mshr_band" => Ok(Model::MtMshrBand),
        other => Err(CliError::BadChoice {
            flag: "model",
            value: other.to_string(),
            expected: "naive|markov|mt|mt_mshr|full",
        }),
    }
}

/// Dispatches one invocation; returns the text to print.
///
/// # Errors
///
/// Returns a [`CliError`] describing bad arguments, unknown kernels or
/// commands, or failures in the underlying library.
pub fn run<I>(argv: I) -> Result<String, CliError>
where
    I: IntoIterator<Item = String>,
{
    let mut it = argv.into_iter();
    let command = it.next().unwrap_or_else(|| "help".to_string());
    let rest: Vec<String> = it.collect();
    match command.as_str() {
        "list" => cmd_list(&Args::parse(rest, &[])?),
        "config" => cmd_config(&Args::parse(rest, &MACHINE_FLAGS)?),
        "trace" => cmd_trace(&Args::parse(rest, &["blocks", "json"])?),
        "predict" => cmd_predict(&Args::parse(
            rest,
            &["blocks", "warps", "mshrs", "bw", "sfu", "policy", "model", "selection"],
        )?),
        "simulate" => cmd_simulate(&Args::parse(
            rest,
            &["blocks", "warps", "mshrs", "bw", "sfu", "policy"],
        )?),
        "compare" => cmd_compare(&Args::parse(
            rest,
            &["blocks", "warps", "mshrs", "bw", "sfu", "policy"],
        )?),
        "stacks" => cmd_stacks(&Args::parse(rest, &["blocks", "policy"])?),
        "profile" => cmd_profile(&Args::parse(rest, &["blocks", "warps", "mshrs", "bw", "sfu"])?),
        "intervals" => {
            cmd_intervals(&Args::parse(rest, &["blocks", "warps", "mshrs", "bw", "sfu", "limit"])?)
        }
        "lint" => cmd_lint(&Args::parse(rest, &["format", "min-severity"])?),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(CliError::UnknownCommand(other.to_string())),
    }
}

fn cmd_list(_args: &Args) -> Result<String, CliError> {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<28}{:<10}{:<12}{:<8}description\n",
        "name", "suite", "divergence", "cdiv"
    ));
    for w in workloads::all() {
        out.push_str(&format!(
            "{:<28}{:<10}{:<12}{:<8}{}\n",
            w.name,
            w.suite.to_string(),
            format!("{:?}", w.divergence).to_lowercase(),
            if w.control_divergent { "yes" } else { "-" },
            w.description,
        ));
    }
    Ok(out)
}

fn cmd_config(args: &Args) -> Result<String, CliError> {
    let cfg = machine_config(args)?;
    Ok(format!(
        "cores: {}\nclock: {} GHz\nwarps/core: {}\nissue width: {}\n\
         L1: {} KB, {}-way, {} cycles, {} MSHRs\nL2: {} KB, {}-way, {} cycles\n\
         DRAM: {} GB/s, {} cycles (service {:.3} cyc/line)\nSFU lanes: {} (initiation interval {})\n",
        cfg.num_cores,
        cfg.clock_ghz,
        cfg.max_warps_per_core,
        cfg.issue_width,
        cfg.l1.size_bytes / 1024,
        cfg.l1.assoc,
        cfg.l1.latency,
        cfg.num_mshrs,
        cfg.l2.size_bytes / 1024,
        cfg.l2.assoc,
        cfg.l2.latency,
        cfg.dram_bandwidth_gbps,
        cfg.dram_latency,
        cfg.dram_service_cycles(),
        cfg.sfu_per_core,
        cfg.sfu_initiation_interval(),
    ))
}

fn cmd_trace(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let mut out = format!(
        "kernel: {}\nwarps: {}\ntotal instructions: {}\nglobal memory instructions: {}\n",
        trace.name,
        trace.warps.len(),
        trace.total_insts(),
        trace.total_global_mem_insts(),
    );
    let lens: Vec<usize> = trace.warps.iter().map(gpumech_trace::WarpTrace::len).collect();
    let min = lens.iter().min().copied().unwrap_or(0);
    let max = lens.iter().max().copied().unwrap_or(0);
    out.push_str(&format!(
        "per-warp length: min {min}, max {max}, mean {:.1}\n",
        trace.total_insts() as f64 / trace.warps.len().max(1) as f64
    ));
    if let Some(path) = args.flag("json") {
        let json = serde_json::to_string(&trace).map_err(|e| CliError::Model(e.to_string()))?;
        std::fs::write(path, json)?;
        out.push_str(&format!("trace written to {path}\n"));
    }
    Ok(out)
}

fn render_prediction(p: &Prediction, header: &str) -> String {
    let mut out = format!("{header}\n");
    out.push_str(&format!(
        "predicted CPI: {:.3}  (IPC {:.3})\n",
        p.cpi_total(),
        p.ipc()
    ));
    out.push_str(&format!(
        "  multithreading {:.3} + contention {:.3} (MSHR {:.3}, QUEUE {:.3}, SFU {:.3})\n",
        p.multithreading.cpi,
        p.contention.cpi,
        p.contention.cpi_mshr,
        p.contention.cpi_queue,
        p.contention.cpi_sfu,
    ));
    out.push_str(&format!(
        "  representative warp: #{} (single-warp CPI {:.2}), {} warps/core\n",
        p.representative, p.single_warp_cpi, p.warps_per_core
    ));
    out.push_str(&format!("  {}\n", p.cpi.render_bar(60)));
    for w in &p.warnings {
        out.push_str(&format!("  warning: {w}\n"));
    }
    out
}

fn cmd_predict(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;
    let pol = policy(args)?;
    let kind = model_kind(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let model = Gpumech::new(cfg);
    let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;
    let p = match args.flag("selection").unwrap_or("clustering") {
        "max" => model.predict_from_analysis(&analysis, pol, kind, SelectionMethod::Max),
        "min" => model.predict_from_analysis(&analysis, pol, kind, SelectionMethod::Min),
        "clustering" => {
            model.predict_from_analysis(&analysis, pol, kind, SelectionMethod::Clustering)
        }
        "weighted" => model.predict_weighted_clusters(&analysis, pol, kind),
        other => {
            return Err(CliError::BadChoice {
                flag: "selection",
                value: other.to_string(),
                expected: "max|min|clustering|weighted",
            })
        }
    };
    Ok(render_prediction(&p, &format!("kernel: {} ({} policy, {})", w.name, pol, kind)))
}

fn cmd_simulate(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;
    let pol = policy(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let t0 = std::time::Instant::now();
    let r = simulate(&trace, &cfg, pol).map_err(|e| CliError::Model(e.to_string()))?;
    let dt = t0.elapsed();
    Ok(format!(
        "kernel: {} ({pol} policy)\ncycles: {}\ninstructions: {}\nCPI: {:.3}  (IPC {:.3})\n\
         DRAM requests: {}  (bus utilization {:.1}%)\nsimulated in {dt:.2?}\n",
        w.name,
        r.cycles,
        r.insts,
        r.cpi(),
        r.ipc(),
        r.dram_requests,
        100.0 * r.dram_utilization,
    ))
}

fn cmd_compare(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;
    let pol = policy(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let oracle = simulate(&trace, &cfg, pol).map_err(|e| CliError::Model(e.to_string()))?;
    let model = Gpumech::new(cfg);
    let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;

    let mut out = format!(
        "kernel: {} ({pol} policy)\noracle CPI: {:.3}\n\n{:<16}{:>10}{:>10}\n",
        w.name,
        oracle.cpi(),
        "model",
        "CPI",
        "error"
    );
    for kind in Model::ALL {
        let p = model.predict_from_analysis(&analysis, pol, kind, SelectionMethod::Clustering);
        let err = (p.cpi_total() - oracle.cpi()).abs() / oracle.cpi();
        out.push_str(&format!(
            "{:<16}{:>10.3}{:>9.1}%\n",
            kind.to_string(),
            p.cpi_total(),
            100.0 * err
        ));
    }
    Ok(out)
}

fn cmd_stacks(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let pol = policy(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let mut out = format!("kernel: {} ({pol} policy)\n", w.name);
    out.push_str(&format!("{:<8}", "warps"));
    for cat in StallCategory::ALL {
        out.push_str(&format!("{:>8}", cat.to_string()));
    }
    out.push_str(&format!("{:>10}\n", "CPI"));
    for warps in [8usize, 16, 32, 48] {
        let cfg = SimConfig::table1().with_warps_per_core(warps);
        let model = Gpumech::new(cfg);
        let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;
        let p = model.predict_from_analysis(
            &analysis,
            pol,
            Model::MtMshrBand,
            SelectionMethod::Clustering,
        );
        out.push_str(&format!("{warps:<8}"));
        for cat in StallCategory::ALL {
            out.push_str(&format!("{:>8.2}", p.cpi.get(cat)));
        }
        out.push_str(&format!("{:>10.2}\n", p.cpi_total()));
    }
    Ok(out)
}

fn cmd_profile(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let model = Gpumech::new(cfg);
    let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;
    let pop = summarize_population(&analysis.profiles);
    let rep = gpumech_core::select_representative(&analysis.profiles, SelectionMethod::Clustering);
    let s = analysis.profiles[rep].summary();

    let mut out = format!("kernel: {}\n\n== warp population ==\n", w.name);
    out.push_str(&format!(
        "warps: {}\nper-warp IPC: min {:.4}, mean {:.4}, max {:.4} (cv {:.2})\n\
         per-warp instructions: min {}, mean {:.1}, max {}\n",
        pop.num_warps,
        pop.perf_min,
        pop.perf_mean,
        pop.perf_max,
        pop.perf_cv,
        pop.insts_min,
        pop.insts_mean,
        pop.insts_max,
    ));
    out.push_str(&format!("\n== representative warp #{rep} ==\n"));
    out.push_str(&format!(
        "intervals: {} (avg {:.1} insts, avg stall {:.1} cycles)\n\
         instructions: {} ({} loads, {} stores)\n\
         stall cycles: {:.0} total — {:.0} compute, {:.0} memory\n\
         divergence degree: {:.1} requests per memory instruction\n\
         MSHR-allocating requests/inst: {:.2}\nDRAM-reaching requests/inst: {:.2}\n\
         avg miss latency (no queueing): {:.0} cycles\n",
        s.num_intervals,
        s.avg_interval_insts,
        s.avg_stall_cycles,
        s.total_insts,
        s.load_insts,
        s.store_insts,
        s.total_stall_cycles,
        s.compute_stall_cycles,
        s.memory_stall_cycles,
        s.divergence_degree,
        s.mshr_reqs_per_inst,
        s.dram_reqs_per_inst,
        analysis.mem.avg_miss_latency(),
    ));
    Ok(out)
}

fn cmd_intervals(args: &Args) -> Result<String, CliError> {
    let w = lookup(args)?;
    let cfg = machine_config(args)?;
    let limit: usize = args.flag_or("limit", 20)?;
    let trace = w.trace().map_err(|e| CliError::Model(e.to_string()))?;
    let model = Gpumech::new(cfg);
    let analysis = model.analyze(&trace).map_err(|e| CliError::Model(e.to_string()))?;
    let rep = gpumech_core::select_representative(&analysis.profiles, SelectionMethod::Clustering);
    let profile = &analysis.profiles[rep];

    let mut out = format!(
        "kernel: {} — representative warp #{rep} ({} intervals, showing {})\n\n",
        w.name,
        profile.intervals.len(),
        limit.min(profile.intervals.len())
    );
    out.push_str(&format!(
        "{:<6}{:>7}{:>10}{:>10}{:>8}{:>8}{:>9}{:>9}  cause\n",
        "#", "insts", "stall", "loads", "stores", "reqs", "mshr", "dram"
    ));
    for (i, iv) in profile.intervals.iter().take(limit).enumerate() {
        let cause = match iv.cause {
            gpumech_core::StallCause::None => "-".to_string(),
            gpumech_core::StallCause::Compute => "compute".to_string(),
            gpumech_core::StallCause::Memory { pc } => format!("load@pc{pc}"),
        };
        out.push_str(&format!(
            "{:<6}{:>7}{:>10.1}{:>10}{:>8}{:>8.1}{:>9.2}{:>9.2}  {cause}\n",
            i, iv.insts, iv.stall_cycles, iv.load_insts, iv.store_insts, iv.mem_reqs,
            iv.mshr_reqs, iv.dram_reqs,
        ));
    }
    if profile.intervals.len() > limit {
        out.push_str(&format!("... {} more (use --limit)\n", profile.intervals.len() - limit));
    }
    Ok(out)
}

fn cmd_lint(args: &Args) -> Result<String, CliError> {
    let target = args.positional(0).unwrap_or("all");
    let min = match args.flag("min-severity").unwrap_or("info") {
        "info" => Severity::Info,
        "warning" => Severity::Warning,
        "error" => Severity::Error,
        other => {
            return Err(CliError::BadChoice {
                flag: "min-severity",
                value: other.to_string(),
                expected: "info|warning|error",
            })
        }
    };
    let selected: Vec<Workload> = if target == "all" {
        workloads::all()
    } else {
        vec![workloads::by_name(target)
            .ok_or_else(|| CliError::UnknownKernel(target.to_string()))?]
    };

    let analyses: Vec<(String, KernelAnalysis)> =
        selected.iter().map(|w| (w.name.clone(), analyze(&w.kernel))).collect();
    let count = |sev| {
        analyses
            .iter()
            .flat_map(|(_, a)| &a.diagnostics)
            .filter(|d| d.severity == sev)
            .count()
    };
    let (errors, warnings, infos) =
        (count(Severity::Error), count(Severity::Warning), count(Severity::Info));

    let report = match args.flag("format").unwrap_or("text") {
        "json" => {
            let objs: Vec<&KernelAnalysis> = analyses.iter().map(|(_, a)| a).collect();
            let mut s =
                serde_json::to_string_pretty(&objs).map_err(|e| CliError::Model(e.to_string()))?;
            s.push('\n');
            s
        }
        "text" => {
            let mut out = String::new();
            for (name, a) in &analyses {
                let m = &a.metrics;
                out.push_str(&format!(
                    "{:<28}{:<9}{:>6} insts  {:>2}/{:<2} branches divergent  \
                     mem b/c/s/x {}/{}/{}/{}\n",
                    name,
                    a.max_severity().map_or("clean".to_string(), |s| s.to_string()),
                    m.insts,
                    m.divergent_branches,
                    m.branches,
                    m.broadcast_accesses,
                    m.coalesced_accesses,
                    m.strided_accesses,
                    m.scattered_accesses,
                ));
                for d in a.diagnostics_at_least(min) {
                    out.push_str(&format!("    {d}\n"));
                }
            }
            out.push_str(&format!(
                "\nlinted {} kernel(s): {errors} error(s), {warnings} warning(s), \
                 {infos} info(s)\n",
                analyses.len()
            ));
            out
        }
        other => {
            return Err(CliError::BadChoice {
                flag: "format",
                value: other.to_string(),
                expected: "text|json",
            })
        }
    };

    if errors > 0 {
        Err(CliError::LintFailed { report, errors })
    } else {
        Ok(report)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn run_ok(argv: &[&str]) -> String {
        run(argv.iter().map(ToString::to_string)).expect("command succeeds")
    }

    fn run_err(argv: &[&str]) -> CliError {
        run(argv.iter().map(ToString::to_string)).expect_err("command fails")
    }

    #[test]
    fn help_prints_usage() {
        assert!(run_ok(&["help"]).contains("USAGE"));
        assert!(run_ok(&[]).contains("USAGE"), "no args defaults to help");
    }

    #[test]
    fn list_names_all_40_workloads() {
        let out = run_ok(&["list"]);
        assert_eq!(out.lines().count(), 41, "header + 40 rows");
        assert!(out.contains("kmeans_invert_mapping"));
        assert!(out.contains("cfd_step_factor"));
    }

    #[test]
    fn config_reflects_overrides() {
        let out = run_ok(&["config", "--mshrs", "64", "--bw", "96"]);
        assert!(out.contains("64 MSHRs"));
        assert!(out.contains("96 GB/s"));
        assert!(out.contains("cores: 16"));
    }

    #[test]
    fn trace_reports_statistics() {
        let out = run_ok(&["trace", "sdk_vectoradd", "--blocks", "2"]);
        assert!(out.contains("warps: 16"));
        assert!(out.contains("total instructions:"));
    }

    #[test]
    fn predict_outputs_cpi_and_stack_bar() {
        let out = run_ok(&["predict", "sdk_vectoradd", "--blocks", "8"]);
        assert!(out.contains("predicted CPI:"));
        assert!(out.contains("=BASE:"), "stack bar legend expected: {out}");
    }

    #[test]
    fn predict_weighted_selection_works() {
        let out =
            run_ok(&["predict", "lud_diagonal", "--blocks", "8", "--selection", "weighted"]);
        assert!(out.contains("predicted CPI:"));
    }

    #[test]
    fn simulate_and_compare_run() {
        let out = run_ok(&["simulate", "sdk_vectoradd", "--blocks", "4"]);
        assert!(out.contains("cycles:"));
        let out = run_ok(&["compare", "sdk_vectoradd", "--blocks", "4"]);
        assert!(out.contains("Naive_Interval"));
        assert!(out.contains("MT_MSHR_BAND"));
    }

    #[test]
    fn stacks_sweeps_warp_counts() {
        let out = run_ok(&["stacks", "sdk_vectoradd", "--blocks", "8"]);
        assert!(out.contains("QUEUE"));
        assert_eq!(out.lines().filter(|l| l.starts_with(char::is_numeric)).count(), 4);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(matches!(run_err(&["predict"]), CliError::Args(_)));
        assert!(matches!(run_err(&["predict", "nope"]), CliError::UnknownKernel(_)));
        assert!(matches!(run_err(&["frobnicate"]), CliError::UnknownCommand(_)));
        assert!(matches!(
            run_err(&["predict", "sdk_vectoradd", "--blocks", "4", "--policy", "fifo"]),
            CliError::BadChoice { flag: "policy", .. }
        ));
        assert!(matches!(
            run_err(&["predict", "sdk_vectoradd", "--bogus", "1"]),
            CliError::Args(ArgError::UnknownFlag(_))
        ));
    }

    #[test]
    fn out_of_range_machine_flags_are_rejected_with_one_line_messages() {
        // Every subcommand that accepts machine flags must reject
        // out-of-range values with a typed Config error whose message is a
        // single actionable line (main prints it and exits nonzero).
        for argv in [
            &["predict", "sdk_vectoradd", "--warps", "100000"][..],
            &["predict", "sdk_vectoradd", "--mshrs", "0"],
            &["predict", "sdk_vectoradd", "--bw", "0.5"],
            &["simulate", "sdk_vectoradd", "--warps", "0"],
            &["compare", "sdk_vectoradd", "--bw", "-3"],
            &["config", "--sfu", "64"],
            &["profile", "sdk_vectoradd", "--mshrs", "9999999"],
            &["intervals", "sdk_vectoradd", "--warps", "100000"],
        ] {
            let e = run_err(argv);
            assert!(matches!(e, CliError::Config(_)), "{argv:?} gave {e:?}");
            let msg = e.to_string();
            assert_eq!(msg.lines().count(), 1, "multi-line message for {argv:?}: {msg}");
            assert!(msg.contains("gpumech config"), "message not actionable: {msg}");
        }
    }

    #[test]
    fn bad_flag_values_are_rejected_per_subcommand() {
        assert!(matches!(
            run_err(&["predict", "sdk_vectoradd", "--model", "quantum"]),
            CliError::BadChoice { flag: "model", .. }
        ));
        assert!(matches!(
            run_err(&["predict", "sdk_vectoradd", "--selection", "random"]),
            CliError::BadChoice { flag: "selection", .. }
        ));
        assert!(matches!(
            run_err(&["simulate", "sdk_vectoradd", "--policy", "lifo"]),
            CliError::BadChoice { flag: "policy", .. }
        ));
        for cmd in ["trace", "predict", "simulate", "compare", "stacks", "profile", "intervals"] {
            assert!(
                matches!(run_err(&[cmd, "no_such_kernel"]), CliError::UnknownKernel(_)),
                "{cmd} should reject unknown kernels"
            );
            assert!(matches!(run_err(&[cmd]), CliError::Args(_)), "{cmd} requires a kernel");
        }
    }

    #[test]
    fn profile_reports_population_and_representative() {
        let out = run_ok(&["profile", "cfd_compute_flux", "--blocks", "4"]);
        assert!(out.contains("warp population"));
        assert!(out.contains("representative warp"));
        assert!(out.contains("divergence degree"));
    }

    #[test]
    fn intervals_lists_the_representative_profile() {
        let out = run_ok(&["intervals", "srad_kernel1", "--blocks", "4", "--limit", "5"]);
        assert!(out.contains("representative warp"));
        assert!(out.contains("load@pc") || out.contains("compute"));
        assert!(out.contains("more (use --limit)"));
    }

    #[test]
    fn lint_all_is_clean_over_the_workload_library() {
        let out = run_ok(&["lint"]);
        assert!(out.contains("linted 40 kernel(s): 0 error(s)"), "{out}");
        assert!(out.contains("kmeans_invert_mapping"));
    }

    #[test]
    fn lint_single_kernel_shows_divergence_findings() {
        let out = run_ok(&["lint", "bfs_kernel1", "--min-severity", "info"]);
        assert!(out.contains("linted 1 kernel(s)"), "{out}");
    }

    #[test]
    fn lint_json_round_trips() {
        let out = run_ok(&["lint", "sdk_vectoradd", "--format", "json"]);
        let parsed: Vec<KernelAnalysis> = serde_json::from_str(&out).expect("valid JSON");
        assert_eq!(parsed.len(), 1);
        assert!(!parsed[0].has_errors());
    }

    #[test]
    fn lint_rejects_bad_flag_values() {
        assert!(matches!(
            run_err(&["lint", "--format", "xml"]),
            CliError::BadChoice { flag: "format", .. }
        ));
        assert!(matches!(
            run_err(&["lint", "--min-severity", "fatal"]),
            CliError::BadChoice { flag: "min-severity", .. }
        ));
        assert!(matches!(run_err(&["lint", "nope"]), CliError::UnknownKernel(_)));
    }

    #[test]
    fn gto_policy_flag_is_accepted() {
        let out = run_ok(&["predict", "sdk_vectoradd", "--blocks", "4", "--policy", "gto"]);
        assert!(out.contains("gto policy"));
    }
}
