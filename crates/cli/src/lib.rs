//! Library backing the `gpumech` command-line tool.
//!
//! Each subcommand is a function from parsed [`args::Args`] to a
//! rendered string, so the whole CLI is unit-testable without spawning
//! processes. The `gpumech` binary (`src/main.rs`) is a thin dispatcher.
//!
//! Subcommands:
//!
//! * `list` — the bundled workload catalogue,
//! * `config` — the Table I machine description,
//! * `trace <kernel>` — trace statistics (and optional JSON dump),
//! * `predict <kernel>` — GPUMech prediction with a CPI-stack bar,
//! * `simulate <kernel>` — cycle-level oracle run,
//! * `compare <kernel>` — all five Table II models vs the oracle,
//! * `stacks <kernel>` — CPI stacks across warp counts,
//! * `batch [kernels...|all]` — parallel batch prediction across kernels
//!   and swept configurations, with profile caching (and `--shard i/N`
//!   for one deterministic shard of the sweep, stamped with the sweep
//!   manifest),
//! * `merge <shards...>` — verified union of shard result files:
//!   checksums, manifest/ownership/coverage proofs, typed findings and
//!   exit 5 on any violation, byte-identical output on success,
//! * `supervise` — run a whole sharded sweep locally under the
//!   crash-tolerant supervisor (journal heartbeats, `--resume` restarts
//!   with backoff and budget, deadline, SIGTERM drain, auto-merge),
//! * `serve` — hardened HTTP prediction service: bounded admission queue
//!   with load-shedding, per-request deadlines, typed errors, `/healthz`,
//!   `/readyz`, `/metrics`, and graceful SIGTERM drain,
//! * `lint [kernel|all]` — static analysis of the kernel IR
//!   (reconvergence correctness, dataflow, divergence, coalescing),
//! * `perf record|compare` — the stage-level + end-to-end micro-benchmark
//!   suite with persisted baselines and a noise-aware regression gate,
//! * `obs-validate <path>` — check an `--obs-out` JSON-lines trace (or,
//!   with `--folded`, a folded-stack export) against the exporter schema
//!   and the `stage.subsystem.name` scheme.

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{run, CliError};

/// Usage text shown by `gpumech help` and on argument errors.
pub const USAGE: &str = "\
gpumech — GPU performance modeling via interval analysis (MICRO 2014)

USAGE:
    gpumech <command> [args] [--flag value ...]

COMMANDS:
    list                         list the 40 bundled workloads
    config                       print the Table I machine configuration
    trace <kernel>               trace a workload and print statistics
    predict <kernel>             predict CPI with the full GPUMech model
    simulate <kernel>            run the cycle-level oracle
    compare <kernel>             all five models vs the oracle
    stacks <kernel>              CPI stacks across warp counts
    profile <kernel>             interval-profile, warp-population, and per-stage
                                 pipeline statistics (always records observability)
    intervals <kernel>           dump the representative warp's intervals (--limit N)
    batch [kernels...|all]       predict many kernels (and swept configurations)
                                 in parallel with profile caching (default: all 40)
    merge <shards...>            verify and union shard result files into one
                                 sweep file + markdown report; any corruption,
                                 coverage gap, or cross-sweep mix is a typed
                                 finding and exit 5 — never a partial merge
    supervise [kernels...|all]   run a sharded sweep under the crash-tolerant
                                 supervisor: N shard child processes, journal
                                 heartbeats, crash/hang restarts with --resume,
                                 SIGTERM drain, verified auto-merge
    serve                        run the HTTP prediction service (POST /predict,
                                 /healthz, /readyz, /metrics) until SIGTERM/ctrl-c
    lint [kernel|all]            statically analyze and verify kernel IR:
                                 structure, divergence, barriers, shared-memory
                                 races, bank conflicts (default: all 40)
    perf record|compare          run the stage-level + end-to-end micro-benchmark
                                 suite; record a baseline to
                                 results/PERF_BASELINE.json or gate against one
                                 (exit 4 on regression)
    obs-validate <path>          check an --obs-out JSONL trace against the
                                 exporter schema and naming scheme; with
                                 --folded, check a folded-stack export instead
    help                         this text

COMMON FLAGS:
    --blocks N        grid size override (default: each workload's grid)
    --policy rr|gto   warp scheduling policy (default rr)
    --warps N         resident warps per core (default 32)
    --mshrs N         MSHR entries per core (default 32)
    --bw GBPS         DRAM bandwidth in GB/s (default 192)
    --sfu N           SFU lanes per core (default 32)

PREDICT FLAGS:
    --model M         naive|markov|mt|mt_mshr|full (default full)
    --selection S     max|min|clustering|weighted (default clustering)

TRACE FLAGS:
    --json PATH       write the full trace as JSON

BATCH FLAGS:
    --workers N       worker threads for the batch pool (default 4)
    --sweep AXIS=A,B  sweep one machine axis (warps|mshrs|bw|sfu) across the
                      listed values; each kernel is predicted at every point
    --json PATH       write the batch results as machine-readable JSON
    --cache-dir DIR   persist the profile cache to DIR across invocations
    --timeout-ms N    per-job time budget; a job over budget fails alone
                      with a typed Deadline error
    --deadline-ms N   whole-run time budget; jobs past the deadline fail
                      fast instead of running
    --retries N       retry a job up to N times after a transient worker
                      panic, with deterministic exponential backoff
    --breaker-threshold N
                      skip further sweep points of a kernel after N
                      consecutive failures (typed CircuitOpen error)
    --journal PATH    append each completed job to a JSONL journal so an
                      interrupted run can be resumed
    --resume          skip jobs already present in --journal, replaying
                      their recorded predictions byte-identically
    --shard I/N       run only shard I of an N-way deterministic split of
                      the sweep (jobs are assigned by fingerprint hash, so
                      the split is stable across machines and enumeration
                      order); the --json file carries the sweep manifest
    --oracle          also run the cycle-level oracle per job and record
                      its CPI in the result rows (feeds the merge report's
                      model-vs-oracle table)

MERGE FLAGS (gpumech merge shard0.json shard1.json ...):
    --out PATH        write the merged sweep file (canonical shard-file
                      layout, byte-identical from jobs_checksum on to an
                      unsharded run)
    --report PATH     write the markdown sweep report (CPI stacks,
                      model-vs-oracle error, failures, counters)
    --expect PATH     byte-compare the merged output (from jobs_checksum
                      on) against a reference run's --json file; any
                      mismatch is a finding
    --journals A,B    shard journals to cross-check: every line must be a
                      valid journal entry belonging to this sweep

SUPERVISE FLAGS (accepts all COMMON/BATCH sweep flags for its children):
    --shards N        number of shard child processes (default 3)
    --dir DIR         working directory for per-shard journals, results,
                      and logs (default gpumech-sweep)
    --shard-bin PATH  shard worker binary (default: this binary)
    --restart-budget N  restarts allowed per shard before the sweep
                      aborts with a typed error (default 3)
    --heartbeat-ms N  a shard whose journal stops growing for this long
                      is killed and restarted (default 30000)
    --deadline-ms N   whole-sweep wall-clock bound
    --drain-ms N      SIGTERM grace window before SIGKILL on drain
                      (default 2000)
    --chaos-kill S@L  SIGKILL shard S once its journal reaches L lines
                      (fault-injection hook; comma-separate for several)
    --out/--report/--expect  forwarded to the verified auto-merge

EXIT CODES (ci.sh gates on the distinction):
    0  success
    1  usage or pipeline error
    2  lint found error-severity findings
    3  obs-validate found schema violations
    4  perf compare found regressions beyond the noise tolerance
    5  merge (or supervise's auto-merge) found findings: corrupt shard
       files, coverage gaps, duplicate conflicts, cross-sweep mixes, or
       an --expect byte mismatch

SERVE FLAGS:
    --addr A          bind address (default 127.0.0.1)
    --port N          bind port; 0 picks a free port, printed on stdout
                      (default 0)
    --workers N       request worker threads (default 4)
    --queue-cap N     admission queue depth; a full queue sheds new work
                      with 429 + Retry-After (default 32)
    --request-timeout-ms N
                      default and ceiling for per-request deadlines; an
                      expired deadline is a typed 504 (default 30000)
    --read-timeout-ms N
                      socket read patience; slow-loris clients get 408
                      (default 2000)
    --drain-ms N      graceful-drain budget after SIGTERM/ctrl-c before
                      in-flight work is cancelled (default 5000)
    --max-body-bytes N / --max-header-bytes N
                      request size budgets; oversize maps to 413
                      (defaults 65536 / 8192)
    --cache-dir DIR   persist the profile cache to DIR across restarts
    --warm LIST       comma-separated kernels (or \"all\") analyzed before
                      /readyz reports ready
    --breaker-threshold N
                      per-kernel circuit breaker: after N consecutive
                      server-side failures further requests get 503

PERF FLAGS:
    --out PATH        (record) baseline destination
                      (default results/PERF_BASELINE.json)
    --baseline PATH   (compare) baseline to gate against (same default)
    --iters N         timed iterations per stage, min reported (default 5)
    --warmup N        untimed warmup iterations per stage (default 2)
    --tolerance PCT   relative wall-time headroom before a stage counts as
                      regressed, on top of a 2 ms absolute floor (default 40)
    --slow STAGE=MS[,STAGE=MS...]
                      inject a sleep into named stages (fault hook used by
                      the perf-gate acceptance test)

OBSERVABILITY FLAGS:
    --obs-out PATH    write a JSON-lines recorder trace (predict, simulate,
                      compare, stacks, profile, intervals, batch, perf)
    --chrome-out PATH write a Chrome trace_event JSON (profile only); load
                      it in chrome://tracing or Perfetto
    --folded-out PATH write flamegraph-collapsed self-time stacks (profile
                      only); feed to flamegraph.pl, inferno, or speedscope

LINT FLAGS:
    --format F        text|json (default text)
    --min-severity S  info|warning|error (default info); exit is nonzero
                      whenever any error-severity finding exists,
                      regardless of this display filter
    --from-json PATH  lint kernels deserialized from a JSON file (one
                      kernel object or an array) instead of the catalogue
";
