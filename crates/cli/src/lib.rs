//! Library backing the `gpumech` command-line tool.
//!
//! Each subcommand is a function from parsed [`args::Args`] to a
//! rendered string, so the whole CLI is unit-testable without spawning
//! processes. The `gpumech` binary (`src/main.rs`) is a thin dispatcher.
//!
//! Subcommands:
//!
//! * `list` — the bundled workload catalogue,
//! * `config` — the Table I machine description,
//! * `trace <kernel>` — trace statistics (and optional JSON dump),
//! * `predict <kernel>` — GPUMech prediction with a CPI-stack bar,
//! * `simulate <kernel>` — cycle-level oracle run,
//! * `compare <kernel>` — all five Table II models vs the oracle,
//! * `stacks <kernel>` — CPI stacks across warp counts,
//! * `batch [kernels...|all]` — parallel batch prediction across kernels
//!   and swept configurations, with profile caching,
//! * `lint [kernel|all]` — static analysis of the kernel IR
//!   (reconvergence correctness, dataflow, divergence, coalescing),
//! * `obs-validate <path>` — check an `--obs-out` JSON-lines trace
//!   against the exporter schema and the `stage.subsystem.name` scheme.

pub mod args;
pub mod commands;

pub use args::{ArgError, Args};
pub use commands::{run, CliError};

/// Usage text shown by `gpumech help` and on argument errors.
pub const USAGE: &str = "\
gpumech — GPU performance modeling via interval analysis (MICRO 2014)

USAGE:
    gpumech <command> [args] [--flag value ...]

COMMANDS:
    list                         list the 40 bundled workloads
    config                       print the Table I machine configuration
    trace <kernel>               trace a workload and print statistics
    predict <kernel>             predict CPI with the full GPUMech model
    simulate <kernel>            run the cycle-level oracle
    compare <kernel>             all five models vs the oracle
    stacks <kernel>              CPI stacks across warp counts
    profile <kernel>             interval-profile, warp-population, and per-stage
                                 pipeline statistics (always records observability)
    intervals <kernel>           dump the representative warp's intervals (--limit N)
    batch [kernels...|all]       predict many kernels (and swept configurations)
                                 in parallel with profile caching (default: all 40)
    lint [kernel|all]            statically analyze and verify kernel IR:
                                 structure, divergence, barriers, shared-memory
                                 races, bank conflicts (default: all 40)
    obs-validate <path>          check an --obs-out JSONL trace against the
                                 exporter schema and naming scheme
    help                         this text

COMMON FLAGS:
    --blocks N        grid size override (default: each workload's grid)
    --policy rr|gto   warp scheduling policy (default rr)
    --warps N         resident warps per core (default 32)
    --mshrs N         MSHR entries per core (default 32)
    --bw GBPS         DRAM bandwidth in GB/s (default 192)
    --sfu N           SFU lanes per core (default 32)

PREDICT FLAGS:
    --model M         naive|markov|mt|mt_mshr|full (default full)
    --selection S     max|min|clustering|weighted (default clustering)

TRACE FLAGS:
    --json PATH       write the full trace as JSON

BATCH FLAGS:
    --workers N       worker threads for the batch pool (default 4)
    --sweep AXIS=A,B  sweep one machine axis (warps|mshrs|bw|sfu) across the
                      listed values; each kernel is predicted at every point
    --json PATH       write the batch results as machine-readable JSON
    --cache-dir DIR   persist the profile cache to DIR across invocations
    --timeout-ms N    per-job time budget; a job over budget fails alone
                      with a typed Deadline error
    --deadline-ms N   whole-run time budget; jobs past the deadline fail
                      fast instead of running
    --retries N       retry a job up to N times after a transient worker
                      panic, with deterministic exponential backoff
    --breaker-threshold N
                      skip further sweep points of a kernel after N
                      consecutive failures (typed CircuitOpen error)
    --journal PATH    append each completed job to a JSONL journal so an
                      interrupted run can be resumed
    --resume          skip jobs already present in --journal, replaying
                      their recorded predictions byte-identically

OBSERVABILITY FLAGS:
    --obs-out PATH    write a JSON-lines recorder trace (predict, simulate,
                      compare, stacks, profile, intervals)
    --chrome-out PATH write a Chrome trace_event JSON (profile only); load
                      it in chrome://tracing or Perfetto

LINT FLAGS:
    --format F        text|json (default text)
    --min-severity S  info|warning|error (default info); exit is nonzero
                      whenever any error-severity finding exists,
                      regardless of this display filter
    --from-json PATH  lint kernels deserialized from a JSON file (one
                      kernel object or an array) instead of the catalogue

EXIT CODES:
    0  success        1  usage or pipeline error
    2  lint found error-severity findings
    3  obs-validate found schema violations
";
