//! The `gpumech` binary: a thin dispatcher over [`gpumech_cli::run`].

use std::process::ExitCode;

fn main() -> ExitCode {
    match gpumech_cli::run(std::env::args().skip(1)) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
