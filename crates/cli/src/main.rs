//! The `gpumech` binary: a thin dispatcher over [`gpumech_cli::run`].
//!
//! Exit taxonomy (documented in the README): 0 = success, 1 = usage or
//! pipeline error, 2 = `lint` found Error-severity findings, 3 =
//! `obs-validate` found schema violations, 4 = `perf compare` found
//! regressions beyond the noise tolerance, 5 = `merge` (or the
//! auto-merge after `supervise`) found merge findings — corrupt shard
//! files, coverage gaps, duplicate conflicts, or an `--expect` byte
//! mismatch. CI gates on the distinction: a defective *kernel* (2), a
//! malformed *trace* (3), a *slower build* (4), and an *unsafe merge*
//! (5) are each actionable differently from a broken *invocation* (1).

use std::process::ExitCode;

use gpumech_cli::CliError;

/// Exit code for `lint` verification failures.
const EXIT_LINT_FAILED: u8 = 2;
/// Exit code for `obs-validate` schema failures.
const EXIT_OBS_INVALID: u8 = 3;
/// Exit code for `perf compare` regressions.
const EXIT_PERF_REGRESSION: u8 = 4;
/// Exit code for `merge` / `supervise` merge failures.
const EXIT_MERGE_FAILED: u8 = 5;

fn main() -> ExitCode {
    match gpumech_cli::run(std::env::args().skip(1)) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        // Lint failures still print the full report (to stdout, like a
        // successful run) before signalling failure via the exit code.
        Err(CliError::LintFailed { report, errors }) => {
            print!("{report}");
            eprintln!("error: lint found {errors} error-severity finding(s)");
            ExitCode::from(EXIT_LINT_FAILED)
        }
        // Same shape for trace validation: full problem list, then the
        // one-line error and a nonzero exit.
        Err(CliError::ObsInvalid { report, problems }) => {
            print!("{report}");
            eprintln!("error: observability trace failed validation with {problems} problem(s)");
            ExitCode::from(EXIT_OBS_INVALID)
        }
        // Perf regressions print the full comparison table first so the
        // offending stage and its limits are in the CI log.
        Err(CliError::PerfRegression { report, regressions }) => {
            print!("{report}");
            eprintln!("error: perf compare found {regressions} regressed stage(s)");
            ExitCode::from(EXIT_PERF_REGRESSION)
        }
        // Merge failures print every typed finding first: the operator
        // needs to know *which* shard file was corrupt or missing.
        Err(CliError::MergeFailed { report, findings }) => {
            print!("{report}");
            eprintln!("error: merge failed with {findings} finding(s); no merged output written");
            ExitCode::from(EXIT_MERGE_FAILED)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
