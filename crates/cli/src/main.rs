//! The `gpumech` binary: a thin dispatcher over [`gpumech_cli::run`].

use std::process::ExitCode;

use gpumech_cli::CliError;

fn main() -> ExitCode {
    match gpumech_cli::run(std::env::args().skip(1)) {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        // Lint failures still print the full report (to stdout, like a
        // successful run) before signalling failure via the exit code.
        Err(CliError::LintFailed { report, errors }) => {
            print!("{report}");
            eprintln!("error: lint found {errors} error-severity finding(s)");
            ExitCode::FAILURE
        }
        // Same shape for trace validation: full problem list, then the
        // one-line error and a nonzero exit.
        Err(CliError::ObsInvalid { report, problems }) => {
            print!("{report}");
            eprintln!("error: observability trace failed validation with {problems} problem(s)");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
