//! Exit-code taxonomy contract for the `gpumech` binary.
//!
//! The README documents a six-code taxonomy that CI scripts branch on;
//! this suite spawns the real binary once per code and pins each one:
//!
//! | code | meaning                                   |
//! |------|-------------------------------------------|
//! | 0    | success                                   |
//! | 1    | usage / pipeline error                    |
//! | 2    | `lint` found Error-severity findings      |
//! | 3    | `obs-validate` found schema violations    |
//! | 4    | `perf compare` found regressions          |
//! | 5    | `merge` / `supervise` merge failure       |
//!
//! Failure codes must also keep their report-then-error shape: the full
//! report on stdout (for the CI log) and a one-line `error:` on stderr.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::PathBuf;
use std::process::{Command, Output};

use gpumech_isa::{KernelBuilder, Operand, ValueOp};
use gpumech_shard::{fingerprint_hex, JobRow, ShardSpec, SweepManifest, SweepReport};

fn gpumech(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gpumech"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("binary spawns")
}

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gpumech-exit-codes-{}-{tag}", std::process::id()))
}

#[test]
fn exit_0_on_success() {
    let out = gpumech(&["list"]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    assert!(out.stderr.is_empty(), "a clean run writes nothing to stderr");
}

#[test]
fn exit_1_on_usage_error() {
    let out = gpumech(&["no-such-command"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown command"), "stderr names the problem: {stderr}");

    // A broken flag value is the same class of failure.
    let out = gpumech(&["batch", "sdk_vectoradd", "--shard", "9/3"]);
    assert_eq!(out.status.code(), Some(1), "out-of-range shard spec is a usage error");
}

#[test]
fn exit_2_on_lint_error_findings() {
    // A kernel with a barrier inside divergent control flow: the one
    // verification finding that is Error severity.
    let mut b = KernelBuilder::new("bad_barrier");
    let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(8)]);
    b.if_begin(Operand::Reg(c));
    b.sync();
    b.if_end();
    let kernel = b.finish(vec![]);
    let path = tmp("lint.json");
    std::fs::write(&path, serde_json::to_string(&kernel).unwrap()).unwrap();

    let out = gpumech(&["lint", "--from-json", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("error-severity finding"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn exit_3_on_invalid_obs_trace() {
    let path = tmp("obs.jsonl");
    std::fs::write(&path, "this is not a trace line\n").unwrap();
    let out = gpumech(&["obs-validate", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(3));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("failed validation"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn exit_4_on_perf_regression() {
    // The committed baseline plus an injected 300 ms sleep: guaranteed
    // regression regardless of host speed. One iteration keeps it quick.
    let out = gpumech(&[
        "perf", "compare", "--iters", "1", "--warmup", "0",
        "--baseline", "../../results/PERF_BASELINE.json",
        "--slow", "e2e_batch=300",
    ]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("regressed stage"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn exit_5_on_merge_failure() {
    // A structurally valid one-shard sweep file with a forged row: the
    // checksum check must fail the merge.
    let fps = [0xA1u64, 0xB2, 0xC3];
    let report = SweepReport {
        manifest: SweepManifest::new(ShardSpec::single(), "cafe", 1, &fps),
        workers: 1,
        cache_entries: 0,
        counters: Vec::new(),
        jobs_checksum: String::new(),
        jobs: fps
            .iter()
            .map(|&fp| JobRow {
                label: format!("k-{fp:x}"),
                fingerprint: fingerprint_hex(fp),
                cpi: Some(2.5),
                ipc: Some(0.4),
                stack: None,
                oracle_cpi: None,
                error: None,
                warnings: Vec::new(),
            })
            .collect(),
    };
    let path = tmp("shard-0.json");
    report.write(&path).unwrap();
    let honest = std::fs::read_to_string(&path).unwrap();
    std::fs::write(&path, honest.replacen("2.5", "9.9", 1)).unwrap();

    let out = gpumech(&["merge", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(5));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[corrupt-shard-file]"), "stdout carries the findings: {stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("merge failed"), "stderr: {stderr}");

    // The corrupt file was quarantined, not left in place.
    assert!(!path.exists(), "corrupt shard file must be quarantined");
    let quarantined = PathBuf::from(format!("{}.quarantine", path.display()));
    assert!(quarantined.exists());
    std::fs::remove_file(&quarantined).unwrap();
}
