//! Kill/resume integration test: a real `gpumech batch` child process is
//! SIGKILLed mid-sweep, then rerun with `--resume`. The union of the
//! journal and the second run must cover every job exactly once, the
//! resumed run must do zero repeat analyses (asserted via the exported
//! counters), and the final JSON report must be byte-identical to an
//! uninterrupted run.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

const KERNELS: [&str; 7] = [
    "sdk_vectoradd",
    "bfs_kernel1",
    "kmeans_invert_mapping",
    "cfd_step_factor",
    "lud_diagonal",
    "srad_kernel1",
    "cfd_compute_flux",
];

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gpumech-killresume-{}-{tag}", std::process::id()))
}

fn batch_cmd(json: &Path, journal: Option<&Path>, resume: bool, obs: Option<&Path>) -> Command {
    let mut c = Command::new(env!("CARGO_BIN_EXE_gpumech"));
    c.arg("batch");
    c.args(KERNELS);
    c.args(["--blocks", "8", "--workers", "1", "--json"]).arg(json);
    if let Some(j) = journal {
        c.arg("--journal").arg(j);
    }
    if resume {
        c.arg("--resume");
    }
    if let Some(o) = obs {
        c.arg("--obs-out").arg(o);
    }
    c.stdout(std::process::Stdio::null()).stderr(std::process::Stdio::null());
    c
}

/// Parses the journal: the fingerprints of every fully-written line
/// (torn tails excluded, matching `Journal::load`).
fn journal_fingerprints(path: &Path) -> Vec<String> {
    let Ok(text) = fs::read_to_string(path) else { return Vec::new() };
    text.lines()
        .filter_map(|line| {
            let v = serde_json::parse_value(line).ok()?;
            match v.get_field("fingerprint") {
                Some(serde::Value::Str(s)) => Some(s.clone()),
                _ => None,
            }
        })
        .collect()
}

/// Extracts a counter aggregate's total from an `--obs-out` JSONL export.
fn counter_total(obs_text: &str, name: &str) -> u64 {
    let needle = format!("\"name\":\"{name}\"");
    for line in obs_text.lines() {
        if line.contains("\"type\":\"aggregate\"") && line.contains(&needle) {
            let v = serde_json::parse_value(line).unwrap();
            return v.get_field("total").and_then(serde::Value::as_u64).unwrap_or(0);
        }
    }
    0
}

#[test]
fn killed_batch_resumes_with_zero_repeat_work_and_identical_output() {
    let ref_json = tmp("ref.json");
    let killed_json = tmp("killed.json");
    let final_json = tmp("final.json");
    let journal = tmp("journal.jsonl");
    let obs = tmp("obs.jsonl");
    for p in [&ref_json, &killed_json, &final_json, &journal, &obs] {
        let _ = fs::remove_file(p);
    }

    // Ground truth: one uninterrupted run, no journal.
    let status = batch_cmd(&ref_json, None, false, None).status().unwrap();
    assert!(status.success(), "reference run failed");

    // The victim run: poll the journal and SIGKILL the child once some —
    // but not all — jobs have committed.
    let mut child = batch_cmd(&killed_json, Some(&journal), false, None).spawn().unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    let killed_midway = loop {
        if let Some(_status) = child.try_wait().unwrap() {
            // Too fast to catch mid-flight: the journal is complete. The
            // resume path below still gets exercised (full replay).
            break false;
        }
        let done = journal_fingerprints(&journal).len();
        if done >= 2 {
            child.kill().unwrap();
            let _ = child.wait();
            break true;
        }
        assert!(Instant::now() < deadline, "journal never grew; child hung?");
        std::thread::sleep(Duration::from_millis(2));
    };

    let before = journal_fingerprints(&journal);
    assert!(!before.is_empty(), "at least one job must have committed before the kill");
    if killed_midway {
        assert!(before.len() < KERNELS.len(), "kill landed after the sweep finished");
    }

    // The resumed run.
    let status =
        batch_cmd(&final_json, Some(&journal), true, Some(&obs)).status().unwrap();
    assert!(status.success(), "resumed run failed");

    // Union covers every job exactly once: the journal now holds one
    // fully-written line per job, no duplicates.
    let after = journal_fingerprints(&journal);
    assert_eq!(after.len(), KERNELS.len(), "journal must cover the whole sweep");
    let mut unique = after.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), after.len(), "a job was journalled twice");
    for fp in &before {
        assert!(after.contains(fp), "a pre-kill entry vanished from the journal");
    }

    // Zero repeat analyses: every journalled job replayed, only the rest
    // were computed.
    let obs_text = fs::read_to_string(&obs).unwrap();
    let hits = counter_total(&obs_text, "exec.resilience.journal_hits");
    let misses = counter_total(&obs_text, "exec.cache.misses");
    assert_eq!(hits, before.len() as u64, "every pre-kill job must replay from the journal");
    assert_eq!(
        misses,
        (KERNELS.len() - before.len()) as u64,
        "only never-journalled jobs may be analyzed"
    );

    // The resumed report is byte-identical to the uninterrupted one from
    // the jobs array on (cache_entries legitimately differs: the resumed
    // run analyzed fewer traces).
    let reference = fs::read_to_string(&ref_json).unwrap();
    let resumed = fs::read_to_string(&final_json).unwrap();
    let tail = |s: &str| s[s.find("\"jobs\"").unwrap()..].to_string();
    assert_eq!(tail(&reference), tail(&resumed), "resumed output diverged from uninterrupted run");

    for p in [&ref_json, &killed_json, &final_json, &journal, &obs] {
        let _ = fs::remove_file(p);
    }
}
