//! Golden-schema test for `gpumech lint --format json`.
//!
//! Builds a corpus of defective kernels covering every verification
//! finding kind, lints it via `--from-json` through the library entry
//! point (and through the real binary for the exit-code contract), and
//! validates the JSON against the documented schema: field names,
//! severity spellings, finding codes, and severity-then-pc ordering.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::process::Command;

use gpumech_analyze::KernelAnalysis;
use gpumech_cli::{run, CliError};
use gpumech_isa::{Kernel, KernelBuilder, MemSpace, Operand, ValueOp};
use serde::Value;

/// One kernel per new finding kind, plus a clean one.
fn corpus() -> Vec<Kernel> {
    let mut kernels = Vec::new();

    // barrier-divergence (Error).
    let mut b = KernelBuilder::new("bad_barrier");
    let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(8)]);
    b.if_begin(Operand::Reg(c));
    b.sync();
    b.if_end();
    kernels.push(b.finish(vec![]));

    // shared-race (Warning): every warp stores shared[lane].
    let mut b = KernelBuilder::new("bad_race");
    let v = b.alu(ValueOp::Mov, &[Operand::Imm(1)]);
    b.store(MemSpace::Shared, Operand::Lane, Operand::Reg(v));
    kernels.push(b.finish(vec![]));

    // bank-conflict (Warning): shared[lane * 128] — every lane in bank 0.
    let mut b = KernelBuilder::new("bad_banks");
    let off = b.alu(ValueOp::Mul, &[Operand::Lane, Operand::Imm(128)]);
    let _ = b.load(MemSpace::Shared, Operand::Reg(off));
    kernels.push(b.finish(vec![]));

    // clean: conflict-free, race-free tile exchange.
    let mut b = KernelBuilder::new("clean_tile");
    let off = b.alu(ValueOp::Mul, &[Operand::TidInBlock, Operand::Imm(4)]);
    let v = b.alu(ValueOp::Mov, &[Operand::Imm(7)]);
    b.store(MemSpace::Shared, Operand::Reg(off), Operand::Reg(v));
    b.sync();
    let _ = b.load(MemSpace::Shared, Operand::Reg(off));
    kernels.push(b.finish(vec![]));

    kernels
}

fn corpus_file(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir()
        .join(format!("gpumech-lint-schema-{}-{tag}.json", std::process::id()));
    let json = serde_json::to_string(&corpus()).expect("serialize corpus");
    std::fs::write(&path, json).expect("write corpus");
    path
}

fn severity_rank(sev: &str) -> u32 {
    match sev {
        "Error" => 0,
        "Warning" => 1,
        "Info" => 2,
        other => panic!("unexpected severity spelling {other:?}"),
    }
}

#[test]
fn lint_json_covers_every_finding_kind_with_stable_schema() {
    let path = corpus_file("schema");
    let err = run([
        "lint".to_string(),
        "--format".to_string(),
        "json".to_string(),
        "--from-json".to_string(),
        path.display().to_string(),
    ])
    .expect_err("corpus contains an Error finding");
    let CliError::LintFailed { report, errors } = err else {
        panic!("expected LintFailed, got another error");
    };
    assert_eq!(errors, 1, "exactly the barrier-divergence finding is an Error");

    // Typed round-trip: the report is a JSON array of KernelAnalysis.
    let parsed: Vec<KernelAnalysis> = serde_json::from_str(&report).expect("typed parse");
    assert_eq!(parsed.len(), 4);

    // Schema-level checks on the raw JSON value.
    let raw = serde_json::parse_value(&report).expect("raw parse");
    let Value::Array(arr) = raw else { panic!("top level must be an array") };
    assert_eq!(arr.len(), 4);
    for obj in &arr {
        for key in [
            "kernel_name",
            "diagnostics",
            "branch_uniform",
            "coalescing",
            "shared_accesses",
            "race_pairs",
            "metrics",
        ] {
            assert!(obj.get_field(key).is_some(), "missing field {key}");
        }
        let Some(Value::Array(diags)) = obj.get_field("diagnostics") else {
            panic!("diagnostics must be an array")
        };
        let mut last: Option<(u32, Option<u64>)> = None;
        for d in diags {
            let Some(Value::Str(sev)) = d.get_field("severity") else {
                panic!("severity must be a string")
            };
            let Some(Value::Str(code)) = d.get_field("code") else {
                panic!("code must be a string")
            };
            assert!(!code.is_empty());
            let Some(Value::Str(message)) = d.get_field("message") else {
                panic!("message must be a string")
            };
            assert!(!message.is_empty());
            let pc = match d.get_field("pc") {
                Some(Value::Null) => None,
                Some(v) => Some(v.as_u64().expect("pc must be an integer")),
                None => panic!("pc field must be present"),
            };
            // Severity-ranked: Errors first, ties broken by ascending pc.
            let rank = severity_rank(sev);
            if let Some((prev_rank, prev_pc)) = last {
                assert!(
                    prev_rank < rank || (prev_rank == rank && prev_pc <= pc),
                    "diagnostics not severity-then-pc ordered"
                );
            }
            last = Some((rank, pc));
        }
        for fact in match obj.get_field("shared_accesses") {
            Some(Value::Array(f)) => f,
            _ => panic!("shared_accesses must be an array"),
        } {
            for key in ["pc", "store", "bank_degree", "exact"] {
                assert!(fact.get_field(key).is_some(), "shared fact missing {key}");
            }
        }
    }

    // Every new finding kind appears, attributed to the right kernel.
    let find = |name: &str| parsed.iter().find(|a| a.kernel_name == name).expect("kernel present");
    assert!(find("bad_barrier").diagnostics.iter().any(|d| d.code == "barrier-divergence"));
    assert!(find("bad_race").diagnostics.iter().any(|d| d.code == "shared-race"));
    assert!(find("bad_banks").diagnostics.iter().any(|d| d.code == "bank-conflict"));
    assert!(
        find("clean_tile")
            .diagnostics
            .iter()
            .all(|d| d.severity == gpumech_analyze::Severity::Info),
        "clean kernel must have nothing above Info severity"
    );
    assert_eq!(find("bad_banks").shared_accesses.len(), 1);
    assert_eq!(find("bad_banks").shared_accesses[0].bank_degree, 32);
    assert_eq!(find("bad_race").race_pairs.len(), 1);

    let _ = std::fs::remove_file(path);
}

#[test]
fn lint_exits_with_code_two_on_error_findings() {
    let path = corpus_file("exit");
    let out = Command::new(env!("CARGO_BIN_EXE_gpumech"))
        .args(["lint", "--format", "json", "--from-json"])
        .arg(&path)
        .output()
        .expect("spawn gpumech");
    assert_eq!(out.status.code(), Some(2), "lint errors must exit 2");
    // The report still lands on stdout, in full.
    let stdout = String::from_utf8(out.stdout).expect("utf8");
    let parsed: Vec<KernelAnalysis> = serde_json::from_str(&stdout).expect("typed parse");
    assert_eq!(parsed.len(), 4);
    let stderr = String::from_utf8(out.stderr).expect("utf8");
    assert!(stderr.contains("error-severity"), "stderr: {stderr}");

    // A clean catalogue kernel exits 0.
    let ok = Command::new(env!("CARGO_BIN_EXE_gpumech"))
        .args(["lint", "sdk_vectoradd"])
        .output()
        .expect("spawn gpumech");
    assert_eq!(ok.status.code(), Some(0));
    let _ = std::fs::remove_file(path);
}
