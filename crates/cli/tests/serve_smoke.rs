//! Smoke test for the real `gpumech serve` binary: spawn it, scrape the
//! port from stdout, drive the endpoints over raw sockets, then SIGTERM
//! and assert a clean (exit 0) drain with a run summary.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use gpumech_serve::send_sigterm;

fn send(addr: SocketAddr, raw: &[u8]) -> (u16, String) {
    let mut s = TcpStream::connect(addr).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    s.write_all(raw).unwrap();
    let mut buf = Vec::new();
    s.read_to_end(&mut buf).unwrap();
    let text = String::from_utf8_lossy(&buf);
    let (head, body) = text.split_once("\r\n\r\n").expect("framing");
    let status = head.split_whitespace().nth(1).unwrap().parse().unwrap();
    (status, body.to_string())
}

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    send(addr, format!("GET {path} HTTP/1.1\r\nhost: t\r\n\r\n").as_bytes())
}

#[test]
fn serve_binary_answers_and_drains_cleanly_on_sigterm() {
    let obs = std::env::temp_dir()
        .join(format!("gpumech-serve-smoke-{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&obs);
    let mut child = Command::new(env!("CARGO_BIN_EXE_gpumech"))
        .args(["serve", "--port", "0", "--workers", "2"])
        .args(["--obs-out", obs.to_str().unwrap()])
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn gpumech serve");

    let mut stdout = BufReader::new(child.stdout.take().unwrap());
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr: SocketAddr = line
        .trim()
        .rsplit("http://")
        .next()
        .and_then(|a| a.parse().ok())
        .unwrap_or_else(|| panic!("bad announce line: {line:?}"));

    // Health and readiness.
    let (status, body) = get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    let (status, body) = get(addr, "/readyz");
    assert_eq!(status, 200, "{body}");

    // A real prediction over the wire.
    let req = "{\"kernel\":\"sdk_vectoradd\",\"blocks\":2}";
    let raw = format!(
        "POST /predict HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{req}",
        req.len()
    );
    let (status, body) = send(addr, raw.as_bytes());
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"cpi\":"), "{body}");

    // Metrics exposition reflects the traffic.
    let (status, metrics) = get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains("serve.http.requests_total"), "{metrics}");
    assert!(metrics.contains("serve.req.ok_total 1"), "{metrics}");

    // SIGTERM: clean drain, exit 0, summary + obs trace written.
    assert!(send_sigterm(child.id()), "signal delivery failed");
    let t0 = Instant::now();
    let status = loop {
        if let Some(s) = child.try_wait().unwrap() {
            break s;
        }
        assert!(t0.elapsed() < Duration::from_secs(30), "drain hung");
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(0), "drain must exit 0");

    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    assert!(rest.contains("drain: clean"), "summary missing from stdout: {rest:?}");
    assert!(obs.exists(), "--obs-out trace was not written");

    let mut stderr_text = String::new();
    child.stderr.take().unwrap().read_to_string(&mut stderr_text).unwrap();
    assert!(!stderr_text.contains("panicked"), "server panicked:\n{stderr_text}");
    let _ = std::fs::remove_file(&obs);
}
