//! End-to-end sharded sweep through the real `gpumech` binary:
//!
//! * an unsharded `batch --json` reference run;
//! * the same sweep split `--shard 0/2` / `--shard 1/2` and re-united
//!   with `merge --expect` — exit 0 and byte-identical (from
//!   `jobs_checksum` on) to the reference;
//! * a full `supervise` run (3 shards, chaos kill armed, auto-merge with
//!   `--expect`) — exit 0, merged output and markdown report written;
//! * a corrupted shard file — `merge` exits 5 with a typed finding and
//!   quarantines the file.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Small, behaviorally distinct kernels; two sweep points each so every
/// shard owns work.
const SWEEP_ARGS: [&str; 8] = [
    "sdk_vectoradd",
    "bfs_kernel1",
    "kmeans_invert_mapping",
    "cfd_step_factor",
    "--blocks",
    "2",
    "--sweep",
    "warps=16,32",
];

fn gpumech(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_gpumech"))
        .args(args)
        .output()
        .expect("binary spawns")
}

fn workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gpumech-shard-supervise-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs the unsharded sweep to `ref.json` and returns its path.
fn reference_run(dir: &Path) -> PathBuf {
    let reference = dir.join("ref.json");
    let mut args: Vec<&str> = vec!["batch"];
    args.extend_from_slice(&SWEEP_ARGS);
    args.extend_from_slice(&["--json", reference.to_str().unwrap()]);
    let out = gpumech(&args);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    reference
}

#[test]
fn manual_shards_merge_byte_identically_to_unsharded() {
    let dir = workspace("manual");
    let reference = reference_run(&dir);

    let mut shard_paths = Vec::new();
    for shard in ["0/2", "1/2"] {
        let path = dir.join(format!("shard-{}.json", &shard[..1]));
        let mut args: Vec<&str> = vec!["batch"];
        args.extend_from_slice(&SWEEP_ARGS);
        args.extend_from_slice(&["--shard", shard, "--json", path.to_str().unwrap()]);
        let out = gpumech(&args);
        assert_eq!(
            out.status.code(),
            Some(0),
            "shard {shard}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains(&format!("# shard {shard}: owns")),
            "shard banner missing: {stdout}"
        );
        shard_paths.push(path);
    }

    let merged = dir.join("merged.json");
    let report = dir.join("report.md");
    let out = gpumech(&[
        "merge",
        shard_paths[0].to_str().unwrap(),
        shard_paths[1].to_str().unwrap(),
        "--out", merged.to_str().unwrap(),
        "--report", report.to_str().unwrap(),
        "--expect", reference.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("byte-identical to the reference run"), "{stdout}");

    // The contract the --expect note claims: merged == reference from the
    // jobs_checksum field on.
    let merged_text = std::fs::read_to_string(&merged).unwrap();
    let reference_text = std::fs::read_to_string(&reference).unwrap();
    let tail = |s: &str| s[s.find("\"jobs_checksum\"").unwrap()..].to_string();
    assert_eq!(tail(&merged_text), tail(&reference_text));

    // The markdown report renders the sweep sections.
    let md = std::fs::read_to_string(&report).unwrap();
    for section in ["# GPUMech sweep report", "## Per-kernel CPI stacks", "## Model vs oracle"] {
        assert!(md.contains(section), "report missing {section:?}");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn supervised_sweep_with_chaos_kill_matches_unsharded() {
    let dir = workspace("supervised");
    let reference = reference_run(&dir);

    let sweep_dir = dir.join("sweep");
    let merged = dir.join("merged.json");
    let report = dir.join("report.md");
    let mut args: Vec<&str> = vec!["supervise"];
    args.extend_from_slice(&SWEEP_ARGS);
    args.extend_from_slice(&[
        "--shards", "3",
        "--dir", sweep_dir.to_str().unwrap(),
        // Arm a chaos kill; on fast hosts the shard may finish before it
        // lands, which is also a pass — recovery determinism is pinned by
        // the fault crate's supervisor_chaos suite.
        "--chaos-kill", "0@1",
        "--out", merged.to_str().unwrap(),
        "--report", report.to_str().unwrap(),
        "--expect", reference.to_str().unwrap(),
    ]);
    let out = gpumech(&args);
    assert_eq!(out.status.code(), Some(0), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("# supervisor: completed"), "{stdout}");
    assert!(stdout.contains("byte-identical to the reference run"), "{stdout}");

    let merged_text = std::fs::read_to_string(&merged).unwrap();
    let reference_text = std::fs::read_to_string(&reference).unwrap();
    let tail = |s: &str| s[s.find("\"jobs_checksum\"").unwrap()..].to_string();
    assert_eq!(tail(&merged_text), tail(&reference_text));

    // The per-shard artifacts the supervisor promises: result file and
    // journal per shard.
    for shard in 0..3 {
        assert!(sweep_dir.join(format!("shard-{shard}.json")).exists());
        assert!(sweep_dir.join(format!("shard-{shard}.journal")).exists());
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn corrupted_shard_fails_merge_with_exit_5() {
    let dir = workspace("corrupt");
    let mut shard_paths = Vec::new();
    for shard in ["0/2", "1/2"] {
        let path = dir.join(format!("shard-{}.json", &shard[..1]));
        let mut args: Vec<&str> = vec!["batch"];
        args.extend_from_slice(&SWEEP_ARGS);
        args.extend_from_slice(&["--shard", shard, "--json", path.to_str().unwrap()]);
        assert_eq!(gpumech(&args).status.code(), Some(0));
        shard_paths.push(path);
    }
    // Flip one digit inside the rows of shard 1.
    let text = std::fs::read_to_string(&shard_paths[1]).unwrap();
    let jobs_at = text.find("\"jobs\": [").unwrap();
    let digit_at = jobs_at
        + text[jobs_at..]
            .find(|c: char| c.is_ascii_digit())
            .expect("rows contain digits");
    let mut bytes = text.into_bytes();
    bytes[digit_at] = if bytes[digit_at] == b'9' { b'8' } else { bytes[digit_at] + 1 };
    std::fs::write(&shard_paths[1], bytes).unwrap();

    let out = gpumech(&[
        "merge",
        shard_paths[0].to_str().unwrap(),
        shard_paths[1].to_str().unwrap(),
        "--out", dir.join("merged.json").to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(5), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[corrupt-shard-file]"), "{stdout}");
    assert!(stdout.contains("[missing-shard]"), "the corrupt shard's work is uncovered: {stdout}");
    assert!(!dir.join("merged.json").exists(), "no merged output on failure");
    assert!(
        PathBuf::from(format!("{}.quarantine", shard_paths[1].display())).exists(),
        "corrupt file quarantined"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
