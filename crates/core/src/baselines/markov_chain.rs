//! The Chen-Aamodt first-order Markov-chain multithreading model
//! (HPCA 2009), as described in Section VIII-A of the GPUMech paper.
//!
//! Each warp is a two-state random variable: *activated* (can issue) or
//! *suspended* (stalled). An issued instruction suspends its warp with
//! probability `p`; a suspended warp reactivates each cycle with
//! probability `1/M`, where `M` is the mean suspension length. Warps
//! interleave randomly — no scheduling policy — and each warp has at most
//! one outstanding stall, the two limitations the paper identifies as the
//! source of this baseline's error on divergent kernels. Both are
//! deliberately preserved.
//!
//! The chain's state is the number of suspended warps `k ∈ 0..=N`; we
//! iterate the distribution to steady state and read off the core IPC as
//! the probability that at least one warp is active after wake-ups.

use serde::{Deserialize, Serialize};

use crate::interval::IntervalProfile;

/// Parameters of the Markov-chain model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkovChainModel {
    /// Probability an issued instruction suspends its warp.
    pub p: f64,
    /// Mean suspension length in cycles.
    pub m: f64,
    /// Resident warps.
    pub num_warps: usize,
}

impl MarkovChainModel {
    /// Extracts `p` (stalling intervals per instruction) and `M` (mean
    /// stall length) from an interval profile.
    #[must_use]
    pub fn from_profile(profile: &IntervalProfile, num_warps: usize) -> Self {
        let stalls: Vec<f64> = profile
            .intervals
            .iter()
            .filter(|iv| iv.stall_cycles > 0.0)
            .map(|iv| iv.stall_cycles)
            .collect();
        let insts = profile.total_insts() as f64;
        let p = if insts > 0.0 { stalls.len() as f64 / insts } else { 0.0 };
        let m = if stalls.is_empty() {
            1.0
        } else {
            stalls.iter().sum::<f64>() / stalls.len() as f64
        };
        Self { p, m: m.max(1.0), num_warps }
    }

    /// Steady-state core IPC of the chain.
    ///
    /// # Panics
    ///
    /// Panics if `num_warps` is zero.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        let n = self.num_warps;
        assert!(n > 0, "at least one warp required");
        if self.p <= 0.0 {
            return 1.0; // never suspends: issues every cycle
        }
        let wake = (1.0 / self.m).min(1.0);
        // Distribution over k = number of suspended warps.
        let mut pi = vec![0.0f64; n + 1];
        pi[0] = 1.0;
        let mut ipc = 0.0;
        for _ in 0..20_000 {
            // Wake step: Binomial(k, wake) warps reactivate.
            let mut post = vec![0.0f64; n + 1];
            for (k, &mass) in pi.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                // P(j of k wake) via the multiplicative recurrence.
                let mut pmf = (1.0 - wake).powi(k as i32); // j = 0
                for j in 0..=k {
                    post[k - j] += mass * pmf;
                    if j < k {
                        pmf *= (k - j) as f64 / (j + 1) as f64 * wake / (1.0 - wake).max(1e-300);
                    }
                }
            }
            // Issue step: if any warp is active, one instruction issues and
            // suspends its warp with probability p.
            let new_ipc: f64 = post[..n].iter().sum();
            let mut next = vec![0.0f64; n + 1];
            for (k, &mass) in post.iter().enumerate() {
                if mass == 0.0 {
                    continue;
                }
                if k < n {
                    next[k + 1] += mass * self.p;
                    next[k] += mass * (1.0 - self.p);
                } else {
                    next[k] += mass;
                }
            }
            let delta: f64 = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            ipc = new_ipc;
            if delta < 1e-13 {
                break;
            }
        }
        ipc.clamp(0.0, 1.0)
    }
}

/// Predicted core CPI of the Markov-chain baseline.
#[must_use]
pub fn markov_chain_cpi(profile: &IntervalProfile, num_warps: usize) -> f64 {
    let ipc = MarkovChainModel::from_profile(profile, num_warps).ipc();
    if ipc == 0.0 { 0.0 } else { 1.0 / ipc }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::{Interval, StallCause};

    fn profile(intervals: Vec<(u64, f64)>) -> IntervalProfile {
        IntervalProfile {
            intervals: intervals
                .into_iter()
                .map(|(insts, stall)| Interval {
                    insts,
                    stall_cycles: stall,
                    cause: if stall > 0.0 { StallCause::Compute } else { StallCause::None },
                    load_insts: 0,
                    store_insts: 0,
                    mem_reqs: 0.0,
                    mshr_reqs: 0.0,
                    dram_reqs: 0.0,
                    ..Interval::default()
                })
                .collect(),
            issue_rate: 1.0,
        }
    }

    #[test]
    fn parameters_from_profile() {
        let p = profile(vec![(10, 40.0), (10, 20.0), (5, 0.0)]);
        let m = MarkovChainModel::from_profile(&p, 8);
        assert!((m.p - 2.0 / 25.0).abs() < 1e-12);
        assert!((m.m - 30.0).abs() < 1e-12);
    }

    #[test]
    fn stall_free_warp_runs_at_issue_rate() {
        let p = profile(vec![(10, 0.0)]);
        assert!((markov_chain_cpi(&p, 4) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn single_warp_matches_renewal_theory() {
        // One warp alternating 1/p instructions then M stall cycles:
        // IPC = 1 / (1 + p*M). With p = 0.1, M = 9 → IPC = 1/1.9.
        let p = profile(vec![(10, 9.0); 5]);
        let model = MarkovChainModel::from_profile(&p, 1);
        let expect = 1.0 / (1.0 + 0.1 * 9.0);
        // The chain wakes and issues in the same cycle, so it slightly
        // overestimates relative to exact renewal theory.
        assert!(
            (model.ipc() - expect).abs() < 0.05,
            "got {}, renewal {expect}",
            model.ipc()
        );
    }

    #[test]
    fn more_warps_hide_more_latency() {
        let p = profile(vec![(2, 40.0); 10]);
        let c1 = markov_chain_cpi(&p, 1);
        let c4 = markov_chain_cpi(&p, 4);
        let c16 = markov_chain_cpi(&p, 16);
        assert!(c1 > c4 && c4 > c16, "{c1} > {c4} > {c16}");
        assert!(c16 >= 1.0 - 1e-9, "never beats the issue rate");
    }

    #[test]
    fn saturates_with_many_warps() {
        let p = profile(vec![(5, 20.0); 10]);
        let c = markov_chain_cpi(&p, 48);
        assert!((c - 1.0).abs() < 0.05, "48 warps should saturate: {c}");
    }

    #[test]
    fn chain_is_a_probability_distribution() {
        // IPC always in (0, 1].
        for warps in [1, 2, 7, 32] {
            let p = profile(vec![(1, 300.0); 3]);
            let ipc = MarkovChainModel::from_profile(&p, warps).ipc();
            assert!(ipc > 0.0 && ipc <= 1.0, "warps={warps}: {ipc}");
        }
    }
}
