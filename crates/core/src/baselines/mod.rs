//! The comparison baselines of the paper's evaluation (Table II):
//! the naive interval extension (Equation 1) and the Chen-Aamodt
//! Markov-chain multithreading model (Section VIII-A).

mod markov_chain;
mod naive;

pub use markov_chain::{markov_chain_cpi, MarkovChainModel};
pub use naive::naive_interval_cpi;
