//! The naive interval-analysis extension to multithreading (Equation 1,
//! Section II-B).
//!
//! `IPC_core = IPC_single_warp * #warps`: assume every instruction of every
//! remaining warp hides inside the representative warp's stall cycles. The
//! core cannot exceed its issue rate, so the IPC is clamped there — without
//! the clamp the baseline would predict physically impossible throughput
//! for any moderately-threaded kernel.

use crate::interval::IntervalProfile;

/// Predicted core CPI of the naive model (Equation 1).
///
/// # Panics
///
/// Panics if `num_warps` is zero.
#[must_use]
pub fn naive_interval_cpi(profile: &IntervalProfile, num_warps: usize) -> f64 {
    assert!(num_warps > 0, "at least one warp required");
    let single_ipc = profile.warp_perf();
    if single_ipc == 0.0 {
        return 0.0;
    }
    let ipc = (single_ipc * num_warps as f64).min(profile.issue_rate);
    1.0 / ipc
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::{Interval, StallCause};

    fn profile(insts: u64, stall: f64) -> IntervalProfile {
        IntervalProfile {
            intervals: vec![Interval {
                insts,
                stall_cycles: stall,
                cause: StallCause::None,
                load_insts: 0,
                store_insts: 0,
                mem_reqs: 0.0,
                mshr_reqs: 0.0,
                dram_reqs: 0.0,
                ..Interval::default()
            }],
            issue_rate: 1.0,
        }
    }

    #[test]
    fn figure2_interval1_example() {
        // 1 instruction + 10 stall cycles, 3 warps: IPC = 3/11 (the paper's
        // worked example in Section II-B).
        let p = profile(1, 10.0);
        let cpi = naive_interval_cpi(&p, 3);
        assert!((cpi - 11.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn clamps_at_the_issue_rate() {
        // perf = 1/11 per warp; 32 warps would give IPC 2.9 — impossible.
        let p = profile(1, 10.0);
        let cpi = naive_interval_cpi(&p, 32);
        assert!((cpi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn monotone_down_then_flat_in_warps() {
        let p = profile(2, 30.0);
        let mut prev = f64::INFINITY;
        for w in 1..=64 {
            let c = naive_interval_cpi(&p, w);
            assert!(c <= prev + 1e-12);
            assert!(c >= 1.0 - 1e-12, "never below the issue bound");
            prev = c;
        }
    }

    #[test]
    fn degenerate_profile_returns_zero() {
        let p = IntervalProfile { intervals: vec![], issue_rate: 1.0 };
        assert_eq!(naive_interval_cpi(&p, 8), 0.0);
    }
}
