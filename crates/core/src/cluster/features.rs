//! Per-warp feature vectors for clustering (Equation 6).

use serde::{Deserialize, Serialize};

use crate::interval::IntervalProfile;

/// The 2-D feature vector of one warp: warp performance and instruction
/// count, each normalized by the all-warp average (Equation 6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FeatureVector {
    /// `warp_perf / avg_warp_perf`.
    pub perf: f64,
    /// `#warp_insts / avg_warp_insts`.
    pub insts: f64,
}

impl FeatureVector {
    /// Squared Euclidean distance to another vector.
    #[must_use]
    pub fn dist2(&self, other: &FeatureVector) -> f64 {
        let dp = self.perf - other.perf;
        let di = self.insts - other.insts;
        dp * dp + di * di
    }
}

/// Builds the normalized feature vectors of every warp (Equation 6).
///
/// Degenerate inputs (zero average) normalize to zero rather than NaN.
#[must_use]
pub fn feature_vectors(profiles: &[IntervalProfile]) -> Vec<FeatureVector> {
    let n = profiles.len().max(1) as f64;
    let avg_perf: f64 = profiles.iter().map(IntervalProfile::warp_perf).sum::<f64>() / n;
    let avg_insts: f64 =
        profiles.iter().map(|p| p.total_insts() as f64).sum::<f64>() / n;
    profiles
        .iter()
        .map(|p| FeatureVector {
            perf: if avg_perf > 0.0 { p.warp_perf() / avg_perf } else { 0.0 },
            insts: if avg_insts > 0.0 { p.total_insts() as f64 / avg_insts } else { 0.0 },
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::{Interval, StallCause};

    fn profile(insts: u64, stall: f64) -> IntervalProfile {
        IntervalProfile {
            intervals: vec![Interval {
                insts,
                stall_cycles: stall,
                cause: StallCause::None,
                load_insts: 0,
                store_insts: 0,
                mem_reqs: 0.0,
                mshr_reqs: 0.0,
                dram_reqs: 0.0,
                ..Interval::default()
            }],
            issue_rate: 1.0,
        }
    }

    #[test]
    fn identical_warps_normalize_to_unity() {
        let ps = vec![profile(10, 10.0); 4];
        for f in feature_vectors(&ps) {
            assert!((f.perf - 1.0).abs() < 1e-12);
            assert!((f.insts - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn features_scale_relative_to_average() {
        // Warp 0: 10 insts in 20 cycles (perf 0.5); warp 1: 30 insts in 30
        // cycles (perf 1.0). Averages: perf 0.75, insts 20.
        let ps = vec![profile(10, 10.0), profile(30, 0.0)];
        let f = feature_vectors(&ps);
        assert!((f[0].perf - 0.5 / 0.75).abs() < 1e-12);
        assert!((f[1].perf - 1.0 / 0.75).abs() < 1e-12);
        assert!((f[0].insts - 0.5).abs() < 1e-12);
        assert!((f[1].insts - 1.5).abs() < 1e-12);
    }

    #[test]
    fn distance_is_squared_euclidean() {
        let a = FeatureVector { perf: 0.0, insts: 0.0 };
        let b = FeatureVector { perf: 3.0, insts: 4.0 };
        assert!((a.dist2(&b) - 25.0).abs() < 1e-12);
        assert_eq!(a.dist2(&a), 0.0);
    }

    #[test]
    fn degenerate_profiles_do_not_nan() {
        let ps = vec![IntervalProfile { intervals: vec![], issue_rate: 1.0 }];
        let f = feature_vectors(&ps);
        assert!(f[0].perf.is_finite() && f[0].insts.is_finite());
    }
}
