//! Deterministic 2-means clustering over warp feature vectors.
//!
//! The paper fixes k = 2: "one cluster is to capture the majority warps
//! with similar interval profiles while the other cluster is to capture the
//! outlier warps". Centroids are seeded with the two most separated points
//! along the performance axis (deterministic — no RNG), then Lloyd
//! iterations run to convergence.

use std::convert::Infallible;

use gpumech_obs::{CancelToken, Interrupt};

use super::features::FeatureVector;

/// Result of the 2-means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster assignment (0 or 1) per input point.
    pub assignment: Vec<u8>,
    /// The two centroids.
    pub centroids: [FeatureVector; 2],
    /// Index of the larger cluster (ties go to cluster 0).
    pub majority: u8,
    /// Index of the point nearest the majority centroid — the
    /// representative warp.
    pub representative: usize,
    /// Lloyd iterations executed.
    pub iterations: usize,
    /// `true` when the clustering degenerated: a feature was non-finite or
    /// Lloyd failed to converge within the iteration cap. The result is
    /// still well-formed (valid indices, no NaN panics), but callers should
    /// prefer a selection method that does not rely on cluster structure.
    pub degenerate: bool,
}

const MAX_ITERS: usize = 100;

/// Runs 2-means on `points`.
///
/// # Panics
///
/// Panics if `points` is empty.
#[must_use]
pub fn kmeans2(points: &[FeatureVector]) -> KmeansResult {
    match kmeans2_checked(points, &|| Ok::<(), Infallible>(())) {
        Ok(r) => r,
        Err(never) => match never {},
    }
}

/// [`kmeans2`] under a [`CancelToken`]: the token is polled before every
/// Lloyd iteration, so an expired deadline or explicit cancellation aborts
/// the refinement loop within one iteration.
///
/// # Errors
///
/// The [`Interrupt`] once `cancel` fires.
///
/// # Panics
///
/// Panics if `points` is empty.
pub fn kmeans2_cancellable(
    points: &[FeatureVector],
    cancel: &CancelToken,
) -> Result<KmeansResult, Interrupt> {
    kmeans2_checked(points, &|| cancel.check())
}

/// The shared k-means body: `check` is polled before every Lloyd
/// iteration and decides the error type (`Infallible` for the plain
/// entry point, [`Interrupt`] for the cancellable ones).
pub(crate) fn kmeans2_checked<E>(
    points: &[FeatureVector],
    check: &dyn Fn() -> Result<(), E>,
) -> Result<KmeansResult, E> {
    assert!(!points.is_empty(), "kmeans2 requires at least one point");
    let _span = gpumech_obs::span!("core.kmeans.cluster", points = points.len());

    let degenerate_input =
        points.iter().any(|p| !p.perf.is_finite() || !p.insts.is_finite());

    // Deterministic seeding: extremes of the perf axis (falling back to the
    // insts axis when perf is uniform). `total_cmp` gives a total order even
    // over NaN/Inf features, so corrupted profiles cannot panic the seeding.
    let key_cmp = |a: &FeatureVector, b: &FeatureVector| {
        a.perf.total_cmp(&b.perf).then(a.insts.total_cmp(&b.insts))
    };
    let lo =
        points.iter().enumerate().min_by(|(_, a), (_, b)| key_cmp(a, b)).map_or(0, |(i, _)| i);
    let hi =
        points.iter().enumerate().max_by(|(_, a), (_, b)| key_cmp(a, b)).map_or(0, |(i, _)| i);
    let mut centroids = [points[lo], points[hi]];

    let mut assignment = vec![0u8; points.len()];
    let mut iterations = 0;
    let mut converged = false;
    for it in 0..MAX_ITERS {
        check()?;
        iterations = it + 1;
        let mut changed = 0u64;
        for (i, p) in points.iter().enumerate() {
            let c = u8::from(p.dist2(&centroids[1]) < p.dist2(&centroids[0]));
            if assignment[i] != c {
                assignment[i] = c;
                changed += 1;
            }
        }
        // Per-iteration convergence series; inertia (within-cluster sum of
        // squared distances) is only computed when a recorder is listening.
        if gpumech_obs::enabled() {
            gpumech_obs::counter!("core.kmeans.reassignments", changed);
            let inertia: f64 = points
                .iter()
                .zip(&assignment)
                .map(|(p, &a)| p.dist2(&centroids[a as usize]))
                .sum();
            gpumech_obs::gauge!("core.kmeans.inertia", inertia);
        }
        if changed == 0 && it > 0 {
            converged = true;
            break;
        }
        let before = centroids;
        for c in 0..2u8 {
            let members: Vec<&FeatureVector> =
                points.iter().zip(&assignment).filter(|(_, &a)| a == c).map(|(p, _)| p).collect();
            if members.is_empty() {
                // Deterministic re-seed: park the empty cluster on the point
                // farthest from the other centroid so the next assignment
                // pass can repopulate it (a stale centroid would otherwise
                // drift arbitrarily far from the data).
                gpumech_obs::counter!("core.kmeans.reseeds", 1u64);
                let other = centroids[1 - c as usize];
                if let Some(far) = points
                    .iter()
                    .max_by(|a, b| a.dist2(&other).total_cmp(&b.dist2(&other)))
                {
                    centroids[c as usize] = *far;
                }
                continue;
            }
            let n = members.len() as f64;
            centroids[c as usize] = FeatureVector {
                perf: members.iter().map(|p| p.perf).sum::<f64>() / n,
                insts: members.iter().map(|p| p.insts).sum::<f64>() / n,
            };
        }
        // Oscillation guard: over (near-)identical points the cluster mean
        // is inexact by an ulp while a re-seeded centroid sits exactly on a
        // data point, so assignments can flip between bit-identical
        // configurations forever. Sub-epsilon centroid movement is
        // convergence, not progress. (NaN movement fails the comparison and
        // falls through to the degenerate-input path.)
        let moved = centroids[0]
            .dist2(&before[0])
            .max(centroids[1].dist2(&before[1]));
        if moved <= 1e-18 {
            converged = true;
            break;
        }
    }

    let size0 = assignment.iter().filter(|&&a| a == 0).count();
    let majority = u8::from(size0 * 2 < points.len());
    let centre = centroids[majority as usize];
    let representative = points
        .iter()
        .enumerate()
        .filter(|(i, _)| assignment[*i] == majority)
        .min_by(|(_, a), (_, b)| a.dist2(&centre).total_cmp(&b.dist2(&centre)))
        .map_or(0, |(i, _)| i);

    let degenerate = degenerate_input || !converged;
    gpumech_obs::counter!("core.kmeans.iterations", iterations as u64);
    if degenerate {
        gpumech_obs::counter!("core.kmeans.degenerate", 1u64);
    }
    Ok(KmeansResult { assignment, centroids, majority, representative, iterations, degenerate })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn fv(perf: f64, insts: f64) -> FeatureVector {
        FeatureVector { perf, insts }
    }

    #[test]
    fn two_obvious_clusters_are_separated() {
        let pts = vec![fv(0.1, 1.0), fv(0.12, 1.0), fv(0.11, 1.0), fv(2.0, 1.0), fv(2.1, 1.0)];
        let r = kmeans2(&pts);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[0], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        // Majority = the 3-point cluster; representative is one of them.
        assert!(r.representative < 3);
    }

    #[test]
    fn representative_is_nearest_to_majority_centroid() {
        let pts = vec![fv(1.0, 1.0), fv(1.2, 1.0), fv(0.8, 1.0), fv(5.0, 5.0)];
        let r = kmeans2(&pts);
        assert_eq!(r.representative, 0, "1.0 is closest to the mean of {{0.8,1.0,1.2}}");
    }

    #[test]
    fn single_point_is_its_own_representative() {
        let r = kmeans2(&[fv(1.0, 1.0)]);
        assert_eq!(r.representative, 0);
    }

    #[test]
    fn identical_points_converge_without_divergence() {
        let pts = vec![fv(1.0, 1.0); 10];
        let r = kmeans2(&pts);
        assert!(r.representative < 10);
        assert!(r.iterations <= MAX_ITERS);
    }

    #[test]
    fn instruction_count_separates_equal_performance_warps() {
        // Same perf, different lengths (the paper's motivation for the
        // second feature dimension).
        let pts =
            vec![fv(1.0, 0.5), fv(1.0, 0.52), fv(1.0, 0.48), fv(1.0, 2.0), fv(1.0, 2.05)];
        let r = kmeans2(&pts);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        assert!(r.representative < 3, "majority is the short-warp cluster");
    }

    #[test]
    fn empty_cluster_reseeds_deterministically() {
        // All-identical points: every point is assigned to cluster 0, so
        // cluster 1 empties on the first pass and must be re-seeded (not
        // left on a stale centroid).
        let pts = vec![fv(1.0, 1.0); 8];
        let a = kmeans2(&pts);
        let b = kmeans2(&pts);
        assert_eq!(a, b, "re-seeding must be deterministic");
        assert!(a.representative < 8);
        assert!(!a.degenerate);
        for c in &a.centroids {
            assert!(c.perf.is_finite() && c.insts.is_finite());
        }
    }

    #[test]
    fn nan_features_degrade_without_panicking() {
        let pts = vec![fv(1.0, 1.0), fv(f64::NAN, 1.0), fv(2.0, f64::INFINITY), fv(1.1, 1.0)];
        let r = kmeans2(&pts);
        assert!(r.degenerate, "non-finite features must flag the result degenerate");
        assert!(r.representative < pts.len());
    }

    #[test]
    fn cancellable_path_matches_and_honors_the_token() {
        let pts = vec![fv(0.1, 1.0), fv(0.12, 1.0), fv(2.0, 1.0), fv(2.1, 1.0)];
        let live = kmeans2_cancellable(&pts, &CancelToken::never()).unwrap();
        assert_eq!(live, kmeans2(&pts));

        let cancelled = CancelToken::never();
        cancelled.cancel();
        assert_eq!(kmeans2_cancellable(&pts, &cancelled), Err(Interrupt::Cancelled));
    }

    #[test]
    fn deterministic_across_runs() {
        let pts: Vec<FeatureVector> =
            (0..50).map(|i| fv(1.0 + (i % 7) as f64 * 0.01, 1.0 + (i % 3) as f64 * 0.1)).collect();
        assert_eq!(kmeans2(&pts), kmeans2(&pts));
    }
}
