//! Deterministic 2-means clustering over warp feature vectors.
//!
//! The paper fixes k = 2: "one cluster is to capture the majority warps
//! with similar interval profiles while the other cluster is to capture the
//! outlier warps". Centroids are seeded with the two most separated points
//! along the performance axis (deterministic — no RNG), then Lloyd
//! iterations run to convergence.

use super::features::FeatureVector;

/// Result of the 2-means clustering.
#[derive(Debug, Clone, PartialEq)]
pub struct KmeansResult {
    /// Cluster assignment (0 or 1) per input point.
    pub assignment: Vec<u8>,
    /// The two centroids.
    pub centroids: [FeatureVector; 2],
    /// Index of the larger cluster (ties go to cluster 0).
    pub majority: u8,
    /// Index of the point nearest the majority centroid — the
    /// representative warp.
    pub representative: usize,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

const MAX_ITERS: usize = 100;

/// Runs 2-means on `points`.
///
/// # Panics
///
/// Panics if `points` is empty.
#[must_use]
pub fn kmeans2(points: &[FeatureVector]) -> KmeansResult {
    assert!(!points.is_empty(), "kmeans2 requires at least one point");

    // Deterministic seeding: extremes of the perf axis (falling back to the
    // insts axis when perf is uniform).
    let lo = points
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| (a.perf, a.insts).partial_cmp(&(b.perf, b.insts)).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    let hi = points
        .iter()
        .enumerate()
        .max_by(|(_, a), (_, b)| (a.perf, a.insts).partial_cmp(&(b.perf, b.insts)).expect("finite"))
        .map(|(i, _)| i)
        .expect("non-empty");
    let mut centroids = [points[lo], points[hi]];

    let mut assignment = vec![0u8; points.len()];
    let mut iterations = 0;
    for it in 0..MAX_ITERS {
        iterations = it + 1;
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let c = u8::from(p.dist2(&centroids[1]) < p.dist2(&centroids[0]));
            if assignment[i] != c {
                assignment[i] = c;
                changed = true;
            }
        }
        if !changed && it > 0 {
            break;
        }
        for c in 0..2u8 {
            let members: Vec<&FeatureVector> =
                points.iter().zip(&assignment).filter(|(_, &a)| a == c).map(|(p, _)| p).collect();
            if members.is_empty() {
                continue; // keep the stale centroid; the cluster is empty
            }
            let n = members.len() as f64;
            centroids[c as usize] = FeatureVector {
                perf: members.iter().map(|p| p.perf).sum::<f64>() / n,
                insts: members.iter().map(|p| p.insts).sum::<f64>() / n,
            };
        }
    }

    let size0 = assignment.iter().filter(|&&a| a == 0).count();
    let majority = u8::from(size0 * 2 < points.len());
    let centre = centroids[majority as usize];
    let representative = points
        .iter()
        .enumerate()
        .filter(|(i, _)| assignment[*i] == majority)
        .min_by(|(_, a), (_, b)| a.dist2(&centre).total_cmp(&b.dist2(&centre)))
        .map(|(i, _)| i)
        .expect("majority cluster is non-empty");

    KmeansResult { assignment, centroids, majority, representative, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fv(perf: f64, insts: f64) -> FeatureVector {
        FeatureVector { perf, insts }
    }

    #[test]
    fn two_obvious_clusters_are_separated() {
        let pts = vec![fv(0.1, 1.0), fv(0.12, 1.0), fv(0.11, 1.0), fv(2.0, 1.0), fv(2.1, 1.0)];
        let r = kmeans2(&pts);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_eq!(r.assignment[0], r.assignment[2]);
        assert_eq!(r.assignment[3], r.assignment[4]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        // Majority = the 3-point cluster; representative is one of them.
        assert!(r.representative < 3);
    }

    #[test]
    fn representative_is_nearest_to_majority_centroid() {
        let pts = vec![fv(1.0, 1.0), fv(1.2, 1.0), fv(0.8, 1.0), fv(5.0, 5.0)];
        let r = kmeans2(&pts);
        assert_eq!(r.representative, 0, "1.0 is closest to the mean of {{0.8,1.0,1.2}}");
    }

    #[test]
    fn single_point_is_its_own_representative() {
        let r = kmeans2(&[fv(1.0, 1.0)]);
        assert_eq!(r.representative, 0);
    }

    #[test]
    fn identical_points_converge_without_divergence() {
        let pts = vec![fv(1.0, 1.0); 10];
        let r = kmeans2(&pts);
        assert!(r.representative < 10);
        assert!(r.iterations <= MAX_ITERS);
    }

    #[test]
    fn instruction_count_separates_equal_performance_warps() {
        // Same perf, different lengths (the paper's motivation for the
        // second feature dimension).
        let pts =
            vec![fv(1.0, 0.5), fv(1.0, 0.52), fv(1.0, 0.48), fv(1.0, 2.0), fv(1.0, 2.05)];
        let r = kmeans2(&pts);
        assert_eq!(r.assignment[0], r.assignment[1]);
        assert_ne!(r.assignment[0], r.assignment[3]);
        assert!(r.representative < 3, "majority is the short-warp cluster");
    }

    #[test]
    fn deterministic_across_runs() {
        let pts: Vec<FeatureVector> =
            (0..50).map(|i| fv(1.0 + (i % 7) as f64 * 0.01, 1.0 + (i % 3) as f64 * 0.1)).collect();
        assert_eq!(kmeans2(&pts), kmeans2(&pts));
    }
}
