//! Representative-warp selection (Section III-C).
//!
//! Kernels with control-divergent warps have heterogeneous interval
//! profiles; feeding a random warp to the multi-warp model can be wildly
//! wrong. GPUMech clusters the warps with k-means (k = 2) on a 2-D feature
//! vector — normalized warp performance and normalized instruction count
//! (Equation 6) — and uses the warp closest to the centre of the *larger*
//! cluster. The paper's Figure 7 compares this against picking the
//! fastest (MAX) or slowest (MIN) warp.

mod features;
mod kmeans;

pub use features::{feature_vectors, FeatureVector};
pub use kmeans::{kmeans2, kmeans2_cancellable, KmeansResult};
pub(crate) use kmeans::kmeans2_checked;

use crate::interval::IntervalProfile;

/// How the representative warp is chosen (the three methods of Figure 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectionMethod {
    /// Warp with the maximum warp performance.
    Max,
    /// Warp with the minimum warp performance.
    Min,
    /// k-means (k = 2) on Equation 6's features; representative = warp
    /// nearest the larger cluster's centroid. The paper's default.
    Clustering,
}

/// Selects the representative warp among `profiles` and returns its index.
///
/// # Panics
///
/// Panics if `profiles` is empty.
#[must_use]
pub fn select_representative(profiles: &[IntervalProfile], method: SelectionMethod) -> usize {
    assert!(!profiles.is_empty(), "no warps to select from");
    match method {
        SelectionMethod::Max => profiles
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.warp_perf().total_cmp(&b.warp_perf()))
            .map_or(0, |(i, _)| i),
        SelectionMethod::Min => profiles
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.warp_perf().total_cmp(&b.warp_perf()))
            .map_or(0, |(i, _)| i),
        SelectionMethod::Clustering => {
            let feats = feature_vectors(profiles);
            let km = kmeans2(&feats);
            km.representative
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::{Interval, StallCause};

    fn profile(insts: u64, stall: f64) -> IntervalProfile {
        IntervalProfile {
            intervals: vec![Interval {
                insts,
                stall_cycles: stall,
                cause: if stall > 0.0 { StallCause::Compute } else { StallCause::None },
                load_insts: 0,
                store_insts: 0,
                mem_reqs: 0.0,
                mshr_reqs: 0.0,
                dram_reqs: 0.0,
                ..Interval::default()
            }],
            issue_rate: 1.0,
        }
    }

    #[test]
    fn max_and_min_pick_the_extremes() {
        let ps = vec![profile(10, 10.0), profile(10, 0.0), profile(10, 50.0)];
        assert_eq!(select_representative(&ps, SelectionMethod::Max), 1);
        assert_eq!(select_representative(&ps, SelectionMethod::Min), 2);
    }

    #[test]
    fn clustering_picks_from_the_majority_population() {
        // 7 similar "slow" warps + 2 fast outliers: the representative must
        // be one of the slow majority.
        let mut ps: Vec<IntervalProfile> = (0..7).map(|i| profile(100, 400.0 + i as f64)).collect();
        ps.push(profile(100, 0.0));
        ps.push(profile(100, 1.0));
        let rep = select_representative(&ps, SelectionMethod::Clustering);
        assert!(rep < 7, "representative {rep} should come from the majority cluster");
    }

    #[test]
    fn homogeneous_warps_any_choice_is_fine() {
        let ps: Vec<IntervalProfile> = (0..8).map(|_| profile(50, 20.0)).collect();
        let rep = select_representative(&ps, SelectionMethod::Clustering);
        assert!(rep < 8);
    }

    #[test]
    #[should_panic(expected = "no warps")]
    fn empty_input_panics() {
        let _ = select_representative(&[], SelectionMethod::Clustering);
    }
}
