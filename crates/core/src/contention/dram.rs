//! DRAM-bandwidth queueing-delay model (Section IV-B2, Equations 21-23).
//!
//! DRAM bus service is short (a line transmission, `s = freq * L / B`
//! cycles per Equation 22) compared to MSHR residency, so arrival timing
//! matters: the model treats the bus as an **M/D/1 queue** — Poisson
//! arrivals, deterministic service time `s` — and uses its mean waiting
//! time `λ s² / (2 (1 - ρ))` (Equation 21).
//!
//! Two engineering choices around the paper's formulation, recorded in
//! DESIGN.md:
//!
//! * **Smoothed arrival rate.** Equation 23 computes λ per interval from
//!   that interval's own requests. Interval boundaries, however, split
//!   producers from consumers (a divergent store lands in the interval
//!   *after* the load that stalls on the bus behind it), which makes the
//!   per-interval rate degenerate. Loop kernels have near-periodic
//!   traffic, so we use the profile-wide rate: all of the representative
//!   warp's DRAM traffic, scaled to all warps and cores, over the wall
//!   clock the model has accumulated so far.
//! * **Saturation roofline.** When ρ ≥ 1 the queue has no steady state;
//!   the paper caps the delay by a half-backlog heuristic. We use the
//!   physical statement of the same idea: the kernel cannot finish before
//!   the bus has carried its traffic, i.e. core CPI is at least
//!   `s * #cores * (DRAM requests per warp-instruction)`; the shortfall
//!   relative to the no-queue model becomes QUEUE cycles.

use gpumech_isa::SimConfig;

use super::ContentionOptions;
use crate::interval::IntervalProfile;

/// Output of the DRAM-bandwidth stage.
#[derive(Debug, Clone, PartialEq)]
pub struct DramQueueResult {
    /// Per-interval queueing cycles (for CPI-stack attribution).
    pub per_interval: Vec<f64>,
    /// QUEUE contribution to core CPI.
    pub cpi: f64,
    /// Modeled bus utilization ρ (may exceed 1 before the roofline kicks
    /// in; useful for reports).
    pub rho: f64,
}

/// Runs the DRAM-bandwidth queueing stage.
///
/// `cpi_before_queue` is the core CPI the model has accumulated so far
/// (multithreading + MSHR) — it determines the time window the traffic is
/// spread over, and the roofline tops it up when the bus is the real
/// bottleneck.
#[must_use]
pub fn dram_queue_delays(
    profile: &IntervalProfile,
    cfg: &SimConfig,
    num_warps: usize,
    cpi_before_queue: f64,
) -> DramQueueResult {
    dram_queue_delays_with(profile, cfg, num_warps, cpi_before_queue, ContentionOptions::default())
}

/// [`dram_queue_delays`] with explicit [`ContentionOptions`] (ablations):
/// `dram_roofline = false` reverts the saturated branch to the paper's
/// half-backlog cap, and `core_level_normalization = false` divides by the
/// representative warp's instructions alone, as Equation 17 is printed.
#[must_use]
pub fn dram_queue_delays_with(
    profile: &IntervalProfile,
    cfg: &SimConfig,
    num_warps: usize,
    cpi_before_queue: f64,
    opts: ContentionOptions,
) -> DramQueueResult {
    let insts = profile.total_insts() as f64;
    let n = profile.intervals.len();
    let total_dram: f64 = profile.intervals.iter().map(|iv| iv.dram_reqs).sum();
    if insts <= 0.0
        || total_dram <= 0.0
        || cpi_before_queue <= 0.0
        || !total_dram.is_finite()
        || !cpi_before_queue.is_finite()
    {
        return DramQueueResult { per_interval: vec![0.0; n], cpi: 0.0, rho: 0.0 };
    }
    let s = cfg.dram_service_cycles();
    let cores = cfg.num_cores as f64;
    let warps = num_warps as f64;
    let norm = insts * if opts.core_level_normalization { warps } else { 1.0 };

    // Profile-wide arrival rate: every warp on every core pushes the
    // representative warp's traffic within the modeled wall clock.
    let wall = cpi_before_queue * warps * insts;
    let lambda = total_dram * warps * cores / wall;
    let rho = lambda * s;

    if rho < 1.0 {
        // Light/moderate load: Equation 21's M/D/1 wait, felt once per
        // DRAM-bound load execution.
        let wait = lambda * s * s / (2.0 * (1.0 - rho));
        let per_interval: Vec<f64> =
            profile.intervals.iter().map(|iv| wait * iv.dram_load_events).collect();
        let cpi = per_interval.iter().sum::<f64>() / norm;
        DramQueueResult { per_interval, cpi, rho }
    } else if opts.dram_roofline {
        // Saturated: bandwidth roofline.
        let cpi_min = s * cores * total_dram / insts;
        let cpi = (cpi_min - cpi_before_queue).max(0.0);
        // Attribute the shortfall across intervals in proportion to their
        // DRAM traffic (reporting only).
        let total_cycles = cpi * warps * insts;
        let per_interval: Vec<f64> = profile
            .intervals
            .iter()
            .map(|iv| total_cycles * iv.dram_reqs / total_dram)
            .collect();
        DramQueueResult { per_interval, cpi, rho }
    } else {
        // Paper's Equation 21 cap: a request arrives behind half the
        // interval's maximum backlog.
        let per_interval: Vec<f64> = profile
            .intervals
            .iter()
            .map(|iv| {
                let cap = s * iv.dram_reqs * warps * cores / 2.0;
                cap * iv.dram_load_events
            })
            .collect();
        let cpi = per_interval.iter().sum::<f64>() / norm;
        DramQueueResult { per_interval, cpi, rho }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn iv(insts: u64, stall: f64, dram_reqs: f64, dram_events: f64) -> Interval {
        Interval {
            insts,
            stall_cycles: stall,
            load_insts: 1,
            mem_reqs: dram_reqs,
            dram_reqs,
            dram_load_events: dram_events,
            ..Interval::default()
        }
    }

    fn profile(intervals: Vec<Interval>) -> IntervalProfile {
        IntervalProfile { intervals, issue_rate: 1.0 }
    }

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn no_dram_traffic_no_delay() {
        let p = profile(vec![iv(10, 100.0, 0.0, 0.0)]);
        let r = dram_queue_delays(&p, &cfg(), 32, 5.0);
        assert_eq!(r.cpi, 0.0);
        assert_eq!(r.rho, 0.0);
    }

    #[test]
    fn light_traffic_uses_md1_and_stays_small() {
        // 1 DRAM request per 10 instructions, generous wall clock.
        let p = profile(vec![iv(10, 0.0, 1.0, 1.0); 4]);
        let r = dram_queue_delays(&p, &cfg(), 32, 8.0);
        assert!(r.rho < 1.0, "rho = {}", r.rho);
        assert!(r.cpi < 0.5, "light load should queue little: {}", r.cpi);
        assert!(r.cpi > 0.0);
    }

    #[test]
    fn md1_wait_matches_hand_computation() {
        let c = cfg().with_dram_bandwidth(128.0); // s = 1
        let p = profile(vec![iv(10, 0.0, 0.5, 1.0); 2]);
        let warps = 4.0;
        let cpi0 = 10.0;
        let r = dram_queue_delays(&p, &c, 4, cpi0);
        let wall = cpi0 * warps * 20.0;
        let lambda = 1.0 * warps * 16.0 / wall;
        let wait = lambda / (2.0 * (1.0 - lambda));
        assert!((r.per_interval[0] - wait).abs() < 1e-12);
        assert!((r.cpi - 2.0 * wait / (warps * 20.0)).abs() < 1e-12);
    }

    #[test]
    fn saturation_tops_up_to_the_roofline() {
        // Write flood: 64 requests per 40 instructions → roofline CPI =
        // s * cores * 1.6 = 17.07 at Table I.
        let p = profile(vec![iv(40, 400.0, 64.0, 1.0); 5]);
        let r = dram_queue_delays(&p, &cfg(), 32, 2.0);
        assert!(r.rho >= 1.0);
        let roofline = cfg().dram_service_cycles() * 16.0 * (64.0 * 5.0) / 200.0;
        assert!((r.cpi - (roofline - 2.0)).abs() < 1e-9, "cpi {} roofline {roofline}", r.cpi);
    }

    #[test]
    fn roofline_never_reduces_cpi() {
        // If the model already exceeds the roofline, QUEUE adds nothing.
        let p = profile(vec![iv(40, 400.0, 8.0, 1.0)]);
        let roofline = cfg().dram_service_cycles() * 16.0 * 8.0 / 40.0;
        let r = dram_queue_delays(&p, &cfg(), 32, roofline + 50.0);
        assert!(r.cpi >= 0.0);
        if r.rho >= 1.0 {
            assert_eq!(r.cpi, 0.0);
        }
    }

    #[test]
    fn delay_increases_as_bandwidth_decreases() {
        let p = profile(vec![iv(10, 100.0, 2.0, 1.0); 4]);
        let hi = dram_queue_delays(&p, &cfg().with_dram_bandwidth(256.0), 32, 6.0);
        let lo = dram_queue_delays(&p, &cfg().with_dram_bandwidth(64.0), 32, 6.0);
        assert!(lo.cpi > hi.cpi, "64 GB/s must queue more: {} vs {}", lo.cpi, hi.cpi);
    }

    #[test]
    fn store_only_traffic_below_saturation_is_free() {
        // Stores feed lambda but nothing waits when rho < 1.
        let p = profile(vec![iv(20, 0.0, 1.0, 0.0); 3]);
        let r = dram_queue_delays(&p, &cfg(), 32, 4.0);
        assert!(r.rho < 1.0);
        assert_eq!(r.cpi, 0.0);
    }
}
