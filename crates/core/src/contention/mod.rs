//! Resource-contention modeling (Section IV-B).
//!
//! Memory divergence multiplies the requests behind each memory
//! instruction, congesting two resources the multithreading model ignores:
//! the per-core MSHR file and the shared DRAM bus. Both are modeled
//! per-interval from the representative warp's profile and summed into a
//! contention CPI (Equation 17):
//!
//! ```text
//! CPI_rc = Σ_i (MSHR_delay_i + Bandwidth_delay_i) / Σ_i #interval_insts_i
//! ```

mod dram;
mod mshr;

pub use dram::{dram_queue_delays, dram_queue_delays_with, DramQueueResult};
pub use mshr::mshr_delay;

use gpumech_isa::SimConfig;
use serde::{Deserialize, Serialize};

use crate::interval::IntervalProfile;

/// Output of the contention model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContentionResult {
    /// Contention CPI (Equation 17) — added to the multithreading CPI.
    pub cpi: f64,
    /// CPI share from MSHR queueing (the CPI stack's `MSHR` category).
    pub cpi_mshr: f64,
    /// CPI share from DRAM-bandwidth queueing (the `QUEUE` category).
    pub cpi_queue: f64,
    /// CPI share from special-function-unit serialization — the
    /// resource-contention generalization the paper suggests
    /// (Section IV-B1); zero at Table I's 32-lane default. Reported inside
    /// the CPI stack's `DEP` category (Table III has no SFU row).
    #[serde(default)]
    pub cpi_sfu: f64,
    /// Per-interval MSHR delays (cycles).
    pub mshr_delays: Vec<f64>,
    /// Per-interval DRAM-bandwidth delays (cycles).
    pub bandwidth_delays: Vec<f64>,
}

/// Toggles for the engineering decisions layered on the paper's printed
/// equations (see DESIGN.md); the ablation harness flips them
/// individually. Defaults reproduce full GPUMech as implemented here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContentionOptions {
    /// Divide queueing delays by `#warps × Σinsts` (core-level, consistent
    /// with Equation 7) rather than the printed Equation 17's `Σinsts`.
    pub core_level_normalization: bool,
    /// Apply the MSHR throughput roofline on top of Equation 19.
    pub mshr_roofline: bool,
    /// Use the bandwidth roofline when ρ ≥ 1 instead of the paper's
    /// half-backlog cap.
    pub dram_roofline: bool,
}

impl Default for ContentionOptions {
    fn default() -> Self {
        Self { core_level_normalization: true, mshr_roofline: true, dram_roofline: true }
    }
}

/// Runs the full contention model for the representative warp's `profile`
/// with `num_warps` resident warps per core.
///
/// `avg_miss_latency` is the mean no-contention L2/DRAM latency of
/// MSHR-allocating requests, from
/// [`gpumech_mem::MemStats::avg_miss_latency`]; `cpi_multithreading` is
/// the CPI the multithreading stage predicted (it sets the time window the
/// DRAM traffic is spread over).
#[must_use]
pub fn contention_cpi(
    profile: &IntervalProfile,
    cfg: &SimConfig,
    num_warps: usize,
    avg_miss_latency: f64,
    cpi_multithreading: f64,
) -> ContentionResult {
    contention_cpi_with(
        profile,
        cfg,
        num_warps,
        avg_miss_latency,
        cpi_multithreading,
        ContentionOptions::default(),
    )
}

/// [`contention_cpi`] with explicit [`ContentionOptions`] (ablations).
#[must_use]
pub fn contention_cpi_with(
    profile: &IntervalProfile,
    cfg: &SimConfig,
    num_warps: usize,
    avg_miss_latency: f64,
    cpi_multithreading: f64,
    opts: ContentionOptions,
) -> ContentionResult {
    let mshr_delays: Vec<f64> = profile
        .intervals
        .iter()
        .map(|iv| mshr_delay(iv, num_warps, cfg.num_mshrs, avg_miss_latency))
        .collect();

    // Equation 17, normalized consistently with the (corrected) Equation 7:
    // every resident warp experiences the queueing delay *concurrently* —
    // they are all waiting in the same queues — so the wall-clock stretch is
    // Σ delays once, and its contribution to the core-level CPI (which is
    // cycles per warp-instruction across all #warps warps) divides by
    // #warps × Σ insts. Dividing by Σ insts alone, as the equation is
    // printed, would charge the shared delay #warps times over.
    let insts = profile.total_insts() as f64;
    let norm_warps = if opts.core_level_normalization { num_warps as f64 } else { 1.0 };
    let denom = insts * norm_warps;
    let eq19_cpi =
        if denom == 0.0 { 0.0 } else { mshr_delays.iter().sum::<f64>() / denom };

    // MSHR throughput roofline: a core retires at most
    // `#MSHR / avg_miss_latency` misses per cycle, so core CPI is at least
    // `(misses per warp-instruction) * avg_miss_latency / #MSHR`.
    // Equation 19 charges the *mean* queue-position delay, which
    // underestimates the serialization when divergent loads recycle the
    // whole file many times over; the roofline is the physical floor.
    let cpi_mshr = if opts.mshr_roofline && insts > 0.0 && cfg.num_mshrs > 0 {
        let mshr_reqs_per_inst =
            profile.intervals.iter().map(|iv| iv.mshr_reqs).sum::<f64>() / insts;
        let roofline = mshr_reqs_per_inst * avg_miss_latency / cfg.num_mshrs as f64;
        eq19_cpi.max(roofline - cpi_multithreading).max(0.0)
    } else {
        eq19_cpi
    };

    let dram = dram_queue_delays_with(
        profile,
        cfg,
        num_warps,
        cpi_multithreading + cpi_mshr,
        opts,
    );

    // SFU throughput roofline (extension; see `sfu_cpi`).
    let cpi_sfu = sfu_cpi(profile, cfg, cpi_multithreading + cpi_mshr + dram.cpi);

    if gpumech_obs::enabled() {
        gpumech_obs::gauge!("core.contention.mshr_cpi", cpi_mshr);
        gpumech_obs::gauge!("core.contention.queue_cpi", dram.cpi);
        gpumech_obs::gauge!("core.contention.sfu_cpi", cpi_sfu);
    }
    ContentionResult {
        cpi: cpi_mshr + dram.cpi + cpi_sfu,
        cpi_mshr,
        cpi_queue: dram.cpi,
        cpi_sfu,
        mshr_delays,
        bandwidth_delays: dram.per_interval,
    }
}

/// Special-function-unit serialization CPI — the generalization of the
/// queueing methodology the paper leaves as future work (Section IV-B1).
///
/// A core's SFU accepts one warp instruction per initiation interval
/// (`ceil(warp_size / sfu_lanes)` cycles), so core CPI is at least
/// `initiation_interval * (SFU instructions per warp-instruction)`; the
/// shortfall relative to the rest of the model becomes SFU cycles. Zero at
/// the Table I default of 32 lanes.
#[must_use]
pub fn sfu_cpi(profile: &IntervalProfile, cfg: &SimConfig, cpi_before: f64) -> f64 {
    let ii = cfg.sfu_initiation_interval();
    if ii <= 1 {
        return 0.0;
    }
    let insts = profile.total_insts() as f64;
    if insts == 0.0 {
        return 0.0;
    }
    let sfu_frac =
        profile.intervals.iter().map(|iv| iv.sfu_insts).sum::<u64>() as f64 / insts;
    (ii as f64 * sfu_frac - cpi_before).max(0.0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::{Interval, StallCause};

    fn mem_iv(insts: u64, loads: u64, mshr_reqs: f64, dram_reqs: f64) -> Interval {
        Interval {
            insts,
            stall_cycles: 100.0,
            cause: StallCause::Compute,
            load_insts: loads,
            mem_reqs: mshr_reqs,
            mshr_reqs,
            dram_reqs,
            mshr_load_events: loads as f64,
            dram_load_events: loads as f64,
            ..Interval::default()
        }
    }

    #[test]
    fn compute_only_profile_has_zero_contention() {
        let p = IntervalProfile {
            intervals: vec![mem_iv(10, 0, 0.0, 0.0)],
            issue_rate: 1.0,
        };
        let r = contention_cpi(&p, &SimConfig::default(), 32, 420.0, 2.0);
        assert_eq!(r.cpi, 0.0);
        assert_eq!(r.cpi_mshr, 0.0);
        assert_eq!(r.cpi_queue, 0.0);
    }

    #[test]
    fn divergent_profile_accumulates_both_components() {
        // 32-way divergent load per interval, 32 warps → 1024 core requests
        // against 32 MSHRs and the DRAM bus.
        let p = IntervalProfile {
            intervals: vec![mem_iv(5, 1, 32.0, 32.0); 4],
            issue_rate: 1.0,
        };
        let r = contention_cpi(&p, &SimConfig::default(), 32, 420.0, 2.0);
        assert!(r.cpi_mshr > 0.0, "MSHR queueing expected");
        assert!(r.cpi_queue > 0.0, "DRAM queueing expected");
        assert!((r.cpi - (r.cpi_mshr + r.cpi_queue)).abs() < 1e-12);
        assert_eq!(r.mshr_delays.len(), 4);
        assert_eq!(r.bandwidth_delays.len(), 4);
    }

    #[test]
    fn contention_grows_with_warps() {
        let p = IntervalProfile {
            intervals: vec![mem_iv(5, 1, 32.0, 32.0); 4],
            issue_rate: 1.0,
        };
        let cfg = SimConfig::default();
        let lo = contention_cpi(&p, &cfg, 8, 420.0, 2.0);
        let hi = contention_cpi(&p, &cfg, 48, 420.0, 2.0);
        assert!(lo.cpi > 0.0 && hi.cpi > 0.0);
        // This profile saturates the MSHR file at either warp count, so
        // the MSHR share sits on the throughput roofline — a property of
        // traffic per instruction, identical for both.
        assert!((hi.cpi_mshr - lo.cpi_mshr).abs() < 1e-9, "roofline is warp-independent");
        // The residual M/D/1 wait is shared wall clock amortized over more
        // instructions, so the total may shrink slightly — but only
        // slightly (bounded by the 8-warp queue share).
        assert!(hi.cpi >= lo.cpi_mshr - 1e-9);
    }

    #[test]
    fn sfu_roofline_is_zero_at_the_table1_default() {
        let mut iv = mem_iv(10, 0, 0.0, 0.0);
        iv.sfu_insts = 5;
        let p = IntervalProfile { intervals: vec![iv], issue_rate: 1.0 };
        assert_eq!(sfu_cpi(&p, &SimConfig::default(), 2.0), 0.0, "32 lanes → no contention");
    }

    #[test]
    fn sfu_roofline_tops_up_on_narrow_units() {
        // Half the instructions are SFU, 4 lanes → ii = 8:
        // CPI floor = 8 * 0.5 = 4; with 1.5 already modeled, SFU adds 2.5.
        let mut iv = mem_iv(10, 0, 0.0, 0.0);
        iv.sfu_insts = 5;
        let p = IntervalProfile { intervals: vec![iv], issue_rate: 1.0 };
        let cfg = SimConfig::default().with_sfu_per_core(4);
        let d = sfu_cpi(&p, &cfg, 1.5);
        assert!((d - 2.5).abs() < 1e-12, "got {d}");
        // Already-slow kernels absorb the serialization.
        assert_eq!(sfu_cpi(&p, &cfg, 10.0), 0.0);
    }

    #[test]
    fn sfu_contention_feeds_the_total() {
        let mut iv = mem_iv(10, 0, 0.0, 0.0);
        iv.sfu_insts = 8;
        let p = IntervalProfile { intervals: vec![iv], issue_rate: 1.0 };
        let cfg = SimConfig::default().with_sfu_per_core(4);
        let r = contention_cpi(&p, &cfg, 32, 420.0, 1.0);
        assert!(r.cpi_sfu > 0.0);
        assert!((r.cpi - (r.cpi_mshr + r.cpi_queue + r.cpi_sfu)).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = IntervalProfile { intervals: vec![], issue_rate: 1.0 };
        let r = contention_cpi(&p, &SimConfig::default(), 32, 420.0, 2.0);
        assert_eq!(r.cpi, 0.0);
    }
}
