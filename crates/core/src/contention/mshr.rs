//! MSHR queueing-delay model (Section IV-B1, Equations 18-20).

use crate::interval::Interval;

/// Sum of `ceil(j / m)` for `j = 1..=r` in closed form.
fn sum_ceil(r: u64, m: u64) -> u64 {
    if r == 0 || m == 0 {
        return 0;
    }
    let q = r / m; // full groups of m
    let rem = r % m;
    m * q * (q + 1) / 2 + rem * (q + 1)
}

/// Expected MSHR queueing delay of one interval (Equations 18-20).
///
/// The interval's warps are assumed to issue their memory requests
/// together: `#core_reqs_i = #warp_mem_reqs_i * #warps` (Equation 18).
/// Request `j` in the file sees latency `avg_miss_latency * ceil(j/#MSHR)`,
/// so the expected per-request queueing delay is the mean of that series
/// minus the base latency (Equation 19). Queueing only arises when the
/// requests exceed the file (Equation 20), and is charged per memory
/// *instruction* — a divergent instruction's requests overlap. The
/// instruction count is weighted by the probability the load actually
/// leaves the L1 (`mshr_load_events`): loads that hit the L1 never occupy
/// an MSHR, which is why the paper's `kmeans_invert_mapping` sees almost
/// no MSHR delay despite maximal divergence (Section VII-A).
#[must_use]
pub fn mshr_delay(
    interval: &Interval,
    num_warps: usize,
    num_mshrs: usize,
    avg_miss_latency: f64,
) -> f64 {
    // Equation 18. MSHR-allocating requests only (loads that miss L1).
    // NaN/Inf request counts cast to 0/u64::MAX respectively; the latency
    // guard keeps a corrupt AMAT from propagating NaN into the delay.
    let core_reqs = (interval.mshr_reqs * num_warps as f64).round() as u64;
    if core_reqs <= num_mshrs as u64
        || interval.mshr_load_events <= 0.0
        || !avg_miss_latency.is_finite()
    {
        return 0.0; // Equation 20, no-contention branch.
    }
    // Equation 19.
    let expected_latency =
        avg_miss_latency * sum_ceil(core_reqs, num_mshrs as u64) as f64 / core_reqs as f64;
    let exp_queuing_delay = expected_latency - avg_miss_latency;
    // Equation 20: per L1-missing memory instruction.
    exp_queuing_delay * interval.mshr_load_events
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::StallCause;

    fn iv(loads: u64, mshr_reqs: f64) -> Interval {
        Interval {
            insts: loads + 2,
            stall_cycles: 0.0,
            cause: StallCause::None,
            load_insts: loads,
            mem_reqs: mshr_reqs,
            mshr_reqs,
            mshr_load_events: loads as f64,
            ..Interval::default()
        }
    }

    #[test]
    fn sum_ceil_closed_form_matches_naive() {
        for r in 0..200u64 {
            for m in 1..10u64 {
                let naive: u64 = (1..=r).map(|j| j.div_ceil(m)).sum();
                assert_eq!(sum_ceil(r, m), naive, "r={r} m={m}");
            }
        }
    }

    #[test]
    fn no_delay_when_requests_fit_in_the_file() {
        // Figure 9's premise: delay starts only once the file saturates.
        let d = mshr_delay(&iv(1, 1.0), 32, 32, 420.0);
        assert_eq!(d, 0.0, "32 requests fit exactly in 32 MSHRs");
    }

    #[test]
    fn figure9_shape_fourth_warp_queues() {
        // 6 MSHRs, 4 warps, 2 requests per warp = 8 core requests:
        // latencies L*[1,1,1,1,1,1,2,2]/8 → expected = 1.25 L → delay 0.25 L
        // per request, × 1 memory instruction.
        let d = mshr_delay(&iv(1, 2.0), 4, 6, 400.0);
        assert!((d - 100.0).abs() < 1e-9, "got {d}");
    }

    #[test]
    fn delay_scales_with_divergence() {
        let coalesced = mshr_delay(&iv(1, 1.0), 32, 32, 420.0);
        let divergent = mshr_delay(&iv(1, 32.0), 32, 32, 420.0);
        assert_eq!(coalesced, 0.0);
        assert!(divergent > 420.0 * 10.0, "32x32 requests vs 32 MSHRs queue ~16 rounds: {divergent}");
    }

    #[test]
    fn more_mshrs_reduce_delay() {
        let small = mshr_delay(&iv(1, 8.0), 32, 32, 420.0);
        let big = mshr_delay(&iv(1, 8.0), 32, 256, 420.0);
        assert!(small > big, "{small} vs {big}");
        assert_eq!(mshr_delay(&iv(1, 8.0), 32, 1024, 420.0), 0.0);
    }

    #[test]
    fn delay_is_charged_per_instruction_not_per_request() {
        // Same per-warp request count, twice the instructions → exactly
        // twice the charged delay.
        let one = mshr_delay(&iv(1, 16.0), 32, 32, 420.0);
        let two = Interval { load_insts: 2, ..iv(2, 16.0) };
        let d2 = mshr_delay(&two, 32, 32, 420.0);
        assert!(one > 0.0);
        assert!((d2 - 2.0 * one).abs() < 1e-9, "charged per inst: {d2} vs 2x{one}");
    }

    #[test]
    fn zero_load_interval_has_no_delay() {
        let mut i = iv(0, 40.0);
        i.load_insts = 0;
        assert_eq!(mshr_delay(&i, 32, 32, 420.0), 0.0);
    }
}
