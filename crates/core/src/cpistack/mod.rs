//! CPI stacks — the bottleneck-visualization output of GPUMech
//! (Section VII, Table III).
//!
//! A CPI stack splits the predicted cycles-per-instruction into additive
//! categories so developers can see *what* limits performance. GPUMech
//! builds the representative warp's stack from its interval profile (each
//! stall charged to the compute dependence or to the blamed load's
//! miss-event distribution), rescales it by the multithreading speedup so
//! relative importance is preserved, then appends the modeled MSHR and
//! DRAM-queue delays as their own categories.

use std::fmt;

use gpumech_mem::MemStats;
use serde::{Deserialize, Serialize};

use crate::contention::ContentionResult;
use crate::interval::{IntervalProfile, StallCause};
use crate::multiwarp::MultithreadingResult;

/// The stall categories of Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StallCategory {
    /// Instruction issue cycles.
    Base,
    /// Compute dependencies.
    Dep,
    /// L1 hits.
    L1,
    /// L2 hits.
    L2,
    /// DRAM access latency (no queueing).
    Dram,
    /// MSHR queueing delay.
    Mshr,
    /// DRAM-bandwidth queueing delay.
    Queue,
}

impl StallCategory {
    /// All categories in Table III order.
    pub const ALL: [StallCategory; 7] = [
        StallCategory::Base,
        StallCategory::Dep,
        StallCategory::L1,
        StallCategory::L2,
        StallCategory::Dram,
        StallCategory::Mshr,
        StallCategory::Queue,
    ];
}

impl fmt::Display for StallCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            StallCategory::Base => "BASE",
            StallCategory::Dep => "DEP",
            StallCategory::L1 => "L1",
            StallCategory::L2 => "L2",
            StallCategory::Dram => "DRAM",
            StallCategory::Mshr => "MSHR",
            StallCategory::Queue => "QUEUE",
        };
        f.write_str(s)
    }
}

/// A CPI stack: additive per-category cycles-per-instruction.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CpiStack {
    /// Issue cycles (`BASE`).
    pub base: f64,
    /// Compute-dependence stalls (`DEP`).
    pub dep: f64,
    /// Stalls resolved in the L1 (`L1`).
    pub l1: f64,
    /// Stalls resolved in the L2 (`L2`).
    pub l2: f64,
    /// Stalls paying the raw DRAM access latency (`DRAM`).
    pub dram: f64,
    /// MSHR queueing (`MSHR`).
    pub mshr: f64,
    /// DRAM-bandwidth queueing (`QUEUE`).
    pub queue: f64,
}

impl CpiStack {
    /// Total predicted CPI (the sum of all categories).
    #[must_use]
    pub fn total(&self) -> f64 {
        self.base + self.dep + self.l1 + self.l2 + self.dram + self.mshr + self.queue
    }

    /// Value of one category.
    #[must_use]
    pub fn get(&self, cat: StallCategory) -> f64 {
        match cat {
            StallCategory::Base => self.base,
            StallCategory::Dep => self.dep,
            StallCategory::L1 => self.l1,
            StallCategory::L2 => self.l2,
            StallCategory::Dram => self.dram,
            StallCategory::Mshr => self.mshr,
            StallCategory::Queue => self.queue,
        }
    }

    /// `(category, value)` pairs in Table III order.
    #[must_use]
    pub fn components(&self) -> [(StallCategory, f64); 7] {
        StallCategory::ALL.map(|c| (c, self.get(c)))
    }

    /// Component-wise sum of two stacks (used when blending cluster
    /// predictions).
    #[must_use]
    pub fn plus(&self, other: &CpiStack) -> Self {
        Self {
            base: self.base + other.base,
            dep: self.dep + other.dep,
            l1: self.l1 + other.l1,
            l2: self.l2 + other.l2,
            dram: self.dram + other.dram,
            mshr: self.mshr + other.mshr,
            queue: self.queue + other.queue,
        }
    }

    /// This stack scaled by `factor` (used for normalized plots).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            base: self.base * factor,
            dep: self.dep * factor,
            l1: self.l1 * factor,
            l2: self.l2 * factor,
            dram: self.dram * factor,
            mshr: self.mshr * factor,
            queue: self.queue * factor,
        }
    }

    /// Renders the stack as a single-line ASCII bar of `width` characters
    /// plus a legend — the paper's CPI-stack visualization, terminal
    /// edition. Categories below half a character are dropped from the
    /// bar but still listed in the legend when non-zero.
    ///
    /// ```
    /// use gpumech_core::CpiStack;
    /// let stack = CpiStack { base: 1.0, dep: 1.0, dram: 2.0, ..Default::default() };
    /// let bar = stack.render_bar(40);
    /// assert!(bar.contains("DRAM"));
    /// ```
    #[must_use]
    pub fn render_bar(&self, width: usize) -> String {
        const GLYPHS: [char; 7] = ['#', 'd', '1', '2', 'D', 'M', 'Q'];
        let total = self.total();
        if total <= 0.0 || width == 0 {
            return String::from("(empty stack)");
        }
        let mut bar = String::with_capacity(width + 64);
        bar.push('[');
        for (i, (cat, value)) in self.components().iter().enumerate() {
            let chars = (value / total * width as f64).round() as usize;
            let _ = cat;
            bar.extend(std::iter::repeat_n(GLYPHS[i], chars));
        }
        bar.push(']');
        bar.push(' ');
        let legend: Vec<String> = self
            .components()
            .iter()
            .zip(GLYPHS)
            .filter(|((_, v), _)| *v > 1e-6)
            .map(|((cat, v), g)| format!("{g}={cat}:{v:.2}"))
            .collect();
        bar.push_str(&legend.join(" "));
        bar
    }

    /// Builds the single-warp CPI stack of the representative warp
    /// (Section VII, first step): `BASE` is the issue cycles per
    /// instruction; each interval's stall goes to `DEP` or is split across
    /// `L1`/`L2`/`DRAM` by the blamed load's miss-event distribution
    /// (assuming no queueing).
    #[must_use]
    pub fn single_warp(profile: &IntervalProfile, mem: &MemStats) -> Self {
        let insts = profile.total_insts() as f64;
        if insts == 0.0 {
            return Self::default();
        }
        // A corrupt profile could carry a zero/NaN issue rate; treat it as
        // the 1-inst/cycle default instead of producing an Inf/NaN BASE.
        let issue_rate =
            if profile.issue_rate.is_finite() && profile.issue_rate > 0.0 { profile.issue_rate } else { 1.0 };
        let mut stack = CpiStack { base: 1.0 / issue_rate, ..Default::default() };
        for iv in &profile.intervals {
            match iv.cause {
                StallCause::None => {}
                StallCause::Compute => stack.dep += iv.stall_cycles / insts,
                StallCause::Memory { pc } => {
                    let d = mem.miss_dist(pc);
                    stack.l1 += d.l1_hit * iv.stall_cycles / insts;
                    stack.l2 += d.l2_hit * iv.stall_cycles / insts;
                    stack.dram += d.l2_miss * iv.stall_cycles / insts;
                }
            }
        }
        stack
    }

    /// Builds the full multi-warp CPI stack (Section VII): the single-warp
    /// stack shrunk by `CPI_multithreading / CPI_single_warp`, plus the
    /// `MSHR` and `QUEUE` categories from the contention model.
    #[must_use]
    pub fn multi_warp(
        profile: &IntervalProfile,
        mem: &MemStats,
        mt: &MultithreadingResult,
        rc: &ContentionResult,
    ) -> Self {
        let single = Self::single_warp(profile, mem);
        let single_cpi = single.total();
        let factor = if single_cpi > 0.0 { mt.cpi / single_cpi } else { 0.0 };
        let mut stack = single.scaled(factor);
        stack.mshr = rc.cpi_mshr;
        stack.queue = rc.cpi_queue;
        // SFU serialization is compute-resource pressure; Table III has no
        // SFU row, so it reports under DEP (zero at the Table I default).
        stack.dep += rc.cpi_sfu;
        // Component provenance: which Table III row each modeled cycle
        // landed in, as observed series.
        if gpumech_obs::enabled() {
            gpumech_obs::gauge!("core.cpistack.base", stack.base);
            gpumech_obs::gauge!("core.cpistack.dep", stack.dep);
            gpumech_obs::gauge!("core.cpistack.l1", stack.l1);
            gpumech_obs::gauge!("core.cpistack.l2", stack.l2);
            gpumech_obs::gauge!("core.cpistack.dram", stack.dram);
            gpumech_obs::gauge!("core.cpistack.mshr", stack.mshr);
            gpumech_obs::gauge!("core.cpistack.queue", stack.queue);
            gpumech_obs::gauge!("core.cpistack.total", stack.total());
        }
        stack
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use gpumech_mem::PcStats;

    fn iv(insts: u64, stall: f64, cause: StallCause) -> Interval {
        Interval {
            insts,
            stall_cycles: stall,
            cause,
            load_insts: 0,
            store_insts: 0,
            mem_reqs: 0.0,
            mshr_reqs: 0.0,
            dram_reqs: 0.0,
            ..Interval::default()
        }
    }

    fn mem_with_dist(pc: u32, l1: u64, l2: u64, dram: u64) -> MemStats {
        let mut m = MemStats::new(25, 120, 420);
        *m.entry(pc) = PcStats {
            is_store: false,
            insts: l1 + l2 + dram,
            l1_hit_insts: l1,
            l2_hit_insts: l2,
            l2_miss_insts: dram,
            reqs: l1 + l2 + dram,
            mshr_reqs: l2 + dram,
            dram_reqs: dram,
        };
        m
    }

    #[test]
    fn single_warp_stack_sums_to_single_warp_cpi() {
        let p = IntervalProfile {
            intervals: vec![
                iv(4, 24.0, StallCause::Compute),
                iv(6, 100.0, StallCause::Memory { pc: 3 }),
            ],
            issue_rate: 1.0,
        };
        let mem = mem_with_dist(3, 1, 0, 9);
        let stack = CpiStack::single_warp(&p, &mem);
        assert!((stack.total() - p.single_warp_cpi()).abs() < 1e-9);
        assert!((stack.base - 1.0).abs() < 1e-12);
        assert!((stack.dep - 2.4).abs() < 1e-12);
    }

    #[test]
    fn memory_stall_splits_by_miss_distribution() {
        // Paper's example: 100 stall cycles, 10% L2 hit / 90% L2 miss →
        // 10 cycles L2, 90 cycles DRAM.
        let p = IntervalProfile {
            intervals: vec![iv(1, 100.0, StallCause::Memory { pc: 7 })],
            issue_rate: 1.0,
        };
        let mem = mem_with_dist(7, 0, 1, 9);
        let stack = CpiStack::single_warp(&p, &mem);
        assert!((stack.l2 - 10.0).abs() < 1e-9);
        assert!((stack.dram - 90.0).abs() < 1e-9);
        assert_eq!(stack.l1, 0.0);
        assert_eq!(stack.mshr, 0.0);
    }

    #[test]
    fn multi_warp_stack_sums_to_final_cpi() {
        let p = IntervalProfile {
            intervals: vec![iv(5, 45.0, StallCause::Compute), iv(5, 0.0, StallCause::None)],
            issue_rate: 1.0,
        };
        let mem = MemStats::new(25, 120, 420);
        let mt = MultithreadingResult {
            cpi: 1.25,
            total_nonoverlapped: 0.0,
            per_interval: vec![0.0, 0.0],
            num_warps: 8,
        };
        let rc = ContentionResult {
            cpi: 0.5,
            cpi_mshr: 0.3,
            cpi_queue: 0.2,
            cpi_sfu: 0.0,
            mshr_delays: vec![],
            bandwidth_delays: vec![],
        };
        let stack = CpiStack::multi_warp(&p, &mem, &mt, &rc);
        assert!((stack.total() - (mt.cpi + rc.cpi)).abs() < 1e-9, "stack sums to CPI_final");
        assert!((stack.mshr - 0.3).abs() < 1e-12);
        assert!((stack.queue - 0.2).abs() < 1e-12);
        // Relative importance preserved: dep/base ratio unchanged.
        let single = CpiStack::single_warp(&p, &mem);
        assert!(((stack.dep / stack.base) - (single.dep / single.base)).abs() < 1e-9);
    }

    #[test]
    fn components_cover_all_categories() {
        let s = CpiStack { base: 1.0, dep: 2.0, l1: 3.0, l2: 4.0, dram: 5.0, mshr: 6.0, queue: 7.0 };
        let comps = s.components();
        assert_eq!(comps.len(), 7);
        let sum: f64 = comps.iter().map(|(_, v)| v).sum();
        assert!((sum - s.total()).abs() < 1e-12);
        assert_eq!(comps[0].0, StallCategory::Base);
        assert_eq!(comps[6].0, StallCategory::Queue);
    }

    #[test]
    fn display_names_match_table3() {
        let names: Vec<String> = StallCategory::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names, vec!["BASE", "DEP", "L1", "L2", "DRAM", "MSHR", "QUEUE"]);
    }

    #[test]
    fn empty_profile_gives_empty_stack() {
        let p = IntervalProfile { intervals: vec![], issue_rate: 1.0 };
        let mem = MemStats::new(25, 120, 420);
        assert_eq!(CpiStack::single_warp(&p, &mem).total(), 0.0);
    }

    #[test]
    fn render_bar_is_proportional_and_legended() {
        let s = CpiStack { base: 1.0, dep: 0.0, l1: 0.0, l2: 0.0, dram: 3.0, mshr: 0.0, queue: 0.0 };
        let bar = s.render_bar(40);
        let bar_only = &bar[..bar.find(']').expect("bar has a closing bracket")];
        let hashes = bar_only.chars().filter(|&c| c == '#').count();
        let drams = bar_only.chars().filter(|&c| c == 'D').count();
        assert_eq!(hashes, 10, "BASE is a quarter of the bar");
        assert_eq!(drams, 30, "DRAM is three quarters");
        assert!(bar.contains("#=BASE:1.00"));
        assert!(bar.contains("D=DRAM:3.00"));
        assert!(!bar.contains("MSHR"), "zero categories stay out of the legend");
    }

    #[test]
    fn render_bar_handles_degenerate_stacks() {
        assert_eq!(CpiStack::default().render_bar(40), "(empty stack)");
        let s = CpiStack { base: 1.0, ..Default::default() };
        assert_eq!(s.render_bar(0), "(empty stack)");
    }
}
