//! The interval construction algorithm (Section III-B, Equation 4).
//!
//! The algorithm replays a warp's trace under an idealized in-order core:
//! one instruction issues per cycle unless a source operand is not ready.
//! Whenever the issue stream breaks, the gap becomes the previous
//! interval's stall cycles and a new interval begins. Compute latencies
//! come from the latency table; global-load latencies are the per-PC AMATs
//! produced by the functional cache simulation (Section V-B).

use gpumech_isa::{InstKind, MemSpace, SimConfig};
use gpumech_mem::MemStats;
use gpumech_trace::{TraceInst, WarpTrace};

use super::profile::{Interval, IntervalProfile, StallCause};

/// Latency the interval model assigns to one dynamic instruction.
fn latency_of(inst: &TraceInst, cfg: &SimConfig, mem: &MemStats) -> f64 {
    match inst.kind {
        InstKind::Load(MemSpace::Global) => mem.load_latency(inst.pc),
        // Stores retire at issue (write-through, nothing depends on them).
        InstKind::Store(MemSpace::Global) => 1.0,
        kind => cfg.latencies.latency_of(kind) as f64,
    }
}

/// Builds the interval profile of one warp (Equations 2 and 4).
///
/// Each interval also accumulates the expected memory-request statistics of
/// its instructions (from the per-PC cache statistics), which the
/// contention models of Section IV-B consume.
#[must_use]
pub fn build_profile(warp: &WarpTrace, cfg: &SimConfig, mem: &MemStats) -> IntervalProfile {
    let issue_rate = cfg.issue_rate();
    let n = warp.insts.len();
    let mut profile = IntervalProfile { intervals: Vec::new(), issue_rate };
    if n == 0 {
        return profile;
    }

    let mut done = vec![0.0f64; n];
    let mut issue_prev = 0.0f64;
    done[0] = issue_prev + latency_of(&warp.insts[0], cfg, mem);

    // Accumulators for the interval currently being formed.
    let mut cur = new_interval();
    accumulate(&mut cur, &warp.insts[0], mem, cfg);

    for k in 1..n {
        let inst = &warp.insts[k];
        // Equation 4: issue(k) = max(issue(k-1) + 1, done(source) + 1).
        let mut dep_done = 0.0f64;
        let mut blamed: Option<&TraceInst> = None;
        for &d in &inst.deps {
            let dd = done[d as usize];
            if dd > dep_done {
                dep_done = dd;
                blamed = Some(&warp.insts[d as usize]);
            }
        }
        let seq = issue_prev + 1.0 / issue_rate;
        let issue = seq.max(dep_done + 1.0 / issue_rate);
        done[k] = issue + latency_of(inst, cfg, mem);

        let stall = issue - seq;
        if stall > 1e-9 {
            // Close the current interval; the stalled consumer's producer
            // gets the blame (Figure 6: the instruction "that leads to
            // stall cycles").
            cur.stall_cycles = stall;
            cur.cause = match blamed {
                Some(b) if matches!(b.kind, InstKind::Load(MemSpace::Global)) => {
                    StallCause::Memory { pc: b.pc }
                }
                _ => StallCause::Compute,
            };
            profile.intervals.push(std::mem::replace(&mut cur, new_interval()));
        }
        accumulate(&mut cur, inst, mem, cfg);
        issue_prev = issue;
    }
    // The final interval ends with the trace (no trailing stall).
    profile.intervals.push(cur);
    profile
}

fn new_interval() -> Interval {
    Interval::default()
}

fn accumulate(cur: &mut Interval, inst: &TraceInst, mem: &MemStats, _cfg: &SimConfig) {
    cur.insts += 1;
    match inst.kind {
        InstKind::Load(MemSpace::Global) => {
            cur.load_insts += 1;
            if let Some(s) = mem.pc_stats(inst.pc) {
                cur.mem_reqs += s.reqs_per_inst();
                cur.mshr_reqs += s.mshr_reqs_per_inst();
                cur.dram_reqs += s.dram_reqs_per_inst();
                let d = mem.miss_dist(inst.pc);
                cur.mshr_load_events += d.l2_hit + d.l2_miss;
                cur.dram_load_events += d.l2_miss;
            }
        }
        InstKind::Sfu => {
            cur.sfu_insts += 1;
        }
        InstKind::Store(MemSpace::Global) => {
            cur.store_insts += 1;
            if let Some(s) = mem.pc_stats(inst.pc) {
                cur.mem_reqs += s.reqs_per_inst();
                // Stores never allocate MSHRs; all their traffic hits DRAM.
                cur.dram_reqs += s.dram_reqs_per_inst();
            }
        }
        _ => {}
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::{AddrPattern, KernelBuilder, Operand, ValueOp, WarpId};
    use gpumech_mem::simulate_hierarchy;
    use gpumech_trace::{trace_kernel, trace_warp, LaunchConfig};

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    fn empty_mem(cfg: &SimConfig) -> MemStats {
        MemStats::new(cfg.l1.latency, cfg.l2_hit_latency(), cfg.l2_miss_latency())
    }

    #[test]
    fn independent_instructions_form_one_interval() {
        let mut b = KernelBuilder::new("k");
        for i in 0..6 {
            let _ = b.fp_add(&[Operand::Imm(i)]);
        }
        let k = b.finish(vec![]);
        let t = trace_warp(&k, LaunchConfig::new(32, 1), WarpId::new(0)).unwrap();
        let p = build_profile(&t, &cfg(), &empty_mem(&cfg()));
        assert_eq!(p.intervals.len(), 1, "no dependencies → no stalls");
        assert_eq!(p.total_insts(), 7); // 6 + exit
        assert_eq!(p.total_stall_cycles(), 0.0);
    }

    #[test]
    fn dependent_chain_creates_stalls_with_exact_latency() {
        // fp_add (25 cyc, done at 25) → dependent alu issues at 26
        // (Equation 4): 25 empty slots between issue 0 and issue 26.
        let mut b = KernelBuilder::new("k");
        let a = b.fp_add(&[Operand::Imm(1)]);
        let _ = b.alu(ValueOp::Add, &[Operand::Reg(a)]);
        let k = b.finish(vec![]);
        let t = trace_warp(&k, LaunchConfig::new(32, 1), WarpId::new(0)).unwrap();
        let p = build_profile(&t, &cfg(), &empty_mem(&cfg()));
        assert_eq!(p.intervals.len(), 2);
        assert_eq!(p.intervals[0].insts, 1);
        assert!((p.intervals[0].stall_cycles - 25.0).abs() < 1e-9);
        assert_eq!(p.intervals[0].cause, StallCause::Compute);
        assert_eq!(p.intervals[1].cause, StallCause::None);
        // 3 issue cycles + 25 stall cycles.
        assert!((p.total_cycles() - 28.0).abs() < 1e-9);
    }

    #[test]
    fn memory_stall_is_blamed_on_the_load_pc() {
        let mut b = KernelBuilder::new("k");
        let x = b.load_pattern(AddrPattern::Coalesced { base: 1 << 32, elem_bytes: 4 });
        let _ = b.fp_add(&[Operand::Reg(x)]);
        let k = b.finish(vec![]);
        let launch = LaunchConfig::new(32, 1);
        let trace = trace_kernel(&k, launch).unwrap();
        let mem = simulate_hierarchy(&trace, &cfg());
        let p = build_profile(&trace.warps[0], &cfg(), &mem);

        let load_pc = trace.warps[0]
            .insts
            .iter()
            .find(|i| i.kind.is_global_load())
            .map(|i| i.pc)
            .unwrap();
        // The address-arithmetic chain stalls first (IntAlu latency); the
        // memory-caused interval is the one blamed on the load.
        let stall_iv = p
            .intervals
            .iter()
            .find(|iv| matches!(iv.cause, StallCause::Memory { .. }))
            .expect("has a memory stall");
        assert_eq!(stall_iv.cause, StallCause::Memory { pc: load_pc });
        // A cold load resolves at the L2-miss AMAT (420): stall = 420.
        assert!(
            (stall_iv.stall_cycles - 420.0).abs() < 2.0,
            "stall {} should be ~420",
            stall_iv.stall_cycles
        );
    }

    #[test]
    fn unrelated_instructions_between_producer_and_consumer_shrink_the_stall() {
        let mut b = KernelBuilder::new("k");
        let a = b.fp_add(&[Operand::Imm(1)]); // done at 25
        for i in 0..10 {
            let _ = b.alu(ValueOp::Add, &[Operand::Imm(i)]); // fill 10 slots
        }
        let _ = b.alu(ValueOp::Add, &[Operand::Reg(a)]);
        let k = b.finish(vec![]);
        let t = trace_warp(&k, LaunchConfig::new(32, 1), WarpId::new(0)).unwrap();
        let p = build_profile(&t, &cfg(), &empty_mem(&cfg()));
        assert_eq!(p.intervals.len(), 2);
        assert_eq!(p.intervals[0].insts, 11);
        // Producer done at 0+25; consumer would issue at 11; stall = 25+1-11 = 15? No:
        // issue(consumer) = max(11, 25+1) = 26 → stall = 26 - 11 = 15.
        assert!((p.intervals[0].stall_cycles - 15.0).abs() < 1e-9);
    }

    #[test]
    fn interval_memory_statistics_accumulate() {
        let mut b = KernelBuilder::new("k");
        let x = b.load_pattern(AddrPattern::Strided { base: 1 << 32, stride_bytes: 128 });
        b.store_pattern(
            AddrPattern::Strided { base: 1 << 33, stride_bytes: 128 },
            Operand::Reg(x),
        );
        let _ = b.fp_add(&[Operand::Reg(x)]);
        let k = b.finish(vec![]);
        let launch = LaunchConfig::new(32, 1);
        let trace = trace_kernel(&k, launch).unwrap();
        let mem = simulate_hierarchy(&trace, &cfg());
        let p = build_profile(&trace.warps[0], &cfg(), &mem);

        let loads: u64 = p.intervals.iter().map(|i| i.load_insts).sum();
        let stores: u64 = p.intervals.iter().map(|i| i.store_insts).sum();
        let reqs: f64 = p.intervals.iter().map(|i| i.mem_reqs).sum();
        let dram: f64 = p.intervals.iter().map(|i| i.dram_reqs).sum();
        assert_eq!(loads, 1);
        assert_eq!(stores, 1);
        assert!((reqs - 64.0).abs() < 1e-9, "32 load + 32 store requests, got {reqs}");
        // Cold divergent load: all 32 requests reach DRAM; all 32 store
        // requests are write-through → 64 DRAM requests.
        assert!((dram - 64.0).abs() < 1e-9, "got {dram}");
    }

    #[test]
    fn instruction_conservation() {
        let w = gpumech_trace::workloads::by_name("cfd_compute_flux").unwrap().with_blocks(2);
        let trace = w.trace().unwrap();
        let mem = simulate_hierarchy(&trace, &cfg());
        for wt in &trace.warps {
            let p = build_profile(wt, &cfg(), &mem);
            assert_eq!(p.total_insts() as usize, wt.len(), "every instruction in an interval");
            assert!(p.intervals.iter().all(|iv| iv.insts > 0), "no empty intervals");
            assert_eq!(p.intervals.last().unwrap().cause, StallCause::None);
        }
    }
}
