//! Interval profiles and the interval construction algorithm
//! (Section III of the paper).

mod algorithm;
mod profile;
mod summary;

pub use algorithm::build_profile;
pub use profile::{Interval, IntervalProfile, StallCause};
pub use summary::{summarize_population, PopulationSummary, ProfileSummary};
