//! The interval profile of a warp (Equation 2) and the scalar statistics
//! derived from it (Equations 5, 9, 13).

use serde::{Deserialize, Serialize};

/// What ended an interval — the instruction the stalled consumer waited on.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum StallCause {
    /// No stall (the final interval of a warp).
    #[default]
    None,
    /// Dependence on a compute-class instruction.
    Compute,
    /// Dependence on a global load at the given PC; its miss-event
    /// distribution splits the stall across L1/L2/DRAM CPI-stack
    /// categories.
    Memory {
        /// PC of the producing load.
        pc: u32,
    },
}

/// One interval: a run of `insts` back-to-back issues followed by
/// `stall_cycles` of silence (Figure 6).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Interval {
    /// Instructions issued in the interval (`#interval_insts_i`).
    pub insts: u64,
    /// Stall cycles after the last issue (`stall_cycles_i`); fractional
    /// because memory latencies are AMATs.
    pub stall_cycles: f64,
    /// The instruction class blamed for the stall.
    pub cause: StallCause,
    /// Global load instructions issued in this interval.
    pub load_insts: u64,
    /// Global store instructions issued in this interval.
    pub store_insts: u64,
    /// Expected coalesced requests from this interval (loads + stores).
    pub mem_reqs: f64,
    /// Expected MSHR-allocating requests (load requests that miss L1) —
    /// `#warp_mem_reqs_i` of Equation 18.
    pub mshr_reqs: f64,
    /// Expected DRAM-reaching requests (load L2 misses + all store
    /// traffic) — the arrival stream of Equation 23.
    pub dram_reqs: f64,
    /// Expected number of load executions in this interval whose miss
    /// event leaves the L1 (they occupy MSHRs and feel MSHR queueing).
    pub mshr_load_events: f64,
    /// Expected number of load executions whose miss event reaches DRAM
    /// (they sit in the DRAM queue and feel bandwidth queueing).
    pub dram_load_events: f64,
    /// Special-function-unit instructions issued in this interval (feeds
    /// the SFU-contention extension).
    pub sfu_insts: u64,
}

impl Interval {
    /// Total cycles the interval occupies at the given issue rate.
    #[must_use]
    pub fn cycles(&self, issue_rate: f64) -> f64 {
        self.insts as f64 / issue_rate + self.stall_cycles
    }

    /// A compute-only interval (no memory traffic) — convenient for tests
    /// and synthetic profiles.
    #[must_use]
    pub fn compute(insts: u64, stall_cycles: f64, cause: StallCause) -> Self {
        Self { insts, stall_cycles, cause, ..Self::default() }
    }
}

/// A warp's interval profile (Equation 2) plus the issue rate it was built
/// under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalProfile {
    /// The intervals in execution order.
    pub intervals: Vec<Interval>,
    /// Warp-instructions issued per cycle when unstalled (Table I: 1.0).
    pub issue_rate: f64,
}

impl IntervalProfile {
    /// Total instructions across all intervals.
    #[must_use]
    pub fn total_insts(&self) -> u64 {
        self.intervals.iter().map(|i| i.insts).sum()
    }

    /// Total stall cycles across all intervals.
    #[must_use]
    pub fn total_stall_cycles(&self) -> f64 {
        self.intervals.iter().map(|i| i.stall_cycles).sum()
    }

    /// Single-warp execution time:
    /// `Σ (insts_i / issue_rate + stall_cycles_i)`.
    #[must_use]
    pub fn total_cycles(&self) -> f64 {
        self.total_insts() as f64 / self.issue_rate + self.total_stall_cycles()
    }

    /// Warp performance (Equation 5): single-warp IPC.
    #[must_use]
    pub fn warp_perf(&self) -> f64 {
        let c = self.total_cycles();
        if c == 0.0 { 0.0 } else { self.total_insts() as f64 / c }
    }

    /// Issue probability (Equation 9): the probability a lone warp can
    /// issue in a given cycle. Identical in form to [`Self::warp_perf`];
    /// kept separate to mirror the paper.
    #[must_use]
    pub fn issue_prob(&self) -> f64 {
        self.warp_perf()
    }

    /// Mean instructions per interval (Equation 13).
    #[must_use]
    pub fn avg_interval_insts(&self) -> f64 {
        if self.intervals.is_empty() {
            0.0
        } else {
            self.total_insts() as f64 / self.intervals.len() as f64
        }
    }

    /// Single-warp CPI (`1 / warp_perf`).
    #[must_use]
    pub fn single_warp_cpi(&self) -> f64 {
        let p = self.warp_perf();
        if p == 0.0 { 0.0 } else { 1.0 / p }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn iv(insts: u64, stall: f64) -> Interval {
        Interval {
            insts,
            stall_cycles: stall,
            cause: if stall > 0.0 { StallCause::Compute } else { StallCause::None },
            load_insts: 0,
            store_insts: 0,
            mem_reqs: 0.0,
            mshr_reqs: 0.0,
            dram_reqs: 0.0,
            ..Interval::default()
        }
    }

    /// The Figure 2 example: two intervals (1 inst + 10 stalls, 4 insts +
    /// 10 stalls) at 1 inst/cycle.
    fn figure2() -> IntervalProfile {
        IntervalProfile { intervals: vec![iv(1, 10.0), iv(4, 10.0)], issue_rate: 1.0 }
    }

    #[test]
    fn totals_match_figure2() {
        let p = figure2();
        assert_eq!(p.total_insts(), 5);
        assert!((p.total_stall_cycles() - 20.0).abs() < 1e-12);
        assert!((p.total_cycles() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn warp_perf_is_ipc_of_a_lone_warp() {
        let p = figure2();
        assert!((p.warp_perf() - 0.2).abs() < 1e-12);
        assert!((p.single_warp_cpi() - 5.0).abs() < 1e-12);
        assert!((p.issue_prob() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn avg_interval_insts_eq13() {
        let p = figure2();
        assert!((p.avg_interval_insts() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn interval_cycles_scale_with_issue_rate() {
        let i = iv(4, 10.0);
        assert!((i.cycles(1.0) - 14.0).abs() < 1e-12);
        assert!((i.cycles(2.0) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_safe() {
        let p = IntervalProfile { intervals: vec![], issue_rate: 1.0 };
        assert_eq!(p.total_insts(), 0);
        assert_eq!(p.warp_perf(), 0.0);
        assert_eq!(p.single_warp_cpi(), 0.0);
        assert_eq!(p.avg_interval_insts(), 0.0);
    }
}
