//! Human-oriented summaries of interval profiles — the inspection surface
//! behind the CLI's `profile` subcommand and useful when debugging why a
//! kernel models poorly.

use serde::{Deserialize, Serialize};

use super::profile::{IntervalProfile, StallCause};

/// Aggregate statistics of one warp's interval profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileSummary {
    /// Number of intervals.
    pub num_intervals: usize,
    /// Total instructions.
    pub total_insts: u64,
    /// Total stall cycles.
    pub total_stall_cycles: f64,
    /// Single-warp IPC (Equation 5).
    pub warp_perf: f64,
    /// Mean instructions per interval (Equation 13).
    pub avg_interval_insts: f64,
    /// Mean stall length over stalling intervals.
    pub avg_stall_cycles: f64,
    /// Stall cycles blamed on compute dependencies.
    pub compute_stall_cycles: f64,
    /// Stall cycles blamed on memory loads.
    pub memory_stall_cycles: f64,
    /// Global load instructions.
    pub load_insts: u64,
    /// Global store instructions.
    pub store_insts: u64,
    /// Coalesced requests per global memory instruction (divergence degree).
    pub divergence_degree: f64,
    /// MSHR-allocating requests per instruction.
    pub mshr_reqs_per_inst: f64,
    /// DRAM-reaching requests per instruction.
    pub dram_reqs_per_inst: f64,
}

impl IntervalProfile {
    /// Computes the profile's summary statistics.
    #[must_use]
    pub fn summary(&self) -> ProfileSummary {
        let total_insts = self.total_insts();
        let stalling: Vec<&super::profile::Interval> =
            self.intervals.iter().filter(|iv| iv.stall_cycles > 0.0).collect();
        let (mut compute, mut memory) = (0.0f64, 0.0f64);
        for iv in &self.intervals {
            match iv.cause {
                StallCause::Compute => compute += iv.stall_cycles,
                StallCause::Memory { .. } => memory += iv.stall_cycles,
                StallCause::None => {}
            }
        }
        let loads: u64 = self.intervals.iter().map(|iv| iv.load_insts).sum();
        let stores: u64 = self.intervals.iter().map(|iv| iv.store_insts).sum();
        let reqs: f64 = self.intervals.iter().map(|iv| iv.mem_reqs).sum();
        let mem_insts = (loads + stores) as f64;
        ProfileSummary {
            num_intervals: self.intervals.len(),
            total_insts,
            total_stall_cycles: self.total_stall_cycles(),
            warp_perf: self.warp_perf(),
            avg_interval_insts: self.avg_interval_insts(),
            avg_stall_cycles: if stalling.is_empty() {
                0.0
            } else {
                stalling.iter().map(|iv| iv.stall_cycles).sum::<f64>() / stalling.len() as f64
            },
            compute_stall_cycles: compute,
            memory_stall_cycles: memory,
            load_insts: loads,
            store_insts: stores,
            divergence_degree: if mem_insts == 0.0 { 0.0 } else { reqs / mem_insts },
            mshr_reqs_per_inst: if total_insts == 0 {
                0.0
            } else {
                self.intervals.iter().map(|iv| iv.mshr_reqs).sum::<f64>() / total_insts as f64
            },
            dram_reqs_per_inst: if total_insts == 0 {
                0.0
            } else {
                self.intervals.iter().map(|iv| iv.dram_reqs).sum::<f64>() / total_insts as f64
            },
        }
    }
}

/// Population-level statistics over every warp of a kernel — the input the
/// clustering stage sees, summarized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PopulationSummary {
    /// Number of warps.
    pub num_warps: usize,
    /// Minimum / mean / maximum single-warp IPC.
    pub perf_min: f64,
    /// Mean single-warp IPC.
    pub perf_mean: f64,
    /// Maximum single-warp IPC.
    pub perf_max: f64,
    /// Coefficient of variation of warp performance (the heterogeneity the
    /// representative-warp selection has to cope with).
    pub perf_cv: f64,
    /// Minimum / mean / maximum instruction count.
    pub insts_min: u64,
    /// Mean instruction count.
    pub insts_mean: f64,
    /// Maximum instruction count.
    pub insts_max: u64,
}

/// Summarizes a warp population.
///
/// # Panics
///
/// Panics if `profiles` is empty.
#[must_use]
pub fn summarize_population(profiles: &[IntervalProfile]) -> PopulationSummary {
    assert!(!profiles.is_empty(), "population must be non-empty");
    let perfs: Vec<f64> = profiles.iter().map(IntervalProfile::warp_perf).collect();
    let insts: Vec<u64> = profiles.iter().map(IntervalProfile::total_insts).collect();
    let n = profiles.len() as f64;
    let perf_mean = perfs.iter().sum::<f64>() / n;
    let var = perfs.iter().map(|p| (p - perf_mean).powi(2)).sum::<f64>() / n;
    PopulationSummary {
        num_warps: profiles.len(),
        perf_min: perfs.iter().copied().fold(f64::INFINITY, f64::min),
        perf_mean,
        perf_max: perfs.iter().copied().fold(0.0, f64::max),
        perf_cv: if perf_mean > 0.0 { var.sqrt() / perf_mean } else { 0.0 },
        insts_min: insts.iter().copied().min().unwrap_or(0),
        insts_mean: insts.iter().sum::<u64>() as f64 / n,
        insts_max: insts.iter().copied().max().unwrap_or(0),
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::Interval;

    fn profile(pairs: &[(u64, f64, StallCause)]) -> IntervalProfile {
        IntervalProfile {
            intervals: pairs
                .iter()
                .map(|&(insts, stall, cause)| Interval {
                    insts,
                    stall_cycles: stall,
                    cause,
                    load_insts: 1,
                    mem_reqs: 4.0,
                    mshr_reqs: 2.0,
                    dram_reqs: 1.0,
                    ..Interval::default()
                })
                .collect(),
            issue_rate: 1.0,
        }
    }

    #[test]
    fn summary_partitions_stalls_by_cause() {
        let p = profile(&[
            (5, 20.0, StallCause::Compute),
            (5, 80.0, StallCause::Memory { pc: 3 }),
            (5, 0.0, StallCause::None),
        ]);
        let s = p.summary();
        assert_eq!(s.num_intervals, 3);
        assert_eq!(s.total_insts, 15);
        assert!((s.compute_stall_cycles - 20.0).abs() < 1e-12);
        assert!((s.memory_stall_cycles - 80.0).abs() < 1e-12);
        assert!((s.total_stall_cycles - 100.0).abs() < 1e-12);
        assert!((s.avg_stall_cycles - 50.0).abs() < 1e-12);
        assert_eq!(s.load_insts, 3);
        assert!((s.divergence_degree - 4.0).abs() < 1e-12);
        assert!((s.mshr_reqs_per_inst - 6.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn population_summary_captures_heterogeneity() {
        let fast = profile(&[(10, 0.0, StallCause::None)]);
        let slow = profile(&[(10, 90.0, StallCause::Compute)]);
        let pop = summarize_population(&[fast.clone(), fast, slow]);
        assert_eq!(pop.num_warps, 3);
        assert!((pop.perf_max - 1.0).abs() < 1e-12);
        assert!((pop.perf_min - 0.1).abs() < 1e-12);
        assert!(pop.perf_cv > 0.4, "bimodal population has high CV: {}", pop.perf_cv);
        assert_eq!(pop.insts_min, 10);
        assert_eq!(pop.insts_max, 10);
    }

    #[test]
    fn homogeneous_population_has_zero_cv() {
        let p = profile(&[(10, 10.0, StallCause::Compute)]);
        let pop = summarize_population(&[p.clone(), p]);
        assert!(pop.perf_cv < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_population_panics() {
        let _ = summarize_population(&[]);
    }
}
