//! The GPUMech performance model — interval analysis for GPU architectures.
//!
//! This crate implements the paper's contribution end to end:
//!
//! 1. **Interval algorithm** ([`interval`]) — walks a warp's dynamic trace
//!    under an in-order, 1-instruction/cycle issue model and builds its
//!    *interval profile*: runs of back-to-back issues separated by stall
//!    periods, each stall attributed to the compute or memory instruction
//!    that caused it (Section III-B, Equations 2 and 4).
//! 2. **Representative-warp selection** ([`cluster`]) — k-means (k = 2) over
//!    per-warp `(performance, instruction-count)` feature vectors; the warp
//!    nearest the centre of the larger cluster represents the kernel
//!    (Section III-C, Equations 5-6, Figure 7).
//! 3. **Multithreading model** ([`multiwarp`]) — scales the representative
//!    warp to N resident warps by counting *non-overlapped instructions*
//!    under round-robin or greedy-then-oldest scheduling (Section IV-A,
//!    Equations 7-16).
//! 4. **Resource-contention model** ([`contention`]) — queueing delays from
//!    the finite MSHR file and the bandwidth-limited DRAM channel under
//!    memory divergence (Section IV-B, Equations 17-23).
//! 5. **CPI stacks** ([`cpistack`]) — the per-category cycle breakdown of
//!    Section VII / Table III.
//! 6. **Baselines** ([`baselines`]) — the naive interval extension
//!    (Equation 1) and the Chen-Aamodt Markov-chain model the paper
//!    compares against (Section VIII-A).
//!
//! The one-stop entry point is a [`PredictionRequest`] executed by
//! [`Gpumech::run`]:
//!
//! ```
//! use gpumech_core::{Gpumech, PredictionRequest};
//! use gpumech_isa::SimConfig;
//! use gpumech_trace::workloads;
//!
//! let w = workloads::by_name("cfd_step_factor").ok_or("missing workload")?.with_blocks(16);
//! let report = Gpumech::new(SimConfig::default())
//!     .run(&PredictionRequest::from_workload(&w))?;
//! println!("CPI = {:.2}, of which DRAM queue = {:.2}",
//!          report.cpi.total(), report.cpi.queue);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod baselines;
pub mod cluster;
pub mod contention;
pub mod cpistack;
pub mod interval;
pub mod model;
pub mod multiwarp;
pub mod request;

pub use cluster::{feature_vectors, kmeans2, kmeans2_cancellable, select_representative, SelectionMethod};
pub use contention::{contention_cpi, ContentionOptions, ContentionResult};
pub use cpistack::{CpiStack, StallCategory};
pub use interval::{build_profile, summarize_population, Interval, IntervalProfile, PopulationSummary, ProfileSummary, StallCause};
pub use model::{Analysis, Gpumech, Model, ModelError, Prediction};
pub use multiwarp::{multithreading_cpi, MultithreadingResult};
pub use request::{PredictionRequest, Weighting};

// Re-export the vocabulary types callers need alongside the model.
pub use gpumech_isa::SchedulingPolicy;
