//! The end-to-end GPUMech pipeline (Figure 5): input collection →
//! per-warp interval profiles → representative-warp selection → multi-warp
//! model → contention model → CPI stack.

use std::convert::Infallible;
use std::fmt;

use std::time::Instant;

use gpumech_isa::{ConfigError, SchedulingPolicy, SimConfig};
use gpumech_mem::{simulate_hierarchy_cancellable, MemStats};
use gpumech_obs::{CancelToken, Interrupt, PipelineReport, StageReport};
use gpumech_trace::{KernelTrace, TraceError, WarpTrace, Workload};
use serde::{Deserialize, Serialize};

use crate::baselines::{markov_chain_cpi, naive_interval_cpi};
use crate::cluster::{select_representative, SelectionMethod};
use crate::contention::{contention_cpi, ContentionResult};
use crate::cpistack::CpiStack;
use crate::interval::{build_profile, IntervalProfile};
use crate::multiwarp::{multithreading_cpi, MultithreadingResult};
use crate::request::{PredictionRequest, Source, Weighting};

/// The evaluated models of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Model {
    /// Optimistic overlap (Equation 1).
    NaiveInterval,
    /// Chen-Aamodt Markov-chain model (Section VIII-A).
    MarkovChain,
    /// Multithreading model only (Section IV-A).
    Mt,
    /// Multithreading + MSHR contention (Section IV-B1).
    MtMshr,
    /// Multithreading + MSHR + DRAM bandwidth — full GPUMech.
    MtMshrBand,
}

impl Model {
    /// All models in Table II order.
    pub const ALL: [Model; 5] =
        [Model::NaiveInterval, Model::MarkovChain, Model::Mt, Model::MtMshr, Model::MtMshrBand];
}

impl fmt::Display for Model {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Model::NaiveInterval => "Naive_Interval",
            Model::MarkovChain => "Markov_Chain",
            Model::Mt => "MT",
            Model::MtMshr => "MT_MSHR",
            Model::MtMshrBand => "MT_MSHR_BAND",
        };
        f.write_str(s)
    }
}

/// Error produced by the modeling pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// Functional tracing failed.
    Trace(TraceError),
    /// The machine configuration is inconsistent.
    InvalidConfig(ConfigError),
    /// The kernel produced no instructions to model.
    EmptyKernel,
    /// A [`PredictionRequest`] combined options that contradict each other
    /// (e.g. population weighting without clustering selection, or an
    /// explicit representative outside the analyzed grid).
    InvalidRequest(String),
    /// An execution layer driving the model (worker pool, cache) failed
    /// outside the model proper.
    Execution(String),
    /// The pipeline was interrupted by a [`CancelToken`] (explicit
    /// cancellation or an expired deadline) before the prediction finished.
    ///
    /// [`CancelToken`]: gpumech_obs::CancelToken
    Interrupted(Interrupt),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::Trace(e) => write!(f, "trace generation failed: {e}"),
            ModelError::InvalidConfig(e) => write!(f, "invalid configuration: {e}"),
            ModelError::EmptyKernel => f.write_str("kernel produced no instructions"),
            ModelError::InvalidRequest(why) => write!(f, "invalid prediction request: {why}"),
            ModelError::Execution(why) => write!(f, "execution failed: {why}"),
            ModelError::Interrupted(why) => write!(f, "pipeline interrupted: {why}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Trace(e) => Some(e),
            ModelError::InvalidConfig(e) => Some(e),
            ModelError::EmptyKernel
            | ModelError::InvalidRequest(_)
            | ModelError::Execution(_)
            | ModelError::Interrupted(_) => None,
        }
    }
}

impl From<TraceError> for ModelError {
    fn from(e: TraceError) -> Self {
        ModelError::Trace(e)
    }
}

/// The reusable intermediate of the pipeline: cache statistics and per-warp
/// interval profiles. Computing it once and predicting many times is how
/// the harnesses evaluate all five models (and both policies) per kernel —
/// the same reuse the paper exploits when exploring hardware
/// configurations (Section VI-D).
///
/// Serializable so execution layers can persist analyses in a
/// content-addressed profile cache and reuse them across processes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Analysis {
    /// Per-PC cache statistics of the functional hierarchy simulation.
    pub mem: MemStats,
    /// Interval profile of every warp in the grid.
    pub profiles: Vec<IntervalProfile>,
    /// Warps resident per core under the analyzed configuration.
    pub effective_warps: usize,
    /// Per-stage wall time + key counters of this analysis run. Stage
    /// equality ignores wall time, so [`Analysis`] comparisons stay
    /// meaningful across runs.
    pub stages: Vec<StageReport>,
}

/// The model's output for one kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// Which Table II model produced this prediction.
    pub model: Model,
    /// Scheduling policy modeled.
    pub policy: SchedulingPolicy,
    /// The CPI stack; [`CpiStack::total`] is the predicted core CPI.
    pub cpi: CpiStack,
    /// Index of the representative warp in the grid.
    pub representative: usize,
    /// Warps modeled per core.
    pub warps_per_core: usize,
    /// Representative warp's single-warp CPI.
    pub single_warp_cpi: f64,
    /// Multithreading-model detail (Equations 7-16).
    pub multithreading: MultithreadingResult,
    /// Contention-model detail (zeroed for models that exclude it).
    pub contention: ContentionResult,
    /// Human-readable degradation notices. Empty for a clean prediction;
    /// non-empty when the pipeline downgraded itself (e.g. k-means
    /// degenerated and a population-weighted selection was used instead).
    pub warnings: Vec<String>,
    /// Per-stage wall time + key counters for the pipeline run that
    /// produced this prediction. Absent (empty) in predictions serialized
    /// before this field existed.
    #[serde(default)]
    pub report: PipelineReport,
}

impl Prediction {
    /// Predicted core CPI (`CPI_final` of Equation 3).
    #[must_use]
    pub fn cpi_total(&self) -> f64 {
        self.cpi.total()
    }

    /// Predicted core IPC.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        let c = self.cpi_total();
        if c == 0.0 { 0.0 } else { 1.0 / c }
    }
}

fn zero_contention(n: usize) -> ContentionResult {
    ContentionResult {
        cpi: 0.0,
        cpi_mshr: 0.0,
        cpi_queue: 0.0,
        cpi_sfu: 0.0,
        mshr_delays: vec![0.0; n],
        bandwidth_delays: vec![0.0; n],
    }
}

/// The GPUMech model, configured for one machine (Table I by default).
#[derive(Debug, Clone)]
pub struct Gpumech {
    cfg: SimConfig,
}

impl Gpumech {
    /// Creates a model for the given machine configuration.
    #[must_use]
    pub fn new(cfg: SimConfig) -> Self {
        Self { cfg }
    }

    /// The machine configuration being modeled.
    #[must_use]
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Executes a [`PredictionRequest`] — the single supported entry point
    /// into the pipeline.
    ///
    /// The request's source decides how much of the pipeline runs: a
    /// workload is traced first, a trace is analyzed first, and a
    /// precomputed [`Analysis`] goes straight to representative selection
    /// and the multi-warp + contention models.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`], [`ModelError::Trace`], or
    /// [`ModelError::EmptyKernel`] from the analysis stages, and
    /// [`ModelError::InvalidRequest`] when the request's options
    /// contradict each other: population weighting combined with a
    /// non-clustering selection, population weighting of an explicit
    /// profile, or a profile index outside the analyzed grid.
    pub fn run(&self, request: &PredictionRequest<'_>) -> Result<Prediction, ModelError> {
        request.cancel.check().map_err(ModelError::Interrupted)?;
        if request.weighting == Weighting::PopulationWeighted {
            if request.selection != SelectionMethod::Clustering {
                return Err(ModelError::InvalidRequest(format!(
                    "population weighting requires clustering selection, not {:?}",
                    request.selection
                )));
            }
            if matches!(request.source, Source::Profile { .. }) {
                return Err(ModelError::InvalidRequest(
                    "population weighting contradicts an explicit representative profile"
                        .to_owned(),
                ));
            }
        }
        let cancel = &request.cancel;
        let owned: Analysis;
        let analysis: &Analysis = match &request.source {
            Source::Workload(w) => {
                let trace = w.trace_cancellable(cancel)?;
                owned = self.analyze_cancellable(&trace, cancel)?;
                &owned
            }
            Source::Trace(t) => {
                owned = self.analyze_cancellable(t, cancel)?;
                &owned
            }
            Source::Analysis(a) => a,
            Source::Profile { analysis, .. } => analysis,
        };
        cancel.check().map_err(ModelError::Interrupted)?;
        if let Source::Profile { rep, .. } = request.source {
            if rep >= analysis.profiles.len() {
                return Err(ModelError::InvalidRequest(format!(
                    "representative {rep} out of range for an analysis of {} warps",
                    analysis.profiles.len()
                )));
            }
            return Ok(self.profile_prediction(analysis, rep, request.policy, request.model));
        }
        let check = &|| cancel.check();
        if request.weighting == Weighting::PopulationWeighted {
            return self
                .weighted_prediction_impl(analysis, request.policy, request.model, check)
                .map_err(ModelError::Interrupted);
        }
        self.selected_prediction_impl(analysis, request.policy, request.model, request.selection, check)
            .map_err(ModelError::Interrupted)
    }

    /// Full GPUMech prediction (MT_MSHR_BAND, clustering selection) for a
    /// workload.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the configuration is invalid, tracing
    /// fails, or the kernel is empty.
    #[deprecated(since = "0.2.0", note = "build a `PredictionRequest` and call `Gpumech::run`")]
    pub fn predict(
        &self,
        workload: &Workload,
        policy: SchedulingPolicy,
    ) -> Result<Prediction, ModelError> {
        let trace = workload.trace()?;
        let analysis = self.analyze(&trace)?;
        Ok(self.selected_prediction(
            &analysis,
            policy,
            Model::MtMshrBand,
            SelectionMethod::Clustering,
        ))
    }

    /// Prediction for an explicit Table II model and selection method.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError`] if the configuration is invalid or the
    /// kernel is empty.
    #[deprecated(since = "0.2.0", note = "build a `PredictionRequest` and call `Gpumech::run`")]
    pub fn predict_trace(
        &self,
        trace: &KernelTrace,
        policy: SchedulingPolicy,
        model: Model,
        selection: SelectionMethod,
    ) -> Result<Prediction, ModelError> {
        let analysis = self.analyze(trace)?;
        Ok(self.selected_prediction(&analysis, policy, model, selection))
    }

    /// Runs the input collector (functional cache simulation) and the
    /// interval algorithm for every warp — the per-kernel one-time cost.
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`] or [`ModelError::EmptyKernel`].
    pub fn analyze(&self, trace: &KernelTrace) -> Result<Analysis, ModelError> {
        self.analyze_with(trace, |warps, cfg, mem| {
            Ok(warps.iter().map(|w| build_profile(w, cfg, mem)).collect())
        })
    }

    /// [`Gpumech::analyze`] under a [`CancelToken`]: the cache simulation
    /// polls the token as it replays and the interval profiler checks it
    /// between warps, so an expired deadline or explicit cancellation
    /// aborts the analysis within a bounded amount of work.
    ///
    /// # Errors
    ///
    /// Same as [`Gpumech::analyze`], plus [`ModelError::Interrupted`] once
    /// `cancel` fires.
    pub fn analyze_cancellable(
        &self,
        trace: &KernelTrace,
        cancel: &CancelToken,
    ) -> Result<Analysis, ModelError> {
        self.analyze_with_cancel(
            trace,
            |warps, cfg, mem| {
                warps
                    .iter()
                    .map(|w| {
                        cancel.check().map_err(ModelError::Interrupted)?;
                        Ok(build_profile(w, cfg, mem))
                    })
                    .collect()
            },
            cancel,
        )
    }

    /// [`Gpumech::analyze`] with a pluggable per-warp profiler — the seam
    /// that lets execution layers parallelize interval-profile
    /// construction without this crate depending on them.
    ///
    /// `profiler` receives every warp of the validated trace plus the
    /// shared cache statistics and must return one [`IntervalProfile`]
    /// per warp, in warp order. The sequential [`Gpumech::analyze`] is
    /// exactly this method with a serial `build_profile` loop, so a
    /// profiler that computes the same profiles (in any execution order)
    /// yields a bit-identical [`Analysis`].
    ///
    /// # Errors
    ///
    /// Returns [`ModelError::InvalidConfig`], [`ModelError::Trace`], or
    /// [`ModelError::EmptyKernel`] for invalid inputs; any error from
    /// `profiler` is propagated, and a profiler returning the wrong
    /// number of profiles surfaces as [`ModelError::Execution`].
    pub fn analyze_with<F>(&self, trace: &KernelTrace, profiler: F) -> Result<Analysis, ModelError>
    where
        F: FnOnce(&[WarpTrace], &SimConfig, &MemStats) -> Result<Vec<IntervalProfile>, ModelError>,
    {
        self.analyze_with_cancel(trace, profiler, &CancelToken::never())
    }

    /// [`Gpumech::analyze_with`] under a [`CancelToken`]: the cache
    /// simulation polls `cancel` as it replays; `profiler` is responsible
    /// for its own polling (the sequential profiler checks between warps).
    ///
    /// # Errors
    ///
    /// Same as [`Gpumech::analyze_with`], plus [`ModelError::Interrupted`]
    /// once `cancel` fires.
    pub fn analyze_with_cancel<F>(
        &self,
        trace: &KernelTrace,
        profiler: F,
        cancel: &CancelToken,
    ) -> Result<Analysis, ModelError>
    where
        F: FnOnce(&[WarpTrace], &SimConfig, &MemStats) -> Result<Vec<IntervalProfile>, ModelError>,
    {
        let _span = gpumech_obs::span!(
            "core.pipeline.analyze",
            name = trace.name.as_str(),
            warps = trace.warps.len(),
        );
        self.cfg.validate().map_err(ModelError::InvalidConfig)?;
        trace.validate().map_err(ModelError::Trace)?;
        if trace.total_insts() == 0 {
            return Err(ModelError::EmptyKernel);
        }
        let mut stages = Vec::new();

        let t0 = Instant::now();
        let mem = simulate_hierarchy_cancellable(trace, &self.cfg, cancel)
            .map_err(ModelError::Interrupted)?;
        let mut stage = StageReport::new("core.pipeline.cachesim");
        stage.wall_ns = elapsed_ns(t0);
        let (mem_insts, dram_reqs) = mem
            .load_pcs()
            .chain(mem.store_pcs())
            .filter_map(|pc| mem.pc_stats(pc))
            .fold((0u64, 0u64), |(i, d), s| (i + s.insts, d + s.dram_reqs));
        stage.counter("mem_insts", mem_insts);
        stage.counter("dram_reqs", dram_reqs);
        stages.push(stage);

        let t0 = Instant::now();
        let profiles: Vec<IntervalProfile> = {
            let _span = gpumech_obs::span!("core.pipeline.intervals", warps = trace.warps.len());
            profiler(&trace.warps, &self.cfg, &mem)?
        };
        if profiles.len() != trace.warps.len() {
            return Err(ModelError::Execution(format!(
                "profiler returned {} profiles for {} warps",
                profiles.len(),
                trace.warps.len()
            )));
        }
        let mut stage = StageReport::new("core.pipeline.intervals");
        stage.wall_ns = elapsed_ns(t0);
        stage.counter("profiles", profiles.len() as u64);
        stage.counter(
            "intervals",
            profiles.iter().map(|p| p.intervals.len() as u64).sum::<u64>(),
        );
        stages.push(stage);

        let effective_warps = (trace.launch.blocks_per_core(self.cfg.max_warps_per_core)
            * trace.launch.warps_per_block())
        .min(trace.launch.total_warps());
        Ok(Analysis { mem, profiles, effective_warps, stages })
    }

    /// Predicts from a precomputed [`Analysis`] — cheap enough to call for
    /// every (model, policy) pair.
    ///
    /// # Panics
    ///
    /// Panics if the analysis contains no warps (cannot be produced by
    /// [`Gpumech::analyze`]).
    #[deprecated(since = "0.2.0", note = "build a `PredictionRequest` and call `Gpumech::run`")]
    #[must_use]
    pub fn predict_from_analysis(
        &self,
        analysis: &Analysis,
        policy: SchedulingPolicy,
        model: Model,
        selection: SelectionMethod,
    ) -> Prediction {
        self.selected_prediction(analysis, policy, model, selection)
    }

    /// Infallible [`Gpumech::selected_prediction_impl`] for the deprecated
    /// `predict_from_analysis` shim (no cancellation).
    fn selected_prediction(
        &self,
        analysis: &Analysis,
        policy: SchedulingPolicy,
        model: Model,
        selection: SelectionMethod,
    ) -> Prediction {
        match self.selected_prediction_impl(analysis, policy, model, selection, &|| {
            Ok::<(), Infallible>(())
        }) {
            Ok(p) => p,
            Err(never) => match never {},
        }
    }

    /// Shared body of [`Gpumech::run`]'s analysis path and the deprecated
    /// `predict_from_analysis` shim; `check` is polled by the k-means loop.
    fn selected_prediction_impl<E>(
        &self,
        analysis: &Analysis,
        policy: SchedulingPolicy,
        model: Model,
        selection: SelectionMethod,
        check: &dyn Fn() -> Result<(), E>,
    ) -> Result<Prediction, E> {
        if selection == SelectionMethod::Clustering {
            let t0 = Instant::now();
            let feats = crate::cluster::feature_vectors(&analysis.profiles);
            let km = crate::cluster::kmeans2_checked(&feats, check)?;
            let select = select_stage(&km, feats.len(), elapsed_ns(t0));
            if km.degenerate {
                // Graceful degradation: the cluster structure is unreliable
                // (non-finite features or Lloyd non-convergence), so blend
                // by population instead of trusting one representative.
                let mut p = self.weighted_prediction_impl(analysis, policy, model, check)?;
                p.warnings.push(
                    "k-means clustering degenerated (non-finite features or no convergence); \
                     downgraded to population-weighted cluster selection"
                        .to_owned(),
                );
                return Ok(p);
            }
            let mut p = self.profile_prediction(analysis, km.representative, policy, model);
            insert_before_predict(&mut p.report, select);
            return Ok(p);
        }
        let rep = select_representative(&analysis.profiles, selection);
        Ok(self.profile_prediction(analysis, rep, policy, model))
    }

    /// Runs the multi-warp + contention models for one explicit warp's
    /// profile (the building block of both the standard single-
    /// representative prediction and the weighted-clusters extension).
    ///
    /// # Panics
    ///
    /// Panics if `rep` is out of range for the analysis.
    #[deprecated(since = "0.2.0", note = "build a `PredictionRequest` and call `Gpumech::run`")]
    #[must_use]
    pub fn predict_profile(
        &self,
        analysis: &Analysis,
        rep: usize,
        policy: SchedulingPolicy,
        model: Model,
    ) -> Prediction {
        self.profile_prediction(analysis, rep, policy, model)
    }

    /// Shared body of [`Gpumech::run`]'s explicit-profile path and the
    /// deprecated `predict_profile` shim.
    fn profile_prediction(
        &self,
        analysis: &Analysis,
        rep: usize,
        policy: SchedulingPolicy,
        model: Model,
    ) -> Prediction {
        let _span = gpumech_obs::span!(
            "core.pipeline.predict",
            representative = rep,
            warps = analysis.effective_warps,
        );
        let t0 = Instant::now();
        let profile = &analysis.profiles[rep];
        let warps = analysis.effective_warps.max(1);
        let n_intervals = profile.intervals.len();

        let mt = multithreading_cpi(profile, warps, policy);
        let (mt, rc) = match model {
            Model::NaiveInterval => {
                let cpi = naive_interval_cpi(profile, warps);
                (
                    MultithreadingResult {
                        cpi,
                        total_nonoverlapped: 0.0,
                        per_interval: vec![0.0; n_intervals],
                        num_warps: warps,
                    },
                    zero_contention(n_intervals),
                )
            }
            Model::MarkovChain => {
                let cpi = markov_chain_cpi(profile, warps);
                (
                    MultithreadingResult {
                        cpi,
                        total_nonoverlapped: 0.0,
                        per_interval: vec![0.0; n_intervals],
                        num_warps: warps,
                    },
                    zero_contention(n_intervals),
                )
            }
            Model::Mt => (mt, zero_contention(n_intervals)),
            Model::MtMshr => {
                let mut rc =
                    contention_cpi(profile, &self.cfg, warps, analysis.mem.avg_miss_latency(), mt.cpi);
                rc.cpi_queue = 0.0;
                rc.cpi_sfu = 0.0;
                rc.bandwidth_delays = vec![0.0; n_intervals];
                rc.cpi = rc.cpi_mshr;
                (mt, rc)
            }
            Model::MtMshrBand => {
                let rc =
                    contention_cpi(profile, &self.cfg, warps, analysis.mem.avg_miss_latency(), mt.cpi);
                (mt, rc)
            }
        };

        let cpi = CpiStack::multi_warp(profile, &analysis.mem, &mt, &rc);
        let mut report = PipelineReport { stages: analysis.stages.clone() };
        let mut stage = StageReport::new("core.pipeline.predict");
        stage.wall_ns = elapsed_ns(t0);
        stage.counter("intervals", n_intervals as u64);
        stage.counter("warps_per_core", warps as u64);
        stage.counter("representative", rep as u64);
        report.push(stage);
        Prediction {
            model,
            policy,
            cpi,
            representative: rep,
            warps_per_core: warps,
            single_warp_cpi: profile.single_warp_cpi(),
            multithreading: mt,
            contention: rc,
            warnings: Vec::new(),
            report,
        }
    }

    /// **Extension beyond the paper**: population-weighted two-cluster
    /// prediction.
    ///
    /// The paper represents a kernel by the single warp nearest the
    /// *larger* cluster's centroid, which systematically underestimates
    /// kernels whose two warp populations both carry significant runtime
    /// (the residual errors visible in Figure 7). This method predicts
    /// once per cluster — using each cluster's own representative — and
    /// blends the CPI stacks by cluster population. With homogeneous warps
    /// it degenerates to the paper's method.
    ///
    /// Linearity keeps Equation 3 intact: the blended stack still sums to
    /// the blended `CPI_mt + CPI_rc`.
    #[deprecated(
        since = "0.2.0",
        note = "build a `PredictionRequest` with `.population_weighted()` and call `Gpumech::run`"
    )]
    #[must_use]
    pub fn predict_weighted_clusters(
        &self,
        analysis: &Analysis,
        policy: SchedulingPolicy,
        model: Model,
    ) -> Prediction {
        self.weighted_prediction(analysis, policy, model)
    }

    /// Infallible [`Gpumech::weighted_prediction_impl`] for the deprecated
    /// `predict_weighted_clusters` shim (no cancellation).
    fn weighted_prediction(
        &self,
        analysis: &Analysis,
        policy: SchedulingPolicy,
        model: Model,
    ) -> Prediction {
        match self.weighted_prediction_impl(analysis, policy, model, &|| Ok::<(), Infallible>(())) {
            Ok(p) => p,
            Err(never) => match never {},
        }
    }

    /// Shared body of [`Gpumech::run`]'s population-weighted path, the
    /// degenerate-clustering fallback, and the deprecated
    /// `predict_weighted_clusters` shim; `check` is polled by the k-means
    /// loop.
    fn weighted_prediction_impl<E>(
        &self,
        analysis: &Analysis,
        policy: SchedulingPolicy,
        model: Model,
        check: &dyn Fn() -> Result<(), E>,
    ) -> Result<Prediction, E> {
        let t0 = Instant::now();
        let feats = crate::cluster::feature_vectors(&analysis.profiles);
        let km = crate::cluster::kmeans2_checked(&feats, check)?;
        let select = select_stage(&km, feats.len(), elapsed_ns(t0));
        let n = feats.len();

        // Per-cluster representative: the member nearest its centroid.
        let rep_of = |cluster: u8| -> Option<usize> {
            let centre = km.centroids[cluster as usize];
            feats
                .iter()
                .enumerate()
                .filter(|(i, _)| km.assignment[*i] == cluster)
                .min_by(|(_, a), (_, b)| a.dist2(&centre).total_cmp(&b.dist2(&centre)))
                .map(|(i, _)| i)
        };

        let mut blended: Option<Prediction> = None;
        for cluster in 0..2u8 {
            let size = km.assignment.iter().filter(|&&a| a == cluster).count();
            let Some(rep) = rep_of(cluster) else { continue };
            let weight = size as f64 / n as f64;
            let p = self.profile_prediction(analysis, rep, policy, model);
            blended = Some(match blended {
                None => weighted(&p, weight),
                Some(acc) => {
                    let w = weighted(&p, weight);
                    let mut out = acc;
                    out.cpi = out.cpi.plus(&w.cpi);
                    out.multithreading.cpi += w.multithreading.cpi;
                    out.multithreading.total_nonoverlapped +=
                        w.multithreading.total_nonoverlapped;
                    out.contention.cpi += w.contention.cpi;
                    out.contention.cpi_mshr += w.contention.cpi_mshr;
                    out.contention.cpi_queue += w.contention.cpi_queue;
                    out.contention.cpi_sfu += w.contention.cpi_sfu;
                    out.single_warp_cpi += w.single_warp_cpi;
                    out
                }
            });
        }
        // At least one cluster is always populated; the fallback covers a
        // (theoretically unreachable) fully-empty assignment without a panic.
        let mut p = blended
            .unwrap_or_else(|| self.profile_prediction(analysis, km.representative, policy, model));
        p.representative = km.representative;
        insert_before_predict(&mut p.report, select);
        Ok(p)
    }
}

/// Saturating nanoseconds since `t0`.
fn elapsed_ns(t0: Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Builds the `core.pipeline.select` stage digest from a clustering run.
fn select_stage(km: &crate::cluster::KmeansResult, points: usize, wall_ns: u64) -> StageReport {
    let mut stage = StageReport::new("core.pipeline.select");
    stage.wall_ns = wall_ns;
    stage.counter("points", points as u64);
    stage.counter("iterations", km.iterations as u64);
    stage.counter("degenerate", u64::from(km.degenerate));
    stage.counter("representative", km.representative as u64);
    stage
}

/// Inserts `stage` just before the trailing `core.pipeline.predict` entry
/// so reports read in execution order.
fn insert_before_predict(report: &mut PipelineReport, stage: StageReport) {
    let at = report
        .stages
        .iter()
        .position(|s| s.name == "core.pipeline.predict")
        .unwrap_or(report.stages.len());
    report.stages.insert(at, stage);
}

/// Scales a prediction's additive components by `weight` (helper for the
/// weighted-clusters blend).
fn weighted(p: &Prediction, weight: f64) -> Prediction {
    let mut out = p.clone();
    out.cpi = p.cpi.scaled(weight);
    out.multithreading.cpi *= weight;
    out.multithreading.total_nonoverlapped *= weight;
    out.contention.cpi *= weight;
    out.contention.cpi_mshr *= weight;
    out.contention.cpi_queue *= weight;
    out.contention.cpi_sfu *= weight;
    out.single_warp_cpi *= weight;
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_trace::workloads;

    fn model() -> Gpumech {
        Gpumech::new(SimConfig::default())
    }

    fn trace_of(name: &str, blocks: usize) -> KernelTrace {
        workloads::by_name(name).expect("bundled").with_blocks(blocks).trace().expect("traces")
    }

    #[test]
    fn full_pipeline_produces_consistent_prediction() {
        let w = workloads::by_name("cfd_step_factor").unwrap().with_blocks(16);
        let p = model().run(&PredictionRequest::from_workload(&w)).unwrap();
        assert_eq!(p.model, Model::MtMshrBand);
        assert!(p.cpi_total() >= 1.0, "core CPI below the issue bound: {}", p.cpi_total());
        assert!(p.single_warp_cpi > p.cpi_total(), "multithreading must help");
        assert!((p.ipc() - 1.0 / p.cpi_total()).abs() < 1e-12);
        // Stack identity: total = CPI_mt + CPI_rc (Equation 3).
        assert!(
            (p.cpi_total() - (p.multithreading.cpi + p.contention.cpi)).abs() < 1e-9,
            "Equation 3 violated"
        );
    }

    #[test]
    fn table2_models_order_errors_on_a_divergent_kernel() {
        // On a divergent kernel the optimistic models must predict lower
        // CPI than the contention-aware ones.
        let t = trace_of("kmeans_invert_mapping", 16);
        let m = model();
        let a = m.analyze(&t).unwrap();
        let cpi = |mo: Model| {
            m.run(&PredictionRequest::from_analysis(&a).model(mo)).unwrap().cpi_total()
        };
        let naive = cpi(Model::NaiveInterval);
        let mt = cpi(Model::Mt);
        let mshr = cpi(Model::MtMshr);
        let band = cpi(Model::MtMshrBand);
        assert!(naive <= mt + 1e-9, "naive is the most optimistic: {naive} vs {mt}");
        assert!(mt <= mshr + 1e-9, "MSHR adds delay: {mt} vs {mshr}");
        assert!(mshr <= band + 1e-9, "bandwidth adds delay: {mshr} vs {band}");
        assert!(band > mt, "divergent kernel must show contention");
    }

    #[test]
    fn coalesced_kernel_has_negligible_mshr_delay() {
        let t = trace_of("sdk_vectoradd", 16);
        let m = model();
        let a = m.analyze(&t).unwrap();
        let p = m.run(&PredictionRequest::from_analysis(&a)).unwrap();
        assert!(
            p.contention.cpi_mshr < 0.05 * p.cpi_total(),
            "coalesced loads fit the MSHR file: {} of {}",
            p.contention.cpi_mshr,
            p.cpi_total()
        );
    }

    #[test]
    fn analysis_reuse_matches_direct_prediction() {
        let t = trace_of("parboil_spmv", 8);
        let m = model();
        let policy = SchedulingPolicy::GreedyThenOldest;
        let direct = m.run(&PredictionRequest::from_trace(&t).policy(policy)).unwrap();
        let a = m.analyze(&t).unwrap();
        let reused = m.run(&PredictionRequest::from_analysis(&a).policy(policy)).unwrap();
        assert_eq!(direct, reused);
    }

    #[test]
    fn effective_warps_respects_residency() {
        let m = Gpumech::new(SimConfig::default().with_warps_per_core(8));
        // 8 warps/block but only 8 resident → 1 block resident.
        let t = trace_of("sdk_vectoradd", 16);
        let a = m.analyze(&t).unwrap();
        assert_eq!(a.effective_warps, 8);
        let full = model().analyze(&t).unwrap();
        assert_eq!(full.effective_warps, 32);
    }

    #[test]
    fn model_display_names_match_table2() {
        let names: Vec<String> = Model::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(
            names,
            vec!["Naive_Interval", "Markov_Chain", "MT", "MT_MSHR", "MT_MSHR_BAND"]
        );
    }

    #[test]
    fn invalid_config_is_reported() {
        let cfg = SimConfig { num_mshrs: 0, ..SimConfig::default() };
        let t = trace_of("sdk_vectoradd", 2);
        assert!(matches!(
            Gpumech::new(cfg).analyze(&t),
            Err(ModelError::InvalidConfig(_))
        ));
    }

    #[test]
    fn weighted_clusters_blends_between_the_extremes() {
        // On a bimodal kernel, the blended prediction must lie between the
        // per-cluster extremes (MIN/MAX selections bound it loosely).
        let t = trace_of("lud_diagonal", 16);
        let m = model();
        let a = m.analyze(&t).unwrap();
        let lo = m
            .run(&PredictionRequest::from_analysis(&a).selection(SelectionMethod::Max))
            .unwrap()
            .cpi_total();
        let hi = m
            .run(&PredictionRequest::from_analysis(&a).selection(SelectionMethod::Min))
            .unwrap()
            .cpi_total();
        let blended =
            m.run(&PredictionRequest::from_analysis(&a).population_weighted()).unwrap();
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        assert!(
            blended.cpi_total() >= lo - 1e-9 && blended.cpi_total() <= hi + 1e-9,
            "blend {} outside [{lo}, {hi}]",
            blended.cpi_total()
        );
        // Equation 3 survives the blend.
        assert!(
            (blended.cpi_total()
                - (blended.multithreading.cpi + blended.contention.cpi))
                .abs()
                < 1e-9
        );
    }

    #[test]
    fn weighted_clusters_degenerates_on_homogeneous_kernels() {
        let t = trace_of("sdk_vectoradd", 8);
        let m = model();
        let a = m.analyze(&t).unwrap();
        let single = m.run(&PredictionRequest::from_analysis(&a)).unwrap();
        let blended =
            m.run(&PredictionRequest::from_analysis(&a).population_weighted()).unwrap();
        let rel = (blended.cpi_total() - single.cpi_total()).abs() / single.cpi_total();
        assert!(rel < 0.05, "homogeneous blend should match single: {rel}");
    }

    #[test]
    fn gto_and_rr_predictions_differ_but_are_sane() {
        let t = trace_of("cfd_compute_flux", 16);
        let m = model();
        let a = m.analyze(&t).unwrap();
        let rr = m.run(&PredictionRequest::from_analysis(&a).model(Model::Mt)).unwrap();
        let gto = m
            .run(
                &PredictionRequest::from_analysis(&a)
                    .model(Model::Mt)
                    .policy(SchedulingPolicy::GreedyThenOldest),
            )
            .unwrap();
        assert!(rr.cpi_total() >= 1.0 && gto.cpi_total() >= 1.0);
    }

    #[test]
    fn contradictory_requests_are_rejected_before_any_work() {
        let t = trace_of("sdk_vectoradd", 2);
        let m = model();
        let a = m.analyze(&t).unwrap();
        let bad = PredictionRequest::from_analysis(&a)
            .selection(SelectionMethod::Max)
            .population_weighted();
        assert!(matches!(m.run(&bad), Err(ModelError::InvalidRequest(_))));
        let bad = PredictionRequest::from_profile(&a, 0).population_weighted();
        assert!(matches!(m.run(&bad), Err(ModelError::InvalidRequest(_))));
        let bad = PredictionRequest::from_profile(&a, a.profiles.len());
        assert!(matches!(m.run(&bad), Err(ModelError::InvalidRequest(_))));
    }

    #[test]
    fn explicit_profile_request_models_the_named_warp() {
        let t = trace_of("bfs_kernel1", 4);
        let m = model();
        let a = m.analyze(&t).unwrap();
        let p = m.run(&PredictionRequest::from_profile(&a, 3)).unwrap();
        assert_eq!(p.representative, 3);
        assert!(p.cpi_total() >= 1.0);
    }

    #[test]
    fn analyze_with_custom_profiler_matches_sequential() {
        let t = trace_of("parboil_spmv", 4);
        let m = model();
        let sequential = m.analyze(&t).unwrap();
        // A profiler that builds the same profiles in reverse order still
        // returns them in warp order, so the analyses must be equal.
        let custom = m
            .analyze_with(&t, |warps, cfg, mem| {
                let mut profiles: Vec<_> =
                    warps.iter().rev().map(|w| build_profile(w, cfg, mem)).collect();
                profiles.reverse();
                Ok(profiles)
            })
            .unwrap();
        assert_eq!(sequential, custom);
    }

    #[test]
    fn analyze_with_length_mismatch_is_an_execution_error() {
        let t = trace_of("sdk_vectoradd", 2);
        let err = model().analyze_with(&t, |_, _, _| Ok(Vec::new())).unwrap_err();
        assert!(matches!(err, ModelError::Execution(_)));
    }

    #[test]
    fn run_rejects_a_cancelled_token_before_doing_any_work() {
        let w = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(2);
        let cancelled = CancelToken::never();
        cancelled.cancel();
        let err =
            model().run(&PredictionRequest::from_workload(&w).cancel(cancelled)).unwrap_err();
        assert_eq!(err, ModelError::Interrupted(Interrupt::Cancelled));
    }

    #[test]
    fn fake_clock_deadline_interrupts_the_analysis_stages() {
        let t = trace_of("sdk_vectoradd", 2);
        let clock = std::sync::Arc::new(gpumech_obs::FakeClock::new(1_000));
        let token = CancelToken::with_clock(clock, 1_500);
        let err = model().run(&PredictionRequest::from_trace(&t).cancel(token)).unwrap_err();
        assert_eq!(err, ModelError::Interrupted(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn cancellable_analysis_is_bit_identical_to_the_plain_one() {
        let t = trace_of("parboil_spmv", 4);
        let m = model();
        let plain = m.analyze(&t).unwrap();
        let live = m.analyze_cancellable(&t, &CancelToken::never()).unwrap();
        assert_eq!(plain, live);
    }
}
