//! Non-overlapped instructions under greedy-then-oldest scheduling
//! (Section IV-A3, Equations 12-16).

use crate::interval::Interval;

/// Expected non-overlapped instructions of one interval under GTO.
///
/// GTO drains whole warps during a stall; the "oldest" rule then forces the
/// representative warp to wait for warps that started issuing after its
/// stall already ended (Figure 8(b)). Per interval `i`:
///
/// * `issue_prob_in_stall_i = min(issue_prob * stall_cycles_i, 1)` — the
///   probability a remaining warp issues during the stall window
///   (Equation 15; printed as `max` in the paper, corrected here so it
///   stays a probability — the `min` form is what reproduces the paper's
///   own Figure 8(b) numbers),
/// * `#issue_warps_in_stall_i = issue_prob_in_stall_i * (#warps - 1)`
///   (Equation 14),
/// * `#issue_insts_in_stall_i = avg_interval_insts * #issue_warps_in_stall_i`
///   (Equations 12-13),
/// * `#nonoverlapped_i = max(#issue_insts - stall_cycles * issue_rate, 0)`
///   (Equation 16; printed as `min(..., 0)`, corrected per the
///   accompanying text: overflow beyond the stall is what fails to
///   overlap).
#[must_use]
pub fn gto_nonoverlapped(
    interval: &Interval,
    issue_prob: f64,
    num_warps: usize,
    avg_interval_insts: f64,
    issue_rate: f64,
) -> f64 {
    if num_warps <= 1 {
        return 0.0;
    }
    let issue_prob_in_stall = (issue_prob * interval.stall_cycles).min(1.0);
    let issue_warps_in_stall = issue_prob_in_stall * (num_warps - 1) as f64;
    let issue_insts_in_stall = avg_interval_insts * issue_warps_in_stall;
    (issue_insts_in_stall - interval.stall_cycles * issue_rate).max(0.0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::StallCause;

    fn iv(insts: u64, stall: f64) -> Interval {
        Interval {
            insts,
            stall_cycles: stall,
            cause: StallCause::None,
            load_insts: 0,
            store_insts: 0,
            mem_reqs: 0.0,
            mshr_reqs: 0.0,
            dram_reqs: 0.0,
            ..Interval::default()
        }
    }

    #[test]
    fn figure8b_example() {
        // 3 insts / 6 stalls / 4 warps / p = 1/3 / avg = 3:
        // p_stall = min(2,1) = 1; warps = 3; issued = 9; nonoverlap = 3.
        let n = gto_nonoverlapped(&iv(3, 6.0), 1.0 / 3.0, 4, 3.0, 1.0);
        assert!((n - 3.0).abs() < 1e-12);
    }

    #[test]
    fn short_stalls_fully_overlap() {
        // Long stall window but few issuing warps: issued < stall → 0.
        let n = gto_nonoverlapped(&iv(3, 100.0), 0.2, 2, 3.0, 1.0);
        assert_eq!(n, 0.0, "3 issued instructions hide inside 100 stall cycles");
    }

    #[test]
    fn probability_saturates_at_one() {
        // Doubling an already-saturating stall must not double the count
        // (it would with the paper's literal `max`).
        let a = gto_nonoverlapped(&iv(3, 10.0), 0.5, 4, 4.0, 1.0);
        let b = gto_nonoverlapped(&iv(3, 20.0), 0.5, 4, 4.0, 1.0);
        // a: issued = 12, stall 10 → 2. b: issued = 12, stall 20 → 0.
        assert!((a - 2.0).abs() < 1e-12);
        assert_eq!(b, 0.0);
    }

    #[test]
    fn one_warp_has_no_nonoverlap() {
        assert_eq!(gto_nonoverlapped(&iv(3, 6.0), 0.9, 1, 3.0, 1.0), 0.0);
    }

    #[test]
    fn nonoverlap_is_never_negative() {
        for stall in [0.0, 1.0, 5.0, 50.0, 500.0] {
            for warps in [2, 4, 8, 32] {
                let n = gto_nonoverlapped(&iv(3, stall), 0.3, warps, 2.5, 1.0);
                assert!(n >= 0.0, "stall={stall} warps={warps} → {n}");
            }
        }
    }

    #[test]
    fn zero_stall_interval_contributes_nothing() {
        assert_eq!(gto_nonoverlapped(&iv(10, 0.0), 0.5, 8, 5.0, 1.0), 0.0);
    }
}
