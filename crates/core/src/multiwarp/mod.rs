//! The multi-warp multithreading model (Section IV-A).
//!
//! Given the representative warp's interval profile, the model predicts
//! core CPI with N resident warps by counting the *non-overlapped
//! instructions* of the remaining warps — instructions that do not hide the
//! representative warp's stall cycles and therefore lengthen execution
//! (Figure 8). Equation 7 relates them to the multithreading CPI; the
//! per-interval counts are policy-specific (Equations 10-11 for
//! round-robin, 12-16 for greedy-then-oldest).
//!
//! Two transcription fixes relative to the paper's formulas, both of which
//! are required to reproduce its own worked example (Figure 8(b)) and are
//! noted in DESIGN.md:
//!
//! * Equation 7 as printed is instructions/cycles (an IPC); we use its
//!   reciprocal since the surrounding text and Equation 3 treat it as a CPI.
//! * Equation 15's `max(issue_prob * stall, 1)` is a probability and must
//!   be `min(..., 1)`; Equation 16's `min(x, 0)` must be `max(x, 0)` ("the
//!   non-overlapped instructions are incurred if the number of issued
//!   instructions is more than the stall cycles").

mod gto;
mod round_robin;

pub use gto::gto_nonoverlapped;
pub use round_robin::rr_nonoverlapped;

use gpumech_isa::SchedulingPolicy;
use serde::{Deserialize, Serialize};

use crate::interval::IntervalProfile;

/// Output of the multithreading model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultithreadingResult {
    /// Predicted core CPI under multithreading alone (no contention):
    /// the (corrected) Equation 7.
    pub cpi: f64,
    /// Total non-overlapped instructions (Equation 8).
    pub total_nonoverlapped: f64,
    /// Per-interval non-overlapped instruction counts.
    pub per_interval: Vec<f64>,
    /// Resident warps modeled.
    pub num_warps: usize,
}

/// Runs the multithreading model for `profile` under `policy` with
/// `num_warps` resident warps (Equations 7-16).
///
/// # Panics
///
/// Panics if `num_warps` is zero.
#[must_use]
pub fn multithreading_cpi(
    profile: &IntervalProfile,
    num_warps: usize,
    policy: SchedulingPolicy,
) -> MultithreadingResult {
    assert!(num_warps > 0, "at least one warp required");
    let issue_prob = profile.issue_prob();
    let per_interval: Vec<f64> = match policy {
        SchedulingPolicy::RoundRobin => profile
            .intervals
            .iter()
            .map(|iv| rr_nonoverlapped(iv, issue_prob, num_warps))
            .collect(),
        SchedulingPolicy::GreedyThenOldest => {
            let avg_insts = profile.avg_interval_insts();
            profile
                .intervals
                .iter()
                .map(|iv| gto_nonoverlapped(iv, issue_prob, num_warps, avg_insts, profile.issue_rate))
                .collect()
        }
    };
    let total_nonoverlapped: f64 = per_interval.iter().sum();
    let total_insts = profile.total_insts() as f64;
    let cpi = if total_insts == 0.0 {
        0.0
    } else {
        // Corrected Equation 7 (see module docs): extra issue cycles from
        // non-overlapped instructions stretch the representative warp.
        let cycles = profile.total_cycles() + total_nonoverlapped / profile.issue_rate;
        let cycles = cycles.max(num_warps as f64 * total_insts / profile.issue_rate);
        cycles / (num_warps as f64 * total_insts)
    };
    if gpumech_obs::enabled() {
        gpumech_obs::gauge!("core.multiwarp.cpi", cpi);
        gpumech_obs::gauge!("core.multiwarp.nonoverlap", total_nonoverlapped);
        gpumech_obs::gauge!("core.multiwarp.issue_prob", issue_prob);
        gpumech_obs::gauge!("core.multiwarp.warps", num_warps as f64);
    }
    MultithreadingResult { cpi, total_nonoverlapped, per_interval, num_warps }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::{Interval, StallCause};

    pub(crate) fn iv(insts: u64, stall: f64) -> Interval {
        Interval {
            insts,
            stall_cycles: stall,
            cause: if stall > 0.0 { StallCause::Compute } else { StallCause::None },
            load_insts: 0,
            store_insts: 0,
            mem_reqs: 0.0,
            mshr_reqs: 0.0,
            dram_reqs: 0.0,
            ..Interval::default()
        }
    }

    /// The Figure 8(c) profile: one interval of 3 instructions and 6 stall
    /// cycles, 4 warps, issue rate 1.
    fn figure8() -> IntervalProfile {
        IntervalProfile { intervals: vec![iv(3, 6.0)], issue_rate: 1.0 }
    }

    #[test]
    fn rr_matches_equations_10_and_11_on_figure8() {
        let p = figure8();
        let r = multithreading_cpi(&p, 4, SchedulingPolicy::RoundRobin);
        // issue_prob = 3/9 = 1/3; waiting slots = 2; nonoverlap = 1/3*3*2 = 2.
        assert!((r.total_nonoverlapped - 2.0).abs() < 1e-12);
        // Raw Equation 7 gives (9 + 2)/(4 * 3) = 11/12 — but 12 issues
        // cannot fit in 11 cycles, so the issue-rate clamp lands on exactly
        // the 12 cycles Figure 8(a)'s schedule actually takes.
        assert!((r.cpi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gto_matches_figure8b_example() {
        let p = figure8();
        let r = multithreading_cpi(&p, 4, SchedulingPolicy::GreedyThenOldest);
        // issue_prob_in_stall = min(1/3 * 6, 1) = 1; warps_in_stall = 3;
        // issued = 3 * 3 = 9; nonoverlap = max(9 - 6, 0) = 3 — exactly the
        // three W3 instructions the paper's Figure 8(b) identifies.
        assert!((r.total_nonoverlapped - 3.0).abs() < 1e-12);
        assert!((r.cpi - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_warps_never_increase_predicted_core_throughput_beyond_issue_rate() {
        let p = figure8();
        for warps in [1, 2, 4, 8, 16, 32] {
            let r = multithreading_cpi(&p, warps, SchedulingPolicy::RoundRobin);
            let core_ipc = 1.0 / r.cpi / 1.0; // per warp-instruction
            // Core IPC = warps*insts/cycles must not exceed issue rate 1.
            assert!(core_ipc <= 1.0 + 1e-9, "warps={warps} core ipc {core_ipc}");
        }
    }

    #[test]
    fn single_warp_has_no_nonoverlap() {
        let p = figure8();
        for policy in SchedulingPolicy::ALL {
            let r = multithreading_cpi(&p, 1, policy);
            assert!((r.total_nonoverlapped - 0.0).abs() < 1e-12, "{policy}");
            assert!((r.cpi - 3.0).abs() < 1e-12, "single-warp CPI = 9/3");
        }
    }

    #[test]
    fn saturated_multithreading_converges_to_issue_bound() {
        // With many warps, cycles are dominated by warps*insts: CPI → 1.
        let p = figure8();
        let r = multithreading_cpi(&p, 64, SchedulingPolicy::RoundRobin);
        assert!((r.cpi - 1.0).abs() < 0.35, "near issue bound, got {}", r.cpi);
    }

    #[test]
    fn stall_free_profile_is_issue_bound() {
        let p = IntervalProfile { intervals: vec![iv(10, 0.0)], issue_rate: 1.0 };
        let r = multithreading_cpi(&p, 8, SchedulingPolicy::RoundRobin);
        assert!((r.cpi - 1.0).abs() < 1e-12, "no stalls → CPI = 1/issue_rate");
    }

    #[test]
    fn per_interval_counts_sum_to_total() {
        let p = IntervalProfile {
            intervals: vec![iv(1, 10.0), iv(4, 10.0), iv(7, 0.0)],
            issue_rate: 1.0,
        };
        for policy in SchedulingPolicy::ALL {
            let r = multithreading_cpi(&p, 6, policy);
            let sum: f64 = r.per_interval.iter().sum();
            assert!((sum - r.total_nonoverlapped).abs() < 1e-12);
            assert!(r.per_interval.iter().all(|&x| x >= 0.0), "{policy}: negative nonoverlap");
        }
    }
}
