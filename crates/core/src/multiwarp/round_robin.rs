//! Non-overlapped instructions under round-robin scheduling
//! (Section IV-A2, Equations 10-11).

use crate::interval::Interval;

/// Expected non-overlapped instructions of one interval under round-robin.
///
/// Round-robin issues from every warp in turn regardless of whether the
/// representative warp is stalled, so instructions issued inside the
/// interval's *waiting slots* — the gaps between consecutive issues of the
/// representative warp — do not hide any stall cycles:
///
/// * `#waiting_slots_i = #interval_insts_i - 1` (Equation 10),
/// * `#nonoverlapped_i = issue_prob * (#warps - 1) * #waiting_slots_i`
///   (Equation 11).
#[must_use]
pub fn rr_nonoverlapped(interval: &Interval, issue_prob: f64, num_warps: usize) -> f64 {
    if num_warps <= 1 || interval.insts == 0 {
        return 0.0;
    }
    let waiting_slots = (interval.insts - 1) as f64;
    issue_prob * (num_warps - 1) as f64 * waiting_slots
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::interval::StallCause;

    fn iv(insts: u64, stall: f64) -> Interval {
        Interval {
            insts,
            stall_cycles: stall,
            cause: StallCause::None,
            load_insts: 0,
            store_insts: 0,
            mem_reqs: 0.0,
            mshr_reqs: 0.0,
            dram_reqs: 0.0,
            ..Interval::default()
        }
    }

    #[test]
    fn figure8a_example() {
        // 3 insts, 6 stalls, 4 warps, issue_prob 1/3 → 2 slots → 1/3*3*2 = 2.
        assert!((rr_nonoverlapped(&iv(3, 6.0), 1.0 / 3.0, 4) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn single_instruction_interval_has_no_waiting_slots() {
        assert_eq!(rr_nonoverlapped(&iv(1, 10.0), 0.5, 8), 0.0);
    }

    #[test]
    fn one_warp_has_no_remaining_warps() {
        assert_eq!(rr_nonoverlapped(&iv(5, 10.0), 0.5, 1), 0.0);
    }

    #[test]
    fn scales_linearly_in_warps_and_probability() {
        let base = rr_nonoverlapped(&iv(5, 10.0), 0.25, 5);
        assert!((rr_nonoverlapped(&iv(5, 10.0), 0.5, 5) - 2.0 * base).abs() < 1e-12);
        assert!((rr_nonoverlapped(&iv(5, 10.0), 0.25, 9) - 2.0 * base).abs() < 1e-12);
    }
}
