//! The unified prediction request: one builder that expresses every way
//! of driving the GPUMech pipeline.
//!
//! Historically [`Gpumech`](crate::model::Gpumech) grew five overlapping
//! entry points (`predict`, `predict_trace`, `predict_from_analysis`,
//! `predict_profile`, `predict_weighted_clusters`) that differed only in
//! where the input came from and how the representative warp was chosen.
//! [`PredictionRequest`] collapses them: pick an input *source* with a
//! constructor, then adjust *options* with builder methods, and hand the
//! request to [`Gpumech::run`](crate::model::Gpumech::run).
//!
//! ```
//! use gpumech_core::{Gpumech, Model, PredictionRequest, SchedulingPolicy};
//! use gpumech_isa::SimConfig;
//! use gpumech_trace::workloads;
//!
//! let w = workloads::by_name("sdk_vectoradd").ok_or("missing")?.with_blocks(4);
//! let req = PredictionRequest::from_workload(&w)
//!     .policy(SchedulingPolicy::GreedyThenOldest)
//!     .model(Model::MtMshr);
//! let p = Gpumech::new(SimConfig::default()).run(&req)?;
//! assert!(p.cpi_total() >= 1.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use gpumech_isa::SchedulingPolicy;
use gpumech_obs::CancelToken;
use gpumech_trace::{KernelTrace, Workload};
use serde::{Deserialize, Serialize};

use crate::cluster::SelectionMethod;
use crate::model::{Analysis, Model};

/// How the per-cluster structure of the kernel feeds the final number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Weighting {
    /// The paper's method: one representative warp stands in for the whole
    /// kernel (Section III-C).
    SingleRepresentative,
    /// Extension beyond the paper: predict once per k-means cluster and
    /// blend the CPI stacks by cluster population. Requires
    /// [`SelectionMethod::Clustering`].
    PopulationWeighted,
}

/// Where the pipeline input comes from.
///
/// Borrowed, not owned: requests are cheap descriptors that can be built
/// in bulk (one per batch item) without cloning traces or analyses.
#[derive(Debug, Clone)]
pub(crate) enum Source<'a> {
    /// A bundled workload: trace it, analyze it, predict.
    Workload(&'a Workload),
    /// An already-traced kernel: analyze it, predict.
    Trace(&'a KernelTrace),
    /// A precomputed [`Analysis`]: select a representative and predict.
    Analysis(&'a Analysis),
    /// A precomputed [`Analysis`] and an explicit representative warp.
    Profile {
        /// The precomputed analysis.
        analysis: &'a Analysis,
        /// Index of the representative warp in the grid.
        rep: usize,
    },
}

/// One prediction job: an input source plus every pipeline option.
///
/// Construct with one of the `from_*` constructors, refine with the
/// builder methods, and execute with
/// [`Gpumech::run`](crate::model::Gpumech::run). Defaults mirror the
/// paper's headline configuration: round-robin scheduling, the full
/// `MT_MSHR_BAND` model, k-means representative selection, and a single
/// representative warp.
#[derive(Debug, Clone)]
pub struct PredictionRequest<'a> {
    pub(crate) source: Source<'a>,
    pub(crate) policy: SchedulingPolicy,
    pub(crate) model: Model,
    pub(crate) selection: SelectionMethod,
    pub(crate) weighting: Weighting,
    pub(crate) cancel: CancelToken,
}

impl<'a> PredictionRequest<'a> {
    fn new(source: Source<'a>) -> Self {
        Self {
            source,
            policy: SchedulingPolicy::RoundRobin,
            model: Model::MtMshrBand,
            selection: SelectionMethod::Clustering,
            weighting: Weighting::SingleRepresentative,
            cancel: CancelToken::never(),
        }
    }

    /// A request that traces `workload` from scratch.
    #[must_use]
    pub fn from_workload(workload: &'a Workload) -> Self {
        Self::new(Source::Workload(workload))
    }

    /// A request over an already-traced kernel.
    #[must_use]
    pub fn from_trace(trace: &'a KernelTrace) -> Self {
        Self::new(Source::Trace(trace))
    }

    /// A request over a precomputed [`Analysis`] — the cheap path when
    /// evaluating many (model, policy) pairs or swept configurations for
    /// one kernel.
    #[must_use]
    pub fn from_analysis(analysis: &'a Analysis) -> Self {
        Self::new(Source::Analysis(analysis))
    }

    /// A request that skips representative selection and models warp `rep`
    /// of `analysis` directly.
    #[must_use]
    pub fn from_profile(analysis: &'a Analysis, rep: usize) -> Self {
        Self::new(Source::Profile { analysis, rep })
    }

    /// Sets the warp scheduling policy (default: round-robin).
    #[must_use]
    pub fn policy(mut self, policy: SchedulingPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the Table II model (default: [`Model::MtMshrBand`]).
    #[must_use]
    pub fn model(mut self, model: Model) -> Self {
        self.model = model;
        self
    }

    /// Sets the representative-selection method (default:
    /// [`SelectionMethod::Clustering`]). Ignored for
    /// [`Self::from_profile`] requests, which name their warp explicitly.
    #[must_use]
    pub fn selection(mut self, selection: SelectionMethod) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the cluster weighting (default:
    /// [`Weighting::SingleRepresentative`]).
    #[must_use]
    pub fn weighting(mut self, weighting: Weighting) -> Self {
        self.weighting = weighting;
        self
    }

    /// Shorthand for `weighting(Weighting::PopulationWeighted)`.
    #[must_use]
    pub fn population_weighted(self) -> Self {
        self.weighting(Weighting::PopulationWeighted)
    }

    /// Attaches a [`CancelToken`] (default: never fires). Every stage of
    /// the pipeline — tracing, cache simulation, interval profiling,
    /// k-means — polls the token and aborts with
    /// [`ModelError::Interrupted`](crate::model::ModelError::Interrupted)
    /// once it fires, which is how batch engines enforce per-job timeouts
    /// and whole-run deadlines.
    #[must_use]
    pub fn cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = cancel;
        self
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_headline_configuration() {
        let w = gpumech_trace::workloads::by_name("sdk_vectoradd").unwrap();
        let req = PredictionRequest::from_workload(&w);
        assert_eq!(req.policy, SchedulingPolicy::RoundRobin);
        assert_eq!(req.model, Model::MtMshrBand);
        assert_eq!(req.selection, SelectionMethod::Clustering);
        assert_eq!(req.weighting, Weighting::SingleRepresentative);
    }

    #[test]
    fn builder_methods_override_each_option() {
        let w = gpumech_trace::workloads::by_name("sdk_vectoradd").unwrap();
        let req = PredictionRequest::from_workload(&w)
            .policy(SchedulingPolicy::GreedyThenOldest)
            .model(Model::Mt)
            .selection(SelectionMethod::Max)
            .population_weighted();
        assert_eq!(req.policy, SchedulingPolicy::GreedyThenOldest);
        assert_eq!(req.model, Model::Mt);
        assert_eq!(req.selection, SelectionMethod::Max);
        assert_eq!(req.weighting, Weighting::PopulationWeighted);
    }
}
