//! The batch engine: many (kernel, configuration, options) points in,
//! one [`Prediction`] (or typed error) per point out.
//!
//! A [`BatchJob`] is a self-contained descriptor of one pipeline run —
//! the shape the paper's design-space exploration needs (Section VI-D:
//! one trace swept across many hardware configurations). The engine runs
//! jobs on the [`pool`](crate::pool), deduplicates analysis work through
//! the [`ProfileCache`], and guarantees the batch output is bit-identical
//! to running each job sequentially through
//! [`Gpumech::run`]: predictions are pure functions of
//! (trace, config, options), the pool publishes results by item index,
//! and the cache returns value-equal analyses.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Duration;

use gpumech_core::{
    build_profile, Gpumech, Model, ModelError, Prediction, PredictionRequest, SelectionMethod,
    Weighting,
};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_obs::{CancelToken, Interrupt};
use gpumech_trace::KernelTrace;

use crate::cache::{
    analysis_config_fingerprint, payload_checksum, trace_fingerprint, CacheKey, ProfileCache,
};
use crate::pool::{
    maybe_inject, panic_message, run_indexed, FaultInjection, FaultKind, PoolOptions,
};
use crate::resilience::{BatchOptions, CircuitBreaker, Journal};
use crate::{BatchError, ExecError};

/// One batch item: a kernel trace plus everything needed to predict it.
///
/// Traces are shared via `Arc` so a configuration sweep over one kernel
/// costs one trace, not N clones.
#[derive(Debug, Clone)]
pub struct BatchJob {
    /// Human-readable label carried into reports (e.g. `"bfs_kernel1 @ 32w"`).
    pub label: String,
    /// The kernel trace to model.
    pub trace: Arc<KernelTrace>,
    /// Machine configuration for this point.
    pub cfg: SimConfig,
    /// Warp scheduling policy.
    pub policy: SchedulingPolicy,
    /// Table II model.
    pub model: Model,
    /// Representative-selection method.
    pub selection: SelectionMethod,
    /// Cluster weighting.
    pub weighting: Weighting,
}

impl BatchJob {
    /// A job with the paper's default options (round-robin, full
    /// `MT_MSHR_BAND`, clustering selection, single representative).
    #[must_use]
    pub fn new(label: impl Into<String>, trace: Arc<KernelTrace>, cfg: SimConfig) -> Self {
        Self {
            label: label.into(),
            trace,
            cfg,
            policy: SchedulingPolicy::RoundRobin,
            model: Model::MtMshrBand,
            selection: SelectionMethod::Clustering,
            weighting: Weighting::SingleRepresentative,
        }
    }
}

/// Requested worker count clamped to the host: the pipeline is CPU-bound,
/// so threads beyond [`std::thread::available_parallelism`] only add
/// context-switch and allocator-contention overhead (measurably so on
/// small hosts).
fn effective_workers(requested: usize) -> usize {
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    requested.clamp(1, host)
}

/// Parallel batch executor with a shared [`ProfileCache`].
///
/// The configured worker count is a *ceiling*: the engine never runs more
/// threads than the host exposes (see [`BatchEngine::effective_workers`]).
/// [`pool::run_indexed`](crate::pool::run_indexed) itself spawns exactly
/// what it is asked for — the clamp is engine policy, kept out of the pool
/// so tests can still exercise real oversubscription.
#[derive(Debug)]
pub struct BatchEngine {
    cache: ProfileCache,
    workers: usize,
}

impl BatchEngine {
    /// An engine with up to `workers` threads and a fresh in-memory cache.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self { cache: ProfileCache::in_memory(), workers }
    }

    /// An engine sharing an existing cache (e.g. a disk-backed one).
    #[must_use]
    pub fn with_cache(workers: usize, cache: ProfileCache) -> Self {
        Self { cache, workers }
    }

    /// The engine's profile cache.
    #[must_use]
    pub fn cache(&self) -> &ProfileCache {
        &self.cache
    }

    /// The configured (requested) worker ceiling.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Worker threads a batch actually runs with: the configured count
    /// clamped to the host's available parallelism (never zero).
    #[must_use]
    pub fn effective_workers(&self) -> usize {
        effective_workers(self.workers)
    }

    /// Runs every job, returning one outcome per job in job order.
    ///
    /// Failures are per-job: an invalid configuration, a model error, or
    /// even a panicking worker surfaces as that job's [`BatchError`] —
    /// which names the job and its configuration — while the rest of the
    /// batch completes.
    #[must_use]
    pub fn run(&self, jobs: &[BatchJob]) -> Vec<Result<Prediction, BatchError>> {
        self.run_with(jobs, &BatchOptions::default())
    }

    /// [`BatchEngine::run`] with an optional deliberate fault, exposed for
    /// the fault-injection suite (`None` on every production path).
    #[must_use]
    pub fn run_with_injection(
        &self,
        jobs: &[BatchJob],
        inject: Option<FaultInjection>,
    ) -> Vec<Result<Prediction, BatchError>> {
        self.run_with(
            jobs,
            &BatchOptions { injections: inject.into_iter().collect(), ..BatchOptions::default() },
        )
    }

    /// The resilient batch entry point: [`BatchEngine::run`] under a
    /// [`BatchOptions`] bundle of deadline, per-job timeout, retry,
    /// circuit-breaker, and journal/resume behavior.
    ///
    /// Jobs that exhaust their time budget fail with
    /// [`ExecError::Deadline`]; explicitly cancelled runs with
    /// [`ExecError::Cancelled`]; jobs skipped by an open breaker with
    /// [`ExecError::CircuitOpen`]. Every other job completes normally —
    /// byte-identical to an unconstrained run.
    #[must_use]
    pub fn run_with(
        &self,
        jobs: &[BatchJob],
        opts: &BatchOptions,
    ) -> Vec<Result<Prediction, BatchError>> {
        let _span = gpumech_obs::span!("exec.batch.run", jobs = jobs.len(), workers = self.workers);
        let effective = self.effective_workers();
        if effective < self.workers {
            // Oversubscription is silently corrected; the counter makes
            // the correction visible to operators comparing configured
            // vs. actual throughput.
            gpumech_obs::counter!("exec.pool.workers_clamped");
        }
        // Fingerprint each distinct trace once, not once per job: a
        // config sweep shares one `Arc`d trace across many jobs, and the
        // trace fingerprint (a full-content hash) is a measurable
        // fraction of an analysis. Distinct `Arc`s with equal content
        // just recompute — the key is content-based either way.
        let mut memo: HashMap<*const KernelTrace, u64> = HashMap::new();
        let keys: Vec<CacheKey> = jobs
            .iter()
            .map(|job| CacheKey {
                trace: *memo
                    .entry(Arc::as_ptr(&job.trace))
                    .or_insert_with(|| trace_fingerprint(&job.trace)),
                config: analysis_config_fingerprint(&job.cfg),
            })
            .collect();
        let fingerprints: Vec<u64> =
            jobs.iter().zip(&keys).map(|(job, key)| job_fingerprint(key.trace, job)).collect();

        let journal = opts.journal.as_ref().map(Journal::new);
        let completed = if opts.resume {
            journal.as_ref().map(Journal::load).unwrap_or_default()
        } else {
            HashMap::new()
        };
        let breaker = opts.breaker_threshold.map(CircuitBreaker::new);
        let run_token = opts.run_token();

        // Pool-level fault kinds go to the pool; batch-level kinds are
        // interpreted inside the task below.
        let pool_inject = opts
            .injections
            .iter()
            .copied()
            .find(|f| matches!(f.kind, FaultKind::TaskPanic | FaultKind::PanicHoldingQueueLock));
        let pool_opts = PoolOptions { workers: effective, inject: pool_inject };

        let results = run_indexed(&pool_opts, jobs, |i, job| {
            if let Some(entry) = completed.get(&fingerprints[i]) {
                gpumech_obs::counter!("exec.resilience.journal_hits");
                return serde_json::from_str::<Prediction>(&entry.prediction).map_err(|e| {
                    ExecError::Model(ModelError::Execution(format!("journal replay: {e}")))
                });
            }
            // Check the whole-run budget before spending anything on this
            // job (jobs the run outlived fail fast and uniformly), then
            // the breaker, then actually attempt it. Skipped jobs record
            // nothing against the breaker — only real attempts count.
            let mut outcome = match run_token.check().map_err(interrupt_error) {
                Err(e) => Err(e),
                Ok(()) => match breaker.as_ref().and_then(|b| b.is_open(&job.trace.name)) {
                    Some(failures) => {
                        gpumech_obs::counter!("exec.resilience.breaker_open");
                        Err(ExecError::CircuitOpen { kernel: job.trace.name.clone(), failures })
                    }
                    None => {
                        let outcome = self.run_job_with_retries(i, job, keys[i], opts, &run_token);
                        if let Some(b) = &breaker {
                            match &outcome {
                                Ok(_) => b.record_success(&job.trace.name),
                                Err(_) => {
                                    if b.record_failure(&job.trace.name) {
                                        gpumech_obs::counter!("exec.resilience.breaker_trips");
                                    }
                                }
                            }
                        }
                        outcome
                    }
                },
            };
            match &outcome {
                Err(ExecError::Deadline) => gpumech_obs::counter!("exec.resilience.deadline"),
                Err(ExecError::Cancelled) => gpumech_obs::counter!("exec.resilience.cancelled"),
                _ => {}
            }
            if let (Ok(p), Some(j)) = (&mut outcome, &journal) {
                if let Ok(json) = canonical_prediction_json(p) {
                    // A failed append costs resumability, not correctness;
                    // the warning travels with the prediction.
                    if let Err(w) = j.append(fingerprints[i], &job.label, &json) {
                        p.warnings.push(format!("cache: {w}"));
                    }
                }
            }
            outcome
        });
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.map_err(|error| BatchError {
                    label: jobs[i].label.clone(),
                    config_fingerprint: fingerprints[i],
                    error,
                })
            })
            .collect()
    }

    /// One job under the retry loop: a panic *inside* an attempt is caught
    /// and retried (with backoff) up to `opts.retries` times; every other
    /// outcome — success, model error, expired budget — is final.
    fn run_job_with_retries(
        &self,
        i: usize,
        job: &BatchJob,
        key: CacheKey,
        opts: &BatchOptions,
        run_token: &CancelToken,
    ) -> Result<Prediction, ExecError> {
        let mut attempt: u32 = 0;
        loop {
            let token = opts.job_token(run_token);
            let caught = catch_unwind(AssertUnwindSafe(|| {
                self.run_job_once(i, job, key, opts, &token, attempt)
            }));
            match caught {
                Ok(outcome) => return outcome,
                Err(payload) => {
                    let message = panic_message(&*payload);
                    if attempt >= opts.retries {
                        return Err(ExecError::WorkerPanic { item: i, message });
                    }
                    gpumech_obs::counter!("exec.resilience.retries");
                    std::thread::sleep(Duration::from_nanos(
                        opts.retry_policy.delay_ns(i as u64, attempt),
                    ));
                    attempt += 1;
                }
            }
        }
    }

    /// One attempt of one job, under its per-attempt token.
    fn run_job_once(
        &self,
        i: usize,
        job: &BatchJob,
        key: CacheKey,
        opts: &BatchOptions,
        token: &CancelToken,
        attempt: u32,
    ) -> Result<Prediction, ExecError> {
        for f in &opts.injections {
            if f.item != i {
                continue;
            }
            match f.kind {
                // A hung job: never terminates on its own, only by its
                // token firing. Each poll advances a FakeClock, so
                // fake-time tests terminate too.
                FaultKind::SlowJob => loop {
                    token.check().map_err(interrupt_error)?;
                    std::hint::spin_loop();
                },
                // Panics on the first attempt only — a retry recovers it.
                FaultKind::TransientPanic if attempt == 0 => {
                    maybe_inject(Some(*f), i, FaultKind::TransientPanic);
                }
                _ => {}
            }
        }
        // Validate the *full* configuration before consulting the
        // cache: the fingerprint deliberately ignores prediction-stage
        // fields, so a NaN bandwidth must not ride in on a cache hit.
        job.cfg.validate().map_err(|e| ExecError::Model(ModelError::InvalidConfig(e)))?;
        let model = Gpumech::new(job.cfg.clone());
        let (analysis, cache_warnings) = self
            .cache
            .get_or_compute_logged(key, || model.analyze_cancellable(&job.trace, token))?;
        let request = PredictionRequest::from_analysis(&analysis)
            .policy(job.policy)
            .model(job.model)
            .selection(job.selection)
            .weighting(job.weighting)
            .cancel(token.clone());
        let mut p = model.run(&request).map_err(ExecError::from)?;
        // Disk-layer incidents (quarantined corrupt entries, failed
        // persists) ride along as warnings: environmental, so prefixed and
        // stripped from the canonical JSON used for byte-identity.
        p.warnings.extend(cache_warnings.into_iter().map(|w| format!("cache: {w}")));
        Ok(p)
    }
}

/// Fingerprint identifying one batch job for the resume journal: the
/// trace content, the *full* configuration (prediction-stage fields
/// included — they change the answer even when they don't change the
/// analysis), every pipeline option, and the label (so two sweep points
/// that happen to share a config stay distinct).
#[must_use]
pub fn job_fingerprint(trace_fp: u64, job: &BatchJob) -> u64 {
    let cfg = serde_json::to_string(&job.cfg).unwrap_or_else(|_| format!("{:?}", job.cfg));
    let blob = format!(
        "{trace_fp:016x}|{}|{cfg}|{:?}|{:?}|{:?}|{:?}",
        job.label, job.policy, job.model, job.selection, job.weighting
    );
    payload_checksum(blob.as_bytes())
}

/// [`job_fingerprint`] over a whole job list, fingerprinting each distinct
/// `Arc`d trace once (the same memoization [`BatchEngine::run_with`] uses
/// internally). This is the enumeration-order fingerprint list sharded
/// sweeps partition on and stamp into their manifests — computing it here
/// guarantees the shard partitioner and the journal key agree exactly.
#[must_use]
pub fn job_fingerprints(jobs: &[BatchJob]) -> Vec<u64> {
    let mut memo: HashMap<*const KernelTrace, u64> = HashMap::new();
    jobs.iter()
        .map(|job| {
            let trace_fp = *memo
                .entry(Arc::as_ptr(&job.trace))
                .or_insert_with(|| trace_fingerprint(&job.trace));
            job_fingerprint(trace_fp, job)
        })
        .collect()
}

/// Maps a pipeline interrupt to its execution-layer error.
fn interrupt_error(why: Interrupt) -> ExecError {
    match why {
        Interrupt::DeadlineExceeded => ExecError::Deadline,
        Interrupt::Cancelled => ExecError::Cancelled,
    }
}

/// Parallel per-warp analysis of a single kernel: interval profiles are
/// built concurrently on the pool, cache simulation stays sequential (the
/// shared L2 makes it a whole-trace computation), and the resulting
/// [`Analysis`](gpumech_core::Analysis) is bit-identical to
/// [`Gpumech::analyze`] because profiles are pure per-warp functions
/// published in warp order.
///
/// # Errors
///
/// Exactly [`Gpumech::analyze`]'s errors, plus [`ModelError::Execution`]
/// if a profiling worker panics.
pub fn analyze_parallel(
    model: &Gpumech,
    trace: &KernelTrace,
    workers: usize,
) -> Result<gpumech_core::Analysis, ModelError> {
    model.analyze_with(trace, |warps, cfg, mem| {
        let opts = PoolOptions::new(effective_workers(workers));
        let results = run_indexed(&opts, warps, |_, w| Ok(build_profile(w, cfg, mem)));
        let mut profiles = Vec::with_capacity(results.len());
        for r in results {
            profiles.push(r.map_err(|e| ModelError::Execution(e.to_string()))?);
        }
        Ok(profiles)
    })
}

/// Canonical JSON of a prediction for byte-identity assertions: wall-clock
/// stage timings and `cache: `-prefixed warnings (the only
/// environment-dependent bytes in a [`Prediction`] — a quarantined disk
/// entry changes what happened, not what was predicted) are dropped
/// before serializing.
///
/// # Errors
///
/// Returns [`ModelError::Execution`] if serialization fails (unreachable
/// for predictions produced by this workspace).
pub fn canonical_prediction_json(p: &Prediction) -> Result<String, ModelError> {
    let mut canon = p.clone();
    for stage in &mut canon.report.stages {
        stage.wall_ns = 0;
    }
    canon.warnings.retain(|w| !w.starts_with("cache: "));
    serde_json::to_string(&canon).map_err(|e| ModelError::Execution(format!("serialize: {e}")))
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_trace::workloads;

    fn job(name: &str, cfg: SimConfig) -> BatchJob {
        let trace =
            Arc::new(workloads::by_name(name).unwrap().with_blocks(2).trace().unwrap());
        BatchJob::new(name, trace, cfg)
    }

    #[test]
    fn batch_matches_sequential_run_per_job() {
        let names = ["sdk_vectoradd", "bfs_kernel1", "kmeans_invert_mapping"];
        let jobs: Vec<BatchJob> = names.iter().map(|n| job(n, SimConfig::default())).collect();
        let engine = BatchEngine::new(2);
        let batch = engine.run(&jobs);
        for (j, got) in jobs.iter().zip(&batch) {
            let model = Gpumech::new(j.cfg.clone());
            let seq = model.run(&PredictionRequest::from_trace(&j.trace)).unwrap();
            let got = got.as_ref().unwrap();
            assert_eq!(&seq, got, "{}", j.label);
            assert_eq!(
                canonical_prediction_json(&seq).unwrap(),
                canonical_prediction_json(got).unwrap()
            );
        }
    }

    #[test]
    fn config_sweep_reuses_one_analysis_per_trace() {
        let sweep: Vec<BatchJob> = [48.0, 96.0, 192.0]
            .into_iter()
            .map(|bw| {
                job("cfd_step_factor", SimConfig { dram_bandwidth_gbps: bw, ..SimConfig::default() })
            })
            .collect();
        let engine = BatchEngine::new(2);
        let out = engine.run(&sweep);
        assert!(out.iter().all(Result::is_ok));
        // One trace, three prediction-only configs: exactly one cache entry.
        assert_eq!(engine.cache().len(), 1);
    }

    #[test]
    fn invalid_config_fails_only_its_job_and_names_it() {
        let mut jobs =
            vec![job("sdk_vectoradd", SimConfig::default()), job("bfs_kernel1", SimConfig::default())];
        jobs[1].cfg.num_mshrs = 0;
        let out = BatchEngine::new(2).run(&jobs);
        assert!(out[0].is_ok());
        let err = out[1].as_ref().unwrap_err();
        assert!(matches!(err.error, ExecError::Model(ModelError::InvalidConfig(_))));
        // The error payload identifies the failing job without positional
        // bookkeeping: its label and its config fingerprint.
        assert_eq!(err.label, "bfs_kernel1");
        let key = cache_key_for(&jobs[1]);
        assert_eq!(err.config_fingerprint, job_fingerprint(key.trace, &jobs[1]));
        assert!(err.to_string().contains("bfs_kernel1"), "{err}");
    }

    fn cache_key_for(job: &BatchJob) -> CacheKey {
        CacheKey {
            trace: trace_fingerprint(&job.trace),
            config: analysis_config_fingerprint(&job.cfg),
        }
    }

    #[test]
    fn parallel_per_warp_analysis_is_bit_identical() {
        let trace =
            workloads::by_name("lud_diagonal").unwrap().with_blocks(4).trace().unwrap();
        let model = Gpumech::new(SimConfig::default());
        let seq = model.analyze(&trace).unwrap();
        for workers in [1, 2, 8] {
            let par = analyze_parallel(&model, &trace, workers).unwrap();
            assert_eq!(seq, par, "workers={workers}");
        }
    }
}
