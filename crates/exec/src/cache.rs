//! Content-addressed cache of [`Analysis`] results.
//!
//! The expensive half of a GPUMech run — functional cache simulation plus
//! per-warp interval profiles — depends only on the kernel trace and on
//! the *analysis-relevant* subset of [`SimConfig`] (cache geometry,
//! latencies, issue width, residency). The prediction-stage knobs the
//! paper sweeps in its design-space exploration (DRAM bandwidth, MSHR
//! count, SFU width, clock) do **not** feed the analysis, so a sweep over
//! them can reuse one cached analysis per trace.
//!
//! The cache key is a pair of stable 64-bit content fingerprints (a
//! lane-widened FNV-1a defined by this crate): the full trace content
//! (via `#[derive(Hash)]` on the trace records) and the canonical JSON of
//! a *normalized* configuration whose prediction-only fields are pinned
//! to defaults. Entries live in memory behind `Arc`s; an optional disk
//! directory persists them as JSON (vendored `serde_json`) across
//! processes. Hits, misses, and disk traffic are observable through the
//! `exec.cache.*` counters — the cache test asserts a warm second run
//! does zero analysis work purely from those counters.

use std::collections::HashMap;
use std::fmt;
use std::fs;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use gpumech_core::{Analysis, ModelError};
use gpumech_isa::SimConfig;
use gpumech_trace::KernelTrace;

/// Stable, dependency-free content fingerprint: an FNV-1a variant that
/// absorbs 64-bit lanes per multiply instead of single bytes, with a
/// final avalanche.
///
/// Not `DefaultHasher`: that one is documented to vary across releases,
/// which would silently invalidate on-disk caches on a toolchain bump.
/// Not canonical byte-wise FNV-1a either: a trace fingerprint hashes
/// every dynamic instruction (tens of megabytes for a full-size grid),
/// and one multiply per byte made fingerprinting cost more than half of
/// the analysis it deduplicates. The function is defined by this crate
/// and must never change once released — on-disk cache filenames embed
/// its output.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn absorb(&mut self, lane: u64) {
        self.0 ^= lane;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: the lane-wide multiply alone never moves
        // high input bits toward low output bits.
        let mut h = self.0;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // Little-endian on every platform, so fingerprints (and the
            // disk-cache filenames derived from them) are portable.
            self.absorb(u64::from_le_bytes(c.try_into().unwrap_or([0; 8])));
        }
        for &b in chunks.remainder() {
            self.absorb(u64::from(b));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.absorb(u64::from(v));
    }

    fn write_u16(&mut self, v: u16) {
        self.absorb(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.absorb(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.absorb(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.absorb(v as u64);
    }
}

/// Content fingerprint of a kernel trace (name, launch geometry, and
/// every dynamic instruction).
#[must_use]
pub fn trace_fingerprint(trace: &KernelTrace) -> u64 {
    let mut h = Fnv1a::new();
    trace.hash(&mut h);
    h.finish()
}

/// Fingerprint of the analysis-relevant subset of a configuration.
///
/// Two configurations that differ only in prediction-stage fields (clock,
/// DRAM bandwidth, MSHR count, scratchpad size, SFU width) produce the
/// same fingerprint, because [`gpumech_core::Gpumech::analyze`] produces
/// the same [`Analysis`] for them. Fields are hashed via the canonical
/// JSON of a normalized configuration, so the fingerprint tracks the
/// config schema instead of a hand-maintained field list.
#[must_use]
pub fn analysis_config_fingerprint(cfg: &SimConfig) -> u64 {
    let normalized = SimConfig {
        num_cores: cfg.num_cores,
        simt_width: cfg.simt_width,
        max_warps_per_core: cfg.max_warps_per_core,
        issue_width: cfg.issue_width,
        latencies: cfg.latencies,
        l1: cfg.l1,
        l2: cfg.l2,
        dram_latency: cfg.dram_latency,
        ..SimConfig::default()
    };
    let mut h = Fnv1a::new();
    match serde_json::to_string(&normalized) {
        Ok(json) => json.hash(&mut h),
        // Unreachable for a plain config struct; fall back to hashing the
        // Debug rendering rather than failing the whole cache.
        Err(_) => format!("{normalized:?}").hash(&mut h),
    }
    h.finish()
}

/// A cache key: (trace content, analysis-relevant configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`trace_fingerprint`] of the kernel trace.
    pub trace: u64,
    /// [`analysis_config_fingerprint`] of the machine configuration.
    pub config: u64,
}

/// Computes the cache key for one (trace, configuration) pair.
#[must_use]
pub fn cache_key(trace: &KernelTrace, cfg: &SimConfig) -> CacheKey {
    CacheKey { trace: trace_fingerprint(trace), config: analysis_config_fingerprint(cfg) }
}

/// Magic + version tag opening every on-disk cache entry. Bumping the
/// version invalidates (quarantines) all previously written entries.
pub const DISK_FORMAT_TAG: &str = "GPUMECH-CACHE v2";

/// Checksum of an on-disk payload: the same lane-widened FNV-1a used for
/// fingerprints, applied to the raw payload bytes.
#[must_use]
pub fn payload_checksum(payload: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.write(payload);
    h.finish()
}

/// Why a disk entry was rejected and quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DiskDefect {
    /// Missing/foreign magic line or wrong format version.
    Header,
    /// Header `len` disagrees with the actual payload size (truncation or
    /// trailing garbage).
    Length,
    /// Checksum mismatch (bit rot, torn write).
    Checksum,
    /// Header and checksum fine but the JSON payload did not deserialize
    /// (schema drift).
    Payload,
}

impl fmt::Display for DiskDefect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskDefect::Header => write!(f, "bad or missing header"),
            DiskDefect::Length => write!(f, "payload length mismatch (truncated?)"),
            DiskDefect::Checksum => write!(f, "checksum mismatch"),
            DiskDefect::Payload => write!(f, "unparsable payload"),
        }
    }
}

/// Encodes one entry in the on-disk format:
/// `GPUMECH-CACHE v2 len=<bytes> crc=<16-hex>\n<json payload>`.
fn encode_disk_entry(json: &str) -> String {
    let payload = json.as_bytes();
    format!(
        "{DISK_FORMAT_TAG} len={} crc={:016x}\n{json}",
        payload.len(),
        payload_checksum(payload)
    )
}

/// Validates header, length, and checksum and returns the payload slice.
fn decode_disk_entry(text: &str) -> Result<&str, DiskDefect> {
    let (header, payload) = text.split_once('\n').ok_or(DiskDefect::Header)?;
    let rest = header.strip_prefix(DISK_FORMAT_TAG).ok_or(DiskDefect::Header)?;
    let mut len = None;
    let mut crc = None;
    for field in rest.split_whitespace() {
        if let Some(v) = field.strip_prefix("len=") {
            len = v.parse::<usize>().ok();
        } else if let Some(v) = field.strip_prefix("crc=") {
            crc = u64::from_str_radix(v, 16).ok();
        }
    }
    let (Some(len), Some(crc)) = (len, crc) else { return Err(DiskDefect::Header) };
    if payload.len() != len {
        return Err(DiskDefect::Length);
    }
    if payload_checksum(payload.as_bytes()) != crc {
        return Err(DiskDefect::Checksum);
    }
    Ok(payload)
}

/// In-memory cache state: entries tagged with a logical access clock so
/// eviction can drop the least-recently-used one.
#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<CacheKey, (Arc<Analysis>, u64)>,
    tick: u64,
}

impl CacheState {
    fn touch(&mut self, key: CacheKey) -> Option<Arc<Analysis>> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|(a, used)| {
            *used = tick;
            Arc::clone(a)
        })
    }

    /// Inserts (or refreshes) `key` and evicts least-recently-used entries
    /// beyond `cap`. Returns the canonical `Arc` for `key` plus how many
    /// entries were evicted.
    fn insert_capped(
        &mut self,
        key: CacheKey,
        value: Arc<Analysis>,
        cap: Option<usize>,
    ) -> (Arc<Analysis>, u64) {
        self.tick += 1;
        let tick = self.tick;
        let arc =
            Arc::clone(&self.entries.entry(key).or_insert((value, tick)).0);
        let mut evicted = 0u64;
        if let Some(cap) = cap {
            let cap = cap.max(1);
            while self.entries.len() > cap {
                let victim = self
                    .entries
                    .iter()
                    .filter(|(k, _)| **k != key)
                    .min_by_key(|(_, (_, used))| *used)
                    .map(|(k, _)| *k);
                let Some(victim) = victim else { break };
                self.entries.remove(&victim);
                evicted += 1;
            }
        }
        (arc, evicted)
    }
}

/// Content-addressed, thread-safe cache of [`Analysis`] results.
///
/// In-memory always; [`ProfileCache::with_disk`] additionally persists
/// entries under a directory as `<trace>-<config>.json` files in a
/// versioned, checksummed envelope (see [`DISK_FORMAT_TAG`]), surviving
/// process restarts and — by design — process *crashes*:
///
/// * **Atomic writes** — entries are written to a `.tmp` sibling and
///   renamed into place, so a reader never observes a half-written file;
///   a crash mid-write leaves only a stale `.tmp`, which the next
///   [`ProfileCache::with_disk`] sweeps away.
/// * **Corruption quarantine** — an entry whose header, length, checksum,
///   or payload fails validation is renamed to `<file>.quarantine`
///   (preserved for inspection, never re-read), counted under
///   `exec.cache.quarantined`, reported as a warning, and recomputed.
/// * **Bounded memory** — [`ProfileCache::with_capacity`] caps the
///   in-memory map with least-recently-used eviction
///   (`exec.cache.evictions`); evicted entries remain on disk.
///
/// Disk failures are never fatal: they count as misses and are tallied
/// under `exec.cache.disk_errors`.
#[derive(Debug, Default)]
pub struct ProfileCache {
    state: Mutex<CacheState>,
    disk_dir: Option<PathBuf>,
    max_entries: Option<usize>,
}

impl ProfileCache {
    /// A purely in-memory cache.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A cache that also persists entries under `dir` (created on first
    /// write if missing). Stale `.tmp` files left by a crashed writer are
    /// removed immediately.
    #[must_use]
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        let dir = dir.into();
        Self::sweep_stale_tmp(&dir);
        Self { state: Mutex::new(CacheState::default()), disk_dir: Some(dir), max_entries: None }
    }

    /// Caps the in-memory map at `max_entries` (minimum 1) with LRU
    /// eviction. Disk persistence, if configured, is unaffected: evicted
    /// entries reload from disk on their next use.
    #[must_use]
    pub fn with_capacity(mut self, max_entries: usize) -> Self {
        self.max_entries = Some(max_entries.max(1));
        self
    }

    /// Removes leftover `.tmp` files from a previous writer that died
    /// mid-store. Rename is atomic, so anything still named `.tmp` is by
    /// definition an incomplete write.
    fn sweep_stale_tmp(dir: &std::path::Path) {
        let Ok(entries) = fs::read_dir(dir) else { return };
        for entry in entries.flatten() {
            let path = entry.path();
            if path.extension().is_some_and(|e| e == "tmp") && fs::remove_file(&path).is_ok() {
                gpumech_obs::counter!("exec.cache.stale_tmp_removed");
            }
        }
    }

    /// Number of entries currently held in memory.
    ///
    /// # Panics
    ///
    /// Never: lock poisoning is recovered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.state.lock().unwrap_or_else(PoisonError::into_inner).entries.len()
    }

    /// `true` if no entry is held in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn disk_path(&self, key: CacheKey) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}-{:016x}.json", key.trace, key.config)))
    }

    /// Moves a corrupt entry aside (never deletes it — the bytes are
    /// evidence) and reports what was wrong with it.
    fn quarantine(path: &std::path::Path, defect: DiskDefect, warnings: &mut Vec<String>) {
        let mut target = path.as_os_str().to_owned();
        target.push(".quarantine");
        let moved = fs::rename(path, &target).is_ok();
        gpumech_obs::counter!("exec.cache.quarantined");
        warnings.push(format!(
            "cache entry {} failed validation ({defect}); {} and recomputing",
            path.display(),
            if moved { "quarantined" } else { "could not be quarantined" },
        ));
    }

    fn load_from_disk(&self, key: CacheKey, warnings: &mut Vec<String>) -> Option<Analysis> {
        let path = self.disk_path(key)?;
        // A missing file is the common cold-cache case, not a defect.
        let Ok(bytes) = fs::read(&path) else { return None };
        // An existing file that is not UTF-8 *is* a defect (bit rot in a
        // format that is pure ASCII header + JSON).
        let Ok(text) = String::from_utf8(bytes) else {
            Self::quarantine(&path, DiskDefect::Payload, warnings);
            return None;
        };
        let payload = match decode_disk_entry(&text) {
            Ok(p) => p,
            Err(defect) => {
                Self::quarantine(&path, defect, warnings);
                return None;
            }
        };
        match serde_json::from_str::<Analysis>(payload) {
            Ok(a) => Some(a),
            Err(_) => {
                Self::quarantine(&path, DiskDefect::Payload, warnings);
                None
            }
        }
    }

    fn store_to_disk(&self, key: CacheKey, analysis: &Analysis, warnings: &mut Vec<String>) {
        let Some(path) = self.disk_path(key) else { return };
        let Some(dir) = self.disk_dir.as_ref() else { return };
        // Write to a sibling and rename into place: readers either see the
        // previous complete entry or the new complete entry, never a torn
        // one. A crash between write and rename leaves a `.tmp` that the
        // next `with_disk` sweeps.
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let stored = fs::create_dir_all(dir).is_ok()
            && serde_json::to_string(analysis).is_ok_and(|json| {
                fs::write(&tmp, encode_disk_entry(&json)).is_ok()
                    && fs::rename(&tmp, &path).is_ok()
            });
        if stored {
            gpumech_obs::counter!("exec.cache.disk_writes");
        } else {
            gpumech_obs::counter!("exec.cache.disk_errors");
            warnings.push(format!("failed to persist cache entry {}", path.display()));
        }
    }

    /// Returns the cached [`Analysis`] for `key`, computing and inserting
    /// it via `compute` on a miss. Disk-layer incidents (quarantined
    /// corrupt entries, failed writes) are discarded; use
    /// [`ProfileCache::get_or_compute_logged`] to observe them.
    ///
    /// The lock is **not** held during `compute`, so concurrent workers
    /// analyzing different keys proceed in parallel. Two workers racing on
    /// the same key may both compute; the first insertion wins (both
    /// compute the same value, so callers can't observe the race).
    ///
    /// # Errors
    ///
    /// Propagates whatever `compute` returns on a miss.
    pub fn get_or_compute<F>(&self, key: CacheKey, compute: F) -> Result<Arc<Analysis>, ModelError>
    where
        F: FnOnce() -> Result<Analysis, ModelError>,
    {
        self.get_or_compute_logged(key, compute).map(|(a, _)| a)
    }

    /// [`ProfileCache::get_or_compute`] that additionally returns the
    /// disk-layer warnings raised while serving this key (quarantined
    /// corrupt entries, failed persists). Empty on the happy path.
    ///
    /// # Errors
    ///
    /// Propagates whatever `compute` returns on a miss.
    pub fn get_or_compute_logged<F>(
        &self,
        key: CacheKey,
        compute: F,
    ) -> Result<(Arc<Analysis>, Vec<String>), ModelError>
    where
        F: FnOnce() -> Result<Analysis, ModelError>,
    {
        let mut warnings = Vec::new();
        if let Some(hit) =
            self.state.lock().unwrap_or_else(PoisonError::into_inner).touch(key)
        {
            gpumech_obs::counter!("exec.cache.hits");
            return Ok((hit, warnings));
        }
        if let Some(from_disk) = self.load_from_disk(key, &mut warnings) {
            gpumech_obs::counter!("exec.cache.disk_hits");
            return Ok((self.insert(key, Arc::new(from_disk)), warnings));
        }
        gpumech_obs::counter!("exec.cache.misses");
        let computed = Arc::new(compute()?);
        self.store_to_disk(key, &computed, &mut warnings);
        Ok((self.insert(key, computed), warnings))
    }

    fn insert(&self, key: CacheKey, value: Arc<Analysis>) -> Arc<Analysis> {
        let (arc, evicted) = self
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .insert_capped(key, value, self.max_entries);
        if evicted > 0 {
            gpumech_obs::counter!("exec.cache.evictions", evicted);
        }
        arc
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_core::Gpumech;
    use gpumech_trace::workloads;

    fn small_trace(name: &str) -> KernelTrace {
        workloads::by_name(name).unwrap().with_blocks(2).trace().unwrap()
    }

    #[test]
    fn fingerprints_are_content_sensitive_and_stable() {
        let a = small_trace("sdk_vectoradd");
        let b = small_trace("bfs_kernel1");
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&a.clone()));
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&b));
        let mut mutated = a.clone();
        mutated.warps[0].insts[0].active_mask ^= 1;
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&mutated));
    }

    #[test]
    fn prediction_only_fields_do_not_change_the_config_fingerprint() {
        let base = SimConfig::default();
        // These fields never feed `analyze` — same fingerprint.
        for swept in [
            SimConfig { dram_bandwidth_gbps: 999.0, ..base.clone() },
            SimConfig { num_mshrs: 7, ..base.clone() },
            SimConfig { sfu_per_core: 4, ..base.clone() },
            SimConfig { clock_ghz: 2.5, ..base.clone() },
            SimConfig { shared_mem_kib: 48, ..base.clone() },
        ] {
            assert_eq!(
                analysis_config_fingerprint(&base),
                analysis_config_fingerprint(&swept),
                "prediction-only field changed the analysis fingerprint"
            );
        }
        // These do feed `analyze` — fingerprint must move.
        for relevant in [
            SimConfig { max_warps_per_core: 16, ..base.clone() },
            SimConfig { dram_latency: 77, ..base.clone() },
            SimConfig { issue_width: 2, ..base.clone() },
        ] {
            assert_ne!(analysis_config_fingerprint(&base), analysis_config_fingerprint(&relevant));
        }
    }

    /// The safety property behind the fingerprint: configs that agree on
    /// analysis-relevant fields really do produce equal analyses.
    #[test]
    fn excluded_fields_cannot_change_the_analysis() {
        let trace = small_trace("kmeans_invert_mapping");
        let base = SimConfig::default();
        let swept = SimConfig {
            dram_bandwidth_gbps: 57.0,
            num_mshrs: 5,
            sfu_per_core: 8,
            clock_ghz: 0.7,
            ..base.clone()
        };
        assert_eq!(analysis_config_fingerprint(&base), analysis_config_fingerprint(&swept));
        let a = Gpumech::new(base).analyze(&trace).unwrap();
        let b = Gpumech::new(swept).analyze(&trace).unwrap();
        assert_eq!(a, b, "fingerprint-equal configs must be analysis-equal");
    }

    #[test]
    fn memory_cache_computes_once_per_key() {
        let trace = small_trace("sdk_vectoradd");
        let cfg = SimConfig::default();
        let cache = ProfileCache::in_memory();
        let key = cache_key(&trace, &cfg);
        let mut computes = 0usize;
        for _ in 0..3 {
            let got = cache
                .get_or_compute(key, || {
                    computes += 1;
                    Gpumech::new(cfg.clone()).analyze(&trace)
                })
                .unwrap();
            assert_eq!(got.profiles.len(), trace.warps.len());
        }
        assert_eq!(computes, 1, "same key must hit after the first compute");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_cache_round_trips_bit_identical_analyses() {
        let dir = std::env::temp_dir().join(format!("gpumech-exec-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let trace = small_trace("parboil_spmv");
        let cfg = SimConfig::default();
        let key = cache_key(&trace, &cfg);
        let fresh = {
            let cache = ProfileCache::with_disk(&dir);
            cache.get_or_compute(key, || Gpumech::new(cfg.clone()).analyze(&trace)).unwrap()
        };
        // A new cache instance (cold memory) must load the entry from disk
        // without calling compute, and the loaded value must be equal.
        let cold = ProfileCache::with_disk(&dir);
        let reloaded = cold
            .get_or_compute(key, || {
                panic!("disk hit expected; compute must not run")
            })
            .unwrap();
        assert_eq!(*fresh, *reloaded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compute_errors_propagate_and_are_not_cached() {
        let cache = ProfileCache::in_memory();
        let key = CacheKey { trace: 1, config: 2 };
        let err = cache.get_or_compute(key, || Err(ModelError::EmptyKernel)).unwrap_err();
        assert_eq!(err, ModelError::EmptyKernel);
        assert!(cache.is_empty());
    }

    #[test]
    fn disk_envelope_round_trips_and_rejects_each_defect() {
        let entry = encode_disk_entry(r#"{"x":1}"#);
        assert_eq!(decode_disk_entry(&entry).unwrap(), r#"{"x":1}"#);
        // Wrong version tag.
        let old = entry.replace("v2", "v1");
        assert_eq!(decode_disk_entry(&old), Err(DiskDefect::Header));
        // Truncated payload: header length no longer matches.
        let truncated = &entry[..entry.len() - 2];
        assert_eq!(decode_disk_entry(truncated), Err(DiskDefect::Length));
        // Same-length payload corruption: checksum catches it.
        let flipped = entry.replace(r#"{"x":1}"#, r#"{"x":2}"#);
        assert_eq!(decode_disk_entry(&flipped), Err(DiskDefect::Checksum));
        // No header line at all (a v1-era bare-JSON file).
        assert_eq!(decode_disk_entry(r#"{"x":1}"#), Err(DiskDefect::Header));
    }

    #[test]
    fn corrupt_disk_entry_is_quarantined_and_recomputed() {
        let dir =
            std::env::temp_dir().join(format!("gpumech-cache-quarantine-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let trace = small_trace("sdk_vectoradd");
        let cfg = SimConfig::default();
        let key = cache_key(&trace, &cfg);
        {
            let cache = ProfileCache::with_disk(&dir);
            cache.get_or_compute(key, || Gpumech::new(cfg.clone()).analyze(&trace)).unwrap();
        }
        // Corrupt the stored entry in place (flip a payload byte).
        let path = dir.join(format!("{:016x}-{:016x}.json", key.trace, key.config));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();

        let cold = ProfileCache::with_disk(&dir);
        let mut computed = false;
        let (got, warnings) = cold
            .get_or_compute_logged(key, || {
                computed = true;
                Gpumech::new(cfg.clone()).analyze(&trace)
            })
            .unwrap();
        assert!(computed, "corrupt entry must be recomputed, not trusted");
        assert_eq!(got.profiles.len(), trace.warps.len());
        assert_eq!(warnings.len(), 1, "one warning for the quarantined entry: {warnings:?}");
        assert!(warnings[0].contains("quarantined"), "{warnings:?}");
        let mut quarantined = path.clone().into_os_string();
        quarantined.push(".quarantine");
        assert!(std::path::Path::new(&quarantined).exists(), "corrupt bytes must be preserved");
        assert!(!path.exists() || decode_disk_entry(&fs::read_to_string(&path).unwrap()).is_ok());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_tmp_files_are_swept_on_open() {
        let dir = std::env::temp_dir().join(format!("gpumech-cache-tmp-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let stale = dir.join("0000000000000000-0000000000000000.json.tmp");
        fs::write(&stale, "half-written").unwrap();
        let _cache = ProfileCache::with_disk(&dir);
        assert!(!stale.exists(), "stale .tmp from a crashed writer must be removed");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_capacity_evicts_the_least_recently_used_entry() {
        let cache = ProfileCache::in_memory().with_capacity(2);
        let trace = small_trace("sdk_vectoradd");
        let cfg = SimConfig::default();
        let analysis = Gpumech::new(cfg.clone()).analyze(&trace).unwrap();
        let key = |i: u64| CacheKey { trace: i, config: 0 };
        for i in 0..2 {
            cache.get_or_compute(key(i), || Ok(analysis.clone())).unwrap();
        }
        // Touch key 0 so key 1 becomes the LRU victim.
        let mut recomputed = false;
        cache
            .get_or_compute(key(0), || {
                recomputed = true;
                Ok(analysis.clone())
            })
            .unwrap();
        assert!(!recomputed, "key 0 must still be cached");
        cache.get_or_compute(key(2), || Ok(analysis.clone())).unwrap();
        assert_eq!(cache.len(), 2, "capacity must hold");
        let mut hit0 = true;
        cache
            .get_or_compute(key(0), || {
                hit0 = false;
                Ok(analysis.clone())
            })
            .unwrap();
        assert!(hit0, "recently used key 0 must survive eviction");
        let mut hit1 = true;
        cache
            .get_or_compute(key(1), || {
                hit1 = false;
                Ok(analysis.clone())
            })
            .unwrap();
        assert!(!hit1, "least-recently-used key 1 must have been evicted");
    }
}
