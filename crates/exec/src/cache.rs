//! Content-addressed cache of [`Analysis`] results.
//!
//! The expensive half of a GPUMech run — functional cache simulation plus
//! per-warp interval profiles — depends only on the kernel trace and on
//! the *analysis-relevant* subset of [`SimConfig`] (cache geometry,
//! latencies, issue width, residency). The prediction-stage knobs the
//! paper sweeps in its design-space exploration (DRAM bandwidth, MSHR
//! count, SFU width, clock) do **not** feed the analysis, so a sweep over
//! them can reuse one cached analysis per trace.
//!
//! The cache key is a pair of stable 64-bit content fingerprints (a
//! lane-widened FNV-1a defined by this crate): the full trace content
//! (via `#[derive(Hash)]` on the trace records) and the canonical JSON of
//! a *normalized* configuration whose prediction-only fields are pinned
//! to defaults. Entries live in memory behind `Arc`s; an optional disk
//! directory persists them as JSON (vendored `serde_json`) across
//! processes. Hits, misses, and disk traffic are observable through the
//! `exec.cache.*` counters — the cache test asserts a warm second run
//! does zero analysis work purely from those counters.

use std::collections::HashMap;
use std::fs;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use gpumech_core::{Analysis, ModelError};
use gpumech_isa::SimConfig;
use gpumech_trace::KernelTrace;

/// Stable, dependency-free content fingerprint: an FNV-1a variant that
/// absorbs 64-bit lanes per multiply instead of single bytes, with a
/// final avalanche.
///
/// Not `DefaultHasher`: that one is documented to vary across releases,
/// which would silently invalidate on-disk caches on a toolchain bump.
/// Not canonical byte-wise FNV-1a either: a trace fingerprint hashes
/// every dynamic instruction (tens of megabytes for a full-size grid),
/// and one multiply per byte made fingerprinting cost more than half of
/// the analysis it deduplicates. The function is defined by this crate
/// and must never change once released — on-disk cache filenames embed
/// its output.
struct Fnv1a(u64);

impl Fnv1a {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Self(Self::OFFSET)
    }

    fn absorb(&mut self, lane: u64) {
        self.0 ^= lane;
        self.0 = self.0.wrapping_mul(Self::PRIME);
    }
}

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        // splitmix64 finalizer: the lane-wide multiply alone never moves
        // high input bits toward low output bits.
        let mut h = self.0;
        h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        h ^ (h >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            // Little-endian on every platform, so fingerprints (and the
            // disk-cache filenames derived from them) are portable.
            self.absorb(u64::from_le_bytes(c.try_into().unwrap_or([0; 8])));
        }
        for &b in chunks.remainder() {
            self.absorb(u64::from(b));
        }
    }

    fn write_u8(&mut self, v: u8) {
        self.absorb(u64::from(v));
    }

    fn write_u16(&mut self, v: u16) {
        self.absorb(u64::from(v));
    }

    fn write_u32(&mut self, v: u32) {
        self.absorb(u64::from(v));
    }

    fn write_u64(&mut self, v: u64) {
        self.absorb(v);
    }

    fn write_usize(&mut self, v: usize) {
        self.absorb(v as u64);
    }
}

/// Content fingerprint of a kernel trace (name, launch geometry, and
/// every dynamic instruction).
#[must_use]
pub fn trace_fingerprint(trace: &KernelTrace) -> u64 {
    let mut h = Fnv1a::new();
    trace.hash(&mut h);
    h.finish()
}

/// Fingerprint of the analysis-relevant subset of a configuration.
///
/// Two configurations that differ only in prediction-stage fields (clock,
/// DRAM bandwidth, MSHR count, scratchpad size, SFU width) produce the
/// same fingerprint, because [`gpumech_core::Gpumech::analyze`] produces
/// the same [`Analysis`] for them. Fields are hashed via the canonical
/// JSON of a normalized configuration, so the fingerprint tracks the
/// config schema instead of a hand-maintained field list.
#[must_use]
pub fn analysis_config_fingerprint(cfg: &SimConfig) -> u64 {
    let normalized = SimConfig {
        num_cores: cfg.num_cores,
        simt_width: cfg.simt_width,
        max_warps_per_core: cfg.max_warps_per_core,
        issue_width: cfg.issue_width,
        latencies: cfg.latencies,
        l1: cfg.l1,
        l2: cfg.l2,
        dram_latency: cfg.dram_latency,
        ..SimConfig::default()
    };
    let mut h = Fnv1a::new();
    match serde_json::to_string(&normalized) {
        Ok(json) => json.hash(&mut h),
        // Unreachable for a plain config struct; fall back to hashing the
        // Debug rendering rather than failing the whole cache.
        Err(_) => format!("{normalized:?}").hash(&mut h),
    }
    h.finish()
}

/// A cache key: (trace content, analysis-relevant configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// [`trace_fingerprint`] of the kernel trace.
    pub trace: u64,
    /// [`analysis_config_fingerprint`] of the machine configuration.
    pub config: u64,
}

/// Computes the cache key for one (trace, configuration) pair.
#[must_use]
pub fn cache_key(trace: &KernelTrace, cfg: &SimConfig) -> CacheKey {
    CacheKey { trace: trace_fingerprint(trace), config: analysis_config_fingerprint(cfg) }
}

/// Content-addressed, thread-safe cache of [`Analysis`] results.
///
/// In-memory always; [`ProfileCache::with_disk`] additionally persists
/// entries as JSON files named `<trace>-<config>.json` under a directory,
/// surviving process restarts. Disk failures (unreadable file, stale
/// schema) are never fatal: they count as misses and are tallied under
/// `exec.cache.disk_errors`.
#[derive(Debug, Default)]
pub struct ProfileCache {
    map: Mutex<HashMap<CacheKey, Arc<Analysis>>>,
    disk_dir: Option<PathBuf>,
}

impl ProfileCache {
    /// A purely in-memory cache.
    #[must_use]
    pub fn in_memory() -> Self {
        Self::default()
    }

    /// A cache that also persists entries under `dir` (created on first
    /// write if missing).
    #[must_use]
    pub fn with_disk(dir: impl Into<PathBuf>) -> Self {
        Self { map: Mutex::new(HashMap::new()), disk_dir: Some(dir.into()) }
    }

    /// Number of entries currently held in memory.
    ///
    /// # Panics
    ///
    /// Never: lock poisoning is recovered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// `true` if no entry is held in memory.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn disk_path(&self, key: CacheKey) -> Option<PathBuf> {
        self.disk_dir
            .as_ref()
            .map(|d| d.join(format!("{:016x}-{:016x}.json", key.trace, key.config)))
    }

    fn load_from_disk(&self, key: CacheKey) -> Option<Analysis> {
        let path = self.disk_path(key)?;
        let text = fs::read_to_string(&path).ok()?;
        match serde_json::from_str::<Analysis>(&text) {
            Ok(a) => Some(a),
            Err(_) => {
                gpumech_obs::counter!("exec.cache.disk_errors");
                None
            }
        }
    }

    fn store_to_disk(&self, key: CacheKey, analysis: &Analysis) {
        let Some(path) = self.disk_path(key) else { return };
        let stored = self.disk_dir.as_ref().is_some_and(|dir| {
            fs::create_dir_all(dir).is_ok()
                && serde_json::to_string(analysis)
                    .is_ok_and(|json| fs::write(&path, json).is_ok())
        });
        if stored {
            gpumech_obs::counter!("exec.cache.disk_writes");
        } else {
            gpumech_obs::counter!("exec.cache.disk_errors");
        }
    }

    /// Returns the cached [`Analysis`] for `key`, computing and inserting
    /// it via `compute` on a miss.
    ///
    /// The lock is **not** held during `compute`, so concurrent workers
    /// analyzing different keys proceed in parallel. Two workers racing on
    /// the same key may both compute; the first insertion wins (both
    /// compute the same value, so callers can't observe the race).
    ///
    /// # Errors
    ///
    /// Propagates whatever `compute` returns on a miss.
    pub fn get_or_compute<F>(&self, key: CacheKey, compute: F) -> Result<Arc<Analysis>, ModelError>
    where
        F: FnOnce() -> Result<Analysis, ModelError>,
    {
        if let Some(hit) = self.map.lock().unwrap_or_else(PoisonError::into_inner).get(&key) {
            gpumech_obs::counter!("exec.cache.hits");
            return Ok(Arc::clone(hit));
        }
        if let Some(from_disk) = self.load_from_disk(key) {
            gpumech_obs::counter!("exec.cache.disk_hits");
            let arc = Arc::new(from_disk);
            return Ok(Arc::clone(
                self.map
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .entry(key)
                    .or_insert(arc),
            ));
        }
        gpumech_obs::counter!("exec.cache.misses");
        let computed = Arc::new(compute()?);
        self.store_to_disk(key, &computed);
        Ok(Arc::clone(
            self.map
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .entry(key)
                .or_insert(computed),
        ))
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_core::Gpumech;
    use gpumech_trace::workloads;

    fn small_trace(name: &str) -> KernelTrace {
        workloads::by_name(name).unwrap().with_blocks(2).trace().unwrap()
    }

    #[test]
    fn fingerprints_are_content_sensitive_and_stable() {
        let a = small_trace("sdk_vectoradd");
        let b = small_trace("bfs_kernel1");
        assert_eq!(trace_fingerprint(&a), trace_fingerprint(&a.clone()));
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&b));
        let mut mutated = a.clone();
        mutated.warps[0].insts[0].active_mask ^= 1;
        assert_ne!(trace_fingerprint(&a), trace_fingerprint(&mutated));
    }

    #[test]
    fn prediction_only_fields_do_not_change_the_config_fingerprint() {
        let base = SimConfig::default();
        // These fields never feed `analyze` — same fingerprint.
        for swept in [
            SimConfig { dram_bandwidth_gbps: 999.0, ..base.clone() },
            SimConfig { num_mshrs: 7, ..base.clone() },
            SimConfig { sfu_per_core: 4, ..base.clone() },
            SimConfig { clock_ghz: 2.5, ..base.clone() },
            SimConfig { shared_mem_kib: 48, ..base.clone() },
        ] {
            assert_eq!(
                analysis_config_fingerprint(&base),
                analysis_config_fingerprint(&swept),
                "prediction-only field changed the analysis fingerprint"
            );
        }
        // These do feed `analyze` — fingerprint must move.
        for relevant in [
            SimConfig { max_warps_per_core: 16, ..base.clone() },
            SimConfig { dram_latency: 77, ..base.clone() },
            SimConfig { issue_width: 2, ..base.clone() },
        ] {
            assert_ne!(analysis_config_fingerprint(&base), analysis_config_fingerprint(&relevant));
        }
    }

    /// The safety property behind the fingerprint: configs that agree on
    /// analysis-relevant fields really do produce equal analyses.
    #[test]
    fn excluded_fields_cannot_change_the_analysis() {
        let trace = small_trace("kmeans_invert_mapping");
        let base = SimConfig::default();
        let swept = SimConfig {
            dram_bandwidth_gbps: 57.0,
            num_mshrs: 5,
            sfu_per_core: 8,
            clock_ghz: 0.7,
            ..base.clone()
        };
        assert_eq!(analysis_config_fingerprint(&base), analysis_config_fingerprint(&swept));
        let a = Gpumech::new(base).analyze(&trace).unwrap();
        let b = Gpumech::new(swept).analyze(&trace).unwrap();
        assert_eq!(a, b, "fingerprint-equal configs must be analysis-equal");
    }

    #[test]
    fn memory_cache_computes_once_per_key() {
        let trace = small_trace("sdk_vectoradd");
        let cfg = SimConfig::default();
        let cache = ProfileCache::in_memory();
        let key = cache_key(&trace, &cfg);
        let mut computes = 0usize;
        for _ in 0..3 {
            let got = cache
                .get_or_compute(key, || {
                    computes += 1;
                    Gpumech::new(cfg.clone()).analyze(&trace)
                })
                .unwrap();
            assert_eq!(got.profiles.len(), trace.warps.len());
        }
        assert_eq!(computes, 1, "same key must hit after the first compute");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn disk_cache_round_trips_bit_identical_analyses() {
        let dir = std::env::temp_dir().join(format!("gpumech-exec-cache-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let trace = small_trace("parboil_spmv");
        let cfg = SimConfig::default();
        let key = cache_key(&trace, &cfg);
        let fresh = {
            let cache = ProfileCache::with_disk(&dir);
            cache.get_or_compute(key, || Gpumech::new(cfg.clone()).analyze(&trace)).unwrap()
        };
        // A new cache instance (cold memory) must load the entry from disk
        // without calling compute, and the loaded value must be equal.
        let cold = ProfileCache::with_disk(&dir);
        let reloaded = cold
            .get_or_compute(key, || {
                panic!("disk hit expected; compute must not run")
            })
            .unwrap();
        assert_eq!(*fresh, *reloaded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compute_errors_propagate_and_are_not_cached() {
        let cache = ProfileCache::in_memory();
        let key = CacheKey { trace: 1, config: 2 };
        let err = cache.get_or_compute(key, || Err(ModelError::EmptyKernel)).unwrap_err();
        assert_eq!(err, ModelError::EmptyKernel);
        assert!(cache.is_empty());
    }
}
