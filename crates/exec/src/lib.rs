//! Parallel execution engine for the GPUMech pipeline.
//!
//! GPUMech's selling point over cycle-accurate simulation is speed, and
//! speed at fleet scale means running *many* pipeline invocations — all
//! bundled workloads, swept across machine configurations — not one. This
//! crate supplies the three pieces that make that cheap without touching
//! the model's numerics:
//!
//! 1. **Worker pool** ([`pool`]) — a scoped, zero-external-dep thread pool
//!    over [`std::thread::scope`] with a deterministic work queue: items
//!    are claimed by atomic index and results land in their item's slot,
//!    so the output order (and content, for pure tasks) is independent of
//!    worker count and interleaving. Workers are panic-isolated: a panic
//!    inside one task surfaces as a typed [`ExecError`] for that item
//!    while the rest of the batch completes.
//! 2. **Profile cache** ([`cache`]) — a content-addressed cache of
//!    [`Analysis`](gpumech_core::Analysis) results keyed by (trace
//!    fingerprint, analysis-relevant-config fingerprint). Interval
//!    profiles are computed once per (trace, cache configuration) and
//!    reused across config sweeps that only vary prediction-stage
//!    parameters (bandwidth, MSHRs, SFU width, clock), and optionally
//!    persisted to disk via the vendored `serde_json`.
//! 3. **Batch engine** ([`batch`]) — ties both together:
//!    [`BatchJob`] descriptors in,
//!    [`Prediction`](gpumech_core::Prediction)s out, bit-identical to the
//!    sequential path. Per-warp parallelism inside a single kernel is
//!    available through [`batch::analyze_parallel`], built on the
//!    [`Gpumech::analyze_with`](gpumech_core::Gpumech::analyze_with) seam.
//!
//! A fourth piece, the **resilience layer** ([`resilience`]), makes the
//! batch engine safe to run unattended: whole-run deadlines and per-job
//! timeouts propagated as [`CancelToken`](gpumech_obs::CancelToken)s
//! through every pipeline stage, deterministic retry with jittered
//! exponential backoff for transient worker panics, a per-kernel circuit
//! breaker that stops feeding a kernel whose jobs keep dying, and a
//! crash-safe completion journal that lets an interrupted sweep resume
//! without repeating finished jobs.
//!
//! Everything is instrumented under the existing `gpumech-obs` scheme
//! (`exec.pool.*`, `exec.cache.*`, `exec.batch.*`, `exec.resilience.*`
//! spans and counters).

pub mod batch;
pub mod cache;
pub mod pool;
pub mod resilience;

use std::fmt;

use gpumech_core::ModelError;
use gpumech_obs::Interrupt;

pub use batch::{analyze_parallel, canonical_prediction_json, job_fingerprint, job_fingerprints,
                BatchEngine, BatchJob};
pub use cache::{analysis_config_fingerprint, cache_key, trace_fingerprint, CacheKey, ProfileCache};
pub use pool::{run_indexed, FaultInjection, FaultKind, PoolOptions};
pub use resilience::{BatchOptions, CircuitBreaker, RetryPolicy};

/// Error produced by the execution layer for one work item.
///
/// The pool never aborts a batch: each item independently resolves to a
/// value or to one of these, so callers always get exactly one outcome
/// per submitted item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The model itself rejected the item (propagated unchanged).
    Model(ModelError),
    /// The worker running this item panicked; the panic was contained and
    /// the rest of the batch continued.
    WorkerPanic {
        /// Index of the item whose task panicked.
        item: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// The item's result slot was empty after the pool drained — the
    /// worker died between computing and publishing the result (e.g. a
    /// panic while holding the queue lock).
    ResultLost {
        /// Index of the item whose result vanished.
        item: usize,
    },
    /// The job ran out of time: its per-job timeout or the whole-run
    /// deadline fired and the pipeline aborted at its next cancellation
    /// poll point.
    Deadline,
    /// The run was cancelled explicitly (a fired
    /// [`CancelToken`](gpumech_obs::CancelToken), not a deadline).
    Cancelled,
    /// The per-kernel circuit breaker was open: previous jobs for the same
    /// kernel failed too many times in a row, so this one was skipped
    /// without being attempted.
    CircuitOpen {
        /// Name of the kernel whose breaker is open.
        kernel: String,
        /// Consecutive failures that tripped the breaker.
        failures: u32,
    },
    /// Static verification rejected the kernel before any tracing: every
    /// job over this kernel is skipped (a prediction for an undefined
    /// kernel would be meaningless, not merely inaccurate).
    RejectedByAnalysis {
        /// Name of the rejected kernel.
        kernel: String,
        /// Rendered Error-severity findings, in severity order.
        findings: Vec<String>,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Model(e) => write!(f, "model error: {e}"),
            ExecError::WorkerPanic { item, message } => {
                write!(f, "worker panicked on item {item}: {message}")
            }
            ExecError::ResultLost { item } => {
                write!(f, "result for item {item} was lost before publication")
            }
            ExecError::Deadline => write!(f, "deadline exceeded"),
            ExecError::Cancelled => write!(f, "cancelled"),
            ExecError::CircuitOpen { kernel, failures } => {
                write!(f, "circuit breaker open for kernel {kernel:?} after {failures} consecutive failures")
            }
            ExecError::RejectedByAnalysis { kernel, findings } => {
                write!(
                    f,
                    "kernel {kernel:?} rejected by static verification ({} finding{}): {}",
                    findings.len(),
                    if findings.len() == 1 { "" } else { "s" },
                    findings.first().map_or("", String::as_str)
                )
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Model(e) => Some(e),
            ExecError::WorkerPanic { .. }
            | ExecError::ResultLost { .. }
            | ExecError::Deadline
            | ExecError::Cancelled
            | ExecError::CircuitOpen { .. }
            | ExecError::RejectedByAnalysis { .. } => None,
        }
    }
}

impl From<ModelError> for ExecError {
    fn from(e: ModelError) -> Self {
        // An interrupted pipeline is a scheduling outcome, not a model
        // defect: surface it as the execution-layer variant so callers can
        // distinguish "ran out of budget" from "the model rejected it".
        match e {
            ModelError::Interrupted(Interrupt::DeadlineExceeded) => ExecError::Deadline,
            ModelError::Interrupted(Interrupt::Cancelled) => ExecError::Cancelled,
            other => ExecError::Model(other),
        }
    }
}

/// One batch job's failure, carrying enough identity to act on it: the
/// job's human-readable label (which names the kernel) and the
/// fingerprint of its full configuration, alongside the typed error.
///
/// The batch engine returns this instead of a bare [`ExecError`] so a
/// report line like `bfs_kernel1 @ 96GB/s: deadline exceeded` can be
/// produced without re-deriving which job the error belonged to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchError {
    /// The failing job's label (kernel name plus sweep point).
    pub label: String,
    /// Fingerprint of the job's full configuration and options (the same
    /// fingerprint the resume journal keys on).
    pub config_fingerprint: u64,
    /// What went wrong.
    pub error: ExecError,
}

impl fmt::Display for BatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job {:?} (config {:016x}): {}", self.label, self.config_fingerprint, self.error)
    }
}

impl std::error::Error for BatchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}
