//! Parallel execution engine for the GPUMech pipeline.
//!
//! GPUMech's selling point over cycle-accurate simulation is speed, and
//! speed at fleet scale means running *many* pipeline invocations — all
//! bundled workloads, swept across machine configurations — not one. This
//! crate supplies the three pieces that make that cheap without touching
//! the model's numerics:
//!
//! 1. **Worker pool** ([`pool`]) — a scoped, zero-external-dep thread pool
//!    over [`std::thread::scope`] with a deterministic work queue: items
//!    are claimed by atomic index and results land in their item's slot,
//!    so the output order (and content, for pure tasks) is independent of
//!    worker count and interleaving. Workers are panic-isolated: a panic
//!    inside one task surfaces as a typed [`ExecError`] for that item
//!    while the rest of the batch completes.
//! 2. **Profile cache** ([`cache`]) — a content-addressed cache of
//!    [`Analysis`](gpumech_core::Analysis) results keyed by (trace
//!    fingerprint, analysis-relevant-config fingerprint). Interval
//!    profiles are computed once per (trace, cache configuration) and
//!    reused across config sweeps that only vary prediction-stage
//!    parameters (bandwidth, MSHRs, SFU width, clock), and optionally
//!    persisted to disk via the vendored `serde_json`.
//! 3. **Batch engine** ([`batch`]) — ties both together:
//!    [`BatchJob`] descriptors in,
//!    [`Prediction`](gpumech_core::Prediction)s out, bit-identical to the
//!    sequential path. Per-warp parallelism inside a single kernel is
//!    available through [`batch::analyze_parallel`], built on the
//!    [`Gpumech::analyze_with`](gpumech_core::Gpumech::analyze_with) seam.
//!
//! Everything is instrumented under the existing `gpumech-obs` scheme
//! (`exec.pool.*`, `exec.cache.*`, `exec.batch.*` spans and counters).

pub mod batch;
pub mod cache;
pub mod pool;

use std::fmt;

use gpumech_core::ModelError;

pub use batch::{analyze_parallel, canonical_prediction_json, BatchEngine, BatchJob};
pub use cache::{analysis_config_fingerprint, cache_key, trace_fingerprint, CacheKey, ProfileCache};
pub use pool::{run_indexed, FaultInjection, FaultKind, PoolOptions};

/// Error produced by the execution layer for one work item.
///
/// The pool never aborts a batch: each item independently resolves to a
/// value or to one of these, so callers always get exactly one outcome
/// per submitted item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The model itself rejected the item (propagated unchanged).
    Model(ModelError),
    /// The worker running this item panicked; the panic was contained and
    /// the rest of the batch continued.
    WorkerPanic {
        /// Index of the item whose task panicked.
        item: usize,
        /// Rendered panic payload.
        message: String,
    },
    /// The item's result slot was empty after the pool drained — the
    /// worker died between computing and publishing the result (e.g. a
    /// panic while holding the queue lock).
    ResultLost {
        /// Index of the item whose result vanished.
        item: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Model(e) => write!(f, "model error: {e}"),
            ExecError::WorkerPanic { item, message } => {
                write!(f, "worker panicked on item {item}: {message}")
            }
            ExecError::ResultLost { item } => {
                write!(f, "result for item {item} was lost before publication")
            }
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::Model(e) => Some(e),
            ExecError::WorkerPanic { .. } | ExecError::ResultLost { .. } => None,
        }
    }
}

impl From<ModelError> for ExecError {
    fn from(e: ModelError) -> Self {
        ExecError::Model(e)
    }
}
