//! The scoped worker pool: deterministic work distribution with
//! panic-isolated workers.
//!
//! The pool is intentionally minimal — no channels, no futures, no
//! external crates. Work items are claimed off a shared atomic index and
//! each result is published into the slot of the item that produced it,
//! which gives the two properties the rest of the crate is built on:
//!
//! * **Determinism** — for pure tasks, the returned vector is identical
//!   for any worker count and any thread interleaving, because slot `i`
//!   only ever holds the result of item `i`.
//! * **Graceful degradation** — a panicking task poisons nothing but its
//!   own slot: the payload is caught in the worker, rendered into
//!   [`ExecError::WorkerPanic`], and the worker moves on to the next item.
//!
//! Fault injection (used by the `gpumech-fault` suite) can force a task
//! panic or — the nastier case — a panic *while holding the result-queue
//! lock*, which poisons the mutex. All lock acquisitions recover from
//! poisoning via [`PoisonError::into_inner`], so the only casualty is the
//! slot that was being written, which surfaces as
//! [`ExecError::ResultLost`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::ExecError;

/// Which fault the pool should inject (test/fault-suite hook).
///
/// The first two are *pool-level* faults triggered by the injection
/// checks inside [`run_indexed`]. The remaining
/// kinds are *batch-level* faults interpreted by
/// [`BatchEngine::run_with`](crate::batch::BatchEngine::run_with) inside
/// the job task itself — the pool never matches them, so they pass
/// through `run_indexed` unnoticed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic at the start of the victim item's task.
    TaskPanic,
    /// Panic after acquiring the result-queue lock for the victim item,
    /// poisoning the mutex with the result unpublished.
    PanicHoldingQueueLock,
    /// Batch-level: the victim job never terminates on its own — it spins
    /// polling its [`CancelToken`](gpumech_obs::CancelToken) until a
    /// timeout or deadline fires. Models a hung analysis.
    SlowJob,
    /// Batch-level: the victim job panics on its *first* attempt only, so
    /// a retry policy with at least one retry recovers it. Models a
    /// transient fault.
    TransientPanic,
}

/// A deliberate fault to inject into one work item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultInjection {
    /// Index of the victim item.
    pub item: usize,
    /// The fault to trigger.
    pub kind: FaultKind,
}

/// Pool configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct PoolOptions {
    /// Worker threads to spawn. `0` means one worker; the pool also never
    /// spawns more workers than there are items.
    pub workers: usize,
    /// Optional deliberate fault (fault-suite hook). `None` in production.
    pub inject: Option<FaultInjection>,
}

impl PoolOptions {
    /// Options for `workers` threads with no fault injection.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self { workers, inject: None }
    }

    /// Options with a deliberate fault for the suite to observe.
    #[must_use]
    pub fn with_injection(workers: usize, inject: FaultInjection) -> Self {
        Self { workers, inject: Some(inject) }
    }
}

/// Deliberately panics when `inject` targets item `i` with `kind`.
///
/// The only sanctioned panic site in this crate: it exists so the fault
/// suite can prove the pool (and the batch retry loop, which calls it for
/// [`FaultKind::TransientPanic`]) contains arbitrary task panics, and it
/// is disabled (`inject: None`) on every production path.
#[allow(clippy::panic)]
pub(crate) fn maybe_inject(inject: Option<FaultInjection>, i: usize, kind: FaultKind) {
    if let Some(f) = inject {
        if f.item == i && f.kind == kind {
            panic!("injected fault {kind:?} on item {i}");
        }
    }
}

/// Renders a caught panic payload for the error message.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs `task` over every item on a scoped worker pool, returning one
/// outcome per item, in item order.
///
/// Items are claimed by atomic index (a deterministic work queue: no
/// per-worker sharding, no stealing) and results are published into the
/// claiming item's slot, so for pure tasks the output is bit-identical
/// for any worker count. A panicking task yields
/// [`ExecError::WorkerPanic`] for its item only; the batch always
/// completes.
pub fn run_indexed<T, R, F>(opts: &PoolOptions, items: &[T], task: F) -> Vec<Result<R, ExecError>>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> Result<R, ExecError> + Sync,
{
    let workers = opts.workers.max(1).min(items.len().max(1));
    let _span = gpumech_obs::span!("exec.pool.run", workers = workers, items = items.len());
    let next = AtomicUsize::new(0);
    let panics = AtomicUsize::new(0);
    let results: Mutex<Vec<Option<Result<R, ExecError>>>> =
        Mutex::new(std::iter::repeat_with(|| None).take(items.len()).collect());

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else { break };
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    maybe_inject(opts.inject, i, FaultKind::TaskPanic);
                    task(i, item)
                }))
                .unwrap_or_else(|payload| {
                    panics.fetch_add(1, Ordering::Relaxed);
                    Err(ExecError::WorkerPanic { item: i, message: panic_message(&*payload) })
                });
                // Publication is separately contained: an (injected) panic
                // while holding the lock poisons the mutex and drops this
                // item's outcome, but must not take down the scope.
                let published = catch_unwind(AssertUnwindSafe(|| {
                    let mut slots = results.lock().unwrap_or_else(PoisonError::into_inner);
                    maybe_inject(opts.inject, i, FaultKind::PanicHoldingQueueLock);
                    if let Some(slot) = slots.get_mut(i) {
                        *slot = Some(outcome);
                    }
                }));
                if published.is_err() {
                    panics.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    gpumech_obs::counter!("exec.pool.tasks", items.len() as u64);
    gpumech_obs::counter!("exec.pool.panics", panics.load(Ordering::Relaxed) as u64);
    results
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner)
        .into_iter()
        .enumerate()
        .map(|(i, slot)| slot.unwrap_or(Err(ExecError::ResultLost { item: i })))
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn results_land_in_item_order_for_any_worker_count() {
        let items: Vec<usize> = (0..97).collect();
        let expected: Vec<usize> = items.iter().map(|x| x * x).collect();
        for workers in [1, 2, 3, 8, 128] {
            let got: Vec<usize> = run_indexed(&PoolOptions::new(workers), &items, |_, &x| {
                Ok(x * x)
            })
            .into_iter()
            .map(Result::unwrap)
            .collect();
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn zero_workers_still_runs_everything() {
        let items = [1u64, 2, 3];
        let got = run_indexed(&PoolOptions::new(0), &items, |_, &x| Ok(x + 1));
        assert_eq!(got.into_iter().map(Result::unwrap).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let items: [u8; 0] = [];
        let got = run_indexed(&PoolOptions::new(4), &items, |_, _| Ok(0u8));
        assert!(got.is_empty());
    }

    #[test]
    fn task_errors_stay_typed_and_isolated() {
        let items: Vec<usize> = (0..10).collect();
        let got = run_indexed(&PoolOptions::new(3), &items, |i, &x| {
            if i == 4 {
                Err(ExecError::Model(gpumech_core::ModelError::EmptyKernel))
            } else {
                Ok(x)
            }
        });
        for (i, r) in got.iter().enumerate() {
            if i == 4 {
                assert!(matches!(r, Err(ExecError::Model(_))));
            } else {
                assert_eq!(*r.as_ref().unwrap(), i);
            }
        }
    }
}
