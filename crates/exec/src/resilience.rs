//! The resilience layer: everything that makes a batch sweep safe to run
//! unattended.
//!
//! Three mechanisms, all deterministic and all observable under
//! `exec.resilience.*`:
//!
//! * **Time budgets** — [`BatchOptions::deadline_ms`] bounds the whole
//!   run and [`BatchOptions::timeout_ms`] bounds each job. Both become
//!   [`CancelToken`]s (the per-job token a
//!   *child* of the run token, so a run-level interrupt wins) that every
//!   pipeline stage polls; an expired budget surfaces as
//!   [`ExecError::Deadline`](crate::ExecError::Deadline) for exactly the
//!   jobs that ran out of time.
//! * **Retry with backoff** — a worker panic *inside* a job attempt is
//!   caught and the attempt repeated up to [`BatchOptions::retries`]
//!   times, sleeping a [`RetryPolicy`]-computed delay in between. The
//!   delay schedule is a pure function of (seed, job, attempt) — splitmix64
//!   jitter over exponential growth — so tests can assert it without
//!   clocks or sleeping.
//! * **Circuit breaker** — a per-kernel consecutive-failure counter; once
//!   it reaches the threshold, remaining jobs for that kernel are skipped
//!   with [`ExecError::CircuitOpen`](crate::ExecError::CircuitOpen)
//!   instead of burning budget on a kernel that keeps dying.
//!
//! The completion **journal** ([`Journal`]) rounds this out: every
//! finished job appends one JSON line (fingerprint, label, canonical
//! prediction) with a single atomic `O_APPEND` write, and a rerun with
//! `resume` replays those predictions instead of recomputing them. A
//! torn final line from a killed process fails to parse and is simply
//! treated as not-completed.

use std::collections::HashMap;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};

use gpumech_obs::CancelToken;
use serde::{Deserialize, Serialize};

use crate::pool::FaultInjection;

/// Deterministic exponential backoff with splitmix64 jitter.
///
/// The delay for `(job, attempt)` is a pure function of the policy and
/// those two numbers: `base * 2^attempt`, capped at `max`, with the top
/// half of the range replaced by hash-derived jitter so simultaneous
/// retries de-synchronize. No RNG state, no clock — the full schedule can
/// be asserted in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Delay before the first retry, in nanoseconds.
    pub base_delay_ns: u64,
    /// Upper bound on any single delay, in nanoseconds.
    pub max_delay_ns: u64,
    /// Seed mixed into the jitter hash (vary per run to decorrelate).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        // 1ms base, 100ms cap: long enough to skip a transient resource
        // spike, short enough not to dominate a test suite.
        Self { base_delay_ns: 1_000_000, max_delay_ns: 100_000_000, seed: 0 }
    }
}

/// The splitmix64 finalizer — the same avalanche the cache fingerprints
/// use, here as a stateless jitter hash.
fn splitmix64(mut h: u64) -> u64 {
    h = (h ^ (h >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h = (h ^ (h >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

impl RetryPolicy {
    /// The delay to sleep before retry number `attempt` (0-based: the
    /// delay between the first failure and the second attempt) of job
    /// `job`. Pure and deterministic.
    #[must_use]
    pub fn delay_ns(&self, job: u64, attempt: u32) -> u64 {
        let exp = self
            .base_delay_ns
            .saturating_mul(1u64.checked_shl(attempt).unwrap_or(u64::MAX))
            .min(self.max_delay_ns);
        // Full jitter over [exp/2, exp]: keeps the exponential envelope
        // while spreading concurrent retries.
        let half = exp / 2;
        let jitter_range = exp - half;
        if jitter_range == 0 {
            return exp;
        }
        let jitter = splitmix64(self.seed ^ job.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ u64::from(attempt));
        half + (jitter % (jitter_range + 1))
    }
}

/// Per-kernel circuit breaker: after `threshold` *consecutive* failures
/// for one kernel, further jobs for that kernel are skipped until a
/// success (never, within one batch, unless a retry succeeds first).
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    consecutive: Mutex<HashMap<String, u32>>,
}

impl CircuitBreaker {
    /// A breaker that opens after `threshold` consecutive failures
    /// (minimum 1).
    #[must_use]
    pub fn new(threshold: u32) -> Self {
        Self { threshold: threshold.max(1), consecutive: Mutex::new(HashMap::new()) }
    }

    /// The configured threshold.
    #[must_use]
    pub fn threshold(&self) -> u32 {
        self.threshold
    }

    /// Returns `Some(consecutive_failures)` when the breaker for `kernel`
    /// is open (the job should be skipped), `None` when it may run.
    #[must_use]
    pub fn is_open(&self, kernel: &str) -> Option<u32> {
        let map = self.consecutive.lock().unwrap_or_else(PoisonError::into_inner);
        map.get(kernel).copied().filter(|&n| n >= self.threshold)
    }

    /// Records a successful job for `kernel`, closing its breaker.
    pub fn record_success(&self, kernel: &str) {
        self.consecutive.lock().unwrap_or_else(PoisonError::into_inner).remove(kernel);
    }

    /// Records a failed job for `kernel`; returns `true` when this
    /// failure is the one that trips the breaker open.
    pub fn record_failure(&self, kernel: &str) -> bool {
        let mut map = self.consecutive.lock().unwrap_or_else(PoisonError::into_inner);
        let n = map.entry(kernel.to_owned()).or_insert(0);
        *n += 1;
        *n == self.threshold
    }
}

/// Options for a resilient batch run
/// ([`BatchEngine::run_with`](crate::batch::BatchEngine::run_with)).
#[derive(Debug, Default)]
pub struct BatchOptions {
    /// Per-job time budget in milliseconds; a job still running when it
    /// expires aborts with [`ExecError::Deadline`](crate::ExecError::Deadline).
    pub timeout_ms: Option<u64>,
    /// Whole-run deadline in milliseconds; jobs that have not finished
    /// when it fires abort with `Deadline`.
    pub deadline_ms: Option<u64>,
    /// Retries per job for transient (panic) failures; `0` disables
    /// retrying.
    pub retries: u32,
    /// Backoff schedule between retries.
    pub retry_policy: RetryPolicy,
    /// Open the per-kernel circuit breaker after this many consecutive
    /// failures; `None` disables the breaker.
    pub breaker_threshold: Option<u32>,
    /// Path of the completion journal; every finished job appends one
    /// line here.
    pub journal: Option<PathBuf>,
    /// Replay previously journalled jobs instead of recomputing them
    /// (requires `journal`).
    pub resume: bool,
    /// Deliberate faults for the fault-injection suite (empty in
    /// production). Pool-level kinds are forwarded to the worker pool;
    /// batch-level kinds ([`SlowJob`](crate::pool::FaultKind::SlowJob),
    /// [`TransientPanic`](crate::pool::FaultKind::TransientPanic)) are
    /// interpreted inside the job task.
    pub injections: Vec<FaultInjection>,
    /// Explicit root cancel token — supplied by tests to drive deadlines
    /// off a [`FakeClock`](gpumech_obs::FakeClock), or by embedders that
    /// want external cancellation. `deadline_ms`, when also set, becomes
    /// a child of this token.
    pub cancel: Option<CancelToken>,
}

impl BatchOptions {
    /// The root token for one run: the explicit token if supplied,
    /// narrowed by `deadline_ms` when set.
    #[must_use]
    pub fn run_token(&self) -> CancelToken {
        let root = self.cancel.clone().unwrap_or_default();
        match self.deadline_ms {
            Some(ms) if self.cancel.is_some() => root.child_with_timeout_ms(ms),
            Some(ms) => CancelToken::with_deadline_ms(ms),
            None => root,
        }
    }

    /// The token one job attempt runs under: a child of `run` narrowed by
    /// the per-job timeout, or `run` itself when no timeout is set.
    #[must_use]
    pub fn job_token(&self, run: &CancelToken) -> CancelToken {
        match self.timeout_ms {
            Some(ms) => run.child_with_timeout_ms(ms),
            None => run.clone(),
        }
    }
}

/// One journal line: a completed job's identity and its canonical
/// prediction JSON (wall-clock timings zeroed, so replay is byte-stable).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalEntry {
    /// The job fingerprint (trace + full config + options), hex-encoded.
    pub fingerprint: String,
    /// The job's label, for human inspection of the journal.
    pub label: String,
    /// Canonical prediction JSON
    /// ([`canonical_prediction_json`](crate::batch::canonical_prediction_json)).
    pub prediction: String,
}

/// The completion journal: an append-only JSONL file of finished jobs.
///
/// Appends are single `write` calls on an `O_APPEND` handle, so a line is
/// either fully present or (after a kill mid-write) a torn tail that
/// fails to parse — [`Journal::load`] skips unparsable lines, treating
/// those jobs as not completed. That is exactly the crash-safety contract
/// resume needs: no job is ever *wrongly* marked done.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal at `path` (the file is created on first append).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The journal's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads completed entries, keyed by fingerprint. Missing file means
    /// an empty journal; torn or corrupt lines are skipped.
    #[must_use]
    pub fn load(&self) -> HashMap<u64, JournalEntry> {
        let Ok(text) = fs::read_to_string(&self.path) else { return HashMap::new() };
        let mut out = HashMap::new();
        for line in text.lines() {
            let Ok(entry) = serde_json::from_str::<JournalEntry>(line) else { continue };
            let Ok(fp) = u64::from_str_radix(&entry.fingerprint, 16) else { continue };
            out.insert(fp, entry);
        }
        out
    }

    /// Appends one completed job. The whole line (JSON + newline) goes
    /// down in a single write on an append-mode handle; failures are
    /// reported, not fatal (the job still completed — only resumability
    /// is lost).
    ///
    /// If the file does not currently end in a newline — the debris of a
    /// process killed mid-append — a newline is prepended first, so the
    /// new entry starts on its own line instead of gluing onto the torn
    /// tail (which would corrupt *this* entry too).
    ///
    /// # Errors
    ///
    /// An I/O or serialization failure message.
    pub fn append(&self, fingerprint: u64, label: &str, prediction_json: &str) -> Result<(), String> {
        use std::io::{Read as _, Seek as _, SeekFrom};

        let entry = JournalEntry {
            fingerprint: format!("{fingerprint:016x}"),
            label: label.to_owned(),
            prediction: prediction_json.to_owned(),
        };
        let mut line =
            serde_json::to_string(&entry).map_err(|e| format!("journal serialize: {e}"))?;
        line.push('\n');
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir).map_err(|e| format!("journal dir: {e}"))?;
            }
        }
        let mut file = fs::OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(&self.path)
            .map_err(|e| format!("journal open: {e}"))?;
        let len = file.metadata().map_err(|e| format!("journal stat: {e}"))?.len();
        if len > 0 {
            file.seek(SeekFrom::Start(len - 1)).map_err(|e| format!("journal seek: {e}"))?;
            let mut last = [0u8; 1];
            file.read_exact(&mut last).map_err(|e| format!("journal read: {e}"))?;
            if last[0] != b'\n' {
                line.insert(0, '\n');
            }
        }
        file.write_all(line.as_bytes()).map_err(|e| format!("journal write: {e}"))?;
        gpumech_obs::counter!("exec.resilience.journal_writes");
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_jittered_and_capped() {
        let p = RetryPolicy { base_delay_ns: 1_000, max_delay_ns: 16_000, seed: 42 };
        for job in 0..4u64 {
            for attempt in 0..8u32 {
                let d = p.delay_ns(job, attempt);
                assert_eq!(d, p.delay_ns(job, attempt), "pure function of (job, attempt)");
                let envelope = (1_000u64 << attempt.min(4)).min(16_000);
                assert!(d >= envelope / 2 && d <= envelope, "job={job} attempt={attempt} d={d}");
            }
        }
        // Jitter actually varies across jobs (not a constant schedule).
        let delays: Vec<u64> = (0..16).map(|j| p.delay_ns(j, 3)).collect();
        assert!(delays.iter().any(|&d| d != delays[0]), "{delays:?}");
        // A different seed shifts the schedule.
        let q = RetryPolicy { seed: 43, ..p };
        assert!((0..16u64).any(|j| p.delay_ns(j, 3) != q.delay_ns(j, 3)));
    }

    #[test]
    fn huge_attempt_numbers_saturate_instead_of_overflowing() {
        let p = RetryPolicy { base_delay_ns: 1_000, max_delay_ns: 9_000, seed: 0 };
        assert!(p.delay_ns(0, 63) <= 9_000);
        assert!(p.delay_ns(0, 64) <= 9_000);
        assert!(p.delay_ns(0, u32::MAX) <= 9_000);
    }

    #[test]
    fn breaker_opens_on_consecutive_failures_and_closes_on_success() {
        let b = CircuitBreaker::new(3);
        assert!(b.is_open("k").is_none());
        assert!(!b.record_failure("k"));
        assert!(!b.record_failure("k"));
        assert!(b.is_open("k").is_none(), "two failures stay under the threshold");
        assert!(b.record_failure("k"), "the third failure trips the breaker");
        assert_eq!(b.is_open("k"), Some(3));
        assert!(b.is_open("other").is_none(), "breakers are per kernel");
        b.record_success("k");
        assert!(b.is_open("k").is_none(), "success closes the breaker");
        // A success between failures resets the consecutive count.
        let c = CircuitBreaker::new(2);
        c.record_failure("k");
        c.record_success("k");
        c.record_failure("k");
        assert!(c.is_open("k").is_none());
    }

    #[test]
    fn journal_round_trips_and_skips_torn_lines() {
        let path = std::env::temp_dir()
            .join(format!("gpumech-journal-{}.jsonl", std::process::id()));
        let _ = fs::remove_file(&path);
        let j = Journal::new(&path);
        assert!(j.load().is_empty(), "missing file is an empty journal");
        j.append(0xabcd, "job-a", r#"{"cpi":1.0}"#).unwrap();
        j.append(0x1234, "job-b", r#"{"cpi":2.0}"#).unwrap();
        // Simulate a kill mid-append: a torn, unparsable tail line.
        {
            let mut f = fs::OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(br#"{"fingerprint":"00ff","label":"torn"#).unwrap();
        }
        let loaded = j.load();
        assert_eq!(loaded.len(), 2, "torn line must be skipped");
        assert_eq!(loaded[&0xabcd].label, "job-a");
        assert_eq!(loaded[&0x1234].prediction, r#"{"cpi":2.0}"#);
        // Appending after the torn tail must self-heal: the new entry
        // starts on a fresh line rather than gluing onto the debris.
        j.append(0xbeef, "job-c", r#"{"cpi":3.0}"#).unwrap();
        let healed = j.load();
        assert_eq!(healed.len(), 3, "append after a torn tail must not lose entries");
        assert_eq!(healed[&0xbeef].label, "job-c");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn run_and_job_tokens_compose_deadlines() {
        use gpumech_obs::FakeClock;
        use std::sync::Arc;

        let none = BatchOptions::default();
        assert!(none.run_token().check().is_ok());

        // An explicit (fake-clock) token narrowed by a run deadline.
        let clock = Arc::new(FakeClock::new(1_000));
        let root = CancelToken::with_clock(Arc::clone(&clock) as Arc<dyn gpumech_obs::Clock>, u64::MAX);
        let opts = BatchOptions {
            deadline_ms: Some(1),
            cancel: Some(root.clone()),
            timeout_ms: Some(2),
            ..BatchOptions::default()
        };
        let run = opts.run_token();
        assert!(run.deadline_ns().is_some(), "deadline_ms must narrow the explicit token");
        let job = opts.job_token(&run);
        // Cancelling the root must reach the job token through two levels.
        root.cancel();
        assert!(job.check().is_err());
    }
}
