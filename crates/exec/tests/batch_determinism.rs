//! Golden determinism assertions for the batch engine: over the full
//! 40-workload library, batch output is byte-identical (canonical JSON —
//! CPI stacks, warnings, warning *order*, everything except wall-clock
//! stage timings) to the sequential pipeline, at every worker count; and
//! the profile cache provably eliminates analysis work on repeat runs
//! (observed through the `exec.cache.*` counters, not inferred from
//! timing).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::sync::{Arc, Mutex, PoisonError};

use gpumech_core::{Gpumech, Prediction, PredictionRequest};
use gpumech_exec::{
    analyze_parallel, canonical_prediction_json, run_indexed, BatchEngine, BatchJob, ExecError,
    PoolOptions,
};
use gpumech_isa::SimConfig;
use gpumech_obs::Recorder;
use gpumech_trace::workloads;

/// Serializes tests that install the process-global recorder.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One default-option job per bundled workload, traced at `blocks`.
fn all_jobs(blocks: usize) -> Vec<BatchJob> {
    workloads::all()
        .into_iter()
        .map(|w| {
            let w = w.with_blocks(blocks);
            let trace = w.trace().expect("bundled workloads trace cleanly");
            BatchJob::new(w.name, Arc::new(trace), SimConfig::table1())
        })
        .collect()
}

fn canon(p: &Prediction) -> String {
    canonical_prediction_json(p).unwrap()
}

fn sequential_canon(jobs: &[BatchJob]) -> Vec<String> {
    jobs.iter()
        .map(|j| {
            let p = Gpumech::new(j.cfg.clone())
                .run(&PredictionRequest::from_trace(&j.trace))
                .unwrap();
            canon(&p)
        })
        .collect()
}

#[test]
fn batch_is_byte_identical_to_sequential_across_worker_counts() {
    let jobs = all_jobs(2);
    assert_eq!(jobs.len(), 40, "the bundled workload suite changed size");
    let expected = sequential_canon(&jobs);

    for workers in [1, 2, 8] {
        let engine = BatchEngine::new(workers);
        let got = engine.run(&jobs);
        for ((job, want), result) in jobs.iter().zip(&expected).zip(got) {
            let p = result.unwrap_or_else(|e| panic!("{}: {e}", job.label));
            assert_eq!(&canon(&p), want, "workers={workers}, kernel={}", job.label);
        }
    }
}

#[test]
fn oversubscribed_pool_is_byte_identical_to_sequential() {
    // The engine clamps its worker count to the host, so on a small host
    // the test above may never run more than one thread. The pool itself
    // spawns exactly what it is asked for — drive the full pipeline
    // through it at 8 workers to exercise genuine concurrency regardless
    // of host size.
    let jobs = all_jobs(2);
    let expected = sequential_canon(&jobs);
    let got = run_indexed(&PoolOptions::new(8), &jobs, |_, job| {
        Gpumech::new(job.cfg.clone())
            .run(&PredictionRequest::from_trace(&job.trace))
            .map_err(ExecError::Model)
    });
    for ((job, want), result) in jobs.iter().zip(&expected).zip(got) {
        let p = result.unwrap_or_else(|e| panic!("{}: {e}", job.label));
        assert_eq!(&canon(&p), want, "kernel={}", job.label);
    }
}

#[test]
fn parallel_per_warp_analysis_matches_sequential_over_the_library() {
    for w in workloads::all().into_iter().step_by(7) {
        let w = w.with_blocks(2);
        let trace = w.trace().unwrap();
        let model = Gpumech::new(SimConfig::table1());
        let seq = model.analyze(&trace).unwrap();
        for workers in [2, 8] {
            let par = analyze_parallel(&model, &trace, workers).unwrap();
            assert_eq!(seq, par, "kernel={}, workers={workers}", w.name);
        }
    }
}

#[test]
fn second_identical_batch_does_zero_analysis_work() {
    let _serial = recorder_lock();
    let jobs = all_jobs(2);
    let engine = BatchEngine::new(4);

    // First run, unrecorded: populates the cache (40 distinct keys).
    let first = engine.run(&jobs);
    assert!(first.iter().all(Result::is_ok));
    assert_eq!(engine.cache().len(), jobs.len());

    // Second run, recorded: every job must be served from the cache.
    let rec = Arc::new(Recorder::new());
    let second = {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        engine.run(&jobs)
    };
    assert!(second.iter().all(Result::is_ok));

    let snap = rec.snapshot();
    let hits = snap.counters.get("exec.cache.hits").map_or(0, |c| c.total);
    let misses = snap.counters.get("exec.cache.misses").map_or(0, |c| c.total);
    assert_eq!(hits, jobs.len() as u64, "every job must hit the profile cache");
    assert_eq!(misses, 0, "a warm cache must do zero analysis work");
    assert_eq!(engine.cache().len(), jobs.len(), "no new entries on a warm run");
    assert_eq!(rec.open_spans(), 0, "batch runs must close every span");

    // And cached results are still byte-identical to the cold ones.
    for (label, (a, b)) in jobs.iter().map(|j| &j.label).zip(first.iter().zip(&second)) {
        assert_eq!(canon(a.as_ref().unwrap()), canon(b.as_ref().unwrap()), "{label}");
    }
}
