//! The on-disk cache corruption fan: every mutation class the crash-safe
//! format must survive — truncation at every 64-byte boundary, single-bit
//! flips, a version-header mismatch, and a zero-length file — is applied
//! to a real cache entry, and each one must be detected, quarantined, and
//! recomputed with the final prediction byte-identical to a cold-cache
//! run. No mutation may panic the pipeline.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use gpumech_core::Gpumech;
use gpumech_exec::{
    cache_key, canonical_prediction_json, BatchEngine, BatchJob, CacheKey, ProfileCache,
};
use gpumech_isa::SimConfig;
use gpumech_trace::workloads;

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpumech-corruption-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

struct Fixture {
    dir: PathBuf,
    job: BatchJob,
    key: CacheKey,
    entry_path: PathBuf,
    cold_canon: String,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let dir = test_dir(tag);
        let w = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(1);
        let trace = Arc::new(w.trace().unwrap());
        let cfg = SimConfig::default();
        let key = cache_key(&trace, &cfg);
        let entry_path = dir.join(format!("{:016x}-{:016x}.json", key.trace, key.config));
        let job = BatchJob::new("sdk_vectoradd", trace, cfg);

        // The ground truth: a cold (no disk) run of the same job.
        let cold = BatchEngine::new(1).run(std::slice::from_ref(&job));
        let cold_canon = canonical_prediction_json(cold[0].as_ref().unwrap()).unwrap();
        Self { dir, job, key, entry_path, cold_canon }
    }

    /// Ensures a fresh, valid on-disk entry exists and returns its bytes.
    fn valid_entry_bytes(&self) -> Vec<u8> {
        if !self.entry_path.exists() {
            let cache = ProfileCache::with_disk(&self.dir);
            let model = Gpumech::new(self.job.cfg.clone());
            cache.get_or_compute(self.key, || model.analyze(&self.job.trace)).unwrap();
        }
        assert!(self.entry_path.exists(), "warm-up must persist the entry");
        fs::read(&self.entry_path).unwrap()
    }

    /// Runs the batch against the (mutated) disk cache and asserts the
    /// full recovery contract: success, byte-identical prediction, a
    /// surfaced warning, and a quarantine file.
    fn assert_recovers(&self, what: &str) {
        let engine =
            BatchEngine::with_cache(1, ProfileCache::with_disk(&self.dir));
        let out = engine.run(std::slice::from_ref(&self.job));
        let p = out[0].as_ref().unwrap_or_else(|e| panic!("{what}: {e}"));
        assert_eq!(
            canonical_prediction_json(p).unwrap(),
            self.cold_canon,
            "{what}: recomputed prediction must be byte-identical to a cold run"
        );
        assert!(
            p.warnings.iter().any(|w| w.starts_with("cache: ") && w.contains("quarantined")),
            "{what}: the quarantine must surface as a prediction warning, got {:?}",
            p.warnings
        );
        let mut q = self.entry_path.clone().into_os_string();
        q.push(".quarantine");
        assert!(Path::new(&q).exists(), "{what}: corrupt bytes must be preserved for inspection");
        // Clean up for the next mutation: the quarantine file would
        // otherwise block the next rename on some platforms' semantics.
        let _ = fs::remove_file(&q);
    }
}

#[test]
fn truncation_at_every_64_byte_boundary_is_detected_and_recomputed() {
    let fx = Fixture::new("truncate");
    let full = fx.valid_entry_bytes();
    assert!(full.len() > 64, "entry too small to truncate meaningfully");
    for cut in (0..full.len()).step_by(64) {
        fs::write(&fx.entry_path, &full[..cut]).unwrap();
        fx.assert_recovers(&format!("truncated to {cut} bytes"));
    }
    let _ = fs::remove_dir_all(&fx.dir);
}

#[test]
fn single_bit_flips_are_detected_and_recomputed() {
    let fx = Fixture::new("bitflip");
    let full = fx.valid_entry_bytes();
    // One flipped bit per mutated copy, swept through header and payload
    // (every 61st byte — coprime with the 64-byte lane width, so flips
    // land at varying lane offsets — plus both ends).
    let mut offsets: Vec<usize> = (0..full.len()).step_by(61).collect();
    offsets.push(full.len() - 1);
    for off in offsets {
        let mut mutated = full.clone();
        mutated[off] ^= 1 << (off % 8);
        fs::write(&fx.entry_path, &mutated).unwrap();
        fx.assert_recovers(&format!("bit flip at byte {off}"));
    }
    let _ = fs::remove_dir_all(&fx.dir);
}

#[test]
fn version_header_mismatch_is_detected_and_recomputed() {
    let fx = Fixture::new("version");
    let full = fx.valid_entry_bytes();
    let text = String::from_utf8(full).unwrap();
    // A future (or past) format version must never be trusted.
    for bogus in ["GPUMECH-CACHE v1", "GPUMECH-CACHE v3", "SOMETHING ELSE v2"] {
        let mutated = text.replacen("GPUMECH-CACHE v2", bogus, 1);
        fs::write(&fx.entry_path, mutated).unwrap();
        fx.assert_recovers(&format!("header rewritten to {bogus:?}"));
    }
    let _ = fs::remove_dir_all(&fx.dir);
}

#[test]
fn zero_length_file_is_detected_and_recomputed() {
    let fx = Fixture::new("zerolen");
    let _ = fx.valid_entry_bytes();
    fs::write(&fx.entry_path, b"").unwrap();
    fx.assert_recovers("zero-length file");
    let _ = fs::remove_dir_all(&fx.dir);
}
