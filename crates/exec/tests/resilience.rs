//! Resilience contract of the batch engine: deadlines and timeouts abort
//! exactly the jobs that ran out of budget, retries recover transient
//! panics, the circuit breaker stops feeding a dying kernel, and the
//! completion journal makes an interrupted run resumable with zero repeat
//! work — all driven off a `FakeClock`, so every assertion is
//! deterministic.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use gpumech_core::ModelError;
use gpumech_exec::{
    canonical_prediction_json, BatchEngine, BatchJob, BatchOptions, ExecError, FaultInjection,
    FaultKind, ProfileCache,
};
use gpumech_isa::SimConfig;
use gpumech_obs::{CancelToken, Clock, FakeClock, Recorder};
use gpumech_trace::workloads;

/// Serializes tests that install the process-global recorder.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
    RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn jobs(names: &[&str]) -> Vec<BatchJob> {
    names
        .iter()
        .map(|n| {
            let trace =
                workloads::by_name(n).unwrap().with_blocks(1).trace().unwrap();
            BatchJob::new(*n, Arc::new(trace), SimConfig::default())
        })
        .collect()
}

/// A root token on a fake clock with no deadline of its own: per-job
/// timeouts become children sharing the clock, so time only advances when
/// the pipeline polls.
fn fake_clock_root(step_ns: u64) -> CancelToken {
    CancelToken::with_clock(Arc::new(FakeClock::new(step_ns)) as Arc<dyn Clock>, u64::MAX)
}

fn counter(rec: &Recorder, name: &str) -> u64 {
    rec.snapshot().counters.get(name).map_or(0, |c| c.total)
}

/// The headline acceptance scenario: a sweep with one never-terminating
/// job and one panicking job completes, reports exactly those two as
/// `Deadline` / `WorkerPanic` with their kernel names, and leaves every
/// other prediction byte-identical to an unconstrained run.
#[test]
fn hung_and_panicking_jobs_fail_alone_and_named_while_the_rest_match_exactly() {
    let names =
        ["sdk_vectoradd", "bfs_kernel1", "kmeans_invert_mapping", "cfd_step_factor", "lud_diagonal"];
    let all = jobs(&names);
    let baseline: Vec<String> = BatchEngine::new(1)
        .run(&all)
        .into_iter()
        .map(|r| canonical_prediction_json(&r.unwrap()).unwrap())
        .collect();

    // Job 2 hangs forever (only its timeout can stop it); job 4 panics.
    let opts = BatchOptions {
        timeout_ms: Some(5),
        cancel: Some(fake_clock_root(1_000)),
        injections: vec![
            FaultInjection { item: 2, kind: FaultKind::SlowJob },
            FaultInjection { item: 4, kind: FaultKind::TaskPanic },
        ],
        ..BatchOptions::default()
    };
    let out = BatchEngine::new(1).run_with(&all, &opts);

    for (i, (r, want)) in out.iter().zip(&baseline).enumerate() {
        match i {
            2 => {
                let e = r.as_ref().unwrap_err();
                assert_eq!(e.error, ExecError::Deadline, "{e}");
                assert_eq!(e.label, "kmeans_invert_mapping");
                assert!(e.to_string().contains("kmeans_invert_mapping"), "{e}");
            }
            4 => {
                let e = r.as_ref().unwrap_err();
                assert!(matches!(e.error, ExecError::WorkerPanic { item: 4, .. }), "{e}");
                assert_eq!(e.label, "lud_diagonal");
            }
            _ => {
                let p = r.as_ref().unwrap_or_else(|e| panic!("job {i}: {e}"));
                assert_eq!(&canonical_prediction_json(p).unwrap(), want, "job {i}");
            }
        }
    }
}

#[test]
fn whole_run_deadline_bounds_the_batch_and_is_counted() {
    let _serial = recorder_lock();
    let all = jobs(&["sdk_vectoradd", "bfs_kernel1", "cfd_step_factor"]);
    // The hung job is first; everything queued behind it inherits the
    // already-expired run deadline and fails fast.
    let opts = BatchOptions {
        deadline_ms: Some(5),
        cancel: Some(fake_clock_root(1_000)),
        injections: vec![FaultInjection { item: 0, kind: FaultKind::SlowJob }],
        ..BatchOptions::default()
    };
    let rec = Arc::new(Recorder::new());
    let out = {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        BatchEngine::new(1).run_with(&all, &opts)
    };
    for (i, r) in out.iter().enumerate() {
        assert_eq!(r.as_ref().unwrap_err().error, ExecError::Deadline, "job {i}");
    }
    assert_eq!(counter(&rec, "exec.resilience.deadline"), all.len() as u64);
    assert_eq!(rec.open_spans(), 0);
}

#[test]
fn explicit_cancellation_fails_every_job_as_cancelled() {
    let _serial = recorder_lock();
    let all = jobs(&["sdk_vectoradd", "bfs_kernel1"]);
    let token = CancelToken::never();
    token.cancel();
    let opts = BatchOptions { cancel: Some(token), ..BatchOptions::default() };
    let rec = Arc::new(Recorder::new());
    let out = {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        BatchEngine::new(2).run_with(&all, &opts)
    };
    for r in &out {
        assert_eq!(r.as_ref().unwrap_err().error, ExecError::Cancelled);
    }
    assert_eq!(counter(&rec, "exec.resilience.cancelled"), all.len() as u64);
}

#[test]
fn one_retry_recovers_a_transient_panic_and_is_counted() {
    let _serial = recorder_lock();
    let all = jobs(&["sdk_vectoradd", "bfs_kernel1"]);
    let inject = vec![FaultInjection { item: 1, kind: FaultKind::TransientPanic }];

    // Without retries the transient panic is fatal for its job.
    let no_retry =
        BatchEngine::new(1).run_with(&all, &BatchOptions {
            injections: inject.clone(),
            ..BatchOptions::default()
        });
    assert!(no_retry[0].is_ok());
    let e = no_retry[1].as_ref().unwrap_err();
    assert!(
        matches!(&e.error, ExecError::WorkerPanic { item: 1, message } if message.contains("TransientPanic")),
        "{e}"
    );

    // With one retry the second attempt succeeds, byte-identical to an
    // uninjected run.
    let baseline = canonical_prediction_json(
        BatchEngine::new(1).run(&all)[1].as_ref().unwrap(),
    )
    .unwrap();
    let rec = Arc::new(Recorder::new());
    let retried = {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        BatchEngine::new(1).run_with(&all, &BatchOptions {
            injections: inject,
            retries: 1,
            ..BatchOptions::default()
        })
    };
    let p = retried[1].as_ref().unwrap();
    assert_eq!(canonical_prediction_json(p).unwrap(), baseline);
    assert_eq!(counter(&rec, "exec.resilience.retries"), 1);
}

#[test]
fn circuit_breaker_skips_a_kernel_after_consecutive_failures() {
    let _serial = recorder_lock();
    // Five sweep points of one kernel, all with an invalid configuration:
    // after two failures the breaker opens and the remaining three are
    // skipped without being attempted.
    let trace =
        Arc::new(workloads::by_name("sdk_vectoradd").unwrap().with_blocks(1).trace().unwrap());
    let all: Vec<BatchJob> = (0..5)
        .map(|i| {
            let cfg = SimConfig { num_mshrs: 0, ..SimConfig::default() };
            BatchJob::new(format!("sdk_vectoradd @ {i}"), Arc::clone(&trace), cfg)
        })
        .collect();
    let opts = BatchOptions { breaker_threshold: Some(2), ..BatchOptions::default() };
    let rec = Arc::new(Recorder::new());
    let out = {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        BatchEngine::new(1).run_with(&all, &opts)
    };
    for r in &out[..2] {
        assert!(matches!(
            r.as_ref().unwrap_err().error,
            ExecError::Model(ModelError::InvalidConfig(_))
        ));
    }
    for r in &out[2..] {
        assert!(matches!(
            &r.as_ref().unwrap_err().error,
            ExecError::CircuitOpen { kernel, failures: 2 } if kernel == "sdk_vectoradd"
        ));
    }
    assert_eq!(counter(&rec, "exec.resilience.breaker_trips"), 1);
    assert_eq!(counter(&rec, "exec.resilience.breaker_open"), 3);
}

fn temp_journal(tag: &str) -> PathBuf {
    let path =
        std::env::temp_dir().join(format!("gpumech-resilience-{tag}-{}.jsonl", std::process::id()));
    let _ = fs::remove_file(&path);
    path
}

#[test]
fn resume_replays_the_journal_with_zero_repeat_analysis() {
    let _serial = recorder_lock();
    let names = ["sdk_vectoradd", "bfs_kernel1", "kmeans_invert_mapping"];
    let all = jobs(&names);
    let journal = temp_journal("resume");

    // First (journaled) run completes everything.
    let first_opts =
        BatchOptions { journal: Some(journal.clone()), ..BatchOptions::default() };
    let first = BatchEngine::new(1).run_with(&all, &first_opts);
    let baseline: Vec<String> =
        first.iter().map(|r| canonical_prediction_json(r.as_ref().unwrap()).unwrap()).collect();

    // Second run, fresh engine (cold cache), resuming: every job must be
    // served from the journal — zero analyses, byte-identical output.
    let rec = Arc::new(Recorder::new());
    let second = {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        BatchEngine::new(1).run_with(&all, &BatchOptions {
            journal: Some(journal.clone()),
            resume: true,
            ..BatchOptions::default()
        })
    };
    for (r, want) in second.iter().zip(&baseline) {
        assert_eq!(&canonical_prediction_json(r.as_ref().unwrap()).unwrap(), want);
    }
    assert_eq!(counter(&rec, "exec.resilience.journal_hits"), all.len() as u64);
    assert_eq!(counter(&rec, "exec.cache.misses"), 0, "resume must do zero analysis work");
    let _ = fs::remove_file(&journal);
}

#[test]
fn partial_journal_resumes_only_the_missing_jobs() {
    let _serial = recorder_lock();
    let names = ["sdk_vectoradd", "bfs_kernel1", "kmeans_invert_mapping", "cfd_step_factor"];
    let all = jobs(&names);
    let journal = temp_journal("partial");

    // Interrupted first run: only the first two jobs completed (simulated
    // by journaling a sub-batch).
    let opts = BatchOptions { journal: Some(journal.clone()), ..BatchOptions::default() };
    let partial = BatchEngine::new(1).run_with(&all[..2], &opts);
    assert!(partial.iter().all(Result::is_ok));

    // Resumed run over the full job list: the two journaled jobs replay,
    // the other two compute, and the union covers all jobs exactly once.
    let baseline: Vec<String> = BatchEngine::new(1)
        .run(&all)
        .into_iter()
        .map(|r| canonical_prediction_json(&r.unwrap()).unwrap())
        .collect();
    let rec = Arc::new(Recorder::new());
    let resumed = {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        BatchEngine::new(1).run_with(&all, &BatchOptions {
            journal: Some(journal.clone()),
            resume: true,
            ..BatchOptions::default()
        })
    };
    for ((r, want), name) in resumed.iter().zip(&baseline).zip(&names) {
        assert_eq!(&canonical_prediction_json(r.as_ref().unwrap()).unwrap(), want, "{name}");
    }
    assert_eq!(counter(&rec, "exec.resilience.journal_hits"), 2);
    assert_eq!(counter(&rec, "exec.cache.misses"), 2, "only the two unfinished jobs compute");
    // The journal now covers all four jobs exactly once.
    let lines = fs::read_to_string(&journal).unwrap();
    assert_eq!(lines.lines().count(), 4);
    let _ = fs::remove_file(&journal);
}

#[test]
fn timeouts_do_not_perturb_jobs_that_fit_their_budget() {
    // A generous fake-clock timeout: all jobs complete and match an
    // unconstrained run byte for byte (cancellation polling must not
    // change the numerics).
    let all = jobs(&["sdk_vectoradd", "bfs_kernel1"]);
    let baseline: Vec<String> = BatchEngine::new(1)
        .run(&all)
        .into_iter()
        .map(|r| canonical_prediction_json(&r.unwrap()).unwrap())
        .collect();
    let opts = BatchOptions {
        timeout_ms: Some(10_000),
        cancel: Some(fake_clock_root(1)),
        ..BatchOptions::default()
    };
    let out = BatchEngine::new(1).run_with(&all, &opts);
    for (r, want) in out.iter().zip(&baseline) {
        assert_eq!(&canonical_prediction_json(r.as_ref().unwrap()).unwrap(), want);
    }
}

#[test]
fn resilient_batch_with_disk_cache_surfaces_no_spurious_warnings() {
    // Belt and braces: the happy path through the resilient entry point
    // with a disk cache produces clean predictions (no cache warnings).
    let dir = std::env::temp_dir()
        .join(format!("gpumech-resilience-disk-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let all = jobs(&["sdk_vectoradd"]);
    let engine = BatchEngine::with_cache(1, ProfileCache::with_disk(&dir));
    let out = engine.run_with(&all, &BatchOptions::default());
    let p = out[0].as_ref().unwrap();
    assert!(
        !p.warnings.iter().any(|w| w.starts_with("cache: ")),
        "clean disk cache must not warn: {:?}",
        p.warnings
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Requesting more workers than the host exposes is silently corrected by
/// the engine, but never *silently*: the clamp fires the
/// `exec.pool.workers_clamped` counter so operators can see configured vs.
/// actual parallelism. In-budget requests must not fire it.
#[test]
fn oversubscribed_worker_requests_are_clamped_and_counted() {
    let _serial = recorder_lock();
    let host =
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let rec = Arc::new(Recorder::new());
    let engine = BatchEngine::with_cache(host + 64, ProfileCache::in_memory());
    assert_eq!(engine.effective_workers(), host, "clamp ceiling is the host");
    {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        let out = engine.run_with(&jobs(&["sdk_vectoradd"]), &BatchOptions::default());
        assert!(out[0].is_ok());
    }
    assert_eq!(counter(&rec, "exec.pool.workers_clamped"), 1);

    let rec = Arc::new(Recorder::new());
    let engine = BatchEngine::with_cache(1, ProfileCache::in_memory());
    {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        let out = engine.run_with(&jobs(&["sdk_vectoradd"]), &BatchOptions::default());
        assert!(out[0].is_ok());
    }
    assert_eq!(counter(&rec, "exec.pool.workers_clamped"), 0);
}
