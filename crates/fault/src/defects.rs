//! Seeded defective-*kernel* corpus for the static verifier.
//!
//! The crate-root [`MUTATORS`](crate::MUTATORS) corrupt traces to prove
//! the pipeline panic-free; the injectors here corrupt kernel IR to
//! prove the static verifier (`gpumech-analyze`'s barrier, race, and
//! bank passes) *complete*: every planted defect must come back as a
//! finding with the right code. Each injector edits instructions in
//! place — never inserting or deleting — so every PC, branch target, and
//! reconvergence point of the host kernel survives the mutation and
//! [`Kernel::validate`] still passes; the defect is semantic, not
//! structural, which is exactly the class `validate` cannot catch.
//!
//! As with the trace mutators, all randomness derives from
//! [`gpumech_trace::splitmix64`]: a mutant is a pure function of
//! `(kernel, seed)`, so a failing case reproduces byte-for-byte.

use gpumech_isa::{BranchCond, InstKind, Kernel, MemSpace, Operand, StaticInst, ValueOp};
use gpumech_trace::splitmix64;

/// A deterministic defect injector: returns `true` when a suitable
/// injection site existed and the kernel was mutated in place, `false`
/// when the kernel offers no such site (it is left untouched).
pub type KernelMutator = fn(&mut Kernel, u64) -> bool;

/// The defective-kernel corpus: `(name, injector, expected finding
/// code)` triples. The corpus suite applies every injector to every
/// bundled workload and asserts that each successful injection is
/// reported by `gpumech_analyze::analyze` under the expected code —
/// `barrier-divergence` mutants must additionally be rejected by the
/// trace engine before any warp executes.
pub const KERNEL_MUTATORS: &[(&str, KernelMutator, &str)] = &[
    ("inject_divergent_barrier", inject_divergent_barrier, "barrier-divergence"),
    ("inject_shared_race", inject_shared_race, "shared-race"),
    ("inject_bank_conflict", inject_bank_conflict, "bank-conflict"),
];

/// Replaces a seeded store *inside the influence region of a non-uniform
/// conditional branch* with a block-wide barrier — the canonical
/// barrier-divergence defect: lanes that took the other side of the
/// branch never arrive, and real hardware deadlocks.
///
/// Candidate sites are stores inside the influence region of the
/// branch — every PC reachable from the branch's successors without
/// crossing its reconvergence point, which covers both if-arms and the
/// bodies of lane-trip-count loops (the same region the verifier's
/// barrier pass checks). A store is chosen because it defines no
/// register: removing it cannot turn a later read into a use of an
/// undefined value.
pub fn inject_divergent_barrier(kernel: &mut Kernel, seed: u64) -> bool {
    let analysis = gpumech_analyze::analyze(kernel);
    let mut sites: Vec<usize> = Vec::new();
    for (b, inst) in kernel.insts.iter().enumerate() {
        if inst.kind != InstKind::Branch || inst.cond == BranchCond::Always {
            continue;
        }
        if analysis.is_branch_uniform(b as u32) {
            continue;
        }
        let Some(reconv) = inst.reconv else { continue };
        for p in influence_region(kernel, b, reconv) {
            if matches!(kernel.insts[p].kind, InstKind::Store(_)) {
                sites.push(p);
            }
        }
    }
    sites.sort_unstable();
    sites.dedup();
    if sites.is_empty() {
        return false;
    }
    let p = sites[(splitmix64(seed) as usize) % sites.len()];
    kernel.insts[p] = StaticInst {
        kind: InstKind::Sync,
        op: ValueOp::Mov,
        dst: None,
        srcs: Vec::new(),
        target: None,
        cond: BranchCond::Always,
        reconv: None,
    };
    true
}

/// Retargets a seeded global store at shared memory with a per-lane
/// address — `shared[lane]` — so every warp of a block writes the same
/// 32 words with nothing ordering them: a guaranteed cross-warp
/// write/write race on the first barrier interval containing the store.
pub fn inject_shared_race(kernel: &mut Kernel, seed: u64) -> bool {
    let sites: Vec<usize> = kernel
        .insts
        .iter()
        .enumerate()
        .filter(|(_, i)| i.kind == InstKind::Store(MemSpace::Global))
        .map(|(p, _)| p)
        .collect();
    if sites.is_empty() {
        return false;
    }
    let p = sites[(splitmix64(seed) as usize) % sites.len()];
    let inst = &mut kernel.insts[p];
    inst.kind = InstKind::Store(MemSpace::Shared);
    inst.srcs[0] = Operand::Lane;
    true
}

/// Widens a seeded lane-indexed multiplier feeding a shared-memory
/// address to a 128-byte stride, folding all 32 lanes onto bank 0 of the
/// 32-bank × 4-byte model — a worst-case 32-way conflict on every access
/// through that address.
///
/// Sites are found by walking each shared access's address operand
/// backward through pass-through `Mov`/`Add` defs (most recent textual
/// def — exact for the builder's structured bodies) to a
/// `Mul(lane-ish, Imm)` stride computation.
pub fn inject_bank_conflict(kernel: &mut Kernel, seed: u64) -> bool {
    let mut sites: Vec<usize> = Vec::new();
    for (p, inst) in kernel.insts.iter().enumerate() {
        let shared = matches!(
            inst.kind,
            InstKind::Load(MemSpace::Shared) | InstKind::Store(MemSpace::Shared)
        );
        if !shared {
            continue;
        }
        let Some(&addr) = inst.srcs.first() else { continue };
        if let Some(def) = stride_mul_site(kernel, p, addr) {
            sites.push(def);
        }
    }
    sites.sort_unstable();
    sites.dedup();
    if sites.is_empty() {
        return false;
    }
    let def = sites[(splitmix64(seed) as usize) % sites.len()];
    kernel.insts[def].srcs[1] = Operand::Imm(128);
    true
}

/// PCs reachable from the successors of the branch at `b` without
/// passing through `reconv` — the branch's influence region, mirroring
/// the verifier's own divergent-barrier check.
fn influence_region(kernel: &Kernel, b: usize, reconv: u32) -> Vec<usize> {
    let n = kernel.insts.len();
    let inst = &kernel.insts[b];
    let mut stack: Vec<usize> = Vec::new();
    if let Some(t) = inst.target {
        stack.push(t as usize);
    }
    if inst.cond != BranchCond::Always {
        stack.push(b + 1);
    }
    let mut seen = vec![false; n];
    while let Some(p) = stack.pop() {
        if p >= n || p == reconv as usize || seen[p] {
            continue;
        }
        seen[p] = true;
        let i = &kernel.insts[p];
        match i.kind {
            InstKind::Exit => {}
            InstKind::Branch => {
                if let Some(t) = i.target {
                    stack.push(t as usize);
                }
                if i.cond != BranchCond::Always {
                    stack.push(p + 1);
                }
            }
            _ => stack.push(p + 1),
        }
    }
    (0..n).filter(|&p| seen[p]).collect()
}

/// Follows `op` backward from `pc` through at most four pass-through
/// defs to a `Mul(Lane|TidInBlock, Imm)` stride computation, returning
/// the multiplier's PC.
fn stride_mul_site(kernel: &Kernel, mut pc: usize, mut op: Operand) -> Option<usize> {
    for _ in 0..4 {
        let Operand::Reg(r) = op else { return None };
        let def = (0..pc).rev().find(|&d| kernel.insts[d].dst == Some(r))?;
        let di = &kernel.insts[def];
        if di.op == ValueOp::Mul
            && di.srcs.len() == 2
            && matches!(di.srcs[0], Operand::Lane | Operand::TidInBlock)
            && matches!(di.srcs[1], Operand::Imm(_))
        {
            return Some(def);
        }
        match di.op {
            // Pass-through for address arithmetic: keep walking the
            // register component of a sum or a move.
            ValueOp::Mov | ValueOp::Add => {
                op = di.srcs.iter().copied().find(|s| matches!(s, Operand::Reg(_)))?;
                pc = def;
            }
            _ => return None,
        }
    }
    None
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_trace::workloads;

    #[test]
    fn injectors_are_deterministic_and_structure_preserving() {
        for w in workloads::all() {
            for &(name, inject, _) in KERNEL_MUTATORS {
                let mut k1 = w.kernel.clone();
                let mut k2 = w.kernel.clone();
                let a1 = inject(&mut k1, 0xC0FFEE);
                let a2 = inject(&mut k2, 0xC0FFEE);
                assert_eq!(a1, a2, "{name} on {} is not deterministic", w.name);
                assert_eq!(k1, k2, "{name} on {} mutates nondeterministically", w.name);
                if a1 {
                    assert_eq!(k1.len(), w.kernel.len(), "{name} shifted PCs in {}", w.name);
                    k1.validate()
                        .unwrap_or_else(|e| panic!("{name} broke {} structurally: {e}", w.name));
                } else {
                    assert_eq!(k1, w.kernel, "{name} mutated {} despite reporting no site", w.name);
                }
            }
        }
    }

    #[test]
    fn different_seeds_can_pick_different_sites() {
        // Somewhere in the library a kernel has several global stores;
        // spread-out seeds must be able to hit distinct ones.
        let diverse = workloads::all().into_iter().any(|w| {
            let mutants: Vec<Kernel> = (0..8u64)
                .filter_map(|s| {
                    let mut k = w.kernel.clone();
                    inject_shared_race(&mut k, s.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                        .then_some(k)
                })
                .collect();
            mutants.iter().any(|m| *m != mutants[0])
        });
        assert!(diverse, "every seed chose the same injection site in every kernel");
    }
}
