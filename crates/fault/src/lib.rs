//! Deterministic fault-injection harness for the GPUMech pipeline.
//!
//! The robustness contract of this workspace is: **no input — however
//! corrupt — may panic the pipeline**. Malformed traces and configurations
//! must surface as typed errors ([`gpumech_trace::TraceError`],
//! [`gpumech_isa::ConfigError`], [`gpumech_core::ModelError`],
//! [`gpumech_timing::SimError`]), and inputs that pass validation must
//! produce a finite CPI.
//!
//! This crate provides the machinery to prove that contract by brute
//! force: a corpus of deterministic [`MUTATORS`] that corrupt a healthy
//! `(KernelTrace, SimConfig)` pair in targeted ways (truncation, dropped
//! warps, zeroed active masks, scrambled dependencies, extreme
//! configurations, corrupted address streams), and runners
//! ([`run_pipeline`], [`run_oracle`]) that execute the analytical model
//! and the timing oracle under `catch_unwind` and classify the result as
//! an [`Outcome`].
//!
//! The same contract extends to the execution layer: a worker thread
//! failing mid-batch (a task panic, or the nastier panic while holding
//! the result-queue lock) must cost exactly one item, as a typed
//! [`gpumech_exec::ExecError`]. The [`EXEC_FAULTS`] corpus and
//! [`run_batch_case`] drive those injections through the real
//! [`BatchEngine`].
//!
//! The resilience layer gets its own corpora: [`RESILIENCE_FAULTS`]
//! (never-terminating jobs, first-attempt-only panics) driven through
//! [`run_resilient_batch_case`] under a full
//! [`gpumech_exec::BatchOptions`] policy, and [`CACHE_MUTATORS`] — plus
//! [`simulate_midwrite_kill`] — which corrupt the crash-safe profile
//! cache's on-disk entries in every way the format must detect.
//!
//! Finally, the static verifier is held to a completeness contract by
//! the [`defects`] module: seeded injectors that plant semantic defects
//! (divergent barriers, shared-memory races, pathological bank strides)
//! into structurally-valid kernel IR, which `gpumech_analyze::analyze`
//! must report — with the right finding code — on every mutant.
//!
//! Sharded sweeps are covered by the [`shardfaults`] module: a
//! fabricator that writes a healthy multi-shard sweep through the real
//! [`gpumech_shard::SweepReport`] writer, and the [`shardfaults::SHARD_FAULTS`]
//! corpus of on-disk corruptions (torn tails, bit flips, forged
//! checksums, overlapping assignments, diverging duplicates, missing
//! shards, cross-sweep mixes, journal rot) each of which the verified
//! merge must answer with its declared typed finding — never a panic,
//! never a merged output.
//!
//! All randomness is derived from [`gpumech_trace::splitmix64`], so every
//! mutation is a pure function of its seed: a failing case found in CI
//! reproduces byte-for-byte locally.

pub mod defects;
pub mod shardfaults;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use gpumech_core::{Gpumech, PredictionRequest};
use gpumech_exec::{BatchEngine, BatchJob, BatchOptions, FaultInjection, FaultKind};
use gpumech_isa::{SchedulingPolicy, SimConfig};
use gpumech_timing::simulate;
use gpumech_trace::{splitmix64, KernelTrace};

/// What happened when a (possibly corrupted) input was fed to a runner.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The input was accepted and produced this CPI.
    Cpi(f64),
    /// The input was rejected with a typed error (its `Display` rendering).
    TypedError(String),
    /// The runner panicked — always a bug; the suite fails on any of these.
    Panic(String),
}

impl Outcome {
    /// `true` for [`Outcome::Panic`].
    #[must_use]
    pub fn is_panic(&self) -> bool {
        matches!(self, Outcome::Panic(_))
    }

    /// `true` when the outcome honours the robustness contract: a typed
    /// error, or a finite, non-negative CPI.
    #[must_use]
    pub fn is_contract_ok(&self) -> bool {
        match self {
            Outcome::Cpi(c) => c.is_finite() && *c >= 0.0,
            Outcome::TypedError(_) => true,
            Outcome::Panic(_) => false,
        }
    }
}

/// Extracts a printable message from a `catch_unwind` payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Classifies the result of `f` — which returns `Result<CPI, typed error>`
/// — catching any panic it raises.
fn classify<E: std::fmt::Display>(f: impl FnOnce() -> Result<f64, E>) -> Outcome {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(Ok(cpi)) => Outcome::Cpi(cpi),
        Ok(Err(e)) => Outcome::TypedError(e.to_string()),
        Err(payload) => Outcome::Panic(panic_message(payload.as_ref())),
    }
}

/// Runs the full analytical pipeline (validation, cache simulation,
/// interval analysis, clustering, multithreading + contention models) on
/// the input and classifies the result.
///
/// Uses the paper's flagship configuration: `MT_MSHR_BAND` with
/// clustering-based representative selection under round-robin
/// scheduling — the path that exercises the most numeric code.
#[must_use]
pub fn run_pipeline(trace: &KernelTrace, cfg: &SimConfig) -> Outcome {
    // The span closes even when the pipeline panics: guards unwind out of
    // `catch_unwind`, which is exactly what the suite's no-leaked-spans
    // assertion checks.
    let _span = gpumech_obs::span!("fault.case.pipeline");
    classify(|| {
        let model = Gpumech::new(cfg.clone());
        // The paper's flagship path, expressed as a request with default
        // options (round-robin, MT_MSHR_BAND, clustering selection).
        let p = model.run(&PredictionRequest::from_trace(trace))?;
        Ok::<f64, gpumech_core::ModelError>(p.cpi_total())
    })
}

/// Runs the cycle-level timing oracle on the input and classifies the
/// result.
#[must_use]
pub fn run_oracle(trace: &KernelTrace, cfg: &SimConfig) -> Outcome {
    let _span = gpumech_obs::span!("fault.case.oracle");
    classify(|| simulate(trace, cfg, SchedulingPolicy::RoundRobin).map(|r| r.cpi()))
}

/// Records one classified fault case through the installed recorder — a
/// no-op when observability is disabled. Emits a `fault.case.classified`
/// span tagged with the mutator and runner, a `fault.case.total` counter,
/// and a per-[`Outcome`] tally (`fault.outcome.cpi` /
/// `fault.outcome.typed_error` / `fault.outcome.panic`).
pub fn record_case(mutator: &str, runner: &str, outcome: &Outcome) {
    if !gpumech_obs::enabled() {
        return;
    }
    let _span = gpumech_obs::span!("fault.case.classified", mutator = mutator, runner = runner);
    gpumech_obs::counter!("fault.case.total", 1u64);
    match outcome {
        Outcome::Cpi(_) => gpumech_obs::counter!("fault.outcome.cpi", 1u64),
        Outcome::TypedError(_) => gpumech_obs::counter!("fault.outcome.typed_error", 1u64),
        Outcome::Panic(_) => gpumech_obs::counter!("fault.outcome.panic", 1u64),
    }
}

/// A deterministic corruption of a `(trace, config)` pair, driven by a
/// splitmix64 seed.
pub type Mutator = fn(&mut KernelTrace, &mut SimConfig, u64);

/// The mutation corpus: `(name, mutator)` pairs. Every entry corrupts a
/// different structural or numeric aspect of the input; together they
/// cover each validation invariant and each numeric guard in the
/// pipeline.
pub const MUTATORS: &[(&str, Mutator)] = &[
    ("truncate_trace", truncate_trace),
    ("drop_warps", drop_warps),
    ("zero_masks", zero_masks),
    ("scramble_deps", scramble_deps),
    ("extreme_config", extreme_config),
    ("corrupt_addrs", corrupt_addrs),
    ("swap_warp_ids", swap_warp_ids),
];

/// Truncates the warp list (and, on odd seeds, the surviving warps'
/// instruction streams) so the trace no longer matches its launch
/// geometry.
pub fn truncate_trace(trace: &mut KernelTrace, _cfg: &mut SimConfig, seed: u64) {
    let r = splitmix64(seed);
    let cut = (r as usize) % (trace.warps.len() + 1);
    trace.warps.truncate(cut);
    if r & 1 == 1 {
        for w in &mut trace.warps {
            let keep = (splitmix64(r ^ w.warp.index() as u64) as usize) % (w.insts.len() + 1);
            w.insts.truncate(keep);
        }
    }
}

/// Removes a seeded subset of warps from the middle of the grid,
/// breaking both the warp count and the id-equals-index invariant.
pub fn drop_warps(trace: &mut KernelTrace, _cfg: &mut SimConfig, seed: u64) {
    let mut r = splitmix64(seed);
    let mut i = 0;
    trace.warps.retain(|_| {
        r = splitmix64(r.wrapping_add(i));
        i += 1;
        r & 3 != 0 // drop ~1 warp in 4
    });
}

/// Zeroes the active mask (and address list) of a seeded subset of
/// instructions — the trace-level analog of a zero-length interval.
pub fn zero_masks(trace: &mut KernelTrace, _cfg: &mut SimConfig, seed: u64) {
    let mut r = splitmix64(seed);
    for w in &mut trace.warps {
        for inst in &mut w.insts {
            r = splitmix64(r);
            if r & 7 == 0 {
                inst.active_mask = 0;
                inst.addrs.clear();
            }
        }
    }
}

/// Overwrites dependency lists with seeded garbage: forward references,
/// self-references, duplicates, and out-of-range indices.
pub fn scramble_deps(trace: &mut KernelTrace, _cfg: &mut SimConfig, seed: u64) {
    let mut r = splitmix64(seed);
    for w in &mut trace.warps {
        let n = w.insts.len() as u32;
        for (k, inst) in w.insts.iter_mut().enumerate() {
            r = splitmix64(r);
            if r & 3 == 0 {
                let a = (r >> 8) as u32 % (n + 2); // may be >= k or == k
                let b = a / 2; // unsorted when a > 0
                inst.deps = vec![a, b, a]; // duplicates too
            } else if r & 3 == 1 {
                inst.deps = vec![k as u32]; // self-dependency
            }
        }
    }
}

/// Replaces the machine configuration with a seeded pick from a menu of
/// pathological configurations: zero resources, absurd sizes, and
/// non-finite bandwidth.
pub fn extreme_config(_trace: &mut KernelTrace, cfg: &mut SimConfig, seed: u64) {
    match splitmix64(seed) % 8 {
        0 => cfg.max_warps_per_core = 0,
        1 => cfg.max_warps_per_core = usize::MAX,
        2 => cfg.num_mshrs = 0,
        3 => cfg.num_mshrs = usize::MAX / 2,
        4 => cfg.dram_bandwidth_gbps = 0.0,
        5 => cfg.dram_bandwidth_gbps = f64::NAN,
        6 => cfg.dram_bandwidth_gbps = f64::INFINITY,
        _ => {
            cfg.issue_width = 0;
            cfg.sfu_per_core = 0;
        }
    }
}

/// Corrupts memory address streams: extreme values on even seeds (cache
/// index arithmetic stress), dropped or duplicated entries on odd seeds
/// (count-vs-mask invariant violations).
pub fn corrupt_addrs(trace: &mut KernelTrace, _cfg: &mut SimConfig, seed: u64) {
    let mut r = splitmix64(seed);
    for w in &mut trace.warps {
        for inst in &mut w.insts {
            if inst.addrs.is_empty() {
                continue;
            }
            r = splitmix64(r);
            if seed & 1 == 0 {
                for a in &mut inst.addrs {
                    r = splitmix64(r);
                    *a = r | (u64::MAX << 40); // near the top of the address space
                }
            } else if r & 1 == 0 {
                inst.addrs.pop();
            } else {
                let dup = inst.addrs[0];
                inst.addrs.push(dup);
            }
        }
    }
}

/// The execution-layer fault corpus: deliberate worker failures the
/// batch pool must contain. Unlike [`MUTATORS`], these corrupt the
/// *machinery* (a worker thread), not the input — the contract is that
/// only the victim item degrades, to a typed [`gpumech_exec::ExecError`],
/// while every other item in the batch completes with output identical
/// to a fault-free run.
pub const EXEC_FAULTS: &[(&str, FaultKind)] = &[
    ("task_panic", FaultKind::TaskPanic),
    ("panic_holding_queue_lock", FaultKind::PanicHoldingQueueLock),
];

/// Runs `jobs` through a fresh [`BatchEngine`] with an optional injected
/// worker fault, classifying each job's result as an [`Outcome`]
/// (successful predictions by total CPI, [`gpumech_exec::ExecError`]s as
/// typed errors). A panic *escaping* the engine — which the pool's
/// isolation exists to prevent — classifies every job as
/// [`Outcome::Panic`].
#[must_use]
pub fn run_batch_case(
    jobs: &[BatchJob],
    workers: usize,
    inject: Option<FaultInjection>,
) -> Vec<Outcome> {
    let _span = gpumech_obs::span!("fault.case.batch");
    match catch_unwind(AssertUnwindSafe(|| {
        BatchEngine::new(workers).run_with_injection(jobs, inject)
    })) {
        Ok(results) => results
            .into_iter()
            .map(|r| match r {
                Ok(p) => Outcome::Cpi(p.cpi_total()),
                Err(e) => Outcome::TypedError(e.to_string()),
            })
            .collect(),
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            jobs.iter().map(|_| Outcome::Panic(msg.clone())).collect()
        }
    }
}

/// The resilience fault corpus: failures the retry/deadline layer — not
/// the pool — must contain. `slow_job` makes the victim spin until its
/// cancel token fires (it must die as a typed deadline error, never hang
/// the batch); `transient_panic` panics on the first attempt only (one
/// retry must make the batch byte-identical to a fault-free run).
pub const RESILIENCE_FAULTS: &[(&str, FaultKind)] = &[
    ("slow_job", FaultKind::SlowJob),
    ("transient_panic", FaultKind::TransientPanic),
];

/// Runs `jobs` through a fresh [`BatchEngine`] under a full
/// [`BatchOptions`] resilience policy (deadlines, retries, breakers,
/// injections), classifying each job's result as an [`Outcome`] exactly
/// like [`run_batch_case`]. A panic escaping the engine classifies every
/// job as [`Outcome::Panic`].
#[must_use]
pub fn run_resilient_batch_case(
    jobs: &[BatchJob],
    workers: usize,
    opts: &BatchOptions,
) -> Vec<Outcome> {
    let _span = gpumech_obs::span!("fault.case.batch_resilient");
    match catch_unwind(AssertUnwindSafe(|| BatchEngine::new(workers).run_with(jobs, opts))) {
        Ok(results) => results
            .into_iter()
            .map(|r| match r {
                Ok(p) => Outcome::Cpi(p.cpi_total()),
                Err(e) => Outcome::TypedError(e.to_string()),
            })
            .collect(),
        Err(payload) => {
            let msg = panic_message(payload.as_ref());
            jobs.iter().map(|_| Outcome::Panic(msg.clone())).collect()
        }
    }
}

/// A deterministic corruption of an on-disk profile-cache entry, driven
/// by a splitmix64 seed. Operates on the raw file bytes; the mutated
/// bytes replace the entry on disk.
pub type CacheMutator = fn(&mut Vec<u8>, u64);

/// The on-disk cache corruption corpus: `(name, mutator)` pairs covering
/// every defect class the crash-safe format must detect — torn writes
/// (truncation), media corruption (bit flips), format skew (version
/// mismatch), and empty files. The contract for each: detected,
/// quarantined, recomputed — never a panic, never a silently-trusted
/// corrupt profile.
pub const CACHE_MUTATORS: &[(&str, CacheMutator)] = &[
    ("cache_truncate", cache_truncate),
    ("cache_bit_flip", cache_bit_flip),
    ("cache_version_mismatch", cache_version_mismatch),
    ("cache_zero_length", cache_zero_length),
];

/// Truncates the entry at a seeded offset — a torn write from a
/// non-atomic writer or a filesystem that lost the tail.
pub fn cache_truncate(bytes: &mut Vec<u8>, seed: u64) {
    let cut = (splitmix64(seed) as usize) % (bytes.len().max(1));
    bytes.truncate(cut);
}

/// Flips one seeded bit anywhere in the entry — header or payload.
#[allow(clippy::ptr_arg)] // signature must match `CacheMutator`
pub fn cache_bit_flip(bytes: &mut Vec<u8>, seed: u64) {
    if bytes.is_empty() {
        return;
    }
    let r = splitmix64(seed);
    let off = (r as usize) % bytes.len();
    bytes[off] ^= 1 << ((r >> 32) % 8);
}

/// Rewrites the format-version tag to a seeded bogus version — an entry
/// written by a different (future or past) build must never be trusted.
#[allow(clippy::ptr_arg)] // signature must match `CacheMutator`
pub fn cache_version_mismatch(bytes: &mut Vec<u8>, seed: u64) {
    let bogus: &[u8] = match splitmix64(seed) % 3 {
        0 => b"GPUMECH-CACHE v1",
        1 => b"GPUMECH-CACHE v9",
        _ => b"NOT-A-CACHE   v2",
    };
    let n = bogus.len().min(bytes.len());
    bytes[..n].copy_from_slice(&bogus[..n]);
}

/// Empties the entry — a writer killed immediately after `create`.
pub fn cache_zero_length(bytes: &mut Vec<u8>, _seed: u64) {
    bytes.clear();
}

/// Simulates a writer killed mid-write: plants a stale `<entry>.tmp`
/// holding a seeded-length prefix of `content` next to `entry_path`,
/// exactly the debris the atomic temp-file-plus-rename protocol leaves
/// when the process dies between the write and the rename. The committed
/// entry (if any) is left untouched. Returns the planted tmp path.
///
/// # Errors
/// Propagates the underlying I/O error if the tmp file cannot be written.
pub fn simulate_midwrite_kill(
    entry_path: &Path,
    content: &[u8],
    seed: u64,
) -> std::io::Result<std::path::PathBuf> {
    let mut tmp = entry_path.to_path_buf().into_os_string();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let cut = (splitmix64(seed) as usize) % (content.len().max(1));
    if let Some(parent) = tmp.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(&tmp, &content[..cut])?;
    Ok(tmp)
}

/// A completion-journal mutator: corrupts the JSONL text of a
/// `gpumech_exec` completion journal (`BatchOptions::journal`) the way
/// hostile filesystems and racing appenders do.
pub type JournalMutator = fn(&mut String, u64);

/// The journal corruption corpus. The resume contract under every one of
/// these: a `--resume` run covers every job **exactly once** — replayed
/// from the journal or recomputed — or fails with a typed journal error.
/// It never panics and never silently double-runs a job.
pub const JOURNAL_MUTATORS: &[(&str, JournalMutator)] = &[
    ("journal_duplicate_lines", journal_duplicate_lines),
    ("journal_torn_interleave", journal_torn_interleave),
    ("journal_torn_tail", journal_torn_tail),
    ("journal_poison_prediction", journal_poison_prediction),
];

/// Duplicates a seeded subset of lines — an appender that retried after a
/// timeout whose first write had actually landed. Duplicate fingerprints
/// must collapse on load, not double-run or double-count.
pub fn journal_duplicate_lines(text: &mut String, seed: u64) {
    let lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        out.push_str(line);
        out.push('\n');
        if splitmix64(seed ^ (i as u64)).is_multiple_of(2) {
            out.push_str(line);
            out.push('\n');
        }
    }
    // Guarantee at least one duplicate even on an all-odd seed draw.
    if let Some(first) = lines.first() {
        out.push_str(first);
        out.push('\n');
    }
    *text = out;
}

/// Interleaves two seeded lines' bytes mid-line — two appenders whose
/// non-atomic writes raced. Both mangled entries must be treated as
/// not-completed (recomputed), never half-trusted.
pub fn journal_torn_interleave(text: &mut String, seed: u64) {
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    if lines.len() < 2 {
        return;
    }
    let a = (splitmix64(seed) as usize) % lines.len();
    let mut b = (splitmix64(seed ^ 0x517C_C1B7_2722_0A95) as usize) % lines.len();
    if a == b {
        b = (b + 1) % lines.len();
    }
    let (la, lb) = (lines[a].clone(), lines[b].clone());
    let mut cut_a = (splitmix64(seed ^ 1) as usize) % la.len().max(1);
    let mut cut_b = (splitmix64(seed ^ 2) as usize) % lb.len().max(1);
    while !la.is_char_boundary(cut_a) {
        cut_a -= 1;
    }
    while !lb.is_char_boundary(cut_b) {
        cut_b -= 1;
    }
    // One write landed a prefix of A, then all of B's line, then A's tail
    // glued on — the classic torn interleave from two O_APPEND-less
    // writers sharing a descriptor.
    let merged = format!("{}{}{}", &la[..cut_a], &lb[..cut_b], &la[cut_a..]);
    lines[a] = merged;
    lines[b] = lb[cut_b..].to_string();
    *text = lines.join("\n");
    text.push('\n');
}

/// Truncates the final line at a seeded byte — the process was killed
/// mid-append. The torn tail must be skipped, and the job recomputed.
pub fn journal_torn_tail(text: &mut String, seed: u64) {
    let end_of_prev = text.trim_end_matches('\n').rfind('\n').map_or(0, |i| i + 1);
    let tail_len = text.len() - end_of_prev;
    if tail_len == 0 {
        return;
    }
    let mut cut = end_of_prev + (splitmix64(seed) as usize) % tail_len;
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    text.truncate(cut);
}

/// Corrupts the *payload* of one seeded entry while keeping the outer
/// JSONL line valid: the entry loads, but replaying its prediction must
/// fail with a typed journal-replay error — never a panic, and never a
/// silent re-run that masks the corruption.
pub fn journal_poison_prediction(text: &mut String, seed: u64) {
    let lines: Vec<String> = text.lines().map(str::to_owned).collect();
    if lines.is_empty() {
        return;
    }
    let victim = (splitmix64(seed) as usize) % lines.len();
    let mut out = String::new();
    for (i, line) in lines.iter().enumerate() {
        if i == victim {
            if let Some(pos) = line.find("\"prediction\":\"") {
                let insert_at = pos + "\"prediction\":\"".len();
                out.push_str(&line[..insert_at]);
                out.push_str("!poisoned! ");
                out.push_str(&line[insert_at..]);
            } else {
                out.push_str(line);
            }
        } else {
            out.push_str(line);
        }
        out.push('\n');
    }
    *text = out;
}

/// Swaps two seeded warp slots, so stored warp ids disagree with their
/// grid positions.
pub fn swap_warp_ids(trace: &mut KernelTrace, _cfg: &mut SimConfig, seed: u64) {
    let n = trace.warps.len();
    if n < 2 {
        return;
    }
    let a = (splitmix64(seed) as usize) % n;
    let b = (splitmix64(seed ^ 0x9E37_79B9_7F4A_7C15) as usize) % n;
    if a != b {
        trace.warps.swap(a, b);
    } else {
        trace.warps.swap(a, (a + 1) % n);
    }
}

/// Installs a no-op panic hook so a fault-injection run does not spam
/// stderr with backtraces for the panics it deliberately provokes and
/// catches. Call once at the start of a suite.
pub fn silence_panic_output() {
    std::panic::set_hook(Box::new(|_| {}));
}

/// Restores the default panic hook after [`silence_panic_output`], so a
/// suite's own assertion failures print normally. Call before asserting.
pub fn restore_panic_output() {
    drop(std::panic::take_hook());
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_trace::workloads;

    #[test]
    fn classify_catches_panics_and_errors() {
        silence_panic_output();
        let ok = classify(|| Ok::<f64, String>(1.5));
        assert_eq!(ok, Outcome::Cpi(1.5));
        assert!(ok.is_contract_ok());

        let err = classify(|| Err::<f64, String>("boom".to_string()));
        assert_eq!(err, Outcome::TypedError("boom".to_string()));
        assert!(err.is_contract_ok());

        let p = classify(|| -> Result<f64, String> { panic!("deliberate") });
        assert_eq!(p, Outcome::Panic("deliberate".to_string()));
        assert!(p.is_panic());
        assert!(!p.is_contract_ok());

        assert!(!Outcome::Cpi(f64::NAN).is_contract_ok());
        assert!(!Outcome::Cpi(-1.0).is_contract_ok());
    }

    #[test]
    fn mutators_are_deterministic() {
        let w = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(2);
        let trace = w.trace().unwrap();
        for &(name, m) in MUTATORS {
            let mut t1 = trace.clone();
            let mut c1 = SimConfig::table1();
            m(&mut t1, &mut c1, 0xDEAD_BEEF);
            let mut t2 = trace.clone();
            let mut c2 = SimConfig::table1();
            m(&mut t2, &mut c2, 0xDEAD_BEEF);
            assert_eq!(t1, t2, "{name} trace mutation is not deterministic");
            assert_eq!(format!("{c1:?}"), format!("{c2:?}"), "{name} config mutation differs");
        }
    }

    #[test]
    fn healthy_input_passes_both_runners() {
        let w = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(2);
        let trace = w.trace().unwrap();
        let cfg = SimConfig::table1();
        let model = run_pipeline(&trace, &cfg);
        let oracle = run_oracle(&trace, &cfg);
        assert!(matches!(model, Outcome::Cpi(c) if c.is_finite() && c > 0.0), "{model:?}");
        assert!(matches!(oracle, Outcome::Cpi(c) if c.is_finite() && c > 0.0), "{oracle:?}");
    }
}
