//! Shard-merge corruption corpus: fabricates a healthy sharded sweep on
//! disk, then corrupts it in every way the verified merge must detect.
//!
//! The merge contract under test ([`gpumech_shard::merge_files`]) is the
//! mirror of the pipeline contract: **no shard-file corruption — however
//! nasty — may panic the merge or leak into a merged output**. Every
//! mutation in [`SHARD_FAULTS`] must surface as a typed
//! [`MergeFinding`](gpumech_shard::MergeFinding) with the declared
//! [`FindingKind`], and `merged` must stay `None`.
//!
//! The fabricator builds the sweep purely in-process (synthetic job
//! fingerprints partitioned with the real [`gpumech_shard::shard_of`],
//! rendered through the real [`SweepReport`] writer), so the corpus
//! exercises the exact on-disk format `gpumech batch --shard` produces
//! without spawning processes. Journal lines carry a real
//! [`Prediction`](gpumech_core::Prediction) so the journal cross-check
//! sees production-shaped entries.
//!
//! All variation is seeded: a failing case reproduces byte-for-byte.

use std::path::{Path, PathBuf};

use gpumech_core::{CpiStack, Gpumech, PredictionRequest};
use gpumech_exec::canonical_prediction_json;
use gpumech_exec::resilience::JournalEntry;
use gpumech_isa::SimConfig;
use gpumech_shard::{
    fingerprint_hex, load_shard_file, shard_of, FindingKind, JobRow, ShardSpec, SweepManifest,
    SweepReport,
};
use gpumech_trace::{splitmix64, workloads};

/// A fabricated sharded sweep on disk: the merge inputs plus the ground
/// truth needed to corrupt them surgically.
#[derive(Debug, Clone)]
pub struct SweepCase {
    /// Workspace directory holding every file of the case.
    pub dir: PathBuf,
    /// Shard result files, in shard order — the merge input. Mutators may
    /// add (duplicate copies) or remove (missing shard) entries.
    pub paths: Vec<PathBuf>,
    /// Per-shard journals for the merge's journal cross-check.
    pub journals: Vec<PathBuf>,
    /// The sweep's job fingerprints in enumeration order.
    pub manifest_fps: Vec<u64>,
    /// Shard count the sweep was fabricated with.
    pub shards: u32,
}

/// Seed mixed into fabricated job fingerprints.
const JOB_SEED: u64 = 0x5EED_0001;

/// A canonical prediction payload for journal lines: real model output,
/// so the journal cross-check parses production-shaped entries.
fn sample_prediction() -> Result<String, String> {
    let workload = workloads::by_name("sdk_vectoradd")
        .ok_or_else(|| "bundled workload sdk_vectoradd missing".to_string())?
        .with_blocks(1);
    let prediction = Gpumech::new(SimConfig::default())
        .run(&PredictionRequest::from_workload(&workload))
        .map_err(|e| e.to_string())?;
    canonical_prediction_json(&prediction).map_err(|e| e.to_string())
}

/// Deterministic synthetic row for job `i` of the sweep.
fn row(i: usize, fp: u64) -> JobRow {
    JobRow {
        label: format!("job-{i}"),
        fingerprint: fingerprint_hex(fp),
        cpi: Some(1.0 + 0.25 * i as f64),
        ipc: Some(1.0 / (1.0 + 0.25 * i as f64)),
        stack: Some(CpiStack { base: 1.0, ..CpiStack::default() }),
        oracle_cpi: None,
        error: None,
        warnings: Vec::new(),
    }
}

/// Fabricates a healthy `shards`-way sweep of `jobs` jobs under `dir`:
/// one verified result file and one valid journal per shard. A clean
/// [`gpumech_shard::merge_files`] over the returned case must succeed.
///
/// # Errors
///
/// Rendered I/O or model failure (the workspace could not be built).
pub fn fabricate_sweep(dir: &Path, shards: u32, jobs: usize) -> Result<SweepCase, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let fps: Vec<u64> = (0..jobs).map(|i| splitmix64(JOB_SEED.wrapping_add(i as u64))).collect();
    let prediction = sample_prediction()?;

    let mut paths = Vec::new();
    let mut journals = Vec::new();
    for shard in 0..shards {
        let spec = ShardSpec { index: shard, count: shards };
        let manifest = SweepManifest::new(spec, "deadbeef", 0xC0FF_EE00, &fps);
        let owned: Vec<(usize, u64)> = fps
            .iter()
            .copied()
            .enumerate()
            .filter(|&(_, fp)| shard_of(fp, shards) == shard)
            .collect();
        let report = SweepReport {
            manifest,
            workers: 2,
            cache_entries: owned.len() as u64,
            counters: Vec::new(),
            jobs_checksum: String::new(), // recomputed on render
            jobs: owned.iter().map(|&(i, fp)| row(i, fp)).collect(),
        };
        let path = dir.join(format!("shard-{shard}.json"));
        report.write(&path)?;
        paths.push(path);

        let journal = dir.join(format!("shard-{shard}.journal"));
        let mut text = String::new();
        for &(i, fp) in &owned {
            let entry = JournalEntry {
                fingerprint: fingerprint_hex(fp),
                label: format!("job-{i}"),
                prediction: prediction.clone(),
            };
            text.push_str(
                &serde_json::to_string(&entry).map_err(|e| e.to_string())?,
            );
            text.push('\n');
        }
        std::fs::write(&journal, text).map_err(|e| format!("{}: {e}", journal.display()))?;
        journals.push(journal);
    }
    Ok(SweepCase { dir: dir.to_path_buf(), paths, journals, manifest_fps: fps, shards })
}

/// A mutator corrupts one fabricated sweep in place. `seed` varies the
/// corruption site deterministically.
pub type ShardMutator = fn(&mut SweepCase, u64) -> Result<(), String>;

/// One corpus entry: a named corruption and the finding it must produce.
pub struct ShardFault {
    /// Stable case name for failure messages.
    pub name: &'static str,
    /// The finding kind the merge must report for this corruption.
    pub expect: FindingKind,
    /// The corruption itself.
    pub mutate: ShardMutator,
}

/// Loads a (valid) shard file back into its structured report so a
/// mutator can edit and re-render it with a consistent checksum.
fn reload(path: &Path) -> Result<SweepReport, String> {
    Ok(load_shard_file(path)?.report)
}

/// The shard with the most rows (mutations that delete or move rows need
/// a donor that owns at least one).
fn fattest_shard(case: &SweepCase) -> Result<(usize, SweepReport), String> {
    let mut best: Option<(usize, SweepReport)> = None;
    for (i, path) in case.paths.iter().enumerate() {
        let report = reload(path)?;
        if best.as_ref().is_none_or(|(_, b)| report.jobs.len() > b.jobs.len()) {
            best = Some((i, report));
        }
    }
    best.ok_or_else(|| "sweep has no shard files".to_string())
}

fn torn_tail(case: &mut SweepCase, seed: u64) -> Result<(), String> {
    let path = &case.paths[(seed as usize) % case.paths.len()];
    let bytes = std::fs::read(path).map_err(|e| e.to_string())?;
    // Cutting two or more bytes always severs the closing `]}` or lands
    // mid-row; cutting just the final newline would still parse.
    let cut = 2 + (splitmix64(seed) as usize) % (bytes.len() / 2);
    std::fs::write(path, &bytes[..bytes.len() - cut]).map_err(|e| e.to_string())
}

fn bit_flip_in_rows(case: &mut SweepCase, seed: u64) -> Result<(), String> {
    let path = &case.paths[(seed as usize) % case.paths.len()];
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let start = text.find("\"jobs\": [").ok_or("no jobs array")?;
    let digits: Vec<usize> = text[start..]
        .char_indices()
        .filter(|&(_, c)| c.is_ascii_digit())
        .map(|(i, _)| start + i)
        .collect();
    let at = digits[(splitmix64(seed ^ 1) as usize) % digits.len()];
    let mut bytes = text.into_bytes();
    bytes[at] = b'0' + ((bytes[at] - b'0') + 1 + (seed % 8) as u8) % 10;
    std::fs::write(path, bytes).map_err(|e| e.to_string())
}

fn forged_checksum(case: &mut SweepCase, seed: u64) -> Result<(), String> {
    let path = &case.paths[(seed as usize) % case.paths.len()];
    let mut report = reload(path)?;
    // Store a syntactically valid but wrong checksum; render() would fix
    // it, so write through render_parts-compatible text manually: easiest
    // is to render then splice the forged value in.
    report.jobs_checksum = String::new();
    let text = report.render()?;
    let honest = gpumech_shard::rows_checksum(
        &load_shard_file(path)?.raw_rows,
    );
    let forged: String = honest
        .chars()
        .map(|c| if c == '0' { '1' } else { '0' })
        .collect();
    std::fs::write(path, text.replacen(&honest, &forged, 1)).map_err(|e| e.to_string())
}

fn overlapping_assignment(case: &mut SweepCase, _seed: u64) -> Result<(), String> {
    // Move a copy of a row into a file whose shard does not own it.
    let (donor_idx, donor) = fattest_shard(case)?;
    let victim_idx = (donor_idx + 1) % case.paths.len();
    let stray = donor.jobs.first().ok_or("donor shard owns no rows")?.clone();
    let mut victim = reload(&case.paths[victim_idx])?;
    victim.jobs.push(stray);
    victim.write(&case.paths[victim_idx])
}

fn duplicate_with_different_bytes(case: &mut SweepCase, _seed: u64) -> Result<(), String> {
    // A "retry" copy of one shard's file where one row's value drifted:
    // the merge must refuse to pick a winner.
    let (idx, mut retry) = fattest_shard(case)?;
    let first = retry.jobs.first_mut().ok_or("shard owns no rows")?;
    first.cpi = first.cpi.map(|c| c + 1.0);
    let path = case.dir.join("shard-retry.json");
    retry.write(&path)?;
    case.paths.push(path);
    let _ = idx;
    Ok(())
}

fn missing_shard(case: &mut SweepCase, seed: u64) -> Result<(), String> {
    let at = (seed as usize) % case.paths.len();
    let path = case.paths.remove(at);
    std::fs::remove_file(&path).map_err(|e| e.to_string())
}

fn cross_sweep_mix(case: &mut SweepCase, seed: u64) -> Result<(), String> {
    let at = (seed as usize) % case.paths.len();
    let mut report = reload(&case.paths[at])?;
    report.manifest.git_commit = "f00dface".to_string();
    report.write(&case.paths[at])
}

fn unknown_job(case: &mut SweepCase, _seed: u64) -> Result<(), String> {
    let (idx, mut report) = fattest_shard(case)?;
    let mut fp = 0xDEAD_BEEF_DEAD_BEEFu64;
    while case.manifest_fps.contains(&fp) {
        fp ^= 1;
    }
    report.jobs.push(JobRow { label: "stray".to_string(), ..row(999, fp) });
    report.write(&case.paths[idx])
}

fn coverage_gap(case: &mut SweepCase, _seed: u64) -> Result<(), String> {
    let (idx, mut report) = fattest_shard(case)?;
    report.jobs.pop().ok_or("shard owns no rows")?;
    report.write(&case.paths[idx])
}

fn journal_torn_line(case: &mut SweepCase, seed: u64) -> Result<(), String> {
    let path = &case.journals[(seed as usize) % case.journals.len()];
    let mut text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    text.push_str("{\"fingerprint\":\"00000000000\n");
    std::fs::write(path, text).map_err(|e| e.to_string())
}

fn journal_foreign_entry(case: &mut SweepCase, seed: u64) -> Result<(), String> {
    let path = &case.journals[(seed as usize) % case.journals.len()];
    let mut fp = 0xFEED_FACE_FEED_FACEu64;
    while case.manifest_fps.contains(&fp) {
        fp ^= 1;
    }
    let entry = JournalEntry {
        fingerprint: fingerprint_hex(fp),
        label: "foreign".to_string(),
        prediction: sample_prediction()?,
    };
    let mut text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    text.push_str(&serde_json::to_string(&entry).map_err(|e| e.to_string())?);
    text.push('\n');
    std::fs::write(path, text).map_err(|e| e.to_string())
}

/// Every way a sharded sweep can rot on disk, and the typed finding the
/// merge must answer with.
pub const SHARD_FAULTS: &[ShardFault] = &[
    ShardFault {
        name: "torn_tail",
        expect: FindingKind::CorruptShardFile,
        mutate: torn_tail,
    },
    ShardFault {
        name: "bit_flip_in_rows",
        expect: FindingKind::CorruptShardFile,
        mutate: bit_flip_in_rows,
    },
    ShardFault {
        name: "forged_checksum",
        expect: FindingKind::CorruptShardFile,
        mutate: forged_checksum,
    },
    ShardFault {
        name: "overlapping_assignment",
        expect: FindingKind::MisassignedJob,
        mutate: overlapping_assignment,
    },
    ShardFault {
        name: "duplicate_with_different_bytes",
        expect: FindingKind::DuplicateJobConflict,
        mutate: duplicate_with_different_bytes,
    },
    ShardFault {
        name: "missing_shard",
        expect: FindingKind::MissingShard,
        mutate: missing_shard,
    },
    ShardFault {
        name: "cross_sweep_mix",
        expect: FindingKind::CrossSweepMix,
        mutate: cross_sweep_mix,
    },
    ShardFault {
        name: "unknown_job",
        expect: FindingKind::UnknownJob,
        mutate: unknown_job,
    },
    ShardFault {
        name: "coverage_gap",
        expect: FindingKind::CoverageGap,
        mutate: coverage_gap,
    },
    ShardFault {
        name: "journal_torn_line",
        expect: FindingKind::JournalCorrupt,
        mutate: journal_torn_line,
    },
    ShardFault {
        name: "journal_foreign_entry",
        expect: FindingKind::JournalCorrupt,
        mutate: journal_foreign_entry,
    },
];
