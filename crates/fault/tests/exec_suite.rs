//! Execution-layer fault suite: deliberate worker failures injected into
//! the batch pool, asserting graceful degradation — the victim item
//! surfaces as a typed error, every other item's prediction stays
//! byte-identical to a fault-free run, and no observability span leaks.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::sync::{Arc, Mutex, PoisonError};

use gpumech_exec::{
    canonical_prediction_json, BatchEngine, BatchJob, ExecError, FaultInjection, FaultKind,
};
use gpumech_fault::{
    restore_panic_output, run_batch_case, silence_panic_output, Outcome, EXEC_FAULTS,
};
use gpumech_isa::SimConfig;
use gpumech_obs::Recorder;
use gpumech_trace::workloads;

/// Serializes tests that install the process-global recorder.
static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn suite_lock() -> std::sync::MutexGuard<'static, ()> {
    SUITE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A small but heterogeneous batch (compute-, divergence-, and
/// memory-bound kernels) at a fast grid size.
fn jobs() -> Vec<BatchJob> {
    ["sdk_vectoradd", "bfs_kernel1", "kmeans_invert_mapping", "cfd_step_factor", "lud_diagonal"]
        .into_iter()
        .map(|name| {
            let trace = workloads::by_name(name).unwrap().with_blocks(2).trace().unwrap();
            BatchJob::new(name, Arc::new(trace), SimConfig::table1())
        })
        .collect()
}

#[test]
fn injected_worker_faults_cost_exactly_the_victim_item() {
    let _serial = suite_lock();
    let jobs = jobs();
    let rec = Arc::new(Recorder::new());
    let _obs = gpumech_obs::install(Arc::clone(&rec));

    // Fault-free baseline, canonicalized for byte-identity checks.
    let baseline: Vec<String> = BatchEngine::new(2)
        .run(&jobs)
        .into_iter()
        .map(|r| canonical_prediction_json(&r.unwrap()).unwrap())
        .collect();

    silence_panic_output();
    let mut injected_runs = 0usize;
    for &(fault_name, kind) in EXEC_FAULTS {
        for victim in [0, jobs.len() / 2, jobs.len() - 1] {
            for workers in [1, 3] {
                injected_runs += 1;
                let inject = FaultInjection { item: victim, kind };
                let got = BatchEngine::new(workers).run_with_injection(&jobs, Some(inject));
                assert_eq!(got.len(), jobs.len());
                for (i, (result, want)) in got.iter().zip(&baseline).enumerate() {
                    let case = format!(
                        "fault={fault_name}, victim={victim}, workers={workers}, item={i}"
                    );
                    if i == victim {
                        let err = result.as_ref().expect_err(&case);
                        assert_eq!(err.label, jobs[victim].label, "{case}: error must name the kernel");
                        match (kind, &err.error) {
                            (FaultKind::TaskPanic, ExecError::WorkerPanic { item, .. }) => {
                                assert_eq!(*item, victim, "{case}");
                            }
                            (
                                FaultKind::PanicHoldingQueueLock,
                                ExecError::ResultLost { item },
                            ) => {
                                assert_eq!(*item, victim, "{case}");
                            }
                            other => panic!("{case}: wrong degradation: {other:?}"),
                        }
                    } else {
                        let p = result.as_ref().unwrap_or_else(|e| panic!("{case}: {e}"));
                        assert_eq!(
                            &canonical_prediction_json(p).unwrap(),
                            want,
                            "{case}: survivor diverged from fault-free baseline"
                        );
                    }
                }
            }
        }
    }
    restore_panic_output();

    // Every injected panic was contained and accounted for, and no span —
    // not even one unwound through a poisoned lock — was left open.
    assert_eq!(rec.open_spans(), 0, "injected faults leaked open spans");
    let snap = rec.snapshot();
    let panics = snap.counters.get("exec.pool.panics").map_or(0, |c| c.total);
    assert_eq!(panics, injected_runs as u64, "one contained panic per injected run");
}

#[test]
fn batch_case_classifier_upholds_the_contract() {
    let _serial = suite_lock();
    let jobs = jobs();
    silence_panic_output();
    for &(fault_name, kind) in EXEC_FAULTS {
        let victim = 1;
        let outcomes = run_batch_case(&jobs, 2, Some(FaultInjection { item: victim, kind }));
        for (i, outcome) in outcomes.iter().enumerate() {
            assert!(
                outcome.is_contract_ok(),
                "fault={fault_name}, item={i}: contract violated: {outcome:?}"
            );
            if i == victim {
                assert!(
                    matches!(outcome, Outcome::TypedError(_)),
                    "fault={fault_name}: victim must degrade to a typed error, got {outcome:?}"
                );
            } else {
                assert!(
                    matches!(outcome, Outcome::Cpi(c) if c.is_finite() && *c > 0.0),
                    "fault={fault_name}, item={i}: survivor must predict, got {outcome:?}"
                );
            }
        }
    }
    restore_panic_output();
}
