//! The fault-injection suite: every mutator over every bundled workload,
//! asserting the robustness contract — corrupted inputs yield a typed
//! error or a finite CPI, never a panic.
//!
//! Coverage: 40 workloads x 7 mutators x 1 seed per pair = 280 mutated
//! pipeline runs plus 280 mutated oracle runs, all deterministic
//! (seeds are splitmix64 chains of the workload and mutator indices).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::sync::{Arc, Mutex, PoisonError};

use gpumech_fault::{
    record_case, restore_panic_output, run_oracle, run_pipeline, silence_panic_output, Outcome,
    MUTATORS,
};
use gpumech_isa::SimConfig;
use gpumech_obs::Recorder;
use gpumech_trace::{splitmix64, workloads};

/// Serializes the suite's tests: the recorder slot is process-global, and
/// the open-spans assertion below must not observe another test's
/// in-flight spans.
static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn suite_lock() -> std::sync::MutexGuard<'static, ()> {
    SUITE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn no_mutation_panics_the_pipeline_or_oracle() {
    let _serial = suite_lock();
    silence_panic_output();
    let all = workloads::all();
    assert_eq!(all.len(), 40, "the bundled workload suite changed size");

    // Every case runs under an installed recorder; panicking cases must
    // still unwind their spans closed (asserted at the bottom).
    let rec = Arc::new(Recorder::new());
    let installed = gpumech_obs::install(Arc::clone(&rec));

    let mut cases = 0usize;
    let mut typed_errors = 0usize;
    let mut finite_cpis = 0usize;
    let mut failures: Vec<String> = Vec::new();

    for (wi, workload) in all.into_iter().enumerate() {
        let w = workload.with_blocks(2);
        let trace = w.trace().expect("bundled workloads trace cleanly");
        for (mi, &(name, mutate)) in MUTATORS.iter().enumerate() {
            let seed = splitmix64((wi as u64) << 32 | mi as u64);
            let mut t = trace.clone();
            let mut cfg = SimConfig::table1();
            mutate(&mut t, &mut cfg, seed);

            for (runner_name, outcome) in
                [("pipeline", run_pipeline(&t, &cfg)), ("oracle", run_oracle(&t, &cfg))]
            {
                cases += 1;
                record_case(name, runner_name, &outcome);
                match &outcome {
                    Outcome::TypedError(_) => typed_errors += 1,
                    Outcome::Cpi(c) if c.is_finite() && *c >= 0.0 => finite_cpis += 1,
                    _ => failures.push(format!(
                        "{}: mutator {name} (seed {seed:#x}) broke the {runner_name} \
                         contract: {outcome:?}",
                        w.name
                    )),
                }
            }
        }
    }

    restore_panic_output();

    // Observability accounting: all cases flowed through the recorder, and
    // no span survived its case — not even the ones that panicked inside
    // `catch_unwind`.
    assert_eq!(rec.open_spans(), 0, "fault cases leaked open spans");
    let snap = rec.snapshot();
    let total = snap.counters.get("fault.case.total").map_or(0, |c| c.total);
    assert_eq!(total as usize, cases, "every case must be recorded");
    let tallied: u64 = ["fault.outcome.cpi", "fault.outcome.typed_error", "fault.outcome.panic"]
        .iter()
        .filter_map(|n| snap.counters.get(n).map(|c| c.total))
        .sum();
    assert_eq!(tallied, total, "outcome tallies must partition the cases");
    assert!(snap.invalid_names.is_empty(), "bad metric names: {:?}", snap.invalid_names);
    drop(installed);

    assert!(failures.is_empty(), "contract violations:\n{}", failures.join("\n"));
    assert!(cases >= 400, "suite shrank to {cases} cases");
    assert!(
        typed_errors > 0,
        "no mutation was rejected — the corpus is not corrupting anything"
    );
    assert!(
        finite_cpis > 0,
        "every mutation was rejected — the corpus never exercises the numeric guards"
    );
    println!("fault suite: {cases} cases, {typed_errors} typed errors, {finite_cpis} finite CPIs");
}

#[test]
fn suite_is_deterministic_across_runs() {
    let _serial = suite_lock();
    silence_panic_output();
    let w = workloads::by_name("bfs_kernel1").expect("bundled").with_blocks(2);
    let trace = w.trace().expect("traces cleanly");
    let mut mismatches: Vec<String> = Vec::new();
    for (mi, &(name, mutate)) in MUTATORS.iter().enumerate() {
        let seed = splitmix64(mi as u64);
        let run = || {
            let mut t = trace.clone();
            let mut cfg = SimConfig::table1();
            mutate(&mut t, &mut cfg, seed);
            (run_pipeline(&t, &cfg), run_oracle(&t, &cfg))
        };
        let (a, b) = (run(), run());
        if a != b {
            mismatches.push(format!("mutator {name}: first {a:?} vs second {b:?}"));
        }
    }
    restore_panic_output();
    assert!(mismatches.is_empty(), "nondeterministic outcomes:\n{}", mismatches.join("\n"));
}

/// Every invalid configuration produced by the `extreme_config` menu must
/// be caught by `SimConfig::validate` (surfacing as a typed error), not by
/// arithmetic deep inside the models.
#[test]
fn extreme_configs_yield_typed_errors() {
    let _serial = suite_lock();
    silence_panic_output();
    let w = workloads::by_name("sdk_vectoradd").expect("bundled").with_blocks(2);
    let trace = w.trace().expect("traces cleanly");
    let mut violations: Vec<String> = Vec::new();
    for seed in 0..64u64 {
        let mut t = trace.clone();
        let mut cfg = SimConfig::table1();
        gpumech_fault::extreme_config(&mut t, &mut cfg, seed);
        if cfg.validate().is_ok() {
            continue; // this seed landed on a configuration the machine accepts
        }
        let outcome = run_pipeline(&t, &cfg);
        if !matches!(outcome, Outcome::TypedError(_)) {
            violations
                .push(format!("seed {seed}: invalid config not surfaced as typed error: {outcome:?}"));
        }
    }
    restore_panic_output();
    assert!(violations.is_empty(), "{}", violations.join("\n"));
}
