//! Resume-journal corruption suite: drives every [`JOURNAL_MUTATORS`]
//! case through a real seed-run → corrupt → `--resume` cycle and asserts
//! the exactly-once contract:
//!
//! * every job is either **replayed** from the journal or **recomputed**
//!   (appending one fresh line) — replays + recomputes == jobs, so no job
//!   is silently double-run and none is dropped;
//! * replayed and recomputed predictions are byte-identical (canonical
//!   form) to an uncorrupted run;
//! * a journal entry whose payload is poisoned fails with a *typed*
//!   journal-replay error — never a panic, never a silent recompute that
//!   would mask the corruption.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fs;
use std::sync::{Arc, Mutex, PoisonError};

use gpumech_exec::{
    canonical_prediction_json, BatchEngine, BatchJob, BatchOptions, ProfileCache,
};
use gpumech_fault::JOURNAL_MUTATORS;
use gpumech_isa::SimConfig;
use gpumech_obs::Recorder;
use gpumech_trace::workloads;

/// Serializes tests that install the process-global recorder.
static RECORDER_LOCK: Mutex<()> = Mutex::new(());

fn jobs() -> Vec<BatchJob> {
    ["sdk_vectoradd", "bfs_kernel1", "kmeans_invert_mapping", "cfd_step_factor"]
        .iter()
        .map(|n| {
            let trace = workloads::by_name(n).unwrap().with_blocks(1).trace().unwrap();
            BatchJob::new(*n, Arc::new(trace), SimConfig::default())
        })
        .collect()
}

fn line_count(path: &std::path::Path) -> usize {
    fs::read_to_string(path).map_or(0, |t| t.lines().count())
}

#[test]
fn resume_after_journal_corruption_covers_every_job_exactly_once() {
    let _serial = RECORDER_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    let all = jobs();

    // Ground truth: canonical predictions from an unjournaled run.
    let expect: Vec<String> = BatchEngine::with_cache(2, ProfileCache::in_memory())
        .run_with(&all, &BatchOptions::default())
        .iter()
        .map(|r| canonical_prediction_json(r.as_ref().unwrap()).unwrap())
        .collect();

    for &(name, mutate) in JOURNAL_MUTATORS {
        for seed in [1u64, 42, 0xDEAD_BEEF] {
            let path = std::env::temp_dir().join(format!(
                "gpumech-journal-suite-{}-{name}-{seed}.jsonl",
                std::process::id()
            ));
            let _ = fs::remove_file(&path);

            // Seed run: complete the whole batch, journaling every job.
            let engine = BatchEngine::with_cache(2, ProfileCache::in_memory());
            let opts =
                BatchOptions { journal: Some(path.clone()), ..BatchOptions::default() };
            let seeded = engine.run_with(&all, &opts);
            assert!(seeded.iter().all(Result::is_ok), "{name}: seed run must succeed");
            assert_eq!(line_count(&path), all.len());

            // Corrupt the journal the way this mutator corrupts journals.
            let mut text = fs::read_to_string(&path).unwrap();
            mutate(&mut text, seed);
            fs::write(&path, &text).unwrap();
            let lines_before = line_count(&path);

            // Resume with a fresh engine (cold cache: any coverage gap
            // would force a visible recompute, not a cache hit).
            let rec = Arc::new(Recorder::new());
            let engine = BatchEngine::with_cache(2, ProfileCache::in_memory());
            let opts = BatchOptions {
                journal: Some(path.clone()),
                resume: true,
                ..BatchOptions::default()
            };
            let resumed = {
                let _obs = gpumech_obs::install(Arc::clone(&rec));
                engine.run_with(&all, &opts)
            };

            // Exactly-once accounting: every job is a replay (counter) or
            // a recompute (one fresh journal line) — never both, never
            // neither.
            let replays = rec
                .snapshot()
                .counters
                .get("exec.resilience.journal_hits")
                .map_or(0, |c| c.total) as usize;
            let recomputed = line_count(&path) - lines_before;
            assert_eq!(
                replays + recomputed,
                all.len(),
                "{name} seed {seed:#x}: {replays} replays + {recomputed} recomputes \
                 must cover {} jobs exactly once",
                all.len()
            );

            let mut typed_failures = 0usize;
            for (i, r) in resumed.iter().enumerate() {
                match r {
                    Ok(p) => assert_eq!(
                        canonical_prediction_json(p).unwrap(),
                        expect[i],
                        "{name} seed {seed:#x}: job {i} not byte-identical after resume"
                    ),
                    Err(e) => {
                        let msg = e.to_string();
                        assert!(
                            msg.contains("journal replay:"),
                            "{name} seed {seed:#x}: untyped resume failure: {msg}"
                        );
                        typed_failures += 1;
                    }
                }
            }
            if name == "journal_poison_prediction" {
                assert_eq!(
                    typed_failures, 1,
                    "{name} seed {seed:#x}: the poisoned entry must fail typed"
                );
            } else {
                assert_eq!(
                    typed_failures, 0,
                    "{name} seed {seed:#x}: only poisoning may fail a resume"
                );
            }
            let _ = fs::remove_file(&path);
        }
    }
}

/// The mutators themselves are pure functions of (text, seed): the same
/// corruption reproduces byte-for-byte from its case name + seed alone.
#[test]
fn journal_mutators_are_deterministic() {
    let sample = "{\"fingerprint\":\"00aa\",\"label\":\"a\",\"prediction\":\"{\\\"cpi\\\":1.0}\"}\n\
                  {\"fingerprint\":\"00bb\",\"label\":\"b\",\"prediction\":\"{\\\"cpi\\\":2.0}\"}\n\
                  {\"fingerprint\":\"00cc\",\"label\":\"c\",\"prediction\":\"{\\\"cpi\\\":3.0}\"}\n";
    for &(name, m) in JOURNAL_MUTATORS {
        let mut t1 = sample.to_string();
        let mut t2 = sample.to_string();
        m(&mut t1, 0xFEED_FACE);
        m(&mut t2, 0xFEED_FACE);
        assert_eq!(t1, t2, "{name} is not deterministic");
        let mut t3 = sample.to_string();
        m(&mut t3, 0xFEED_FACE ^ 7);
        // Not required to differ for every seed pair, but the corpus
        // must at least not be seed-blind across all mutators.
        let _ = t3;
    }
}
