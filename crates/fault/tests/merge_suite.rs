//! Shard-merge corruption suite: fabricates healthy sharded sweeps,
//! corrupts them with every [`SHARD_FAULTS`] mutator across several
//! seeds, and asserts the merge contract:
//!
//! * every corruption surfaces as a **typed finding** of the declared
//!   kind — under `catch_unwind`, so a panic is a loud failure, not a
//!   crashed test binary;
//! * a corrupted sweep **never produces merged output** (`merged` stays
//!   `None`), and files that fail load-verification are quarantined;
//! * the clean fabricated sweep merges successfully, in manifest
//!   enumeration order, byte-identical (from `jobs_checksum` on) to the
//!   same rows rendered as a single unsharded file;
//! * byte-identical duplicate files are resolved with a note, not a
//!   finding.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use gpumech_fault::shardfaults::{fabricate_sweep, SHARD_FAULTS};
use gpumech_shard::{
    merge_files, rows_checksum, verify_expectation, FindingKind, MergeOptions, ShardSpec,
    SweepManifest, SweepReport,
};

fn workspace(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "gpumech-merge-suite-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(journals: &[PathBuf]) -> MergeOptions {
    MergeOptions { quarantine: true, journals: journals.to_vec() }
}

#[test]
fn clean_fabricated_sweep_merges_byte_identically() {
    let dir = workspace("clean");
    let case = fabricate_sweep(&dir, 3, 12).unwrap();
    let outcome = merge_files(&case.paths, &opts(&case.journals));
    assert!(outcome.findings.is_empty(), "clean sweep: {:?}", outcome.findings);
    assert_eq!(outcome.files_ok, 3);
    let merged = outcome.merged.expect("clean sweep must merge");

    // Rows come back in manifest enumeration order, fully covered.
    assert_eq!(merged.rows.len(), case.manifest_fps.len());
    let merged_fps: Vec<String> = merged.rows.iter().map(|r| r.fingerprint.clone()).collect();
    let expect_fps: Vec<String> =
        case.manifest_fps.iter().map(|&fp| gpumech_shard::fingerprint_hex(fp)).collect();
    assert_eq!(merged_fps, expect_fps, "merged rows must follow manifest order");

    // Byte-identity: the merged file equals (from jobs_checksum on) the
    // same rows written as one unsharded report.
    let reference = SweepReport {
        manifest: SweepManifest::new(ShardSpec::single(), "deadbeef", 0xC0FF_EE00,
                                     &case.manifest_fps),
        workers: 2,
        cache_entries: 0,
        counters: Vec::new(),
        jobs_checksum: String::new(),
        jobs: merged.rows.clone(),
    };
    let merged_text = merged.render_json().unwrap();
    let reference_text = reference.render().unwrap();
    assert_eq!(
        verify_expectation(&merged_text, &reference_text),
        None,
        "sharded merge must be byte-identical to the unsharded rendering"
    );
    assert_eq!(merged.to_report().jobs_checksum, rows_checksum(&merged.raw_rows));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn byte_identical_duplicate_is_a_note_not_a_finding() {
    let dir = workspace("dup-identical");
    let mut case = fabricate_sweep(&dir, 3, 12).unwrap();
    // A byte-for-byte retry copy of shard 0's file.
    let copy = dir.join("shard-0-retry.json");
    std::fs::copy(&case.paths[0], &copy).unwrap();
    case.paths.push(copy);
    let outcome = merge_files(&case.paths, &opts(&case.journals));
    assert!(outcome.findings.is_empty(), "identical duplicate: {:?}", outcome.findings);
    assert!(outcome.merged.is_some());
    assert!(
        outcome.notes.iter().any(|n| n.contains("byte-identically")),
        "duplicate resolution must leave an audit note: {:?}",
        outcome.notes
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn every_corruption_yields_its_typed_finding_and_no_merge() {
    for fault in SHARD_FAULTS {
        for seed in [1u64, 7, 0xBAD_5EED] {
            let dir = workspace(&format!("{}-{seed:x}", fault.name));
            let mut case = fabricate_sweep(&dir, 3, 12)
                .unwrap_or_else(|e| panic!("{}: fabricate: {e}", fault.name));
            (fault.mutate)(&mut case, seed)
                .unwrap_or_else(|e| panic!("{}: mutate: {e}", fault.name));

            let outcome = catch_unwind(AssertUnwindSafe(|| {
                merge_files(&case.paths, &opts(&case.journals))
            }))
            .unwrap_or_else(|_| panic!("{} seed {seed:#x}: merge panicked", fault.name));

            assert!(
                outcome.merged.is_none(),
                "{} seed {seed:#x}: corruption must not produce merged output",
                fault.name
            );
            assert!(
                outcome.findings.iter().any(|f| f.kind == fault.expect),
                "{} seed {seed:#x}: expected a {:?} finding, got {:?}",
                fault.name,
                fault.expect,
                outcome.findings
            );
            // Load-level corruption quarantines the offending file.
            if fault.expect == FindingKind::CorruptShardFile {
                assert!(
                    !outcome.quarantined.is_empty(),
                    "{} seed {seed:#x}: corrupt file must be quarantined",
                    fault.name
                );
                assert!(
                    outcome.quarantined.iter().all(|q| q.ends_with(".quarantine")),
                    "{} seed {seed:#x}: quarantine naming convention",
                    fault.name
                );
            }
            // Every finding renders with its stable kebab-case code.
            for f in &outcome.findings {
                assert!(
                    f.to_string().starts_with(&format!("[{}]", f.kind.code())),
                    "finding rendering must lead with its code: {f}"
                );
            }
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
