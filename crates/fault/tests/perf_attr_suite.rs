//! Performance-telemetry robustness under injected faults: the self-time
//! attribution and the folded-stack exporter must stay internally
//! consistent on a recorder that watched panicking, unwinding cases, and
//! the counting allocator's scope must never leak depth through an
//! unwind (the alloc analogue of the suite's no-leaked-spans check).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::sync::{Arc, Mutex, PoisonError};

use gpumech_fault::{
    record_case, restore_panic_output, run_oracle, run_pipeline, silence_panic_output, MUTATORS,
};
use gpumech_isa::SimConfig;
use gpumech_obs::Recorder;
use gpumech_perf::{attribute, counting_enabled, to_folded, AllocScope};
use gpumech_trace::{splitmix64, workloads};

/// Serializes the tests: the recorder slot and the allocator's scope
/// depth are both process-global.
static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn suite_lock() -> std::sync::MutexGuard<'static, ()> {
    SUITE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

#[test]
fn attribution_stays_consistent_after_unwound_cases() {
    let _serial = suite_lock();
    silence_panic_output();
    // A slice of the corpus dense enough to include panicking mutations:
    // every mutator over a handful of workloads, pipeline and oracle.
    let rec = Arc::new(Recorder::new());
    let installed = gpumech_obs::install(Arc::clone(&rec));
    for (wi, name) in ["sdk_vectoradd", "bfs_kernel1", "kmeans_invert_mapping"]
        .iter()
        .enumerate()
    {
        let w = workloads::by_name(name).expect("bundled").with_blocks(2);
        let trace = w.trace().expect("traces cleanly");
        for (mi, &(mname, mutate)) in MUTATORS.iter().enumerate() {
            let seed = splitmix64((wi as u64) << 32 | mi as u64);
            let mut t = trace.clone();
            let mut cfg = SimConfig::table1();
            mutate(&mut t, &mut cfg, seed);
            record_case(mname, "pipeline", &run_pipeline(&t, &cfg));
            record_case(mname, "oracle", &run_oracle(&t, &cfg));
        }
    }
    restore_panic_output();
    assert_eq!(rec.open_spans(), 0, "fault cases leaked open spans");
    let snap = rec.snapshot();
    drop(installed);

    // Attribution invariants hold on the whole post-fault span forest:
    // self time never exceeds total, and the split is exact.
    let attrs = attribute(&snap);
    assert!(!attrs.is_empty(), "fault cases recorded no spans to attribute");
    for a in &attrs {
        assert!(a.self_ns <= a.total_ns, "{}: self {} > total {}", a.name, a.self_ns, a.total_ns);
        assert_eq!(a.child_ns, a.total_ns - a.self_ns, "{}: split is not exact", a.name);
    }

    // The folded export of the same snapshot parses line by line and only
    // names spans the snapshot actually holds.
    let folded = to_folded(&snap);
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("folded line has a value column");
        assert!(value.parse::<u64>().is_ok(), "bad value in {line:?}");
        for frame in stack.split(';') {
            assert!(gpumech_obs::valid_metric_name(frame), "bad frame {frame:?}");
            assert!(
                snap.spans.iter().any(|s| s.name == frame),
                "folded frame {frame:?} names no recorded span"
            );
        }
    }
}

#[test]
fn alloc_scope_unwinds_closed_like_spans_do() {
    let _serial = suite_lock();
    assert!(!counting_enabled(), "leftover AllocScope from another test");
    let panicked = std::panic::catch_unwind(|| {
        let scope = AllocScope::begin();
        let _boxed = std::hint::black_box(Box::new([0u8; 64]));
        let delta = scope.delta();
        assert!(delta.allocs >= 1, "scope missed the boxed allocation");
        panic!("injected fault under an AllocScope");
    });
    assert!(panicked.is_err(), "the injected panic must propagate");
    // The scope's Drop ran during the unwind: counting is off again, and
    // a fresh scope starts from a clean slate.
    assert!(!counting_enabled(), "AllocScope leaked depth through an unwind");
    let scope = AllocScope::begin();
    let kept = std::hint::black_box(Box::new([0u8; 128]));
    let delta = scope.delta();
    drop(scope);
    assert!(delta.allocs >= 1 && delta.bytes >= 128, "post-unwind scope undercounts: {delta:?}");
    assert!(delta.peak_live_bytes >= 128, "peak-live did not reset for the outermost scope");
    drop(kept);
    assert!(!counting_enabled());
}
