//! Resilience fault suite: the on-disk cache mutation corpus, the
//! mid-write-kill simulator, and the slow-job / transient-panic
//! injections, all driven through the public fault-crate corpora
//! ([`CACHE_MUTATORS`], [`RESILIENCE_FAULTS`]) so CI exercises the same
//! machinery downstream users would.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::fs;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, PoisonError};

use gpumech_exec::{
    cache_key, canonical_prediction_json, BatchEngine, BatchJob, BatchOptions, FaultInjection,
    FaultKind, ProfileCache,
};
use gpumech_fault::{
    restore_panic_output, run_resilient_batch_case, silence_panic_output, simulate_midwrite_kill,
    Outcome, CACHE_MUTATORS, RESILIENCE_FAULTS,
};
use gpumech_isa::SimConfig;
use gpumech_obs::{CancelToken, Clock, FakeClock, Recorder};
use gpumech_trace::workloads;

/// Serializes tests that install the process-global recorder.
static SUITE_LOCK: Mutex<()> = Mutex::new(());

fn suite_lock() -> std::sync::MutexGuard<'static, ()> {
    SUITE_LOCK.lock().unwrap_or_else(PoisonError::into_inner)
}

fn test_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gpumech-faultres-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn job(name: &str) -> BatchJob {
    let trace = workloads::by_name(name).unwrap().with_blocks(1).trace().unwrap();
    BatchJob::new(name, Arc::new(trace), SimConfig::default())
}

/// Warms a disk cache entry for `job` in `dir` and returns its path and
/// pristine bytes.
fn warm_entry(dir: &PathBuf, job: &BatchJob) -> (PathBuf, Vec<u8>) {
    let key = cache_key(&job.trace, &job.cfg);
    let engine = BatchEngine::with_cache(1, ProfileCache::with_disk(dir));
    assert!(engine.run(std::slice::from_ref(job))[0].is_ok());
    let path = dir.join(format!("{:016x}-{:016x}.json", key.trace, key.config));
    let bytes = fs::read(&path).unwrap();
    (path, bytes)
}

#[test]
fn every_cache_mutator_is_detected_quarantined_and_recomputed() {
    let dir = test_dir("mutators");
    let j = job("sdk_vectoradd");
    let cold = BatchEngine::new(1).run(std::slice::from_ref(&j));
    let cold_canon = canonical_prediction_json(cold[0].as_ref().unwrap()).unwrap();
    let (entry_path, pristine) = warm_entry(&dir, &j);

    for &(name, mutate) in CACHE_MUTATORS {
        for seed in [0x1u64, 0xDEAD_BEEF, 0x5EED_5EED_5EED_5EED] {
            let mut bytes = pristine.clone();
            mutate(&mut bytes, seed);
            assert_ne!(bytes, pristine, "{name} seed {seed:#x}: mutator must corrupt");
            fs::write(&entry_path, &bytes).unwrap();

            let engine = BatchEngine::with_cache(1, ProfileCache::with_disk(&dir));
            let out = engine.run(std::slice::from_ref(&j));
            let case = format!("{name} seed {seed:#x}");
            let p = out[0].as_ref().unwrap_or_else(|e| panic!("{case}: {e}"));
            assert_eq!(
                canonical_prediction_json(p).unwrap(),
                cold_canon,
                "{case}: recomputed prediction diverged from cold run"
            );
            assert!(
                p.warnings.iter().any(|w| w.starts_with("cache: ") && w.contains("quarantined")),
                "{case}: quarantine must surface as a warning, got {:?}",
                p.warnings
            );
            let mut q = entry_path.clone().into_os_string();
            q.push(".quarantine");
            let q = PathBuf::from(q);
            assert!(q.exists(), "{case}: corrupt bytes must be quarantined");
            let _ = fs::remove_file(&q);
            // Restore the pristine entry for the next mutation so each
            // case starts from the same healthy state.
            fs::write(&entry_path, &pristine).unwrap();
        }
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn midwrite_kill_debris_is_swept_and_does_not_perturb_results() {
    let _serial = suite_lock();
    let dir = test_dir("midwrite");
    let j = job("bfs_kernel1");
    let (entry_path, pristine) = warm_entry(&dir, &j);
    let cold = BatchEngine::new(1).run(std::slice::from_ref(&j));
    let cold_canon = canonical_prediction_json(cold[0].as_ref().unwrap()).unwrap();

    let tmp = simulate_midwrite_kill(&entry_path, &pristine, 0xBAD_C0DE).unwrap();
    assert!(tmp.exists(), "the simulator must plant a stale tmp file");

    let rec = Arc::new(Recorder::new());
    let out = {
        let _obs = gpumech_obs::install(Arc::clone(&rec));
        BatchEngine::with_cache(1, ProfileCache::with_disk(&dir)).run(std::slice::from_ref(&j))
    };
    let p = out[0].as_ref().unwrap();
    assert_eq!(canonical_prediction_json(p).unwrap(), cold_canon);
    assert!(
        !p.warnings.iter().any(|w| w.starts_with("cache: ")),
        "the committed entry is intact, so no cache warning is due: {:?}",
        p.warnings
    );
    assert!(!tmp.exists(), "stale tmp debris must be swept when the cache opens");
    let swept = rec.snapshot().counters.get("exec.cache.stale_tmp_removed").map_or(0, |c| c.total);
    assert!(swept >= 1, "the sweep must be visible in the metrics");
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resilience_fault_corpus_upholds_the_contract() {
    let _serial = suite_lock();
    let all: Vec<BatchJob> =
        ["sdk_vectoradd", "bfs_kernel1", "cfd_step_factor"].into_iter().map(job).collect();
    let victim = 1;
    silence_panic_output();
    for &(name, kind) in RESILIENCE_FAULTS {
        let injections = vec![FaultInjection { item: victim, kind }];
        let opts = match kind {
            // The hung job can only be stopped by its per-job timeout;
            // the fake clock makes the expiry deterministic.
            FaultKind::SlowJob => BatchOptions {
                timeout_ms: Some(5),
                cancel: Some(CancelToken::with_clock(
                    Arc::new(FakeClock::new(1_000)) as Arc<dyn Clock>,
                    u64::MAX,
                )),
                injections,
                ..BatchOptions::default()
            },
            // One retry must fully absorb a first-attempt panic.
            _ => BatchOptions { retries: 1, injections, ..BatchOptions::default() },
        };
        let outcomes = run_resilient_batch_case(&all, 1, &opts);
        for (i, outcome) in outcomes.iter().enumerate() {
            assert!(
                outcome.is_contract_ok(),
                "fault={name}, item={i}: contract violated: {outcome:?}"
            );
        }
        match kind {
            FaultKind::SlowJob => {
                assert!(
                    matches!(&outcomes[victim], Outcome::TypedError(e) if e.contains("deadline")),
                    "fault={name}: victim must die by deadline, got {:?}",
                    outcomes[victim]
                );
                for (i, outcome) in outcomes.iter().enumerate() {
                    if i != victim {
                        assert!(
                            matches!(outcome, Outcome::Cpi(c) if c.is_finite() && *c > 0.0),
                            "fault={name}, item={i}: survivor must predict, got {outcome:?}"
                        );
                    }
                }
            }
            _ => {
                for (i, outcome) in outcomes.iter().enumerate() {
                    assert!(
                        matches!(outcome, Outcome::Cpi(c) if c.is_finite() && *c > 0.0),
                        "fault={name}, item={i}: retry must recover, got {outcome:?}"
                    );
                }
            }
        }
    }
    restore_panic_output();
}
