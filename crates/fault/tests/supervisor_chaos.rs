//! Supervisor chaos suite (no test harness): the binary re-execs itself
//! as a scriptable fake shard child, so every failure mode the
//! supervisor must survive is driven deterministically — no reliance on
//! real workload timing:
//!
//! * a shard that **crashes once** is restarted with backoff and the
//!   sweep completes;
//! * a [`ChaosKill`] SIGKILL mid-run forces a restart and the sweep
//!   completes;
//! * a shard that **hangs** (journal stops growing) trips the heartbeat,
//!   is killed, and its restart completes;
//! * a shard that **always crashes** exhausts its restart budget with a
//!   typed error — no infinite flapping;
//! * a sweep that outlives its **deadline** is killed with a typed error;
//! * a [`CancelToken`] triggers a clean **drain**: children terminated,
//!   journals preserved for a later resume.
//!
//! Child behavior is selected via the `GPUMECH_FAKE_SHARD` environment
//! variable the supervisor passes through [`SupervisorConfig::env`];
//! "once" behaviors use a marker file beside the journal to distinguish
//! the first spawn from the restart.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use gpumech_obs::CancelToken;
use gpumech_shard::{supervise, ChaosKill, SupervisorConfig};

/// Environment variable selecting the fake shard's behavior.
const MODE_VAR: &str = "GPUMECH_FAKE_SHARD";

fn main() {
    if std::env::var(MODE_VAR).is_ok() {
        fake_shard_main();
        return;
    }

    let tests: &[(&str, fn())] = &[
        ("all_shards_complete", all_shards_complete),
        ("crashed_shard_is_restarted_and_completes", crashed_shard_is_restarted_and_completes),
        ("chaos_kill_forces_restart_and_recovery", chaos_kill_forces_restart_and_recovery),
        ("hung_shard_trips_heartbeat_and_recovers", hung_shard_trips_heartbeat_and_recovers),
        ("restart_budget_exhaustion_is_typed", restart_budget_exhaustion_is_typed),
        ("sweep_deadline_is_enforced", sweep_deadline_is_enforced),
        ("cancel_token_drains_cleanly", cancel_token_drains_cleanly),
    ];
    let mut failed = 0usize;
    for (name, test) in tests {
        match std::panic::catch_unwind(test) {
            Ok(()) => println!("supervisor_chaos::{name} ... ok"),
            Err(_) => {
                println!("supervisor_chaos::{name} ... FAILED");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("supervisor_chaos: {failed} test(s) failed");
        std::process::exit(1);
    }
    println!("supervisor_chaos: {} test(s) passed", tests.len());
}

// ---------------------------------------------------------------------
// The fake shard child.
// ---------------------------------------------------------------------

/// Pulls the value following `flag` out of the argument list the
/// supervisor passed (`--journal <path> --json <path> ...`).
fn arg_value(args: &[String], flag: &str) -> PathBuf {
    let at = args.iter().position(|a| a == flag).expect("supervisor always passes the flag");
    PathBuf::from(&args[at + 1])
}

fn append_journal_lines(journal: &Path, n: usize) {
    use std::io::Write as _;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(journal)
        .expect("journal opens");
    for i in 0..n {
        writeln!(f, "{{\"line\":{i}}}").expect("journal line writes");
        f.flush().expect("journal flushes");
    }
}

/// First spawn (no marker)? Creates the marker either way.
fn first_spawn(journal: &Path) -> bool {
    let marker = journal.with_extension("mark");
    let first = !marker.exists();
    std::fs::write(&marker, "spawned\n").expect("marker writes");
    first
}

fn fake_shard_main() {
    let mode = std::env::var(MODE_VAR).expect("checked by caller");
    let args: Vec<String> = std::env::args().collect();
    let journal = arg_value(&args, "--journal");
    let result = arg_value(&args, "--json");
    match mode.as_str() {
        // Healthy: heartbeat, result file, clean exit.
        "ok" => {
            append_journal_lines(&journal, 3);
            std::fs::write(&result, "{}\n").expect("result writes");
        }
        // Crash on the first spawn, succeed on the restart.
        "crash-once" => {
            if first_spawn(&journal) {
                append_journal_lines(&journal, 1);
                std::process::exit(17);
            }
            append_journal_lines(&journal, 2);
            std::fs::write(&result, "{}\n").expect("result writes");
        }
        // Write journal lines slowly so a ChaosKill can land mid-run.
        "slow-ok" => {
            for _ in 0..5 {
                append_journal_lines(&journal, 1);
                std::thread::sleep(Duration::from_millis(40));
            }
            std::fs::write(&result, "{}\n").expect("result writes");
        }
        // Hang after one heartbeat on the first spawn; finish on restart.
        "hang-once" => {
            if first_spawn(&journal) {
                append_journal_lines(&journal, 1);
                std::thread::sleep(Duration::from_secs(600));
            }
            std::fs::write(&result, "{}\n").expect("result writes");
        }
        // Unrecoverable: crash every time.
        "always-crash" => std::process::exit(23),
        // Never finish (deadline and drain tests).
        "sleep" => {
            append_journal_lines(&journal, 1);
            std::thread::sleep(Duration::from_secs(600));
        }
        other => panic!("unknown fake-shard mode {other:?}"),
    }
}

// ---------------------------------------------------------------------
// The tests.
// ---------------------------------------------------------------------

/// Per-test workspace with a fresh directory.
fn config(tag: &str, mode: &str, shards: u32) -> SupervisorConfig {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "gpumech-supchaos-{}-{}-{tag}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = SupervisorConfig::new(
        std::env::current_exe().expect("own path"),
        dir,
        shards,
    );
    cfg.poll_ms = 10;
    cfg.env = vec![(MODE_VAR.to_string(), mode.to_string())];
    cfg
}

fn cleanup(cfg: &SupervisorConfig) {
    let _ = std::fs::remove_dir_all(&cfg.dir);
}

fn all_shards_complete() {
    let cfg = config("ok", "ok", 3);
    let summary = supervise(&cfg).expect("healthy sweep completes");
    assert!(!summary.drained);
    assert_eq!(summary.result_paths.len(), 3);
    for s in &summary.shards {
        assert!(s.done, "shard {} must finish", s.shard);
        assert_eq!(s.spawns, 1, "healthy shard {} needs no restart", s.shard);
    }
    assert!(summary.render().contains("# supervisor: completed"));
    cleanup(&cfg);
}

fn crashed_shard_is_restarted_and_completes() {
    let cfg = config("crash", "crash-once", 3);
    let summary = supervise(&cfg).expect("crashed shards recover");
    assert_eq!(summary.result_paths.len(), 3);
    for s in &summary.shards {
        assert!(s.done, "shard {} must finish after its crash", s.shard);
        assert_eq!(s.restarts, 1, "shard {} crashes exactly once", s.shard);
    }
    cleanup(&cfg);
}

fn chaos_kill_forces_restart_and_recovery() {
    let mut cfg = config("chaos", "slow-ok", 2);
    cfg.chaos_kills = vec![ChaosKill { shard: 0, after_journal_lines: 2 }];
    let summary = supervise(&cfg).expect("chaos-killed shard recovers");
    assert!(summary.shards.iter().all(|s| s.done));
    let shard0 = &summary.shards[0];
    assert!(
        shard0.restarts >= 1,
        "the SIGKILLed shard must have been restarted (spawns {})",
        shard0.spawns
    );
    assert_eq!(summary.shards[1].restarts, 0, "the chaos kill targets only shard 0");
    cleanup(&cfg);
}

fn hung_shard_trips_heartbeat_and_recovers() {
    let mut cfg = config("hang", "hang-once", 2);
    cfg.heartbeat_ms = 200;
    let summary = supervise(&cfg).expect("hung shard recovers after heartbeat kill");
    assert!(summary.shards.iter().all(|s| s.done));
    assert!(
        summary.shards.iter().any(|s| s.restarts >= 1),
        "the hung shard must have been killed and restarted"
    );
    cleanup(&cfg);
}

fn restart_budget_exhaustion_is_typed() {
    let mut cfg = config("budget", "always-crash", 1);
    cfg.restart_budget = 2;
    let err = supervise(&cfg).expect_err("a flapping shard must abort the sweep");
    let msg = err.to_string();
    assert!(
        msg.contains("restart budget"),
        "budget exhaustion must be the typed error, got: {msg}"
    );
    // Initial spawn + 2 restarts = 3 spawns, then the budget trips.
    assert!(msg.contains('3'), "error names the spawn count: {msg}");
    cleanup(&cfg);
}

fn sweep_deadline_is_enforced() {
    let mut cfg = config("deadline", "sleep", 2);
    cfg.deadline_ms = Some(300);
    let err = supervise(&cfg).expect_err("a stuck sweep must hit its deadline");
    assert!(
        err.to_string().contains("deadline"),
        "deadline must be the typed error, got: {err}"
    );
    cleanup(&cfg);
}

fn cancel_token_drains_cleanly() {
    let mut cfg = config("drain", "sleep", 2);
    let token = CancelToken::never();
    cfg.cancel = Some(token.clone());
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            token.cancel();
        })
    };
    let summary = supervise(&cfg).expect("a cancelled sweep drains, not errors");
    canceller.join().expect("canceller thread");
    assert!(summary.drained, "cancel must report a drain");
    assert!(summary.result_paths.is_empty(), "sleeping shards cannot have finished");
    // Journals survive the drain for a later --resume.
    for shard in 0..2 {
        assert!(
            cfg.journal_path(shard).exists(),
            "journal for shard {shard} must survive the drain"
        );
    }
    assert!(summary.render().contains("# supervisor: drained"));
    cleanup(&cfg);
}
