//! Defective-kernel corpus suite: the static verifier must detect every
//! planted defect with its expected finding code, stay quiet (no Error
//! findings) on the healthy workload library, and reject
//! barrier-divergence mutants before a single warp is traced.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use gpumech_analyze::{analyze, RejectReason, Severity};
use gpumech_fault::defects::KERNEL_MUTATORS;
use gpumech_trace::{trace_kernel, workloads, TraceError};

/// Three spread-out seeds per (workload, injector) pair — enough to hit
/// different injection sites without turning the suite into a soak test.
const SEEDS: &[u64] = &[0x5EED_0001, 0xBAD_CAFE_F00D, 0x1234_5678_9ABC_DEF0];

#[test]
fn clean_library_has_zero_error_findings() {
    let mut racy: Vec<String> = Vec::new();
    for w in workloads::all() {
        let analysis = analyze(&w.kernel);
        assert!(
            analysis.diagnostics.iter().all(|d| d.severity != Severity::Error),
            "{} carries an Error finding: {:?}",
            w.name,
            analysis.diagnostics
        );
        assert_eq!(analysis.reject_reason(), None, "{} would be rejected", w.name);
        if analysis.diagnostics.iter().any(|d| d.code == "shared-race") {
            racy.push(w.name.clone());
        }
    }
    // The five library kernels with genuine (benign-by-construction)
    // cross-warp shared-memory overlaps — and only those five.
    racy.sort();
    assert_eq!(
        racy,
        [
            "backprop_layerforward",
            "parboil_sgemm",
            "pathfinder_dynproc",
            "sdk_matrixmul",
            "sdk_reduction"
        ]
    );
}

#[test]
fn every_planted_defect_is_detected_with_its_finding_code() {
    let library = workloads::all();
    for &(name, inject, code) in KERNEL_MUTATORS {
        let mut applied = 0u32;
        for w in &library {
            for &seed in SEEDS {
                let mut kernel = w.kernel.clone();
                if !inject(&mut kernel, seed) {
                    continue;
                }
                applied += 1;
                // The defect must be semantic, not structural: validate
                // still passes, so only the verifier can catch it.
                kernel
                    .validate()
                    .unwrap_or_else(|e| panic!("{name} broke {} structurally: {e}", w.name));
                let analysis = analyze(&kernel);
                assert!(
                    analysis.diagnostics.iter().any(|d| d.code == code),
                    "{name} on {} (seed {seed:#x}) went undetected; findings: {:?}",
                    w.name,
                    analysis.diagnostics
                );
            }
        }
        assert!(applied >= 6, "{name} found only {applied} injection sites across the library");
    }
}

#[test]
fn barrier_defects_are_rejected_before_tracing() {
    let &(_, inject, _) = KERNEL_MUTATORS
        .iter()
        .find(|(n, _, _)| *n == "inject_divergent_barrier")
        .expect("corpus includes the barrier injector");
    let mut rejected: Vec<String> = Vec::new();
    for w in workloads::all() {
        let mut kernel = w.kernel.clone();
        if !inject(&mut kernel, 7) {
            continue;
        }
        match trace_kernel(&kernel, w.launch) {
            Err(TraceError::RejectedByAnalysis { reason, findings, .. }) => {
                assert_eq!(reason, RejectReason::BarrierDivergence, "{}", w.name);
                assert!(
                    findings.iter().any(|f| f.contains("barrier-divergence")),
                    "{}: {findings:?}",
                    w.name
                );
                rejected.push(w.name.clone());
            }
            Ok(_) => panic!("{}: divergent-barrier mutant traced successfully", w.name),
            Err(other) => panic!("{}: wrong rejection {other}", w.name),
        }
    }
    // Exactly the two library kernels whose divergent regions contain a
    // store — the rest of the catalogue keeps barriers at top level.
    rejected.sort();
    assert_eq!(rejected, ["backprop_layerforward", "sdk_reduction"]);
}
