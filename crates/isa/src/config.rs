//! Machine configuration — Table I of the GPUMech paper.
//!
//! [`SimConfig::default`] reproduces the paper's baseline: 16 cores at
//! 1.0 GHz, 32-wide SIMT, 1024 threads (32 warps) per core, single-issue,
//! 32 KB / 8-way / 25-cycle L1 with 32 MSHRs, 768 KB / 8-way / 120-cycle L2
//! (NoC latency folded into the L2 latency, as in the paper), and
//! 192 GB/s / 300-cycle DRAM. The evaluation sweeps (Figures 13-15) vary
//! `max_warps_per_core`, `num_mshrs`, and `dram_bandwidth_gbps`.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::opcode::{InstKind, MemSpace};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Cache line size in bytes (128 in Table I).
    pub line_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Access latency in core cycles (includes NoC for the L2).
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets, i.e. `size / (line * assoc)`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not divide evenly; call
    /// [`SimConfig::validate`] first to surface this as an error.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.assoc) && lines > 0,
            "cache geometry does not divide evenly: {self:?}"
        );
        lines / self.assoc
    }

    /// Total number of cache lines.
    #[must_use]
    pub fn num_lines(&self) -> usize {
        self.size_bytes / self.line_bytes
    }
}

/// Fixed latencies of the compute instruction classes, "modeled according to
/// the CUDA manual" per Table I (normal FP instructions are 25 cycles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyTable {
    /// Integer ALU latency.
    pub int_alu: u64,
    /// Floating-point add latency (25 in Table I).
    pub fp_add: u64,
    /// Floating-point multiply latency.
    pub fp_mul: u64,
    /// Fused multiply-add latency.
    pub fp_fma: u64,
    /// Floating-point divide latency.
    pub fp_div: u64,
    /// Special-function-unit latency (sin, rsqrt, …).
    pub sfu: u64,
    /// Software-managed (shared) memory latency.
    pub shared_mem: u64,
    /// Branch resolution latency.
    pub branch: u64,
}

impl Default for LatencyTable {
    fn default() -> Self {
        Self {
            int_alu: 18,
            fp_add: 25,
            fp_mul: 25,
            fp_fma: 25,
            fp_div: 120,
            sfu: 40,
            shared_mem: 30,
            branch: 1,
        }
    }
}

impl LatencyTable {
    /// Latency of a compute-class instruction.
    ///
    /// Global memory instructions have data-dependent latencies produced by
    /// the cache model; for those this returns the issue-slot floor of 1.
    #[must_use]
    pub fn latency_of(&self, kind: InstKind) -> u64 {
        match kind {
            InstKind::IntAlu => self.int_alu,
            InstKind::FpAdd => self.fp_add,
            InstKind::FpMul => self.fp_mul,
            InstKind::FpFma => self.fp_fma,
            InstKind::FpDiv => self.fp_div,
            InstKind::Sfu => self.sfu,
            InstKind::Load(MemSpace::Shared) | InstKind::Store(MemSpace::Shared) => {
                self.shared_mem
            }
            InstKind::Branch => self.branch,
            InstKind::Sync | InstKind::Exit => 1,
            InstKind::Load(MemSpace::Global) | InstKind::Store(MemSpace::Global) => 1,
        }
    }
}

/// Error returned by [`SimConfig::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A field that must be non-zero was zero.
    ZeroField(&'static str),
    /// A cache's size is not divisible by `line_bytes * assoc`.
    CacheGeometry(&'static str),
    /// L1 and L2 line sizes differ (the hierarchy assumes one line size).
    LineSizeMismatch,
    /// `simt_width` does not equal the warp size.
    SimtWidth,
    /// A field is outside the range the models stay numerically stable in.
    OutOfRange {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable bound that was violated.
        bound: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroField(name) => write!(f, "configuration field {name} must be non-zero"),
            ConfigError::CacheGeometry(which) => {
                write!(f, "{which} size is not divisible by line size times associativity")
            }
            ConfigError::LineSizeMismatch => f.write_str("L1 and L2 line sizes differ"),
            ConfigError::SimtWidth => f.write_str("SIMT width must equal the warp size"),
            ConfigError::OutOfRange { field, bound } => {
                write!(f, "configuration field {field} is out of range: must be {bound}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Full machine description (Table I of the paper).
///
/// This is a passive configuration record: fields are public so harnesses can
/// tweak individual parameters, and [`SimConfig::validate`] checks global
/// consistency before a simulation starts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of streaming multiprocessors (16).
    pub num_cores: usize,
    /// Core clock in GHz (1.0).
    pub clock_ghz: f64,
    /// SIMD lanes per core (32).
    pub simt_width: usize,
    /// Maximum resident warps per core (32, i.e. 1024 threads).
    pub max_warps_per_core: usize,
    /// Warp-instructions issued per cycle per core (1).
    pub issue_width: usize,
    /// Compute latencies.
    pub latencies: LatencyTable,
    /// L1 data cache (32 KB, 128 B lines, 8-way, 25 cycles).
    pub l1: CacheConfig,
    /// MSHR entries per core (32). Only global loads allocate MSHRs.
    pub num_mshrs: usize,
    /// Shared L2 cache (768 KB, 128 B lines, 8-way, 120 cycles incl. NoC).
    pub l2: CacheConfig,
    /// Aggregate DRAM bandwidth in GB/s (192).
    pub dram_bandwidth_gbps: f64,
    /// DRAM access latency in cycles, excluding queueing (300).
    pub dram_latency: u64,
    /// Software-managed scratchpad per core in KiB (16).
    pub shared_mem_kib: usize,
    /// Special-function-unit lanes per core. Table I's "balanced design"
    /// assumption corresponds to 32 (a warp's SFU op occupies the unit for
    /// one cycle, no contention); real GPUs have 4-8, making SFU-heavy
    /// warps serialize — the resource-contention generalization the paper
    /// leaves as future work (Section IV-B1).
    #[serde(default = "default_sfu_per_core")]
    pub sfu_per_core: usize,
    /// Number of shared-memory banks (Fermi/Kepler and later: 32). Words
    /// are interleaved across banks; an access serializes when two lanes
    /// touch different words of the same bank. Consumed by the static
    /// bank-conflict analysis in `gpumech-analyze`.
    #[serde(default = "default_shared_mem_banks")]
    pub shared_mem_banks: usize,
    /// Width of one shared-memory bank word in bytes (4 on the modeled
    /// generation; Kepler also offered an 8 B mode).
    #[serde(default = "default_shared_bank_bytes")]
    pub shared_bank_bytes: usize,
}

fn default_sfu_per_core() -> usize {
    32
}

fn default_shared_mem_banks() -> usize {
    32
}

fn default_shared_bank_bytes() -> usize {
    4
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            num_cores: 16,
            clock_ghz: 1.0,
            simt_width: 32,
            max_warps_per_core: 32,
            issue_width: 1,
            latencies: LatencyTable::default(),
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                line_bytes: 128,
                assoc: 8,
                latency: 25,
            },
            num_mshrs: 32,
            l2: CacheConfig {
                size_bytes: 768 * 1024,
                line_bytes: 128,
                assoc: 8,
                latency: 120,
            },
            dram_bandwidth_gbps: 192.0,
            dram_latency: 300,
            shared_mem_kib: 16,
            sfu_per_core: 32,
            shared_mem_banks: 32,
            shared_bank_bytes: 4,
        }
    }
}

impl SimConfig {
    /// Largest accepted core count.
    pub const MAX_CORES: usize = 4096;
    /// Largest accepted resident-warp count per core.
    pub const MAX_WARPS_PER_CORE: usize = 4096;
    /// Largest accepted MSHR file size.
    pub const MAX_MSHRS: usize = 1 << 20;
    /// Largest accepted issue width.
    pub const MAX_ISSUE_WIDTH: usize = 32;
    /// Largest accepted DRAM access latency in cycles.
    pub const MAX_DRAM_LATENCY: u64 = 10_000_000;
    /// Ceiling on [`SimConfig::dram_service_cycles`]: the timing oracle
    /// books DRAM capacity in 32-cycle windows and one line transfer must
    /// fit a window, so the bandwidth floor is
    /// `clock_ghz * line_bytes / 32` GB/s (4 GB/s at Table I values).
    pub const MAX_DRAM_SERVICE_CYCLES: f64 = 32.0;

    /// The paper's Table I baseline; identical to `SimConfig::default()`.
    #[must_use]
    pub fn table1() -> Self {
        Self::default()
    }

    /// Returns a copy with a different number of resident warps per core
    /// (the Figure 13 sweep: 8, 16, 32, 48).
    #[must_use]
    pub fn with_warps_per_core(mut self, warps: usize) -> Self {
        self.max_warps_per_core = warps;
        self
    }

    /// Returns a copy with a different number of MSHR entries
    /// (the Figure 14 sweep: 64, 96, 128, 256).
    #[must_use]
    pub fn with_mshrs(mut self, mshrs: usize) -> Self {
        self.num_mshrs = mshrs;
        self
    }

    /// Returns a copy with a different DRAM bandwidth in GB/s
    /// (the Figure 15 sweep: 64, 128, 192, 256).
    #[must_use]
    pub fn with_dram_bandwidth(mut self, gbps: f64) -> Self {
        self.dram_bandwidth_gbps = gbps;
        self
    }

    /// Returns a copy with a different number of SFU lanes per core
    /// (the SFU-contention ablation; 32 = Table I's no-contention default).
    #[must_use]
    pub fn with_sfu_per_core(mut self, lanes: usize) -> Self {
        self.sfu_per_core = lanes;
        self
    }

    /// Returns a copy with a different shared-memory bank geometry (e.g.
    /// Kepler's 32 banks × 8 B mode).
    #[must_use]
    pub fn with_shared_banks(mut self, banks: usize, word_bytes: usize) -> Self {
        self.shared_mem_banks = banks;
        self.shared_bank_bytes = word_bytes;
        self
    }

    /// Cycles a warp's SFU instruction occupies the special-function unit:
    /// `ceil(warp_size / sfu_per_core)` (1 at the default 32 lanes, 8 on a
    /// Fermi-like 4-lane unit).
    #[must_use]
    pub fn sfu_initiation_interval(&self) -> u64 {
        (crate::WARP_SIZE as u64).div_ceil(self.sfu_per_core.max(1) as u64)
    }

    /// Issue rate in warp-instructions per cycle (Table I: 1.0).
    #[must_use]
    pub fn issue_rate(&self) -> f64 {
        self.issue_width as f64
    }

    /// Latency of an access that hits in the L2 (120 cycles).
    #[must_use]
    pub fn l2_hit_latency(&self) -> u64 {
        self.l2.latency
    }

    /// Latency of an access that misses the L2: L2 lookup plus DRAM access
    /// (120 + 300 = 420 cycles in Table I — the value used in the paper's
    /// worked AMAT example of Section V-B).
    #[must_use]
    pub fn l2_miss_latency(&self) -> u64 {
        self.l2.latency + self.dram_latency
    }

    /// DRAM bus service time of one cache line, in core cycles:
    /// `freq_core * L / B` (Equation 22 of the paper). At Table I values
    /// this is `1 GHz * 128 B / 192 GB/s ≈ 0.667` cycles.
    #[must_use]
    pub fn dram_service_cycles(&self) -> f64 {
        let bytes_per_cycle = self.dram_bandwidth_gbps / self.clock_ghz;
        self.l2.line_bytes as f64 / bytes_per_cycle
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] describing the first inconsistency found:
    /// a zero-valued field, cache geometry that does not divide evenly (or a
    /// non-power-of-two line size), mismatched line sizes, a SIMT width
    /// different from the warp size, or a field outside the bounds
    /// (`MAX_*` associated constants) within which the models stay
    /// numerically stable.
    pub fn validate(&self) -> Result<(), ConfigError> {
        gpumech_obs::counter!("isa.config.validations", 1u64);
        let result = self.validate_impl();
        if result.is_err() {
            gpumech_obs::counter!("isa.config.rejections", 1u64);
        }
        result
    }

    fn validate_impl(&self) -> Result<(), ConfigError> {
        if self.num_cores == 0 {
            return Err(ConfigError::ZeroField("num_cores"));
        }
        if self.max_warps_per_core == 0 {
            return Err(ConfigError::ZeroField("max_warps_per_core"));
        }
        if self.issue_width == 0 {
            return Err(ConfigError::ZeroField("issue_width"));
        }
        if self.num_mshrs == 0 {
            return Err(ConfigError::ZeroField("num_mshrs"));
        }
        if self.sfu_per_core == 0 {
            return Err(ConfigError::ZeroField("sfu_per_core"));
        }
        if self.dram_bandwidth_gbps <= 0.0 || !self.dram_bandwidth_gbps.is_finite() {
            return Err(ConfigError::ZeroField("dram_bandwidth_gbps"));
        }
        if self.clock_ghz <= 0.0 || !self.clock_ghz.is_finite() {
            return Err(ConfigError::ZeroField("clock_ghz"));
        }
        if self.num_cores > Self::MAX_CORES {
            return Err(ConfigError::OutOfRange { field: "num_cores", bound: "at most 4096" });
        }
        if self.max_warps_per_core > Self::MAX_WARPS_PER_CORE {
            return Err(ConfigError::OutOfRange {
                field: "max_warps_per_core",
                bound: "at most 4096",
            });
        }
        if self.issue_width > Self::MAX_ISSUE_WIDTH {
            return Err(ConfigError::OutOfRange { field: "issue_width", bound: "at most 32" });
        }
        if self.num_mshrs > Self::MAX_MSHRS {
            return Err(ConfigError::OutOfRange { field: "num_mshrs", bound: "at most 2^20" });
        }
        if self.sfu_per_core > crate::WARP_SIZE {
            return Err(ConfigError::OutOfRange {
                field: "sfu_per_core",
                bound: "at most the warp size (32)",
            });
        }
        if self.shared_mem_banks == 0 {
            return Err(ConfigError::ZeroField("shared_mem_banks"));
        }
        if self.shared_bank_bytes == 0 {
            return Err(ConfigError::ZeroField("shared_bank_bytes"));
        }
        if !self.shared_mem_banks.is_power_of_two() || self.shared_mem_banks > 64 {
            return Err(ConfigError::OutOfRange {
                field: "shared_mem_banks",
                bound: "a power of two, at most 64",
            });
        }
        if !self.shared_bank_bytes.is_power_of_two() || self.shared_bank_bytes > 16 {
            return Err(ConfigError::OutOfRange {
                field: "shared_bank_bytes",
                bound: "a power of two, at most 16",
            });
        }
        if self.dram_latency > Self::MAX_DRAM_LATENCY {
            return Err(ConfigError::OutOfRange {
                field: "dram_latency",
                bound: "at most 10^7 cycles",
            });
        }
        for (cache, name) in [(&self.l1, "L1"), (&self.l2, "L2")] {
            if cache.size_bytes == 0 || cache.line_bytes == 0 || cache.assoc == 0 {
                return Err(ConfigError::ZeroField("cache size/line/assoc"));
            }
            let lines = cache.size_bytes / cache.line_bytes;
            if lines == 0
                || cache.size_bytes % cache.line_bytes != 0
                || lines % cache.assoc != 0
                || !cache.line_bytes.is_power_of_two()
            {
                return Err(ConfigError::CacheGeometry(name));
            }
        }
        if self.l1.line_bytes != self.l2.line_bytes {
            return Err(ConfigError::LineSizeMismatch);
        }
        if self.simt_width != crate::WARP_SIZE {
            return Err(ConfigError::SimtWidth);
        }
        // One line transfer must fit a DRAM booking window, or the oracle's
        // windowed capacity search can never place a request.
        if self.dram_service_cycles() > Self::MAX_DRAM_SERVICE_CYCLES {
            return Err(ConfigError::OutOfRange {
                field: "dram_bandwidth_gbps",
                bound: "at least clock_ghz * line_bytes / 32 GB/s (one line per DRAM window)",
            });
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let cfg = SimConfig::table1();
        assert_eq!(cfg.num_cores, 16);
        assert_eq!(cfg.max_warps_per_core, 32);
        assert_eq!(cfg.l1.size_bytes, 32 * 1024);
        assert_eq!(cfg.l1.latency, 25);
        assert_eq!(cfg.num_mshrs, 32);
        assert_eq!(cfg.l2.size_bytes, 768 * 1024);
        assert_eq!(cfg.l2.latency, 120);
        assert_eq!(cfg.dram_latency, 300);
        assert_eq!(cfg.latencies.fp_add, 25, "normal FP instructions are 25 cycles");
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn l2_miss_latency_matches_the_papers_amat_example() {
        // Section V-B: "hits L2 cache (120 cycles) ... misses L2 cache (420)".
        let cfg = SimConfig::default();
        assert_eq!(cfg.l2_hit_latency(), 120);
        assert_eq!(cfg.l2_miss_latency(), 420);
    }

    #[test]
    fn dram_service_time_is_two_thirds_of_a_cycle_at_192_gbps() {
        let s = SimConfig::default().dram_service_cycles();
        assert!((s - 128.0 / 192.0).abs() < 1e-12);
    }

    #[test]
    fn service_time_scales_inversely_with_bandwidth() {
        let lo = SimConfig::default().with_dram_bandwidth(64.0);
        assert!((lo.dram_service_cycles() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cache_geometry() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.l1.num_lines(), 256);
        assert_eq!(cfg.l1.num_sets(), 32);
        assert_eq!(cfg.l2.num_lines(), 6144);
        assert_eq!(cfg.l2.num_sets(), 768);
    }

    #[test]
    fn builders_override_single_fields() {
        let cfg = SimConfig::default()
            .with_warps_per_core(48)
            .with_mshrs(96)
            .with_dram_bandwidth(64.0);
        assert_eq!(cfg.max_warps_per_core, 48);
        assert_eq!(cfg.num_mshrs, 96);
        assert!((cfg.dram_bandwidth_gbps - 64.0).abs() < f64::EPSILON);
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let cfg = SimConfig { num_cores: 0, ..SimConfig::default() };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroField("num_cores")));

        let mut cfg = SimConfig::default();
        cfg.l1.size_bytes = 1000; // not divisible by 128
        assert_eq!(cfg.validate(), Err(ConfigError::CacheGeometry("L1")));

        let mut cfg = SimConfig::default();
        cfg.l2.line_bytes = 64;
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::CacheGeometry("L2") | ConfigError::LineSizeMismatch)
        ));

        let cfg = SimConfig { simt_width: 16, ..SimConfig::default() };
        assert_eq!(cfg.validate(), Err(ConfigError::SimtWidth));
    }

    #[test]
    fn validate_rejects_out_of_range_configs() {
        let cfg = SimConfig::default().with_warps_per_core(100_000);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutOfRange { field: "max_warps_per_core", .. })
        ));

        let cfg = SimConfig::default().with_mshrs(usize::MAX);
        assert!(matches!(cfg.validate(), Err(ConfigError::OutOfRange { field: "num_mshrs", .. })));

        let cfg = SimConfig::default().with_sfu_per_core(64);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutOfRange { field: "sfu_per_core", .. })
        ));

        // 1 GB/s → service time 128 cycles: a line no longer fits a DRAM
        // booking window.
        let cfg = SimConfig::default().with_dram_bandwidth(1.0);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutOfRange { field: "dram_bandwidth_gbps", .. })
        ));
        // The floor itself (4 GB/s at Table I geometry) is accepted.
        assert!(SimConfig::default().with_dram_bandwidth(4.0).validate().is_ok());

        let cfg = SimConfig { dram_bandwidth_gbps: f64::INFINITY, ..SimConfig::default() };
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroField("dram_bandwidth_gbps")));

        let mut cfg = SimConfig::default();
        cfg.l1.line_bytes = 96;
        cfg.l2.line_bytes = 96;
        assert_eq!(cfg.validate(), Err(ConfigError::CacheGeometry("L1")), "non-power-of-two line");

        let cfg = SimConfig::default().with_shared_banks(24, 4);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutOfRange { field: "shared_mem_banks", .. })
        ));
        let cfg = SimConfig::default().with_shared_banks(32, 32);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::OutOfRange { field: "shared_bank_bytes", .. })
        ));
        let cfg = SimConfig::default().with_shared_banks(32, 0);
        assert_eq!(cfg.validate(), Err(ConfigError::ZeroField("shared_bank_bytes")));
        assert!(SimConfig::default().with_shared_banks(16, 8).validate().is_ok());
    }

    #[test]
    fn latency_table_covers_all_kinds() {
        let lat = LatencyTable::default();
        assert_eq!(lat.latency_of(InstKind::FpAdd), 25);
        assert_eq!(lat.latency_of(InstKind::Load(MemSpace::Shared)), 30);
        assert_eq!(lat.latency_of(InstKind::Load(MemSpace::Global)), 1);
        assert_eq!(lat.latency_of(InstKind::Sync), 1);
        assert!(lat.latency_of(InstKind::FpDiv) > lat.latency_of(InstKind::FpMul));
    }

    #[test]
    fn sfu_initiation_interval_scales_with_lanes() {
        let cfg = SimConfig::default();
        assert_eq!(cfg.sfu_per_core, 32, "Table I: balanced design, no SFU contention");
        assert_eq!(cfg.sfu_initiation_interval(), 1);
        assert_eq!(cfg.clone().with_sfu_per_core(8).sfu_initiation_interval(), 4);
        assert_eq!(cfg.clone().with_sfu_per_core(4).sfu_initiation_interval(), 8);
        assert_eq!(cfg.clone().with_sfu_per_core(5).sfu_initiation_interval(), 7);
        let mut bad = cfg;
        bad.sfu_per_core = 0;
        assert_eq!(bad.validate(), Err(ConfigError::ZeroField("sfu_per_core")));
    }

    #[test]
    fn config_serde_roundtrip() {
        let cfg = SimConfig::default().with_mshrs(64);
        let json = serde_json::to_string(&cfg).expect("serialize");
        let back: SimConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(cfg, back);
    }

    #[test]
    fn bank_geometry_defaults_apply_to_older_configs() {
        // Config files written before the bank-geometry fields existed must
        // still deserialize, picking up the Fermi defaults.
        let cfg = SimConfig::default();
        let json = serde_json::to_string(&cfg).expect("serialize");
        let stripped = json
            .replace(",\"shared_mem_banks\":32", "")
            .replace(",\"shared_bank_bytes\":4", "");
        assert_ne!(json, stripped, "fields must have been present to strip");
        let back: SimConfig = serde_json::from_str(&stripped).expect("deserialize");
        assert_eq!(back.shared_mem_banks, 32);
        assert_eq!(back.shared_bank_bytes, 4);
        assert_eq!(back, cfg);
    }
}
