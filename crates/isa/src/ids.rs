//! Identifier newtypes used across the GPUMech crates.
//!
//! These provide static distinction between the various integer indices that
//! flow through the simulators (C-NEWTYPE): a warp index can never be passed
//! where a core index is expected.

use std::fmt;

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// Creates the identifier from a raw index.
            #[must_use]
            pub fn new(raw: u32) -> Self {
                Self(raw)
            }

            /// Returns the raw index.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(raw: u32) -> Self {
                Self(raw)
            }
        }

        impl From<$name> for u32 {
            fn from(id: $name) -> u32 {
                id.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// Index of a warp within a kernel launch (grid-global, not per-core).
    WarpId,
    "w"
);
id_newtype!(
    /// Index of a streaming multiprocessor ("core").
    CoreId,
    "core"
);
id_newtype!(
    /// Index of a thread block within the launch grid.
    BlockId,
    "b"
);

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_display() {
        let w = WarpId::new(7);
        assert_eq!(w.index(), 7);
        assert_eq!(u32::from(w), 7);
        assert_eq!(WarpId::from(7), w);
        assert_eq!(w.to_string(), "w7");
        assert_eq!(CoreId::new(3).to_string(), "core3");
        assert_eq!(BlockId::new(11).to_string(), "b11");
    }

    #[test]
    fn ordering_follows_raw_index() {
        assert!(WarpId::new(1) < WarpId::new(2));
        assert_eq!(WarpId::default(), WarpId::new(0));
    }
}
