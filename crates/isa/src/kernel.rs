//! A compact SIMT kernel IR and a structured-control-flow builder.
//!
//! The paper's input collector uses GPUOcelot to execute real PTX; this
//! reproduction substitutes a small register-machine IR that the functional
//! simulator in `gpumech-trace` executes per-thread with a SIMT
//! reconvergence stack. The IR is expressive enough to create every
//! behaviour the model cares about: register dependency chains,
//! data-dependent control divergence, and arbitrarily divergent memory
//! address streams.
//!
//! Values are untyped `u64`s with wrapping arithmetic; the [`InstKind`]
//! carries the latency class, the [`ValueOp`] carries value semantics, and
//! the two are orthogonal (a "floating point" instruction computes on bit
//! patterns — only its latency matters to the model).
//!
//! # Example
//!
//! ```
//! use gpumech_isa::{KernelBuilder, Operand, ValueOp, MemSpace};
//!
//! // A vector-add-like kernel: r0 = tid*4; x = load base+r0; store out+r0.
//! let mut b = KernelBuilder::new("vecadd");
//! let base = b.param(0);
//! let out = b.param(1);
//! let off = b.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(4)]);
//! let addr = b.alu(ValueOp::Add, &[base, Operand::Reg(off)]);
//! let x = b.load(MemSpace::Global, Operand::Reg(addr));
//! let y = b.fp_add(&[Operand::Reg(x), Operand::Imm(1)]);
//! let oaddr = b.alu(ValueOp::Add, &[out, Operand::Reg(off)]);
//! b.store(MemSpace::Global, Operand::Reg(oaddr), Operand::Reg(y));
//! let kernel = b.finish(vec![0x1000_0000, 0x2000_0000]);
//! assert!(kernel.validate().is_ok());
//! assert_eq!(kernel.insts.len(), 7); // 6 + trailing exit
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::opcode::{InstKind, MemSpace};

/// A virtual register index. Each thread owns [`NUM_REGS`] registers,
/// all initially zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(pub u8);

/// Number of virtual registers per thread.
pub const NUM_REGS: usize = 64;

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An instruction operand, resolved per-thread at execution time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operand {
    /// A virtual register.
    Reg(Reg),
    /// An immediate constant.
    Imm(u64),
    /// Grid-global thread id.
    Tid,
    /// Lane index within the warp (0..32).
    Lane,
    /// Warp index within the thread block.
    WarpInBlock,
    /// Thread block index within the grid.
    Block,
    /// Thread index within the block.
    TidInBlock,
    /// A kernel launch parameter (index into [`Kernel::params`]).
    Param(u16),
}

/// Value semantics of a register-writing instruction, over wrapping `u64`s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueOp {
    /// `srcs[0]` (a move / broadcast).
    Mov,
    /// Sum of all sources.
    Add,
    /// `srcs[0] - srcs[1]`.
    Sub,
    /// Product of all sources.
    Mul,
    /// `srcs[0] / max(srcs[1],1)`.
    Div,
    /// `srcs[0] % max(srcs[1],1)`.
    Rem,
    /// Bitwise and of all sources.
    And,
    /// Bitwise xor of all sources.
    Xor,
    /// `srcs[0] << (srcs[1] & 63)`.
    Shl,
    /// `srcs[0] >> (srcs[1] & 63)`.
    Shr,
    /// Minimum of all sources.
    Min,
    /// Maximum of all sources.
    Max,
    /// `1` if `srcs[0] < srcs[1]` else `0`.
    CmpLt,
    /// `1` if `srcs[0] == srcs[1]` else `0`.
    CmpEq,
    /// `1` if `srcs[0] != srcs[1]` else `0`.
    CmpNe,
    /// `srcs[0] != 0 ? srcs[1] : srcs[2]`.
    Select,
    /// SplitMix64 hash of the xor of all sources — a deterministic
    /// pseudo-random value generator used for irregular address streams and
    /// data-dependent branches.
    Hash,
}

/// Condition under which a branch redirects a lane to its target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BranchCond {
    /// Every active lane jumps.
    Always,
    /// Lanes whose condition value is zero jump.
    IfZero,
    /// Lanes whose condition value is non-zero jump.
    IfNonZero,
}

/// One static instruction of a kernel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StaticInst {
    /// Latency class.
    pub kind: InstKind,
    /// Value semantics (meaningful only when `dst` is `Some`).
    pub op: ValueOp,
    /// Destination register, if the instruction produces a value.
    pub dst: Option<Reg>,
    /// Source operands. For loads: `[addr]`. For stores: `[addr, data]`.
    /// For conditional branches: `[cond]`.
    pub srcs: Vec<Operand>,
    /// Branch target PC (index into [`Kernel::insts`]).
    pub target: Option<u32>,
    /// Branch condition sense.
    pub cond: BranchCond,
    /// Reconvergence PC for potentially-divergent branches (the immediate
    /// post-dominator; known statically because the builder only produces
    /// structured control flow).
    pub reconv: Option<u32>,
}

impl StaticInst {
    fn compute(kind: InstKind, op: ValueOp, dst: Reg, srcs: Vec<Operand>) -> Self {
        Self { kind, op, dst: Some(dst), srcs, target: None, cond: BranchCond::Always, reconv: None }
    }
}

/// Error returned by [`Kernel::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// A branch target or reconvergence PC is out of range.
    BadTarget {
        /// PC of the offending branch.
        pc: u32,
    },
    /// A conditional branch lacks a reconvergence PC.
    MissingReconv {
        /// PC of the offending branch.
        pc: u32,
    },
    /// A conditional branch's reconvergence PC does not lie after the
    /// branch. The SIMT stack pops a path when execution *reaches* the
    /// reconvergence PC, so a reconvergence point at or before the branch
    /// can never re-merge the paths the branch split.
    ReconvBeforeBranch {
        /// PC of the offending branch.
        pc: u32,
        /// The stored (invalid) reconvergence PC.
        reconv: u32,
    },
    /// An operand references a parameter index not present in `params`.
    BadParam {
        /// PC of the referencing instruction.
        pc: u32,
        /// The out-of-range parameter index.
        index: u16,
    },
    /// The kernel does not end with `Exit`.
    MissingExit,
    /// A register index is out of range.
    BadReg {
        /// PC of the offending instruction.
        pc: u32,
    },
    /// An unclosed `if`/`loop` scope was left open at `finish` time
    /// (reported by the builder).
    UnclosedScope,
    /// A memory instruction is missing its address operand.
    MissingAddress {
        /// PC of the offending instruction.
        pc: u32,
    },
    /// A `Sync` lies on a path with no reachable `Exit`: warps arriving at
    /// the barrier can never be released, so the block cannot retire.
    SyncWithoutExit {
        /// PC of the offending barrier.
        pc: u32,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::BadTarget { pc } => write!(f, "branch at pc {pc} targets out of range"),
            KernelError::MissingReconv { pc } => {
                write!(f, "conditional branch at pc {pc} has no reconvergence point")
            }
            KernelError::ReconvBeforeBranch { pc, reconv } => write!(
                f,
                "conditional branch at pc {pc} reconverges at pc {reconv}, \
                 which is not after the branch"
            ),
            KernelError::BadParam { pc, index } => {
                write!(f, "instruction at pc {pc} references missing parameter {index}")
            }
            KernelError::MissingExit => f.write_str("kernel does not end with exit"),
            KernelError::BadReg { pc } => write!(f, "instruction at pc {pc} uses an out-of-range register"),
            KernelError::UnclosedScope => f.write_str("unclosed if/loop scope at finish"),
            KernelError::MissingAddress { pc } => {
                write!(f, "memory instruction at pc {pc} is missing an address operand")
            }
            KernelError::SyncWithoutExit { pc } => {
                write!(f, "barrier at pc {pc} lies on a path that never reaches exit")
            }
        }
    }
}

impl std::error::Error for KernelError {}

/// A complete kernel: a flat instruction array plus launch parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Kernel {
    /// Human-readable kernel name (used in reports).
    pub name: String,
    /// The instruction array; PCs are indices into this vector.
    pub insts: Vec<StaticInst>,
    /// Launch-time parameters referenced by [`Operand::Param`].
    pub params: Vec<u64>,
}

impl Kernel {
    /// Number of static instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// `true` if the kernel has no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Checks structural well-formedness.
    ///
    /// # Errors
    ///
    /// Returns the first [`KernelError`] found: out-of-range branch targets
    /// or registers, conditional branches without reconvergence PCs (or with
    /// reconvergence PCs not strictly after the branch), missing parameters,
    /// memory instructions without addresses, a missing trailing `Exit`, or
    /// a `Sync` on a path from which no `Exit` is reachable.
    ///
    /// This is *basic* well-formedness only; `gpumech-analyze` performs the
    /// deeper structural checks (true post-dominator reconvergence,
    /// reducibility, initialization) and is run by the tracer's pre-trace
    /// hook.
    pub fn validate(&self) -> Result<(), KernelError> {
        let n = self.insts.len() as u32;
        if self.insts.last().map(|i| i.kind) != Some(InstKind::Exit) {
            return Err(KernelError::MissingExit);
        }
        for (pc, inst) in self.insts.iter().enumerate() {
            let pc = pc as u32;
            if let Some(t) = inst.target {
                if t >= n {
                    return Err(KernelError::BadTarget { pc });
                }
            }
            if let Some(r) = inst.reconv {
                if r >= n {
                    return Err(KernelError::BadTarget { pc });
                }
            }
            if inst.kind == InstKind::Branch {
                if inst.target.is_none() {
                    return Err(KernelError::BadTarget { pc });
                }
                if inst.cond != BranchCond::Always {
                    match inst.reconv {
                        None => return Err(KernelError::MissingReconv { pc }),
                        Some(r) if r <= pc => {
                            return Err(KernelError::ReconvBeforeBranch { pc, reconv: r });
                        }
                        Some(_) => {}
                    }
                }
            }
            if inst.kind.is_mem() && inst.srcs.is_empty() {
                return Err(KernelError::MissingAddress { pc });
            }
            if let Some(Reg(d)) = inst.dst {
                if d as usize >= NUM_REGS {
                    return Err(KernelError::BadReg { pc });
                }
            }
            for src in &inst.srcs {
                match *src {
                    Operand::Reg(Reg(r)) if r as usize >= NUM_REGS => {
                        return Err(KernelError::BadReg { pc });
                    }
                    Operand::Param(i) if i as usize >= self.params.len() => {
                        return Err(KernelError::BadParam { pc, index: i });
                    }
                    _ => {}
                }
            }
        }
        // A barrier on a path with no reachable Exit can never be released:
        // warps that arrive park forever while the block cannot retire.
        // Backward fixpoint over "some path from pc reaches Exit"; targets
        // are already range-checked above.
        let n = self.insts.len();
        let mut reaches_exit = vec![false; n];
        let mut changed = true;
        while changed {
            changed = false;
            for pc in (0..n).rev() {
                if reaches_exit[pc] {
                    continue;
                }
                let inst = &self.insts[pc];
                let ok = match inst.kind {
                    InstKind::Exit => true,
                    InstKind::Branch => {
                        let t = inst.target.unwrap_or(0) as usize;
                        reaches_exit[t]
                            || (inst.cond != BranchCond::Always
                                && pc + 1 < n
                                && reaches_exit[pc + 1])
                    }
                    _ => pc + 1 < n && reaches_exit[pc + 1],
                };
                if ok {
                    reaches_exit[pc] = true;
                    changed = true;
                }
            }
        }
        for (pc, inst) in self.insts.iter().enumerate() {
            if inst.kind == InstKind::Sync && !reaches_exit[pc] {
                return Err(KernelError::SyncWithoutExit { pc: pc as u32 });
            }
        }
        Ok(())
    }

    /// Count of static global memory instructions (a quick divergence /
    /// memory-intensity indicator used by reports).
    #[must_use]
    pub fn global_mem_insts(&self) -> usize {
        self.insts.iter().filter(|i| i.kind.is_global_mem()).count()
    }
}

/// Pre-canned per-thread address patterns used by workload definitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AddrPattern {
    /// `base + tid * elem_bytes` — fully coalesced when
    /// `elem_bytes * 32 <= line`.
    Coalesced {
        /// Region base address.
        base: u64,
        /// Element size in bytes (4 → one 128 B line per warp).
        elem_bytes: u64,
    },
    /// `base + tid * stride_bytes` — one request per
    /// `line/stride`-lane group; `stride >= 128` gives 32 requests.
    Strided {
        /// Region base address.
        base: u64,
        /// Per-thread stride in bytes.
        stride_bytes: u64,
    },
    /// `base + (hash(tid ^ salt) % region) & !3` — maximally divergent,
    /// cache behaviour set by `region_bytes`.
    Random {
        /// Region base address.
        base: u64,
        /// Region size in bytes (small regions create cache locality).
        region_bytes: u64,
        /// Hash salt; vary to decorrelate streams.
        salt: u64,
    },
    /// Every lane reads the same address (fully convergent, 1 request).
    Broadcast {
        /// The address.
        addr: u64,
    },
}

#[derive(Debug, Clone, Copy)]
enum Scope {
    /// `if` without `else` so far: PC of the conditional branch.
    If { branch_pc: u32 },
    /// `if` with `else`: PCs of the conditional branch and the
    /// jump-over-else branch.
    IfElse { branch_pc: u32, jump_pc: u32 },
    /// Loop: PC of the first body instruction.
    Loop { head_pc: u32 },
}

/// Incremental builder for [`Kernel`]s with structured control flow.
///
/// The builder allocates registers on demand, patches branch targets, and
/// records reconvergence points so the SIMT executor can handle divergence
/// without computing post-dominators.
///
/// # Panics
///
/// Builder methods panic on structural misuse (closing a scope that was
/// never opened, register exhaustion); this is a programming error in a
/// workload definition, not a runtime condition.
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    insts: Vec<StaticInst>,
    next_reg: u8,
    scopes: Vec<Scope>,
    num_params: u16,
}

impl KernelBuilder {
    /// Starts a new kernel with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), insts: Vec::new(), next_reg: 0, scopes: Vec::new(), num_params: 0 }
    }

    /// Current PC (index of the next instruction to be emitted).
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.insts.len() as u32
    }

    /// Allocates a fresh virtual register.
    ///
    /// # Panics
    ///
    /// Panics if more than [`NUM_REGS`] registers are requested.
    pub fn fresh_reg(&mut self) -> Reg {
        assert!((self.next_reg as usize) < NUM_REGS, "out of virtual registers");
        let r = Reg(self.next_reg);
        self.next_reg += 1;
        r
    }

    /// Declares (or reuses) launch parameter `index` and returns its operand.
    pub fn param(&mut self, index: u16) -> Operand {
        self.num_params = self.num_params.max(index + 1);
        Operand::Param(index)
    }

    fn push(&mut self, inst: StaticInst) -> u32 {
        let pc = self.pc();
        self.insts.push(inst);
        pc
    }

    /// Emits an integer ALU instruction computing `op` over `srcs` into a
    /// fresh register, which is returned.
    pub fn alu(&mut self, op: ValueOp, srcs: &[Operand]) -> Reg {
        let dst = self.fresh_reg();
        self.push(StaticInst::compute(InstKind::IntAlu, op, dst, srcs.to_vec()));
        dst
    }

    /// Emits an integer ALU instruction writing an existing register.
    pub fn alu_into(&mut self, dst: Reg, op: ValueOp, srcs: &[Operand]) {
        self.push(StaticInst::compute(InstKind::IntAlu, op, dst, srcs.to_vec()));
    }

    /// Emits a compute instruction of an arbitrary latency class.
    pub fn compute(&mut self, kind: InstKind, op: ValueOp, srcs: &[Operand]) -> Reg {
        assert!(kind.writes_register(), "compute() requires a register-writing kind");
        let dst = self.fresh_reg();
        self.push(StaticInst::compute(kind, op, dst, srcs.to_vec()));
        dst
    }

    /// Emits a compute instruction of kind `kind` writing an existing register.
    pub fn compute_into(&mut self, dst: Reg, kind: InstKind, op: ValueOp, srcs: &[Operand]) {
        assert!(kind.writes_register(), "compute_into() requires a register-writing kind");
        self.push(StaticInst::compute(kind, op, dst, srcs.to_vec()));
    }

    /// Emits a floating-point add (25-cycle class) summing `srcs`.
    pub fn fp_add(&mut self, srcs: &[Operand]) -> Reg {
        self.compute(InstKind::FpAdd, ValueOp::Add, srcs)
    }

    /// Emits a floating-point multiply.
    pub fn fp_mul(&mut self, srcs: &[Operand]) -> Reg {
        self.compute(InstKind::FpMul, ValueOp::Mul, srcs)
    }

    /// Emits a fused multiply-add (`srcs[0]*srcs[1]+srcs[2]` shape; value
    /// semantics are a wrapping sum-of-products approximation via `Hash`-free
    /// `Add` of a `Mul` — the latency class is what matters).
    pub fn fp_fma(&mut self, srcs: &[Operand]) -> Reg {
        self.compute(InstKind::FpFma, ValueOp::Add, srcs)
    }

    /// Emits a special-function-unit op.
    pub fn sfu(&mut self, srcs: &[Operand]) -> Reg {
        self.compute(InstKind::Sfu, ValueOp::Hash, srcs)
    }

    /// Emits a load from `space` at address `addr`; returns the destination
    /// register holding the loaded value.
    pub fn load(&mut self, space: MemSpace, addr: Operand) -> Reg {
        let dst = self.fresh_reg();
        self.push(StaticInst::compute(InstKind::Load(space), ValueOp::Mov, dst, vec![addr]));
        dst
    }

    /// Emits a store of `data` to `space` at address `addr`.
    pub fn store(&mut self, space: MemSpace, addr: Operand, data: Operand) {
        self.push(StaticInst {
            kind: InstKind::Store(space),
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![addr, data],
            target: None,
            cond: BranchCond::Always,
            reconv: None,
        });
    }

    /// Emits the address computation for `pattern` followed by a global load;
    /// returns the loaded value's register.
    pub fn load_pattern(&mut self, pattern: AddrPattern) -> Reg {
        let addr = self.addr_of(pattern);
        self.load(MemSpace::Global, addr)
    }

    /// Emits the address computation for `pattern` followed by a global
    /// store of `data`.
    pub fn store_pattern(&mut self, pattern: AddrPattern, data: Operand) {
        let addr = self.addr_of(pattern);
        self.store(MemSpace::Global, addr, data);
    }

    /// Emits address computation instructions for `pattern` and returns the
    /// operand holding the per-thread address.
    pub fn addr_of(&mut self, pattern: AddrPattern) -> Operand {
        match pattern {
            AddrPattern::Coalesced { base, elem_bytes } => {
                let off = self.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(elem_bytes)]);
                let addr =
                    self.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Imm(base)]);
                Operand::Reg(addr)
            }
            AddrPattern::Strided { base, stride_bytes } => {
                let off = self.alu(ValueOp::Mul, &[Operand::Tid, Operand::Imm(stride_bytes)]);
                let addr =
                    self.alu(ValueOp::Add, &[Operand::Reg(off), Operand::Imm(base)]);
                Operand::Reg(addr)
            }
            AddrPattern::Random { base, region_bytes, salt } => {
                let h = self.alu(ValueOp::Hash, &[Operand::Tid, Operand::Imm(salt)]);
                let m = self.alu(
                    ValueOp::Rem,
                    &[Operand::Reg(h), Operand::Imm(region_bytes.max(4))],
                );
                let aligned = self.alu(ValueOp::And, &[Operand::Reg(m), Operand::Imm(!3u64)]);
                let addr =
                    self.alu(ValueOp::Add, &[Operand::Reg(aligned), Operand::Imm(base)]);
                Operand::Reg(addr)
            }
            AddrPattern::Broadcast { addr } => Operand::Imm(addr),
        }
    }

    /// Opens an `if` block executed by lanes where `cond != 0`.
    pub fn if_begin(&mut self, cond: Operand) {
        let branch_pc = self.push(StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![cond],
            target: Some(u32::MAX), // patched at if_else/if_end
            cond: BranchCond::IfZero,
            reconv: Some(u32::MAX),
        });
        self.scopes.push(Scope::If { branch_pc });
    }

    /// Switches the open `if` block to its `else` arm.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open scope is not an `if`.
    pub fn if_else(&mut self) {
        let scope = self.scopes.pop();
        assert!(matches!(scope, Some(Scope::If { .. })), "if_else without matching if_begin");
        let Some(Scope::If { branch_pc }) = scope else { return };
        // Jump over the else arm at the end of the then arm.
        let jump_pc = self.push(StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![],
            target: Some(u32::MAX), // patched at if_end
            cond: BranchCond::Always,
            reconv: None,
        });
        // False lanes enter here.
        let else_start = self.pc();
        self.insts[branch_pc as usize].target = Some(else_start);
        self.scopes.push(Scope::IfElse { branch_pc, jump_pc });
    }

    /// Closes the innermost `if`/`if-else` block.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open scope is not an `if`.
    pub fn if_end(&mut self) {
        let end = self.pc();
        let scope = self.scopes.pop();
        assert!(
            matches!(scope, Some(Scope::If { .. } | Scope::IfElse { .. })),
            "if_end without matching if_begin"
        );
        match scope {
            Some(Scope::If { branch_pc }) => {
                self.insts[branch_pc as usize].target = Some(end);
                self.insts[branch_pc as usize].reconv = Some(end);
            }
            Some(Scope::IfElse { branch_pc, jump_pc }) => {
                self.insts[jump_pc as usize].target = Some(end);
                self.insts[branch_pc as usize].reconv = Some(end);
            }
            _ => {}
        }
    }

    /// Opens a do-while style loop; close with [`Self::loop_end_while`].
    pub fn loop_begin(&mut self) {
        let head_pc = self.pc();
        self.scopes.push(Scope::Loop { head_pc });
    }

    /// Closes the innermost loop with a backward branch taken by lanes where
    /// `cond != 0`. Lanes that fall out of the loop reconverge just past the
    /// branch.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open scope is not a loop.
    pub fn loop_end_while(&mut self, cond: Operand) {
        let scope = self.scopes.pop();
        assert!(
            matches!(scope, Some(Scope::Loop { .. })),
            "loop_end_while without matching loop_begin"
        );
        let Some(Scope::Loop { head_pc }) = scope else { return };
        let branch_pc = self.push(StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![cond],
            target: Some(head_pc),
            cond: BranchCond::IfNonZero,
            reconv: Some(u32::MAX),
        });
        let exit_pc = self.pc();
        self.insts[branch_pc as usize].reconv = Some(exit_pc);
    }

    /// Emits a block-wide barrier.
    pub fn sync(&mut self) {
        self.push(StaticInst {
            kind: InstKind::Sync,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![],
            target: None,
            cond: BranchCond::Always,
            reconv: None,
        });
    }

    /// Appends the terminating `Exit` and returns the finished kernel.
    ///
    /// # Panics
    ///
    /// Panics if an `if` or loop scope is still open, or if fewer parameters
    /// are supplied than the kernel references.
    #[must_use]
    pub fn finish(mut self, params: Vec<u64>) -> Kernel {
        assert!(self.scopes.is_empty(), "unclosed if/loop scope at finish");
        assert!(
            params.len() >= self.num_params as usize,
            "kernel references {} params but only {} supplied",
            self.num_params,
            params.len()
        );
        self.push(StaticInst {
            kind: InstKind::Exit,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![],
            target: None,
            cond: BranchCond::Always,
            reconv: None,
        });
        Kernel { name: self.name, insts: self.insts, params }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_kernel_builds_and_validates() {
        let mut b = KernelBuilder::new("k");
        let a = b.alu(ValueOp::Add, &[Operand::Tid, Operand::Imm(1)]);
        let _ = b.fp_add(&[Operand::Reg(a), Operand::Imm(2)]);
        let k = b.finish(vec![]);
        assert_eq!(k.len(), 3);
        assert_eq!(k.insts.last().unwrap().kind, InstKind::Exit);
        k.validate().expect("valid kernel");
    }

    #[test]
    fn if_else_targets_and_reconvergence_are_patched() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(16)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.if_else();
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(2)]);
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(3)]);
        b.if_end();
        let k = b.finish(vec![]);
        k.validate().expect("valid kernel");

        // Layout: 0 cmp, 1 branch-if-zero, 2 then, 3 jump, 4..=5 else, 6 exit.
        let br = &k.insts[1];
        assert_eq!(br.kind, InstKind::Branch);
        assert_eq!(br.cond, BranchCond::IfZero);
        assert_eq!(br.target, Some(4), "false lanes jump to the else arm");
        assert_eq!(br.reconv, Some(6), "reconvergence at the end of the if");
        let jump = &k.insts[3];
        assert_eq!(jump.cond, BranchCond::Always);
        assert_eq!(jump.target, Some(6));
    }

    #[test]
    fn if_without_else_reconverges_at_end() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(4)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.if_end();
        let k = b.finish(vec![]);
        k.validate().expect("valid");
        let br = &k.insts[1];
        assert_eq!(br.target, Some(3));
        assert_eq!(br.reconv, Some(3));
    }

    #[test]
    fn loop_branches_backwards_with_exit_reconvergence() {
        let mut b = KernelBuilder::new("k");
        let i = b.alu(ValueOp::Mov, &[Operand::Imm(0)]);
        b.loop_begin();
        b.alu_into(i, ValueOp::Add, &[Operand::Reg(i), Operand::Imm(1)]);
        let c = b.alu(ValueOp::CmpLt, &[Operand::Reg(i), Operand::Imm(10)]);
        b.loop_end_while(Operand::Reg(c));
        let k = b.finish(vec![]);
        k.validate().expect("valid");
        // Layout: 0 mov, 1 add, 2 cmp, 3 branch, 4 exit.
        let br = &k.insts[3];
        assert_eq!(br.target, Some(1), "back edge to loop head");
        assert_eq!(br.cond, BranchCond::IfNonZero);
        assert_eq!(br.reconv, Some(4), "loop exit reconvergence");
    }

    #[test]
    fn nested_scopes_patch_correctly() {
        let mut b = KernelBuilder::new("k");
        let c1 = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(16)]);
        b.if_begin(Operand::Reg(c1));
        let c2 = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(8)]);
        b.if_begin(Operand::Reg(c2));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.if_end();
        b.if_end();
        let k = b.finish(vec![]);
        k.validate().expect("valid nested kernel");
    }

    #[test]
    #[should_panic(expected = "unclosed")]
    fn unclosed_scope_panics_at_finish() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(4)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.finish(vec![]);
    }

    #[test]
    #[should_panic(expected = "params")]
    fn missing_params_panic_at_finish() {
        let mut b = KernelBuilder::new("k");
        let p = b.param(2);
        let _ = b.alu(ValueOp::Add, &[p]);
        let _ = b.finish(vec![0]);
    }

    #[test]
    fn validate_catches_missing_exit() {
        let k = Kernel { name: "bad".into(), insts: vec![], params: vec![] };
        assert_eq!(k.validate(), Err(KernelError::MissingExit));
    }

    #[test]
    fn validate_catches_bad_target() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        let mut k = b.finish(vec![]);
        k.insts[0].kind = InstKind::Branch;
        k.insts[0].target = Some(99);
        assert_eq!(k.validate(), Err(KernelError::BadTarget { pc: 0 }));
    }

    #[test]
    fn validate_catches_bad_param_reference() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        let mut k = b.finish(vec![]);
        k.insts[0].srcs = vec![Operand::Param(5)];
        assert_eq!(k.validate(), Err(KernelError::BadParam { pc: 0, index: 5 }));
    }

    /// A minimal valid if-kernel whose branch sits at pc 1.
    fn branchy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(4)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        b.if_end();
        b.finish(vec![])
    }

    #[test]
    fn validate_catches_reconv_out_of_range() {
        let mut k = branchy_kernel();
        k.insts[1].reconv = Some(99);
        assert_eq!(k.validate(), Err(KernelError::BadTarget { pc: 1 }));
    }

    #[test]
    fn validate_catches_branch_without_target() {
        let mut k = branchy_kernel();
        k.insts[1].target = None;
        assert_eq!(k.validate(), Err(KernelError::BadTarget { pc: 1 }));
    }

    #[test]
    fn validate_catches_missing_reconvergence() {
        let mut k = branchy_kernel();
        k.insts[1].reconv = None;
        assert_eq!(k.validate(), Err(KernelError::MissingReconv { pc: 1 }));
    }

    #[test]
    fn validate_catches_reconvergence_before_branch() {
        let mut k = branchy_kernel();
        // In range, but at the branch itself: can never re-merge the split.
        k.insts[1].reconv = Some(1);
        assert_eq!(k.validate(), Err(KernelError::ReconvBeforeBranch { pc: 1, reconv: 1 }));
        k.insts[1].reconv = Some(0);
        assert_eq!(k.validate(), Err(KernelError::ReconvBeforeBranch { pc: 1, reconv: 0 }));
    }

    #[test]
    fn validate_allows_reconvergence_right_after_branch() {
        let mut k = branchy_kernel();
        k.insts[1].target = Some(2);
        k.insts[1].reconv = Some(2);
        assert!(k.validate().is_ok());
    }

    #[test]
    fn validate_catches_out_of_range_registers() {
        let mut b = KernelBuilder::new("k");
        let _ = b.alu(ValueOp::Add, &[Operand::Imm(1)]);
        let mut k = b.finish(vec![]);
        k.insts[0].dst = Some(Reg(NUM_REGS as u8));
        assert_eq!(k.validate(), Err(KernelError::BadReg { pc: 0 }));
        k.insts[0].dst = Some(Reg(0));
        k.insts[0].srcs = vec![Operand::Reg(Reg(200))];
        assert_eq!(k.validate(), Err(KernelError::BadReg { pc: 0 }));
    }

    #[test]
    fn validate_catches_memory_instruction_without_address() {
        let mut b = KernelBuilder::new("k");
        let _ = b.load(MemSpace::Global, Operand::Imm(64));
        let mut k = b.finish(vec![]);
        k.insts[0].srcs.clear();
        assert_eq!(k.validate(), Err(KernelError::MissingAddress { pc: 0 }));
    }

    #[test]
    fn kernel_errors_display_their_context() {
        let cases: Vec<(KernelError, &str)> = vec![
            (KernelError::BadTarget { pc: 3 }, "pc 3"),
            (KernelError::MissingReconv { pc: 4 }, "pc 4"),
            (KernelError::ReconvBeforeBranch { pc: 5, reconv: 2 }, "pc 2"),
            (KernelError::BadParam { pc: 6, index: 1 }, "parameter 1"),
            (KernelError::MissingExit, "exit"),
            (KernelError::BadReg { pc: 7 }, "pc 7"),
            (KernelError::UnclosedScope, "unclosed"),
            (KernelError::MissingAddress { pc: 8 }, "pc 8"),
            (KernelError::SyncWithoutExit { pc: 9 }, "pc 9"),
        ];
        for (err, needle) in cases {
            let text = err.to_string();
            assert!(text.contains(needle), "{text:?} should contain {needle:?}");
        }
    }

    #[test]
    fn sync_on_an_exitless_path_is_rejected() {
        // 0: sync, 1: jump back to 0, 2: exit (unreachable from the sync).
        let jump_back = StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![],
            target: Some(0),
            cond: BranchCond::Always,
            reconv: None,
        };
        let sync = StaticInst {
            kind: InstKind::Sync,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![],
            target: None,
            cond: BranchCond::Always,
            reconv: None,
        };
        let exit = StaticInst { kind: InstKind::Exit, ..sync.clone() };
        let k = Kernel {
            name: "spin".into(),
            insts: vec![sync.clone(), jump_back.clone(), exit.clone()],
            params: vec![],
        };
        assert_eq!(k.validate(), Err(KernelError::SyncWithoutExit { pc: 0 }));

        // The same infinite loop without a barrier stays a lint concern,
        // not a validation error.
        let alu = StaticInst {
            kind: InstKind::IntAlu,
            op: ValueOp::Mov,
            dst: Some(Reg(0)),
            srcs: vec![Operand::Imm(1)],
            target: None,
            cond: BranchCond::Always,
            reconv: None,
        };
        let k = Kernel { name: "spin2".into(), insts: vec![alu, jump_back, exit.clone()], params: vec![] };
        assert!(k.validate().is_ok());

        // A conditional escape route makes the barrier releasable.
        let cond_back = StaticInst {
            kind: InstKind::Branch,
            op: ValueOp::Mov,
            dst: None,
            srcs: vec![Operand::Lane],
            target: Some(0),
            cond: BranchCond::IfNonZero,
            reconv: Some(2),
        };
        let k = Kernel { name: "loop".into(), insts: vec![sync, cond_back, exit], params: vec![] };
        assert!(k.validate().is_ok());
    }

    #[test]
    fn addr_patterns_emit_addresses() {
        let mut b = KernelBuilder::new("k");
        let _ = b.load_pattern(AddrPattern::Coalesced { base: 0x1000, elem_bytes: 4 });
        let _ = b.load_pattern(AddrPattern::Strided { base: 0x2000, stride_bytes: 256 });
        let _ = b.load_pattern(AddrPattern::Random { base: 0x3000, region_bytes: 1 << 20, salt: 7 });
        let _ = b.load_pattern(AddrPattern::Broadcast { addr: 0x4000 });
        b.store_pattern(AddrPattern::Coalesced { base: 0x5000, elem_bytes: 4 }, Operand::Imm(0));
        let k = b.finish(vec![]);
        k.validate().expect("valid");
        assert_eq!(k.global_mem_insts(), 5);
    }

    #[test]
    fn kernel_serde_roundtrip() {
        let mut b = KernelBuilder::new("k");
        let c = b.alu(ValueOp::CmpLt, &[Operand::Lane, Operand::Imm(4)]);
        b.if_begin(Operand::Reg(c));
        let _ = b.load_pattern(AddrPattern::Coalesced { base: 0, elem_bytes: 4 });
        b.if_end();
        let k = b.finish(vec![]);
        let json = serde_json::to_string(&k).expect("serialize");
        let back: Kernel = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(k, back);
    }
}
