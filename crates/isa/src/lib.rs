//! Kernel IR, instruction kinds, and machine configuration shared by every
//! layer of the GPUMech performance-modeling stack.
//!
//! This crate is the vocabulary of the reproduction of *GPUMech: GPU
//! Performance Modeling Technique based on Interval Analysis* (MICRO 2014):
//!
//! * [`InstKind`] / [`MemSpace`] — the instruction classes whose latencies the
//!   model distinguishes,
//! * [`Kernel`] / [`StaticInst`] — a compact SIMT kernel IR that the
//!   functional simulator in `gpumech-trace` executes,
//! * [`SimConfig`] — the machine description of Table I of the paper
//!   (16 cores, 32-wide SIMT, 32 KB L1, 768 KB L2, 192 GB/s DRAM, …),
//! * id newtypes ([`WarpId`], [`CoreId`], [`BlockId`]) used across crates.
//!
//! # Example
//!
//! ```
//! use gpumech_isa::{SimConfig, InstKind, MemSpace};
//!
//! let cfg = SimConfig::default(); // Table I configuration
//! assert_eq!(cfg.num_cores, 16);
//! assert_eq!(cfg.l2_miss_latency(), 420); // 120-cycle L2 + 300-cycle DRAM
//! assert_eq!(cfg.latencies.latency_of(InstKind::FpAdd), 25);
//! assert!(cfg.validate().is_ok());
//! let _ = InstKind::Load(MemSpace::Global);
//! ```

pub mod config;
pub mod ids;
pub mod kernel;
pub mod opcode;
pub mod policy;

pub use config::{CacheConfig, ConfigError, LatencyTable, SimConfig};
pub use ids::{BlockId, CoreId, WarpId};
pub use kernel::{AddrPattern, BranchCond, Kernel, KernelBuilder, Operand, Reg, StaticInst, ValueOp};
pub use opcode::{InstKind, MemSpace};
pub use policy::SchedulingPolicy;

/// Number of threads in a warp. Fixed at 32, matching the paper's Table I and
/// every NVIDIA architecture the paper models.
pub const WARP_SIZE: usize = 32;
