//! Instruction classes distinguished by the performance model.
//!
//! GPUMech does not need full instruction semantics at the modeling layer —
//! only the *latency class* of each instruction and whether it touches
//! memory. The functional simulator in `gpumech-trace` additionally gives
//! instructions value semantics via [`crate::kernel::ValueOp`].

use std::fmt;

use serde::{Deserialize, Serialize};

/// Address space targeted by a memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MemSpace {
    /// Off-chip global memory, cached in the L1/L2 hierarchy.
    Global,
    /// The per-core software-managed scratchpad ("shared memory"). Accesses
    /// have a fixed latency and never reach the cache hierarchy or DRAM.
    Shared,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Global => f.write_str("global"),
            MemSpace::Shared => f.write_str("shared"),
        }
    }
}

/// Latency class of an instruction.
///
/// The compute classes have fixed latencies given by
/// [`LatencyTable`](crate::config::LatencyTable); global memory latencies are
/// produced by the cache model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InstKind {
    /// Integer ALU operation (add, shift, logic, address arithmetic).
    IntAlu,
    /// "Normal" floating-point operation; 25 cycles in Table I.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Fused multiply-add.
    FpFma,
    /// Floating-point divide (long-latency iterative unit).
    FpDiv,
    /// Special function unit op (sin, rsqrt, exp, …).
    Sfu,
    /// Memory load from `MemSpace`.
    Load(MemSpace),
    /// Memory store to `MemSpace`.
    Store(MemSpace),
    /// Conditional or unconditional branch.
    Branch,
    /// Block-wide barrier (`__syncthreads()`); not a stall source in the
    /// model, per Section V-B of the paper.
    Sync,
    /// Kernel termination for a thread.
    Exit,
}

impl InstKind {
    /// `true` for loads and stores to any address space.
    #[must_use]
    pub fn is_mem(self) -> bool {
        matches!(self, InstKind::Load(_) | InstKind::Store(_))
    }

    /// `true` for loads/stores to global memory, i.e. instructions that
    /// enter the cache hierarchy and participate in the contention model.
    #[must_use]
    pub fn is_global_mem(self) -> bool {
        matches!(
            self,
            InstKind::Load(MemSpace::Global) | InstKind::Store(MemSpace::Global)
        )
    }

    /// `true` for global loads — the only instructions that allocate MSHRs.
    #[must_use]
    pub fn is_global_load(self) -> bool {
        matches!(self, InstKind::Load(MemSpace::Global))
    }

    /// `true` for global stores — write-through traffic that consumes DRAM
    /// bandwidth but never allocates an MSHR (Section VI-B of the paper).
    #[must_use]
    pub fn is_global_store(self) -> bool {
        matches!(self, InstKind::Store(MemSpace::Global))
    }

    /// `true` if the instruction produces a register value that later
    /// instructions may depend on.
    #[must_use]
    pub fn writes_register(self) -> bool {
        !matches!(
            self,
            InstKind::Store(_) | InstKind::Branch | InstKind::Sync | InstKind::Exit
        )
    }
}

impl fmt::Display for InstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstKind::IntAlu => f.write_str("ialu"),
            InstKind::FpAdd => f.write_str("fadd"),
            InstKind::FpMul => f.write_str("fmul"),
            InstKind::FpFma => f.write_str("ffma"),
            InstKind::FpDiv => f.write_str("fdiv"),
            InstKind::Sfu => f.write_str("sfu"),
            InstKind::Load(s) => write!(f, "ld.{s}"),
            InstKind::Store(s) => write!(f, "st.{s}"),
            InstKind::Branch => f.write_str("bra"),
            InstKind::Sync => f.write_str("bar.sync"),
            InstKind::Exit => f.write_str("exit"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn global_load_is_mem_and_allocates_mshr() {
        let k = InstKind::Load(MemSpace::Global);
        assert!(k.is_mem());
        assert!(k.is_global_mem());
        assert!(k.is_global_load());
        assert!(!k.is_global_store());
        assert!(k.writes_register());
    }

    #[test]
    fn global_store_is_traffic_but_not_mshr() {
        let k = InstKind::Store(MemSpace::Global);
        assert!(k.is_mem());
        assert!(k.is_global_mem());
        assert!(!k.is_global_load());
        assert!(k.is_global_store());
        assert!(!k.writes_register());
    }

    #[test]
    fn shared_accesses_never_touch_the_hierarchy() {
        assert!(!InstKind::Load(MemSpace::Shared).is_global_mem());
        assert!(!InstKind::Store(MemSpace::Shared).is_global_mem());
        assert!(InstKind::Load(MemSpace::Shared).is_mem());
    }

    #[test]
    fn compute_kinds_are_not_memory() {
        for k in [
            InstKind::IntAlu,
            InstKind::FpAdd,
            InstKind::FpMul,
            InstKind::FpFma,
            InstKind::FpDiv,
            InstKind::Sfu,
            InstKind::Branch,
            InstKind::Sync,
            InstKind::Exit,
        ] {
            assert!(!k.is_mem(), "{k} misclassified as memory");
        }
    }

    #[test]
    fn control_kinds_do_not_write_registers() {
        assert!(!InstKind::Branch.writes_register());
        assert!(!InstKind::Sync.writes_register());
        assert!(!InstKind::Exit.writes_register());
        assert!(InstKind::IntAlu.writes_register());
    }

    #[test]
    fn display_is_nonempty_and_stable() {
        assert_eq!(InstKind::Load(MemSpace::Global).to_string(), "ld.global");
        assert_eq!(InstKind::Store(MemSpace::Shared).to_string(), "st.shared");
        assert_eq!(InstKind::FpFma.to_string(), "ffma");
    }
}
