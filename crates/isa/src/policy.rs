//! Warp scheduling policies modeled by the paper (Section IV-A).

use std::fmt;

use serde::{Deserialize, Serialize};

/// The two warp scheduling policies GPUMech models and the timing oracle
/// implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SchedulingPolicy {
    /// Round-robin: issue one instruction from each ready warp in turn,
    /// regardless of whether other warps are stalled.
    RoundRobin,
    /// Greedy-then-oldest (Rogers et al., MICRO 2012): keep issuing from
    /// the same warp until it stalls, then switch to the oldest ready warp.
    GreedyThenOldest,
}

impl SchedulingPolicy {
    /// Both policies, in the order the paper evaluates them.
    pub const ALL: [SchedulingPolicy; 2] =
        [SchedulingPolicy::RoundRobin, SchedulingPolicy::GreedyThenOldest];
}

impl fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulingPolicy::RoundRobin => f.write_str("rr"),
            SchedulingPolicy::GreedyThenOldest => f.write_str("gto"),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn display_names() {
        assert_eq!(SchedulingPolicy::RoundRobin.to_string(), "rr");
        assert_eq!(SchedulingPolicy::GreedyThenOldest.to_string(), "gto");
        assert_eq!(SchedulingPolicy::ALL.len(), 2);
    }
}
