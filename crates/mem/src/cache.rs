//! A set-associative LRU cache model (tags only, no data).

use gpumech_isa::CacheConfig;

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The line was present.
    Hit,
    /// The line was absent (and filled, if the access allocates).
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    lru: u64,
}

/// Tag-array-only set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<Way>,
    assoc: usize,
    num_sets: usize,
    line_shift: u32,
    tick: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or the line size is not
    /// a power of two (use [`gpumech_isa::SimConfig::validate`] first).
    #[must_use]
    pub fn new(cfg: &CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two(), "line size must be a power of two");
        let num_sets = cfg.num_sets();
        Self {
            sets: vec![Way { tag: 0, valid: false, lru: 0 }; num_sets * cfg.assoc],
            assoc: cfg.assoc,
            num_sets,
            line_shift: cfg.line_bytes.trailing_zeros(),
            tick: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.line_shift) % self.num_sets as u64) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) / self.num_sets as u64
    }

    /// Looks up the line containing `addr`. On a miss, the line is filled
    /// (evicting the LRU way) when `allocate` is true and left absent
    /// otherwise (no-write-allocate stores).
    pub fn access(&mut self, addr: u64, allocate: bool) -> Access {
        self.tick += 1;
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = &mut self.sets[set * self.assoc..(set + 1) * self.assoc];

        if let Some(way) = ways.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.tick;
            self.hits += 1;
            return Access::Hit;
        }
        self.misses += 1;
        if allocate {
            if let Some(victim) = ways.iter_mut().min_by_key(|w| if w.valid { w.lru } else { 0 }) {
                victim.tag = tag;
                victim.valid = true;
                victim.lru = self.tick;
            }
        }
        Access::Miss
    }

    /// `true` if the line containing `addr` is present (no LRU update).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        self.sets[set * self.assoc..(set + 1) * self.assoc]
            .iter()
            .any(|w| w.valid && w.tag == tag)
    }

    /// Lifetime (hits, misses) counters.
    #[must_use]
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (splitmix64) — the build
    /// environment has no property-testing crate, so the randomized
    /// properties below run over a fixed set of generated cases instead.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn small() -> Cache {
        // 2 sets x 2 ways x 128 B lines.
        Cache::new(&CacheConfig { size_bytes: 512, line_bytes: 128, assoc: 2, latency: 1 })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = small();
        assert_eq!(c.access(0x1000, true), Access::Miss);
        assert_eq!(c.access(0x1000, true), Access::Hit);
        assert_eq!(c.access(0x107F, true), Access::Hit, "same line, different offset");
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn no_allocate_leaves_line_absent() {
        let mut c = small();
        assert_eq!(c.access(0x2000, false), Access::Miss);
        assert_eq!(c.access(0x2000, true), Access::Miss, "still absent");
        assert_eq!(c.access(0x2000, false), Access::Hit, "now filled");
    }

    #[test]
    fn lru_evicts_least_recently_used_way() {
        let mut c = small();
        // Set 0 lines: line addresses with (addr>>7) % 2 == 0.
        let a = 0u64; // set 0
        let b = 256u64; // set 0
        let d = 512u64; // set 0
        assert_eq!(c.access(a, true), Access::Miss);
        assert_eq!(c.access(b, true), Access::Miss);
        assert_eq!(c.access(a, true), Access::Hit); // a now MRU
        assert_eq!(c.access(d, true), Access::Miss); // evicts b
        assert_eq!(c.access(a, true), Access::Hit, "a survived");
        assert_eq!(c.access(b, true), Access::Miss, "b was evicted");
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c = small();
        assert_eq!(c.access(0, true), Access::Miss); // set 0
        assert_eq!(c.access(128, true), Access::Miss); // set 1
        assert_eq!(c.access(0, true), Access::Hit);
        assert_eq!(c.access(128, true), Access::Hit);
    }

    #[test]
    fn probe_does_not_disturb_lru() {
        let mut c = small();
        c.access(0, true);
        c.access(256, true);
        assert!(c.probe(0));
        // Probing 0 must not refresh it: access order is 0 then 256, so a
        // new line evicts 0 (LRU), not 256.
        c.access(512, true);
        assert!(!c.probe(0));
        assert!(c.probe(256));
    }

    #[test]
    fn working_set_within_capacity_fully_hits_after_warmup() {
        let cfg = CacheConfig { size_bytes: 32 * 1024, line_bytes: 128, assoc: 8, latency: 1 };
        let mut c = Cache::new(&cfg);
        let lines: Vec<u64> = (0..cfg.num_lines() as u64).map(|i| i * 128).collect();
        for &l in &lines {
            c.access(l, true);
        }
        for &l in &lines {
            assert_eq!(c.access(l, true), Access::Hit, "line {l:#x} should be resident");
        }
    }

    #[test]
    fn hit_immediately_after_allocating_access() {
        for case in 0..32u64 {
            let mut s = case;
            let mut c = small();
            for _ in 0..(1 + case as usize * 6 % 200) {
                let a = splitmix64(&mut s);
                c.access(a, true);
                assert!(c.probe(a));
            }
        }
    }

    #[test]
    fn hits_plus_misses_equals_accesses() {
        for case in 0..32u64 {
            let mut s = 0x5EED + case;
            let mut c = small();
            let n = 1 + case * 9 % 300;
            for _ in 0..n {
                c.access(splitmix64(&mut s) % 4096, true);
            }
            let (h, m) = c.stats();
            assert_eq!(h + m, n);
        }
    }
}
