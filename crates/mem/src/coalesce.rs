//! The memory-access coalescer.
//!
//! A warp's global memory instruction issues one request per *distinct cache
//! line* touched by its active lanes — the paper's definition of memory
//! divergence ("uncoalesced memory accesses"): a fully coalesced instruction
//! issues 1 request, a maximally divergent one issues 32.

/// Returns the distinct line-aligned addresses touched by `addrs`, in
/// first-touch order (the order requests are issued).
///
/// # Panics
///
/// Panics if `line_bytes` is not a power of two.
#[must_use]
pub fn coalesce(addrs: &[u64], line_bytes: u64) -> Vec<u64> {
    assert!(line_bytes.is_power_of_two(), "line size must be a power of two");
    let mask = !(line_bytes - 1);
    let mut lines: Vec<u64> = Vec::with_capacity(addrs.len().min(8));
    for &a in addrs {
        let line = a & mask;
        if !lines.contains(&line) {
            lines.push(line);
        }
    }
    lines
}

/// Number of memory requests the instruction generates (1..=lanes).
#[must_use]
pub fn num_requests(addrs: &[u64], line_bytes: u64) -> usize {
    coalesce(addrs, line_bytes).len()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (splitmix64) — the build
    /// environment has no property-testing crate, so the randomized
    /// properties below run over a fixed set of generated cases instead.
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_addrs(seed: u64, len: usize, modulus: Option<u64>) -> Vec<u64> {
        let mut s = seed;
        (0..len)
            .map(|_| {
                let v = splitmix64(&mut s);
                match modulus {
                    Some(m) => v % m,
                    None => v,
                }
            })
            .collect()
    }

    #[test]
    fn adjacent_words_coalesce_to_one_line() {
        let addrs: Vec<u64> = (0..32).map(|i| 0x1000 + i * 4).collect();
        assert_eq!(coalesce(&addrs, 128), vec![0x1000]);
        assert_eq!(num_requests(&addrs, 128), 1);
    }

    #[test]
    fn full_stride_gives_one_request_per_lane() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 128).collect();
        assert_eq!(num_requests(&addrs, 128), 32);
    }

    #[test]
    fn half_line_stride_gives_sixteen_requests() {
        let addrs: Vec<u64> = (0..32).map(|i| i * 64).collect();
        assert_eq!(num_requests(&addrs, 128), 16);
    }

    #[test]
    fn duplicate_addresses_merge() {
        let addrs = vec![0x80, 0x84, 0x80, 0x200, 0x27F];
        let lines = coalesce(&addrs, 128);
        assert_eq!(lines, vec![0x80, 0x200]);
    }

    #[test]
    fn first_touch_order_is_preserved() {
        let addrs = vec![0x300, 0x100, 0x200, 0x101];
        // 0x101 shares the 0x100 line; the rest appear in first-touch order.
        assert_eq!(coalesce(&addrs, 128), vec![0x300, 0x100, 0x200]);
    }

    #[test]
    fn empty_input_gives_no_requests() {
        assert_eq!(num_requests(&[], 128), 0);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two_lines() {
        let _ = coalesce(&[0], 100);
    }

    #[test]
    fn request_count_is_bounded_by_lanes_and_one() {
        for case in 0..64u64 {
            let len = 1 + (case as usize % 31);
            let addrs = random_addrs(case, len, None);
            let n = num_requests(&addrs, 128);
            assert!(n >= 1);
            assert!(n <= addrs.len());
        }
    }

    #[test]
    fn every_address_is_covered_by_a_request() {
        for case in 0..64u64 {
            let len = case as usize % 64;
            let addrs = random_addrs(0x1000 + case, len, Some(1 << 20));
            let lines = coalesce(&addrs, 128);
            for a in &addrs {
                assert!(lines.contains(&(a & !127u64)));
            }
            // And no request is superfluous.
            for l in &lines {
                assert!(addrs.iter().any(|a| a & !127u64 == *l));
            }
        }
    }

    #[test]
    fn requests_are_line_aligned() {
        for case in 0..64u64 {
            let len = case as usize % 64;
            for l in coalesce(&random_addrs(0x2000 + case, len, None), 128) {
                assert_eq!(l % 128, 0);
            }
        }
    }
}
