//! The functional cache-hierarchy simulator.
//!
//! Replays every global memory instruction of a kernel trace against
//! per-core L1 caches and one shared L2, with the access interleaving the
//! paper prescribes: "the cache simulator reads the memory instructions and
//! their addresses from the trace of each warp in a round-robin fashion"
//! and "models a system with the number of warps and cores equal to that of
//! the modeled system without timing information" (Section V-A).
//!
//! Thread blocks are dealt to cores round-robin ([`LaunchConfig`] rule) and
//! occupy them in *waves*: a core holds `blocks_per_core` blocks at a time,
//! and when a wave's memory instructions are exhausted the next wave of
//! blocks becomes resident.
//!
//! Policy choices (shared with the timing oracle, so the two observe the
//! same hit/miss behaviour):
//! * L1 and L2 allocate on load misses (fill at access time),
//! * stores are write-through / no-write-allocate all the way to DRAM —
//!   they never allocate MSHRs and every store request consumes DRAM
//!   bandwidth, which is what makes write-divergent kernels DRAM-queue
//!   bound in the paper (Section VI-B).

use std::convert::Infallible;

use gpumech_isa::SimConfig;
use gpumech_obs::{CancelToken, Interrupt};
use gpumech_trace::{KernelTrace, LaunchConfig, WarpTrace};

use crate::cache::{Access, Cache};
use crate::coalesce::coalesce;
use crate::stats::MemStats;

/// Round-robin passes between [`CancelToken`] polls in the cancellable
/// path (each pass replays at most one memory instruction per core).
const CANCEL_CHECK_MASK: u64 = 0x3F;

/// One resident warp's cursor over its global-memory instructions.
struct Cursor<'t> {
    warp: &'t WarpTrace,
    /// Indices of global memory instructions within the warp trace.
    mem_idxs: Vec<u32>,
    next: usize,
}

impl Cursor<'_> {
    fn exhausted(&self) -> bool {
        self.next >= self.mem_idxs.len()
    }
}

/// Runs the functional hierarchy simulation and returns per-PC statistics.
///
/// # Panics
///
/// Panics if `cfg` fails validation (call [`SimConfig::validate`] to get a
/// proper error) or if the trace's warp ids are inconsistent with its
/// launch geometry.
#[must_use]
pub fn simulate_hierarchy(trace: &KernelTrace, cfg: &SimConfig) -> MemStats {
    match simulate_impl(trace, cfg, &|| Ok::<(), Infallible>(())) {
        Ok(stats) => stats,
        Err(never) => match never {},
    }
}

/// [`simulate_hierarchy`] under a [`CancelToken`]: the round-robin replay
/// polls the token at a fixed access stride, so an expired deadline or
/// explicit cancellation aborts the simulation within a bounded amount
/// of work.
///
/// # Errors
///
/// The [`Interrupt`] once `cancel` fires.
///
/// # Panics
///
/// Same panics as [`simulate_hierarchy`] (invalid `cfg`, inconsistent
/// launch geometry).
pub fn simulate_hierarchy_cancellable(
    trace: &KernelTrace,
    cfg: &SimConfig,
    cancel: &CancelToken,
) -> Result<MemStats, Interrupt> {
    simulate_impl(trace, cfg, &|| cancel.check())
}

fn simulate_impl<E>(
    trace: &KernelTrace,
    cfg: &SimConfig,
    check: &dyn Fn() -> Result<(), E>,
) -> Result<MemStats, E> {
    let _span = gpumech_obs::span!(
        "mem.cachesim.simulate",
        name = trace.name.as_str(),
        warps = trace.warps.len(),
    );
    assert!(cfg.validate().is_ok(), "invalid SimConfig");
    let launch: LaunchConfig = trace.launch;
    let line = cfg.l1.line_bytes as u64;

    let mut l1s: Vec<Cache> = (0..cfg.num_cores).map(|_| Cache::new(&cfg.l1)).collect();
    let mut l2 = Cache::new(&cfg.l2);
    let mut stats = MemStats::new(cfg.l1.latency, cfg.l2_hit_latency(), cfg.l2_miss_latency());

    // Deal blocks to cores: core c executes blocks {c, c+N, c+2N, ...}.
    let mut core_blocks: Vec<Vec<usize>> = vec![Vec::new(); cfg.num_cores];
    for b in 0..launch.num_blocks {
        core_blocks[b % cfg.num_cores].push(b);
    }
    let bpc = launch.blocks_per_core(cfg.max_warps_per_core);
    let max_waves = core_blocks.iter().map(|bs| bs.len().div_ceil(bpc)).max().unwrap_or(0);
    let wpb = launch.warps_per_block();
    let mut passes: u64 = 0;

    for wave in 0..max_waves {
        // Gather the resident warps of this wave, per core.
        let mut resident: Vec<Vec<Cursor<'_>>> = Vec::with_capacity(cfg.num_cores);
        for blocks in &core_blocks {
            let mut cursors = Vec::new();
            for &b in blocks.iter().skip(wave * bpc).take(bpc) {
                for w in 0..wpb {
                    // A validated trace always has `total_warps` entries;
                    // skip (don't panic) if a corrupt one slipped through.
                    let Some(warp) = trace.warps.get(b * wpb + w) else { continue };
                    let mem_idxs: Vec<u32> = warp
                        .insts
                        .iter()
                        .enumerate()
                        .filter(|(_, i)| i.kind.is_global_mem())
                        .map(|(n, _)| n as u32)
                        .collect();
                    cursors.push(Cursor { warp, mem_idxs, next: 0 });
                }
            }
            resident.push(cursors);
        }

        // Round-robin: each pass advances one memory instruction of the
        // next unexhausted warp on every core.
        let mut rr: Vec<usize> = vec![0; cfg.num_cores];
        loop {
            if passes & CANCEL_CHECK_MASK == 0 {
                check()?;
            }
            passes += 1;
            let mut progressed = false;
            for (core, cursors) in resident.iter_mut().enumerate() {
                if cursors.is_empty() {
                    continue;
                }
                let n = cursors.len();
                // Find the next warp with work, starting at the RR pointer.
                let Some(pick) =
                    (0..n).map(|k| (rr[core] + k) % n).find(|&i| !cursors[i].exhausted())
                else {
                    continue;
                };
                rr[core] = (pick + 1) % n;
                progressed = true;

                let cur = &mut cursors[pick];
                let inst = &cur.warp.insts[cur.mem_idxs[cur.next] as usize];
                cur.next += 1;

                let lines = coalesce(&inst.addrs, line);
                let is_store = inst.kind.is_global_store();
                let entry = stats.entry(inst.pc);
                entry.is_store = is_store;
                entry.insts += 1;
                entry.reqs += lines.len() as u64;

                if is_store {
                    // Write-through, no-allocate: every request reaches DRAM.
                    stats.entry(inst.pc).dram_reqs += lines.len() as u64;
                    continue;
                }

                let mut worst_l1_miss = false;
                let mut worst_l2_miss = false;
                let mut mshr_reqs = 0u64;
                let mut dram_reqs = 0u64;
                for &l in &lines {
                    if l1s[core].access(l, true) == Access::Miss {
                        worst_l1_miss = true;
                        mshr_reqs += 1;
                        if l2.access(l, true) == Access::Miss {
                            worst_l2_miss = true;
                            dram_reqs += 1;
                        }
                    }
                }
                let entry = stats.entry(inst.pc);
                entry.mshr_reqs += mshr_reqs;
                entry.dram_reqs += dram_reqs;
                if worst_l2_miss {
                    entry.l2_miss_insts += 1;
                } else if worst_l1_miss {
                    entry.l2_hit_insts += 1;
                } else {
                    entry.l1_hit_insts += 1;
                }
            }
            if !progressed {
                break;
            }
        }
    }
    record_hierarchy_metrics(&stats);
    Ok(stats)
}

/// Emits the per-run `mem.cachesim.*` series from the finished statistics
/// table. A no-op (one branch) when no recorder is installed.
fn record_hierarchy_metrics(stats: &MemStats) {
    if !gpumech_obs::enabled() {
        return;
    }
    let mut l1_hits = 0u64;
    let mut l2_hits = 0u64;
    let mut l2_misses = 0u64;
    let mut mshr_reqs = 0u64;
    let mut dram_reqs = 0u64;
    for pc in stats.load_pcs().chain(stats.store_pcs()) {
        let Some(s) = stats.pc_stats(pc) else { continue };
        l1_hits += s.l1_hit_insts;
        l2_hits += s.l2_hit_insts;
        l2_misses += s.l2_miss_insts;
        mshr_reqs += s.mshr_reqs;
        dram_reqs += s.dram_reqs;
        gpumech_obs::histogram!("mem.cachesim.reqs_per_inst", s.reqs_per_inst());
    }
    gpumech_obs::counter!("mem.cachesim.l1_hits", l1_hits);
    gpumech_obs::counter!("mem.cachesim.l2_hits", l2_hits);
    gpumech_obs::counter!("mem.cachesim.l2_misses", l2_misses);
    gpumech_obs::counter!("mem.cachesim.mshr_reqs", mshr_reqs);
    gpumech_obs::counter!("mem.cachesim.dram_reqs", dram_reqs);
    gpumech_obs::gauge!("mem.cachesim.avg_miss_latency", stats.avg_miss_latency());
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use gpumech_isa::{AddrPattern, KernelBuilder, Operand, SimConfig};
    use gpumech_trace::{trace_kernel, workloads};

    fn small_cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn cold_streaming_loads_all_miss_to_dram() {
        let mut b = KernelBuilder::new("stream");
        let _ = b.load_pattern(AddrPattern::Coalesced { base: 1 << 32, elem_bytes: 4 });
        let k = b.finish(vec![]);
        let t = trace_kernel(&k, LaunchConfig::new(256, 16)).unwrap();
        let stats = simulate_hierarchy(&t, &small_cfg());
        let pc = stats.load_pcs().next().unwrap();
        let d = stats.miss_dist(pc);
        assert!(d.l2_miss > 0.99, "cold streaming should miss L2: {d:?}");
        assert!((stats.load_latency(pc) - 420.0).abs() < 5.0);
    }

    #[test]
    fn broadcast_load_hits_l1_after_first_warp() {
        let mut b = KernelBuilder::new("bcast");
        let _ = b.load_pattern(AddrPattern::Broadcast { addr: 1 << 32 });
        let k = b.finish(vec![]);
        // 64 warps on 16 cores → 4 warps per core → 1 cold miss per core.
        let t = trace_kernel(&k, LaunchConfig::new(32, 64)).unwrap();
        let stats = simulate_hierarchy(&t, &small_cfg());
        let pc = stats.load_pcs().next().unwrap();
        let s = stats.pc_stats(pc).unwrap();
        assert_eq!(s.insts, 64);
        assert_eq!(s.reqs, 64, "one request per warp");
        // 16 cores take one L1 miss each; of those, 15 hit L2 (filled by the
        // first core's miss).
        assert_eq!(s.mshr_reqs, 16);
        assert_eq!(s.dram_reqs, 1);
        let d = stats.miss_dist(pc);
        assert!(d.l1_hit >= 0.7, "most executions hit L1: {d:?}");
    }

    #[test]
    fn stores_bypass_caches_and_reach_dram() {
        let mut b = KernelBuilder::new("st");
        b.store_pattern(AddrPattern::Strided { base: 1 << 32, stride_bytes: 128 }, Operand::Imm(1));
        let k = b.finish(vec![]);
        let t = trace_kernel(&k, LaunchConfig::new(32, 4)).unwrap();
        let stats = simulate_hierarchy(&t, &small_cfg());
        let pc = stats.store_pcs().next().unwrap();
        let s = stats.pc_stats(pc).unwrap();
        assert!(s.is_store);
        assert_eq!(s.insts, 4);
        assert_eq!(s.reqs, 4 * 32, "fully divergent stores");
        assert_eq!(s.dram_reqs, s.reqs, "write-through: all store requests reach DRAM");
        assert_eq!(s.mshr_reqs, 0, "stores never allocate MSHRs");
    }

    #[test]
    fn hot_region_develops_l1_hits() {
        let w = workloads::by_name("kmeans_invert_mapping").unwrap().with_blocks(16);
        let t = w.trace().unwrap();
        let stats = simulate_hierarchy(&t, &small_cfg());
        // The load in the loop reads a 12 KiB region: it must show a high
        // L1 hit fraction once warm.
        let best_l1 = stats.load_pcs().map(|pc| stats.miss_dist(pc).l1_hit).fold(0.0, f64::max);
        assert!(best_l1 > 0.6, "expected L1-hot loads, best fraction {best_l1}");
    }

    #[test]
    fn divergence_is_visible_in_request_rates() {
        let w = workloads::by_name("sdk_transpose").unwrap().with_blocks(8);
        let t = w.trace().unwrap();
        let stats = simulate_hierarchy(&t, &small_cfg());
        let max_store_div = stats
            .store_pcs()
            .map(|pc| stats.pc_stats(pc).unwrap().reqs_per_inst())
            .fold(0.0, f64::max);
        assert!(max_store_div > 30.0, "transpose stores should be ~32-way: {max_store_div}");
    }

    #[test]
    fn cancellable_path_matches_and_honors_the_token() {
        let w = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(8);
        let t = w.trace().unwrap();
        let plain = simulate_hierarchy(&t, &small_cfg());
        let live = simulate_hierarchy_cancellable(&t, &small_cfg(), &CancelToken::never()).unwrap();
        assert_eq!(plain, live);

        let cancelled = CancelToken::never();
        cancelled.cancel();
        assert_eq!(
            simulate_hierarchy_cancellable(&t, &small_cfg(), &cancelled),
            Err(Interrupt::Cancelled)
        );
    }

    #[test]
    fn hierarchy_is_deterministic() {
        let w = workloads::by_name("cfd_compute_flux").unwrap().with_blocks(8);
        let t = w.trace().unwrap();
        let a = simulate_hierarchy(&t, &small_cfg());
        let b = simulate_hierarchy(&t, &small_cfg());
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_resident_warps_changes_wave_structure_not_totals() {
        let w = workloads::by_name("sdk_vectoradd").unwrap().with_blocks(32);
        let t = w.trace().unwrap();
        let full = simulate_hierarchy(&t, &small_cfg());
        let tight = simulate_hierarchy(&t, &small_cfg().with_warps_per_core(8));
        // Total instruction and request counts are trace properties and
        // must not depend on residency.
        for pc in full.load_pcs() {
            let a = full.pc_stats(pc).unwrap();
            let b = tight.pc_stats(pc).unwrap();
            assert_eq!(a.insts, b.insts);
            assert_eq!(a.reqs, b.reqs);
        }
    }
}
