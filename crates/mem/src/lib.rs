//! Functional memory-hierarchy simulation for GPUMech.
//!
//! This crate is the "cache simulator" half of the paper's input collector
//! (Section V): it replays the per-warp memory instructions of a
//! [`gpumech_trace::KernelTrace`] against per-core L1 caches and a shared
//! L2 — round-robin across the resident warps of the modeled machine,
//! with no timing — and collects, for every memory PC:
//!
//! * the **distribution of miss events** at the instruction level (an
//!   instruction's event is its longest-latency request, Section V-B),
//! * request-level counts: total requests (divergence degree), L1-missing
//!   requests (the ones that allocate MSHRs), and DRAM-reaching requests
//!   (load L2 misses plus all store traffic),
//! * from which the per-PC **AMAT** latency used by the interval algorithm
//!   is derived.
//!
//! # Example
//!
//! ```
//! use gpumech_isa::SimConfig;
//! use gpumech_mem::simulate_hierarchy;
//! use gpumech_trace::workloads;
//!
//! let w = workloads::by_name("sdk_vectoradd").ok_or("missing workload")?.with_blocks(4);
//! let trace = w.trace()?;
//! let stats = simulate_hierarchy(&trace, &SimConfig::default());
//! // Streaming kernels never hit: every load PC resolves near 420 cycles.
//! let pc = stats.load_pcs().next().ok_or("no loads")?;
//! assert!(stats.load_latency(pc) > 300.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cache;
pub mod coalesce;
pub mod hierarchy;
pub mod stats;

pub use cache::{Access, Cache};
pub use coalesce::{coalesce, num_requests};
pub use hierarchy::{simulate_hierarchy, simulate_hierarchy_cancellable};
pub use stats::{MemStats, MissDistribution, MissEvent, PcStats};
