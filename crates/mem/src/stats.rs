//! Per-PC memory statistics and AMAT derivation (Section V-B of the paper).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// The miss event of one memory *instruction* — its longest-latency request
/// (Section V-B: "the miss event of the memory instruction is determined by
/// the memory request with the longest latency").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum MissEvent {
    /// All requests hit the L1.
    L1Hit,
    /// At least one request reached the L2 and all such requests hit.
    L2Hit,
    /// At least one request missed the L2 (DRAM access).
    L2Miss,
}

/// Instruction-level miss-event distribution of a load PC; fractions sum
/// to 1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MissDistribution {
    /// Fraction of executions resolving in the L1.
    pub l1_hit: f64,
    /// Fraction resolving in the L2.
    pub l2_hit: f64,
    /// Fraction reaching DRAM.
    pub l2_miss: f64,
}

impl MissDistribution {
    /// A distribution that always hits L1 (used for PCs with no recorded
    /// executions).
    #[must_use]
    pub fn all_l1() -> Self {
        Self { l1_hit: 1.0, l2_hit: 0.0, l2_miss: 0.0 }
    }
}

/// Statistics accumulated for one static memory instruction (PC).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PcStats {
    /// `true` for store PCs (write-through traffic, no miss events).
    pub is_store: bool,
    /// Dynamic executions across all warps.
    pub insts: u64,
    /// Executions whose event was [`MissEvent::L1Hit`] (loads only).
    pub l1_hit_insts: u64,
    /// Executions whose event was [`MissEvent::L2Hit`].
    pub l2_hit_insts: u64,
    /// Executions whose event was [`MissEvent::L2Miss`].
    pub l2_miss_insts: u64,
    /// Total coalesced requests issued (divergence degree x executions).
    pub reqs: u64,
    /// Requests that missed the L1 — the ones that allocate MSHR entries.
    /// Always zero for stores (no-write-allocate, Section VI-B).
    pub mshr_reqs: u64,
    /// Requests that reach DRAM: load L2 misses, or *every* store request
    /// (write-through).
    pub dram_reqs: u64,
}

impl PcStats {
    /// Average requests per execution (the divergence degree).
    #[must_use]
    pub fn reqs_per_inst(&self) -> f64 {
        if self.insts == 0 { 0.0 } else { self.reqs as f64 / self.insts as f64 }
    }

    /// Average MSHR-allocating requests per execution.
    #[must_use]
    pub fn mshr_reqs_per_inst(&self) -> f64 {
        if self.insts == 0 { 0.0 } else { self.mshr_reqs as f64 / self.insts as f64 }
    }

    /// Average DRAM-reaching requests per execution.
    #[must_use]
    pub fn dram_reqs_per_inst(&self) -> f64 {
        if self.insts == 0 { 0.0 } else { self.dram_reqs as f64 / self.insts as f64 }
    }
}

/// All per-PC statistics of one kernel under one machine configuration,
/// plus the latency constants needed to turn distributions into AMATs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemStats {
    /// L1 hit latency (Table I: 25).
    pub l1_latency: u64,
    /// L2 hit latency (Table I: 120).
    pub l2_hit_latency: u64,
    /// L2 miss latency: L2 + DRAM access (Table I: 420).
    pub l2_miss_latency: u64,
    per_pc: BTreeMap<u32, PcStats>,
}

impl MemStats {
    /// Creates an empty statistics table with the given latency constants.
    #[must_use]
    pub fn new(l1_latency: u64, l2_hit_latency: u64, l2_miss_latency: u64) -> Self {
        Self { l1_latency, l2_hit_latency, l2_miss_latency, per_pc: BTreeMap::new() }
    }

    /// Mutable accessor used by the hierarchy simulator.
    pub fn entry(&mut self, pc: u32) -> &mut PcStats {
        self.per_pc.entry(pc).or_default()
    }

    /// Statistics of one PC, if it executed.
    #[must_use]
    pub fn pc_stats(&self, pc: u32) -> Option<&PcStats> {
        self.per_pc.get(&pc)
    }

    /// Instruction-level miss-event distribution of a load PC. PCs that
    /// never executed report all-L1 (zero extra latency).
    #[must_use]
    pub fn miss_dist(&self, pc: u32) -> MissDistribution {
        match self.per_pc.get(&pc) {
            Some(s) if !s.is_store && s.insts > 0 => {
                let n = s.insts as f64;
                MissDistribution {
                    l1_hit: s.l1_hit_insts as f64 / n,
                    l2_hit: s.l2_hit_insts as f64 / n,
                    l2_miss: s.l2_miss_insts as f64 / n,
                }
            }
            _ => MissDistribution::all_l1(),
        }
    }

    /// AMAT of a load PC — the latency the interval algorithm assigns to it
    /// (Section V-B worked example: 90% L2 hit + 10% L2 miss at 120/420
    /// cycles → 150 cycles).
    #[must_use]
    pub fn load_latency(&self, pc: u32) -> f64 {
        let d = self.miss_dist(pc);
        d.l1_hit * self.l1_latency as f64
            + d.l2_hit * self.l2_hit_latency as f64
            + d.l2_miss * self.l2_miss_latency as f64
    }

    /// Average L2/DRAM latency of the requests that allocate MSHRs, without
    /// any queueing — the `avg_miss_latency` of Equation 19. Falls back to
    /// the L2 miss latency when no load ever missed the L1.
    #[must_use]
    pub fn avg_miss_latency(&self) -> f64 {
        let (mut miss_reqs, mut dram_reqs) = (0u64, 0u64);
        for s in self.per_pc.values().filter(|s| !s.is_store) {
            miss_reqs += s.mshr_reqs;
            dram_reqs += s.dram_reqs;
        }
        if miss_reqs == 0 {
            return self.l2_miss_latency as f64;
        }
        let l2_hit_reqs = miss_reqs - dram_reqs;
        (l2_hit_reqs as f64 * self.l2_hit_latency as f64
            + dram_reqs as f64 * self.l2_miss_latency as f64)
            / miss_reqs as f64
    }

    /// Iterator over the load PCs that executed.
    pub fn load_pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.per_pc.iter().filter(|(_, s)| !s.is_store).map(|(&pc, _)| pc)
    }

    /// Iterator over the store PCs that executed.
    pub fn store_pcs(&self) -> impl Iterator<Item = u32> + '_ {
        self.per_pc.iter().filter(|(_, s)| s.is_store).map(|(&pc, _)| pc)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn stats_with(pc: u32, s: PcStats) -> MemStats {
        let mut m = MemStats::new(25, 120, 420);
        *m.entry(pc) = s;
        m
    }

    #[test]
    fn amat_matches_the_papers_worked_example() {
        // Section V-B: 90% L2 hit (120) + 10% L2 miss (420) → 150 cycles.
        let m = stats_with(
            7,
            PcStats {
                is_store: false,
                insts: 100,
                l1_hit_insts: 0,
                l2_hit_insts: 90,
                l2_miss_insts: 10,
                reqs: 100,
                mshr_reqs: 100,
                dram_reqs: 10,
            },
        );
        assert!((m.load_latency(7) - 150.0).abs() < 1e-9);
    }

    #[test]
    fn unknown_pc_defaults_to_l1_latency() {
        let m = MemStats::new(25, 120, 420);
        assert!((m.load_latency(99) - 25.0).abs() < 1e-9);
        assert_eq!(m.miss_dist(99), MissDistribution::all_l1());
    }

    #[test]
    fn miss_dist_fractions_sum_to_one() {
        let m = stats_with(
            1,
            PcStats {
                insts: 4,
                l1_hit_insts: 1,
                l2_hit_insts: 2,
                l2_miss_insts: 1,
                reqs: 4,
                mshr_reqs: 3,
                dram_reqs: 1,
                is_store: false,
            },
        );
        let d = m.miss_dist(1);
        assert!((d.l1_hit + d.l2_hit + d.l2_miss - 1.0).abs() < 1e-12);
    }

    #[test]
    fn avg_miss_latency_weights_l2_hits_and_misses() {
        // 3 L1-missing requests: 2 hit L2 (120), 1 misses (420) → 220.
        let m = stats_with(
            1,
            PcStats {
                insts: 1,
                l1_hit_insts: 0,
                l2_hit_insts: 0,
                l2_miss_insts: 1,
                reqs: 3,
                mshr_reqs: 3,
                dram_reqs: 1,
                is_store: false,
            },
        );
        assert!((m.avg_miss_latency() - 220.0).abs() < 1e-9);
    }

    #[test]
    fn avg_miss_latency_without_misses_falls_back_to_dram() {
        let m = MemStats::new(25, 120, 420);
        assert!((m.avg_miss_latency() - 420.0).abs() < 1e-9);
    }

    #[test]
    fn per_inst_rates() {
        let s = PcStats { insts: 4, reqs: 64, mshr_reqs: 32, dram_reqs: 16, ..Default::default() };
        assert!((s.reqs_per_inst() - 16.0).abs() < 1e-12);
        assert!((s.mshr_reqs_per_inst() - 8.0).abs() < 1e-12);
        assert!((s.dram_reqs_per_inst() - 4.0).abs() < 1e-12);
        assert_eq!(PcStats::default().reqs_per_inst(), 0.0);
    }

    #[test]
    fn load_and_store_pc_iterators_partition() {
        let mut m = MemStats::new(25, 120, 420);
        m.entry(1).is_store = false;
        m.entry(2).is_store = true;
        m.entry(3).is_store = false;
        assert_eq!(m.load_pcs().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(m.store_pcs().collect::<Vec<_>>(), vec![2]);
    }

    #[test]
    fn store_pcs_have_no_miss_distribution() {
        let mut m = MemStats::new(25, 120, 420);
        let e = m.entry(5);
        e.is_store = true;
        e.insts = 10;
        e.reqs = 320;
        e.dram_reqs = 320;
        assert_eq!(m.miss_dist(5), MissDistribution::all_l1());
    }
}
