//! Cooperative cancellation and deadlines for long-running pipeline work.
//!
//! The pipeline has no preemption: a trace replay, cache simulation, or
//! k-means refinement runs until it finishes. [`CancelToken`] is the
//! cooperative alternative — hot loops call [`CancelToken::check`] at
//! bounded intervals and bail out with a typed [`Interrupt`] when the
//! token was cancelled or its deadline passed. Tokens nest: a per-job
//! timeout token created with [`CancelToken::child_with_timeout_ms`]
//! observes its parent's cancellation and whole-run deadline as well as
//! its own budget.
//!
//! Deadlines are evaluated against the crate's [`Clock`] abstraction, so
//! tests drive them deterministically with a [`FakeClock`] instead of
//! sleeping.
//!
//! [`FakeClock`]: crate::FakeClock

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::clock::{Clock, RealClock};

/// Sentinel for "no deadline".
const NO_DEADLINE: u64 = u64::MAX;

/// Why a cooperative [`CancelToken::check`] refused to continue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interrupt {
    /// The token (or an ancestor) was explicitly cancelled.
    Cancelled,
    /// The token's (or an ancestor's) deadline passed.
    DeadlineExceeded,
}

impl fmt::Display for Interrupt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interrupt::Cancelled => write!(f, "cancelled"),
            Interrupt::DeadlineExceeded => write!(f, "deadline exceeded"),
        }
    }
}

struct Inner {
    cancelled: AtomicBool,
    /// Absolute deadline on `clock`'s timeline; [`NO_DEADLINE`] = none.
    deadline_ns: u64,
    clock: Arc<dyn Clock>,
    /// Parent token; checked before this token's own deadline so nested
    /// budgets observe ancestor cancellation.
    parent: Option<CancelToken>,
}

/// A cheaply clonable cancellation handle shared between the code that
/// requests an abort (or sets a deadline) and the loops that honor it.
///
/// Clones observe the same state: cancelling any clone cancels them all.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .field("deadline_ns", &self.deadline_ns())
            .field("has_parent", &self.inner.parent.is_some())
            .finish()
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::never()
    }
}

impl CancelToken {
    fn from_parts(deadline_ns: u64, clock: Arc<dyn Clock>, parent: Option<CancelToken>) -> Self {
        CancelToken {
            inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline_ns, clock, parent }),
        }
    }

    /// A token with no deadline that only fires if [`cancel`]led.
    ///
    /// [`cancel`]: CancelToken::cancel
    #[must_use]
    pub fn never() -> Self {
        CancelToken::from_parts(NO_DEADLINE, Arc::new(RealClock), None)
    }

    /// A token whose deadline is `ms` milliseconds from now on the real
    /// monotonic clock.
    #[must_use]
    pub fn with_deadline_ms(ms: u64) -> Self {
        let clock: Arc<dyn Clock> = Arc::new(RealClock);
        let deadline = clock.now_ns().saturating_add(ms.saturating_mul(1_000_000));
        CancelToken::from_parts(deadline, clock, None)
    }

    /// A token with an absolute deadline on an injected clock — the
    /// deterministic test path (pass a [`FakeClock`](crate::FakeClock)).
    /// `deadline_ns` of `u64::MAX` means no deadline.
    #[must_use]
    pub fn with_clock(clock: Arc<dyn Clock>, deadline_ns: u64) -> Self {
        CancelToken::from_parts(deadline_ns, clock, None)
    }

    /// A child token whose budget is `ms` milliseconds from now, clamped
    /// to never outlive `self`: the child also reports [`Interrupt`]s for
    /// the parent's cancellation or deadline.
    #[must_use]
    pub fn child_with_timeout_ms(&self, ms: u64) -> Self {
        let deadline = self.inner.clock.now_ns().saturating_add(ms.saturating_mul(1_000_000));
        CancelToken::from_parts(deadline, Arc::clone(&self.inner.clock), Some(self.clone()))
    }

    /// Flags the token (and all clones) as cancelled. Idempotent.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// `true` once [`cancel`](CancelToken::cancel) has been called on this
    /// token, any clone, or any ancestor.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
            || self.inner.parent.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// This token's own absolute deadline in clock nanoseconds, if any
    /// (ancestors' deadlines are not folded in).
    #[must_use]
    pub fn deadline_ns(&self) -> Option<u64> {
        (self.inner.deadline_ns != NO_DEADLINE).then_some(self.inner.deadline_ns)
    }

    /// The cooperative check hot loops call: `Ok(())` to continue, or the
    /// [`Interrupt`] explaining why to stop. Explicit cancellation wins
    /// over deadlines; ancestors are consulted before this token's own
    /// deadline so a whole-run interrupt is reported as such even when a
    /// per-job budget also expired.
    ///
    /// # Errors
    ///
    /// [`Interrupt::Cancelled`] once any clone or ancestor was cancelled;
    /// [`Interrupt::DeadlineExceeded`] once a deadline passed.
    pub fn check(&self) -> Result<(), Interrupt> {
        if self.inner.cancelled.load(Ordering::Relaxed) {
            return Err(Interrupt::Cancelled);
        }
        if let Some(parent) = &self.inner.parent {
            parent.check()?;
        }
        if self.inner.deadline_ns != NO_DEADLINE && self.inner.clock.now_ns() >= self.inner.deadline_ns
        {
            return Err(Interrupt::DeadlineExceeded);
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    #[test]
    fn never_token_only_fires_on_cancel() {
        let t = CancelToken::never();
        assert!(t.check().is_ok());
        assert!(!t.is_cancelled());
        assert!(t.deadline_ns().is_none());
        t.cancel();
        assert!(t.is_cancelled());
        assert_eq!(t.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn clones_share_cancellation() {
        let t = CancelToken::never();
        let c = t.clone();
        c.cancel();
        assert_eq!(t.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn deadline_fires_exactly_when_the_fake_clock_reaches_it() {
        // FakeClock ticks step_ns per now_ns() call, starting at 0.
        let clock = Arc::new(FakeClock::new(100));
        let t = CancelToken::with_clock(clock, 250);
        assert!(t.check().is_ok()); // now = 0
        assert!(t.check().is_ok()); // now = 100
        assert!(t.check().is_ok()); // now = 200
        assert_eq!(t.check(), Err(Interrupt::DeadlineExceeded)); // now = 300
    }

    #[test]
    fn cancellation_wins_over_an_expired_deadline() {
        let clock = Arc::new(FakeClock::new(1_000));
        let t = CancelToken::with_clock(clock, 1);
        t.cancel();
        assert_eq!(t.check(), Err(Interrupt::Cancelled));
    }

    #[test]
    fn child_observes_parent_cancellation_and_deadline() {
        let clock: Arc<dyn Clock> = Arc::new(FakeClock::new(0));
        let parent = CancelToken::with_clock(Arc::clone(&clock), NO_DEADLINE);
        let child = parent.child_with_timeout_ms(5);
        assert!(child.check().is_ok());
        parent.cancel();
        assert!(child.is_cancelled());
        assert_eq!(child.check(), Err(Interrupt::Cancelled));

        // Parent deadline is reported before the child's own budget.
        let clock: Arc<dyn Clock> = Arc::new(FakeClock::new(10));
        let parent = CancelToken::with_clock(Arc::clone(&clock), 5);
        let child = parent.child_with_timeout_ms(1_000);
        while child.check().is_ok() {}
        assert_eq!(child.check(), Err(Interrupt::DeadlineExceeded));
    }

    #[test]
    fn child_budget_fires_independently_of_an_unbounded_parent() {
        let clock: Arc<dyn Clock> = Arc::new(FakeClock::new(400_000));
        let parent = CancelToken::with_clock(clock, NO_DEADLINE);
        // Child budget: 1 ms = 1_000_000 ns from "now" (first tick).
        let child = parent.child_with_timeout_ms(1);
        let mut checks = 0usize;
        while child.check().is_ok() {
            checks += 1;
            assert!(checks < 100, "child deadline never fired");
        }
        assert_eq!(child.check(), Err(Interrupt::DeadlineExceeded));
        assert!(parent.check().is_ok() || parent.check().is_ok());
    }

    #[test]
    fn display_and_debug_are_stable() {
        assert_eq!(Interrupt::Cancelled.to_string(), "cancelled");
        assert_eq!(Interrupt::DeadlineExceeded.to_string(), "deadline exceeded");
        let t = CancelToken::never();
        let dbg = format!("{t:?}");
        assert!(dbg.contains("CancelToken"));
    }
}
