//! Monotonic time sources for the recorder.
//!
//! Timestamps are nanoseconds since an arbitrary per-source epoch (the
//! process start for [`RealClock`], zero for [`FakeClock`]). Exporters
//! only ever use differences and orderings, so the epoch never leaks into
//! output — which is what makes the fake clock's output byte-stable for
//! golden tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic nanosecond clock.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's epoch. Must be monotonic
    /// non-decreasing across calls from any thread.
    fn now_ns(&self) -> u64;
}

/// Wall-clock time relative to the first observation in the process.
#[derive(Debug, Default)]
pub struct RealClock;

/// Shared epoch so timestamps from independently created recorders are
/// mutually comparable within one process.
static EPOCH: OnceLock<Instant> = OnceLock::new();

impl Clock for RealClock {
    fn now_ns(&self) -> u64 {
        let epoch = *EPOCH.get_or_init(Instant::now);
        u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// Deterministic clock for golden tests: every call returns the previous
/// value plus a fixed step, starting at zero.
#[derive(Debug)]
pub struct FakeClock {
    step_ns: u64,
    next: AtomicU64,
}

impl FakeClock {
    /// A fake clock advancing `step_ns` nanoseconds per observation.
    #[must_use]
    pub fn new(step_ns: u64) -> Self {
        Self { step_ns, next: AtomicU64::new(0) }
    }
}

impl Clock for FakeClock {
    fn now_ns(&self) -> u64 {
        self.next.fetch_add(self.step_ns, Ordering::Relaxed)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = RealClock;
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_steps_deterministically() {
        let c = FakeClock::new(1_000);
        assert_eq!(c.now_ns(), 0);
        assert_eq!(c.now_ns(), 1_000);
        assert_eq!(c.now_ns(), 2_000);
    }
}
