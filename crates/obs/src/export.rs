//! Exporters over a recorder [`Snapshot`]: human-readable tree summary,
//! JSON lines, and Chrome `trace_event` JSON.
//!
//! All JSON is written by hand (the crate has no JSON dependency); the
//! only subtleties are string escaping and non-finite floats, which JSON
//! cannot represent and which are emitted as `null`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::recorder::{histogram_bucket_bound, Snapshot, SpanRecord};
use crate::AttrValue;

/// Escapes `s` as the body of a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (`null` for non-finite values).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Formats an optional integer as a JSON number or `null`.
fn json_opt(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |x| x.to_string())
}

fn json_attr(v: &AttrValue) -> String {
    match v {
        AttrValue::U64(x) => x.to_string(),
        AttrValue::I64(x) => x.to_string(),
        AttrValue::F64(x) => json_num(*x),
        AttrValue::Bool(x) => x.to_string(),
        AttrValue::Str(x) => format!("\"{}\"", esc(x)),
    }
}

fn json_attrs(attrs: &[(&'static str, AttrValue)]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in attrs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", esc(k), json_attr(v));
    }
    out.push('}');
    out
}

/// Renders the snapshot as JSON lines — the format `--obs-out` writes and
/// `gpumech obs-validate` checks.
///
/// Line types (one JSON object per line, stable order):
/// 1. one `meta` header (`version`, `dropped_samples`, `invalid_names`),
/// 2. `span` lines in id order (`dur_ns` is `null` for open spans),
/// 3. `metric` lines in emission order (the timestamped series),
/// 4. `aggregate` lines sorted by name (counter totals, gauge min/max/
///    last, histogram buckets as `[upper_bound, count]` pairs).
#[must_use]
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    let invalid: Vec<String> =
        snap.invalid_names.iter().map(|n| format!("\"{}\"", esc(n))).collect();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"version\":1,\"dropped_samples\":{},\"invalid_names\":[{}]}}",
        snap.dropped_samples,
        invalid.join(",")
    );
    for s in &snap.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"id\":{},\"parent\":{},\"name\":\"{}\",\"thread\":{},\
             \"start_ns\":{},\"dur_ns\":{},\"attrs\":{}}}",
            s.id,
            json_opt(s.parent),
            esc(s.name),
            s.thread,
            s.start_ns,
            json_opt(s.dur_ns()),
            json_attrs(&s.attrs),
        );
    }
    for m in &snap.samples {
        let _ = writeln!(
            out,
            "{{\"type\":\"metric\",\"kind\":\"{}\",\"name\":\"{}\",\"value\":{},\
             \"ts_ns\":{},\"span\":{}}}",
            m.kind.as_str(),
            esc(m.name),
            json_num(m.value),
            m.ts_ns,
            json_opt(m.span),
        );
    }
    for (name, c) in &snap.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"aggregate\",\"kind\":\"counter\",\"name\":\"{}\",\"total\":{},\
             \"count\":{}}}",
            esc(name),
            c.total,
            c.count,
        );
    }
    for (name, g) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"aggregate\",\"kind\":\"gauge\",\"name\":\"{}\",\"last\":{},\
             \"min\":{},\"max\":{},\"count\":{}}}",
            esc(name),
            json_num(g.last),
            json_num(g.min),
            json_num(g.max),
            g.count,
        );
    }
    for (name, h) in &snap.hists {
        // Only populated buckets are exported: the log-bucket array is
        // wide (HISTOGRAM_NUM_BUCKETS entries) and almost entirely zero.
        let buckets: Vec<String> = h
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| format!("[{},{n}]", json_num(histogram_bucket_bound(i))))
            .collect();
        let q = |p: f64| json_num(h.quantile(p).unwrap_or(f64::NAN));
        let _ = writeln!(
            out,
            "{{\"type\":\"aggregate\",\"kind\":\"histogram\",\"name\":\"{}\",\"count\":{},\
             \"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\
             \"buckets\":[{}]}}",
            esc(name),
            h.count,
            json_num(h.sum),
            json_num(h.min),
            json_num(h.max),
            q(0.50),
            q(0.90),
            q(0.99),
            buckets.join(","),
        );
    }
    out
}

/// Renders the snapshot as Chrome `trace_event` JSON, loadable in
/// `chrome://tracing` or Perfetto. Spans become complete (`"ph":"X"`)
/// events with microsecond timestamps; counter samples become counter
/// (`"ph":"C"`) events. Open spans are extended to the latest timestamp
/// in the snapshot so they remain visible.
#[must_use]
pub fn to_chrome_trace(snap: &Snapshot) -> String {
    let last_ts = snap
        .spans
        .iter()
        .filter_map(SpanRecord::dur_ns)
        .zip(snap.spans.iter().map(|s| s.start_ns))
        .map(|(d, s)| s + d)
        .chain(snap.samples.iter().map(|m| m.ts_ns))
        .chain(snap.spans.iter().map(|s| s.start_ns))
        .max()
        .unwrap_or(0);
    let us = |ns: u64| json_num(ns as f64 / 1000.0);

    let mut events: Vec<String> = Vec::new();
    for s in &snap.spans {
        let dur = s.dur_ns().unwrap_or_else(|| last_ts.saturating_sub(s.start_ns));
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"gpumech\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{},\"args\":{}}}",
            esc(s.name),
            us(s.start_ns),
            us(dur),
            s.thread,
            json_attrs(&s.attrs),
        ));
    }
    for m in &snap.samples {
        if m.kind == crate::MetricKind::Counter {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"gpumech\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\
                 \"args\":{{\"value\":{}}}}}",
                esc(m.name),
                us(m.ts_ns),
                json_num(m.value),
            ));
        }
    }
    format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n", events.join(",\n"))
}

/// Formats nanoseconds for humans.
fn fmt_dur(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn render_span_line(out: &mut String, s: &SpanRecord, depth: usize, width: usize) {
    let indent = "  ".repeat(depth);
    let dur = s.dur_ns().map_or_else(|| "(open)".to_string(), fmt_dur);
    let mut label = format!("{indent}{}", s.name);
    if !s.attrs.is_empty() {
        let attrs: Vec<String> =
            s.attrs.iter().map(|(k, v)| format!("{k}={}", json_attr(v))).collect();
        let _ = write!(label, " [{}]", attrs.join(" "));
    }
    let _ = writeln!(out, "{label:<width$} {dur:>12}");
}

/// Renders the span tree and metric tables as human-readable text — what
/// `gpumech profile` prints.
#[must_use]
pub fn render_tree(snap: &Snapshot) -> String {
    let mut out = String::new();

    // Span tree: children grouped under parents, both in id (start) order.
    let mut children: BTreeMap<u64, Vec<&SpanRecord>> = BTreeMap::new();
    let ids: Vec<u64> = snap.spans.iter().map(|s| s.id).collect();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in &snap.spans {
        match s.parent {
            Some(p) if ids.contains(&p) => children.entry(p).or_default().push(s),
            _ => roots.push(s),
        }
    }
    let width = 56;
    if !roots.is_empty() {
        out.push_str("spans (wall clock):\n");
        // Depth-first, preserving start order within each level.
        let mut stack: Vec<(&SpanRecord, usize)> =
            roots.iter().rev().map(|s| (*s, 0)).collect();
        while let Some((s, depth)) = stack.pop() {
            render_span_line(&mut out, s, depth, width);
            if let Some(kids) = children.get(&s.id) {
                for k in kids.iter().rev() {
                    stack.push((k, depth + 1));
                }
            }
        }
    }

    if !snap.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, c) in &snap.counters {
            let _ = writeln!(out, "  {name:<44} {:>14} ({} samples)", c.total, c.count);
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("\ngauges (last / min / max):\n");
        for (name, g) in &snap.gauges {
            let _ = writeln!(
                out,
                "  {name:<44} {:>12} / {} / {}",
                json_num(g.last),
                json_num(g.min),
                json_num(g.max),
            );
        }
    }
    if !snap.hists.is_empty() {
        out.push_str("\nhistograms (count, mean, quantiles from log buckets):\n");
        for (name, h) in &snap.hists {
            let fmt_q = |v: Option<f64>| v.map_or_else(|| "-".to_string(), json_num);
            let _ = writeln!(
                out,
                "  {name:<44} n={} mean={} p50={} p90={} p99={} max={}",
                h.count,
                fmt_q(h.mean()),
                fmt_q(h.quantile(0.50)),
                fmt_q(h.quantile(0.90)),
                fmt_q(h.quantile(0.99)),
                fmt_q(h.max.is_finite().then_some(h.max)),
            );
        }
    }
    if snap.dropped_samples > 0 {
        let _ = writeln!(out, "\n({} samples dropped past the cap)", snap.dropped_samples);
    }
    if !snap.invalid_names.is_empty() {
        let _ = writeln!(
            out,
            "\nWARNING: names outside the stage.subsystem.name scheme: {}",
            snap.invalid_names.join(", ")
        );
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use crate::Recorder;

    fn mini_snapshot() -> Snapshot {
        let r = Recorder::fake(1_000);
        let id = r.start_span("core.pipeline.analyze", vec![("warps", 8usize.into())], None, 0);
        let inner = r.start_span("mem.cachesim.simulate", Vec::new(), Some(id), 0);
        r.counter("mem.cachesim.l1_hits", 42);
        r.end_span(inner);
        r.gauge("core.kmeans.inertia", 1.5);
        r.histogram("mem.cachesim.reqs_per_inst", 3.0);
        r.end_span(id);
        r.snapshot()
    }

    #[test]
    fn jsonl_has_meta_spans_metrics_aggregates() {
        let text = to_jsonl(&mini_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"type\":\"meta\""));
        assert_eq!(lines.iter().filter(|l| l.contains("\"type\":\"span\"")).count(), 2);
        assert_eq!(lines.iter().filter(|l| l.contains("\"type\":\"metric\"")).count(), 3);
        assert_eq!(lines.iter().filter(|l| l.contains("\"type\":\"aggregate\"")).count(), 3);
        assert!(text.contains("\"attrs\":{\"warps\":8}"));
        // Driving the recorder directly bypasses the thread-local span
        // stack, so the sample is untagged; span tagging via guards is
        // covered by the crate-root tests.
        assert!(text.contains("\"name\":\"mem.cachesim.l1_hits\",\"value\":42,\"ts_ns\":2000,\"span\":null"));
    }

    #[test]
    fn chrome_trace_is_loadable_shape() {
        let text = to_chrome_trace(&mini_snapshot());
        assert!(text.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(text.trim_end().ends_with("]}"));
        assert!(text.contains("\"ph\":\"X\""));
        assert!(text.contains("\"ph\":\"C\""));
        assert!(text.contains("\"name\":\"core.pipeline.analyze\""));
    }

    #[test]
    fn tree_renders_hierarchy_and_tables() {
        let text = render_tree(&mini_snapshot());
        assert!(text.contains("spans (wall clock):"));
        assert!(text.contains("core.pipeline.analyze"));
        assert!(text.contains("  mem.cachesim.simulate"), "child must be indented: {text}");
        assert!(text.contains("counters:"));
        assert!(text.contains("mem.cachesim.l1_hits"));
        assert!(text.contains("gauges"));
        assert!(text.contains("histograms"));
    }

    #[test]
    fn json_escaping_and_nonfinite_numbers() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(1.0), "1");
        assert_eq!(json_num(1.5), "1.5");
    }

    #[test]
    fn open_spans_render_and_export_without_end() {
        let r = Recorder::fake(100);
        let _id = r.start_span("cli.command.run", Vec::new(), None, 0);
        let snap = r.snapshot();
        assert!(to_jsonl(&snap).contains("\"dur_ns\":null"));
        assert!(render_tree(&snap).contains("(open)"));
        let chrome = to_chrome_trace(&snap);
        assert!(chrome.contains("\"ph\":\"X\""));
    }
}
