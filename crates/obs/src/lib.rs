//! Observability for the GPUMech pipeline: span-based hierarchical
//! tracing, typed metrics, and pipeline profiling — hand-rolled, with no
//! dependency outside this workspace (the build environment has no
//! crates.io access).
//!
//! # Architecture
//!
//! A process-wide [`Recorder`] can be installed with [`install`]; whether
//! one is active is a single `AtomicBool` ([`enabled`]), so every
//! instrumentation site in the pipeline compiles down to a relaxed load
//! and a predictable branch when observability is off. The recorder
//! aggregates three kinds of data:
//!
//! * **Spans** — hierarchical wall-clock regions opened by [`span!`]
//!   (RAII: the span closes when the guard drops, including on unwind).
//!   Parentage is tracked per thread, timestamps come from a monotonic
//!   [`Clock`] that tests can replace with a deterministic fake.
//! * **Metrics** — [`counter!`], [`gauge!`], and [`histogram!`] samples,
//!   recorded both as a timestamped series and as running aggregates
//!   (totals, min/max/last, log-bucketed quantile histograms with
//!   p50/p90/p99 extraction via [`HistogramAgg::quantile`]).
//! * **Reports** — [`PipelineReport`], the per-stage wall-time + counter
//!   digest carried on every `Prediction` so harnesses can persist it.
//!
//! # Metric naming scheme
//!
//! Every span and metric name is `stage.subsystem.name`: exactly three
//! dot-separated segments of `[a-z0-9_]+`, each starting with a letter,
//! where `stage` is the short crate name (`isa`, `analyze`, `trace`,
//! `mem`, `timing`, `core`, `exec`, `serve`, `cli`, `bench`, `fault`).
//! The scheme
//! is
//! machine-checked: [`valid_metric_name`] backs `gpumech obs-validate`,
//! which CI runs over every export.
//!
//! # Exporters
//!
//! [`render_tree`] (human-readable span tree + metric tables),
//! [`to_jsonl`] (one JSON object per line — the schema `gpumech
//! obs-validate` enforces), and [`to_chrome_trace`] (Chrome
//! `trace_event` JSON loadable in `chrome://tracing` / Perfetto).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

mod cancel;
mod clock;
mod export;
mod naming;
mod recorder;
mod report;
mod span;

pub use cancel::{CancelToken, Interrupt};
pub use clock::{Clock, FakeClock, RealClock};
pub use export::{render_tree, to_chrome_trace, to_jsonl};
pub use naming::valid_metric_name;
pub use recorder::{
    histogram_bucket_bound, CounterAgg, GaugeAgg, HistogramAgg, MetricKind, MetricSample, Recorder,
    Snapshot, SpanRecord, HISTOGRAM_NUM_BUCKETS, HISTOGRAM_OCTAVES, HISTOGRAM_SUB_BUCKETS,
    MAX_SAMPLES,
};
pub use report::{PipelineReport, StageReport};
pub use span::SpanGuard;

/// Fast-path gate: `true` while a recorder is installed. Instrumentation
/// macros check this before doing any other work.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed recorder. Write-locked only by [`install`]/uninstall;
/// instrumentation takes the read lock only after [`enabled`] passes.
static GLOBAL: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

/// `true` while a recorder is installed — the branch every disabled-path
/// instrumentation site reduces to (one relaxed atomic load).
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The installed recorder, if any.
#[must_use]
pub fn installed() -> Option<Arc<Recorder>> {
    if !enabled() {
        return None;
    }
    GLOBAL.read().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
}

/// Installs `recorder` as the process-wide sink and returns a guard that
/// uninstalls it (and flips [`enabled`] back off) when dropped.
///
/// Only one recorder is active at a time; installing while another is
/// active replaces it for the overlap and restores *nothing* on drop —
/// callers that may run concurrently (e.g. CLI tests) must serialize
/// recorded sections themselves.
#[must_use]
pub fn install(recorder: Arc<Recorder>) -> ObsGuard {
    {
        let mut g = GLOBAL.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g = Some(recorder);
    }
    ENABLED.store(true, Ordering::Relaxed);
    ObsGuard { _priv: () }
}

/// RAII handle returned by [`install`]; dropping it uninstalls the
/// recorder and disables all instrumentation.
#[derive(Debug)]
pub struct ObsGuard {
    _priv: (),
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::Relaxed);
        let mut g = GLOBAL.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        *g = None;
    }
}

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

macro_rules! attr_from {
    ($($t:ty => $v:ident as $cast:ty),* $(,)?) => {$(
        impl From<$t> for AttrValue {
            fn from(v: $t) -> Self {
                AttrValue::$v(<$cast>::from(v))
            }
        }
    )*};
}
attr_from!(u64 => U64 as u64, u32 => U64 as u64, u16 => U64 as u64, u8 => U64 as u64,
           i64 => I64 as i64, i32 => I64 as i64,
           f64 => F64 as f64, bool => Bool as bool);

impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

/// Records one counter increment. Prefer the [`counter!`] macro, which
/// guards on [`enabled`] at the call site.
pub fn record_counter(name: &'static str, value: u64) {
    if let Some(rec) = installed() {
        rec.counter(name, value);
    }
}

/// Records one gauge observation. Prefer the [`gauge!`] macro.
pub fn record_gauge(name: &'static str, value: f64) {
    if let Some(rec) = installed() {
        rec.gauge(name, value);
    }
}

/// Records one histogram observation. Prefer the [`histogram!`] macro.
pub fn record_histogram(name: &'static str, value: f64) {
    if let Some(rec) = installed() {
        rec.histogram(name, value);
    }
}

/// Opens a hierarchical span; returns an RAII guard that closes it.
///
/// Bind the result (`let _span = span!(...)`) — `let _ = span!(...)`
/// drops the guard immediately. Attribute expressions are evaluated only
/// when a recorder is installed.
///
/// ```
/// let _span = gpumech_obs::span!("core.pipeline.analyze", warps = 32usize);
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {
        $crate::SpanGuard::enter($name, Vec::new())
    };
    ($name:literal, $($k:ident = $v:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::SpanGuard::enter(
                $name,
                vec![$((stringify!($k), $crate::AttrValue::from($v))),+],
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    };
}

/// Increments a counter metric (value defaults to 1). The value
/// expression is only evaluated when a recorder is installed.
#[macro_export]
macro_rules! counter {
    ($name:literal) => {
        $crate::counter!($name, 1u64)
    };
    ($name:literal, $value:expr) => {
        if $crate::enabled() {
            $crate::record_counter($name, $value);
        }
    };
}

/// Records a gauge observation (an instantaneous `f64` level).
#[macro_export]
macro_rules! gauge {
    ($name:literal, $value:expr) => {
        if $crate::enabled() {
            $crate::record_gauge($name, $value);
        }
    };
}

/// Records a histogram observation into log-spaced quantile buckets.
#[macro_export]
macro_rules! histogram {
    ($name:literal, $value:expr) => {
        if $crate::enabled() {
            $crate::record_histogram($name, $value);
        }
    };
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that install the process-wide recorder.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_macros_are_inert() {
        let _l = GLOBAL_LOCK.lock().unwrap();
        assert!(!enabled());
        let mut evaluated = false;
        counter!("test.macro.counter", {
            evaluated = true;
            1u64
        });
        assert!(!evaluated, "disabled counter! must not evaluate its value");
        let _span = span!("test.macro.span", id = 3usize);
        assert!(installed().is_none());
    }

    #[test]
    fn install_enables_and_guard_disables() {
        let _l = GLOBAL_LOCK.lock().unwrap();
        let rec = Arc::new(Recorder::fake(1_000));
        {
            let _g = install(Arc::clone(&rec));
            assert!(enabled());
            counter!("test.install.hits", 2u64);
            counter!("test.install.hits");
            {
                let _span = span!("test.install.work", warp = 7u64);
                gauge!("test.install.level", 0.5);
            }
            histogram!("test.install.sizes", 3.0);
        }
        assert!(!enabled());
        counter!("test.install.hits", 100u64); // dropped: recorder uninstalled
        let snap = rec.snapshot();
        assert_eq!(snap.counters.get("test.install.hits").map(|c| c.total), Some(3));
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "test.install.work");
        assert!(snap.spans[0].end_ns.is_some(), "guard drop must close the span");
        assert_eq!(snap.samples.len(), 4);
        assert_eq!(rec.open_spans(), 0);
    }

    #[test]
    fn spans_nest_and_close_on_unwind() {
        let _l = GLOBAL_LOCK.lock().unwrap();
        let rec = Arc::new(Recorder::fake(10));
        let _g = install(Arc::clone(&rec));
        {
            let _outer = span!("test.nest.outer");
            let _inner = span!("test.nest.inner");
        }
        let result = std::panic::catch_unwind(|| {
            let _s = span!("test.nest.panicking");
            panic!("deliberate");
        });
        assert!(result.is_err());
        let snap = rec.snapshot();
        assert_eq!(rec.open_spans(), 0, "unwind must close spans");
        let outer = snap.spans.iter().find(|s| s.name == "test.nest.outer").unwrap();
        let inner = snap.spans.iter().find(|s| s.name == "test.nest.inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert_eq!(outer.parent, None);
    }

    #[test]
    fn attr_conversions_cover_the_pipeline_types() {
        assert_eq!(AttrValue::from(3usize), AttrValue::U64(3));
        assert_eq!(AttrValue::from(3u32), AttrValue::U64(3));
        assert_eq!(AttrValue::from(-1i32), AttrValue::I64(-1));
        assert_eq!(AttrValue::from(0.5f64), AttrValue::F64(0.5));
        assert_eq!(AttrValue::from(true), AttrValue::Bool(true));
        assert_eq!(AttrValue::from("x"), AttrValue::Str("x".to_string()));
    }
}
