//! The `stage.subsystem.name` metric/span naming scheme.

/// Validates a span or metric name against the documented scheme:
/// exactly three dot-separated segments, each `[a-z][a-z0-9_]*`.
///
/// The first segment is the emitting stage (the short crate name:
/// `isa`, `analyze`, `trace`, `mem`, `timing`, `core`, `exec`, `serve`,
/// `cli`, `bench`, `fault`, `perf`, `shard`, or `test` in unit tests);
/// the second
/// names the subsystem;
/// the third the measurement. `gpumech obs-validate` fails any export
/// containing a name this function rejects.
#[must_use]
pub fn valid_metric_name(name: &str) -> bool {
    let mut segments = 0usize;
    for seg in name.split('.') {
        segments += 1;
        let mut bytes = seg.bytes();
        match bytes.next() {
            Some(b'a'..=b'z') => {}
            _ => return false,
        }
        if !bytes.all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_') {
            return false;
        }
    }
    segments == 3
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn accepts_scheme_conforming_names() {
        for name in [
            "core.kmeans.inertia",
            "mem.cachesim.l1_hits",
            "trace.engine.insts",
            "timing.oracle.dram_utilization",
            "fault.case.pipeline",
            "a.b.c",
            "x1.y_2.z_3x",
        ] {
            assert!(valid_metric_name(name), "{name} should be accepted");
        }
    }

    #[test]
    fn rejects_off_scheme_names() {
        for name in [
            "",
            "one",
            "one.two",
            "one.two.three.four",
            "One.two.three",
            "one.Two.three",
            "one.two.3three",
            "one..three",
            "one.two.thr-ee",
            "one.two.thr ee",
            "_x.y.z",
        ] {
            assert!(!valid_metric_name(name), "{name} should be rejected");
        }
    }
}
