//! The thread-safe event sink behind the `span!`/`counter!`/`gauge!`/
//! `histogram!` macros.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::clock::{Clock, FakeClock, RealClock};
use crate::AttrValue;

/// Cap on stored metric samples: a runaway emitter degrades to dropped
/// samples (counted in [`Snapshot::dropped_samples`]) instead of
/// unbounded memory growth. Aggregates keep updating past the cap.
pub const MAX_SAMPLES: usize = 1 << 20;

/// Log-bucket resolution: sub-buckets per power-of-two octave. Four
/// sub-buckets bound the relative quantile error at 25% of the bucket
/// bound, tight enough for p50/p90/p99 reporting without storing samples.
pub const HISTOGRAM_SUB_BUCKETS: usize = 4;

/// Octaves covered by the finite buckets: `(1, 2^40]`. 2^40 ns is ~18
/// minutes, 2^40 bytes is 1 TiB — comfortably past every series this
/// workspace records.
pub const HISTOGRAM_OCTAVES: usize = 40;

/// Total bucket count: one underflow bucket (`value <= 1`),
/// [`HISTOGRAM_OCTAVES`] x [`HISTOGRAM_SUB_BUCKETS`] log buckets, and one
/// saturating `+inf` overflow bucket that also absorbs non-finite
/// observations.
pub const HISTOGRAM_NUM_BUCKETS: usize = 2 + HISTOGRAM_OCTAVES * HISTOGRAM_SUB_BUCKETS;

/// Inclusive upper bound of log bucket `i` (`value <= bound`). Bucket 0
/// is the `<= 1` underflow; the last bucket is the `+inf` overflow; in
/// between, octave `o` sub-bucket `s` has bound `2^o * (1 + (s+1)/4)`.
#[must_use]
pub fn histogram_bucket_bound(i: usize) -> f64 {
    if i == 0 {
        1.0
    } else if i >= HISTOGRAM_NUM_BUCKETS - 1 {
        f64::INFINITY
    } else {
        let octave = (i - 1) / HISTOGRAM_SUB_BUCKETS;
        let sub = (i - 1) % HISTOGRAM_SUB_BUCKETS;
        #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
        let base = f64::powi(2.0, octave as i32);
        base * (1.0 + (sub as f64 + 1.0) / HISTOGRAM_SUB_BUCKETS as f64)
    }
}

/// All bucket bounds in order, computed once. The bounds are strictly
/// increasing, so [`HistogramAgg::observe`] can binary-search them.
fn histogram_bounds() -> &'static [f64; HISTOGRAM_NUM_BUCKETS] {
    static BOUNDS: std::sync::OnceLock<[f64; HISTOGRAM_NUM_BUCKETS]> = std::sync::OnceLock::new();
    BOUNDS.get_or_init(|| {
        let mut b = [0.0; HISTOGRAM_NUM_BUCKETS];
        for (i, slot) in b.iter_mut().enumerate() {
            *slot = histogram_bucket_bound(i);
        }
        b
    })
}

/// One recorded span: a named wall-clock region with optional parent and
/// attributes. `end_ns` is `None` while the span is open.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Recorder-unique id (allocation order, starting at 1).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (`stage.subsystem.name` scheme).
    pub name: &'static str,
    /// Attributes captured at entry.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Small per-process thread index (not the OS thread id).
    pub thread: u64,
    /// Start timestamp.
    pub start_ns: u64,
    /// End timestamp; `None` while open.
    pub end_ns: Option<u64>,
}

impl SpanRecord {
    /// Span duration in nanoseconds (`None` while open).
    #[must_use]
    pub fn dur_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }
}

/// Which metric family a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count (increments).
    Counter,
    /// Instantaneous level.
    Gauge,
    /// Distribution observation.
    Histogram,
}

impl MetricKind {
    /// Lowercase name used by the JSON-lines exporter.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One timestamped metric observation (the series shape of the export).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric family.
    pub kind: MetricKind,
    /// Metric name (`stage.subsystem.name` scheme).
    pub name: &'static str,
    /// Observed value (counter increments are exact up to 2^53).
    pub value: f64,
    /// Observation timestamp.
    pub ts_ns: u64,
    /// Id of the span open on the emitting thread, if any.
    pub span: Option<u64>,
}

/// Running total of one counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterAgg {
    /// Sum of all increments.
    pub total: u64,
    /// Number of increments.
    pub count: u64,
}

/// Running aggregate of one gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeAgg {
    /// Most recent observation.
    pub last: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Number of observations.
    pub count: u64,
}

/// Running log-bucketed aggregate of one histogram, with quantile
/// extraction.
///
/// Observations land in [`HISTOGRAM_NUM_BUCKETS`] log-scale buckets
/// (see [`histogram_bucket_bound`]); values past the finite range — and
/// non-finite values — saturate into the overflow bucket. Exact `min`,
/// `max`, and `sum` are tracked over the *finite* observations, which is
/// what keeps single-sample and narrow distributions exact under
/// [`HistogramAgg::quantile`]'s clamping.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramAgg {
    /// Per-bucket observation counts, aligned with
    /// [`histogram_bucket_bound`]. Always [`HISTOGRAM_NUM_BUCKETS`] long.
    pub buckets: Vec<u64>,
    /// Number of observations (including non-finite ones).
    pub count: u64,
    /// Sum of the finite observations.
    pub sum: f64,
    /// Minimum finite observation (`+inf` until one arrives).
    pub min: f64,
    /// Maximum finite observation (`-inf` until one arrives).
    pub max: f64,
}

impl Default for HistogramAgg {
    fn default() -> Self {
        Self {
            buckets: vec![0; HISTOGRAM_NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl HistogramAgg {
    /// Records one observation into the log buckets.
    pub fn observe(&mut self, value: f64) {
        // First bound >= value; NaN compares false everywhere and lands in
        // the overflow bucket along with +/-inf and out-of-range values.
        let idx = if value.is_finite() {
            histogram_bounds().partition_point(|&b| b < value).min(HISTOGRAM_NUM_BUCKETS - 1)
        } else {
            HISTOGRAM_NUM_BUCKETS - 1
        };
        self.buckets[idx] = self.buckets[idx].saturating_add(1);
        self.count += 1;
        if value.is_finite() {
            self.sum += value;
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
    }

    /// Estimates quantile `q` (clamped to `[0, 1]`) from the log buckets:
    /// the bound of the first bucket whose cumulative count reaches the
    /// rank, clamped into the exact `[min, max]` envelope. Relative error
    /// is bounded by the sub-bucket width (25%); single-sample and
    /// constant series are exact thanks to the clamp.
    ///
    /// Returns `None` when the histogram is empty or holds no finite
    /// observation (quantiles of nothing are meaningless, and the JSON
    /// export renders that as `null` rather than a fake zero).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !self.max.is_finite() {
            return None;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation,
                clippy::cast_sign_loss)]
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                // The overflow bucket has no finite bound; the exact max
                // is the best saturating statement we can make.
                let bound = histogram_bucket_bound(i);
                return Some(bound.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Mean of the finite observations (`None` when there are none).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 || !self.max.is_finite() {
            return None;
        }
        #[allow(clippy::cast_precision_loss)]
        Some(self.sum / self.count as f64)
    }
}

/// Everything a recorder captured, in a stable order: spans by id,
/// samples in emission order, aggregates sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All spans, open and closed, in id order.
    pub spans: Vec<SpanRecord>,
    /// Metric samples in emission order (capped at [`MAX_SAMPLES`]).
    pub samples: Vec<MetricSample>,
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, CounterAgg>,
    /// Gauge aggregates by name.
    pub gauges: BTreeMap<&'static str, GaugeAgg>,
    /// Histogram aggregates by name.
    pub hists: BTreeMap<&'static str, HistogramAgg>,
    /// Samples discarded after the [`MAX_SAMPLES`] cap was hit.
    pub dropped_samples: u64,
    /// Names that violate the `stage.subsystem.name` scheme, with the
    /// offenders recorded so exports are debuggable rather than silently
    /// wrong. `gpumech obs-validate` fails on any of these.
    pub invalid_names: Vec<&'static str>,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    samples: Vec<MetricSample>,
    counters: BTreeMap<&'static str, CounterAgg>,
    gauges: BTreeMap<&'static str, GaugeAgg>,
    hists: BTreeMap<&'static str, HistogramAgg>,
    dropped_samples: u64,
    invalid_names: Vec<&'static str>,
    open_spans: usize,
}

impl Inner {
    fn check_name(&mut self, name: &'static str) {
        if !crate::valid_metric_name(name) && !self.invalid_names.contains(&name) {
            self.invalid_names.push(name);
        }
    }

    fn push_sample(&mut self, sample: MetricSample) {
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(sample);
        } else {
            self.dropped_samples += 1;
        }
    }
}

/// A thread-safe observability sink. Usually installed process-wide via
/// [`crate::install`]; exporters and tests can also drive one directly.
pub struct Recorder {
    clock: Box<dyn Clock>,
    next_span: AtomicU64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder on the real monotonic clock.
    #[must_use]
    pub fn new() -> Self {
        Self::with_clock(Box::new(RealClock))
    }

    /// A recorder on a deterministic fake clock advancing `step_ns` per
    /// observation (golden tests).
    #[must_use]
    pub fn fake(step_ns: u64) -> Self {
        Self::with_clock(Box::new(FakeClock::new(step_ns)))
    }

    /// A recorder on an explicit clock.
    #[must_use]
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Self { clock, next_span: AtomicU64::new(1), inner: Mutex::new(Inner::default()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current timestamp of the recorder's clock.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Opens a span; returns its id. [`crate::SpanGuard`] drives this with
    /// the thread-local stack; it is public so tests and tools can build
    /// fully deterministic snapshots (explicit parent and thread) on a
    /// fake clock — the golden-file tests do exactly that.
    pub fn start_span(
        &self,
        name: &'static str,
        attrs: Vec<(&'static str, AttrValue)>,
        parent: Option<u64>,
        thread: u64,
    ) -> u64 {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let start_ns = self.clock.now_ns();
        let mut inner = self.lock();
        inner.check_name(name);
        inner.open_spans += 1;
        inner.spans.push(SpanRecord { id, parent, name, attrs, thread, start_ns, end_ns: None });
        id
    }

    /// Closes the span with `id` (idempotent for unknown ids).
    pub fn end_span(&self, id: u64) {
        let end_ns = self.clock.now_ns();
        let mut inner = self.lock();
        // Spans close in LIFO order per thread, so the open span is almost
        // always near the tail.
        if let Some(span) =
            inner.spans.iter_mut().rev().find(|s| s.id == id && s.end_ns.is_none())
        {
            span.end_ns = Some(end_ns);
            inner.open_spans = inner.open_spans.saturating_sub(1);
        }
    }

    /// Records a counter increment.
    pub fn counter(&self, name: &'static str, value: u64) {
        let ts_ns = self.clock.now_ns();
        let span = crate::span::current_span_id();
        let mut inner = self.lock();
        inner.check_name(name);
        let agg = inner.counters.entry(name).or_default();
        agg.total = agg.total.saturating_add(value);
        agg.count += 1;
        inner.push_sample(MetricSample {
            kind: MetricKind::Counter,
            name,
            value: value as f64,
            ts_ns,
            span,
        });
    }

    /// Records a gauge observation. Non-finite values are counted but do
    /// not disturb min/max/last (the export must stay valid JSON).
    pub fn gauge(&self, name: &'static str, value: f64) {
        let ts_ns = self.clock.now_ns();
        let span = crate::span::current_span_id();
        let mut inner = self.lock();
        inner.check_name(name);
        let agg = inner.gauges.entry(name).or_insert(GaugeAgg {
            last: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        });
        agg.count += 1;
        if value.is_finite() {
            agg.last = value;
            agg.min = agg.min.min(value);
            agg.max = agg.max.max(value);
        }
        inner.push_sample(MetricSample { kind: MetricKind::Gauge, name, value, ts_ns, span });
    }

    /// Records a histogram observation into the log buckets.
    pub fn histogram(&self, name: &'static str, value: f64) {
        let ts_ns = self.clock.now_ns();
        let span = crate::span::current_span_id();
        let mut inner = self.lock();
        inner.check_name(name);
        inner.hists.entry(name).or_default().observe(value);
        inner.push_sample(MetricSample { kind: MetricKind::Histogram, name, value, ts_ns, span });
    }

    /// Number of spans started but not yet closed — the fault suite
    /// asserts this is zero after every error-path exit.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.lock().open_spans
    }

    /// A consistent copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            spans: inner.spans.clone(),
            samples: inner.samples.clone(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            hists: inner.hists.clone(),
            dropped_samples: inner.dropped_samples,
            invalid_names: inner.invalid_names.clone(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_and_sample() {
        let r = Recorder::fake(1);
        r.counter("test.agg.hits", 2);
        r.counter("test.agg.hits", 3);
        let s = r.snapshot();
        let agg = s.counters["test.agg.hits"];
        assert_eq!(agg.total, 5);
        assert_eq!(agg.count, 2);
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.samples[0].value, 2.0);
        assert!(s.invalid_names.is_empty());
    }

    #[test]
    fn gauges_track_min_max_last_and_survive_nan() {
        let r = Recorder::fake(1);
        r.gauge("test.agg.level", 2.0);
        r.gauge("test.agg.level", -1.0);
        r.gauge("test.agg.level", f64::NAN);
        r.gauge("test.agg.level", 0.5);
        let g = r.snapshot().gauges["test.agg.level"];
        assert_eq!(g.last, 0.5);
        assert_eq!(g.min, -1.0);
        assert_eq!(g.max, 2.0);
        assert_eq!(g.count, 4);
    }

    #[test]
    fn histogram_log_buckets_cover_the_range() {
        let r = Recorder::fake(1);
        for v in [0.5, 1.0, 1.5, 100.0, 1e9] {
            r.histogram("test.agg.sizes", v);
        }
        let h = &r.snapshot().hists["test.agg.sizes"];
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets[0], 2, "0.5 and 1.0 land in the <=1 underflow bucket");
        assert_eq!(h.buckets[2], 1, "1.5 lands in the <=1.5 sub-bucket");
        // 100 lands in the first bucket whose bound is >= 100 (112).
        let idx_100 = (0..HISTOGRAM_NUM_BUCKETS)
            .find(|&i| histogram_bucket_bound(i) >= 100.0)
            .unwrap();
        assert_eq!(h.buckets[idx_100], 1);
        assert!((h.sum - (0.5 + 1.0 + 1.5 + 100.0 + 1e9)).abs() < 1e-3);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 1e9);
    }

    #[test]
    fn histogram_bounds_are_strictly_increasing_and_tight() {
        let mut prev = 0.0;
        for i in 0..HISTOGRAM_NUM_BUCKETS - 1 {
            let b = histogram_bucket_bound(i);
            assert!(b > prev, "bound {i} ({b}) not above {prev}");
            if i > 0 {
                assert!(b / prev <= 1.25 + 1e-12, "bucket {i} wider than 25%: {prev}..{b}");
            }
            prev = b;
        }
        assert_eq!(histogram_bucket_bound(HISTOGRAM_NUM_BUCKETS - 1), f64::INFINITY);
        // Exact powers of two sit on a bucket boundary (value <= bound).
        assert_eq!(histogram_bucket_bound(HISTOGRAM_SUB_BUCKETS), 2.0);
    }

    #[test]
    fn quantiles_empty_single_and_overflow() {
        // Empty: no quantiles, rendered as null downstream.
        let empty = HistogramAgg::default();
        assert_eq!(empty.quantile(0.5), None);
        assert_eq!(empty.mean(), None);

        // Single sample: the min/max clamp makes every quantile exact.
        let mut one = HistogramAgg::default();
        one.observe(100.0);
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(one.quantile(q), Some(100.0), "q={q}");
        }

        // Saturating overflow: out-of-range and non-finite observations
        // land in the last bucket; quantiles saturate at the exact max.
        let mut big = HistogramAgg::default();
        big.observe(1e30);
        big.observe(f64::INFINITY);
        big.observe(f64::NAN);
        assert_eq!(big.buckets[HISTOGRAM_NUM_BUCKETS - 1], 3);
        assert_eq!(big.count, 3);
        assert_eq!(big.quantile(0.99), Some(1e30), "overflow saturates to exact max");
        assert_eq!(big.max, 1e30, "non-finite values must not disturb max");

        // All-non-finite: counted, but no meaningful quantile.
        let mut nan_only = HistogramAgg::default();
        nan_only.observe(f64::NAN);
        assert_eq!(nan_only.count, 1);
        assert_eq!(nan_only.quantile(0.5), None);
    }

    #[test]
    fn quantiles_bound_relative_error_at_25_percent() {
        let mut h = HistogramAgg::default();
        for i in 1..=1000u32 {
            h.observe(f64::from(i));
        }
        for (q, exact) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
            let est = h.quantile(q).unwrap();
            let rel = (est - exact).abs() / exact;
            assert!(rel <= 0.25, "q={q}: estimate {est} vs exact {exact} ({rel:.3} rel err)");
            assert!(est >= exact, "log-bucket estimate is an upper bound");
        }
    }

    #[test]
    fn invalid_names_are_reported_not_dropped() {
        let r = Recorder::fake(1);
        r.counter("BadName", 1);
        r.counter("BadName", 1);
        r.counter("good.name.here", 1);
        let s = r.snapshot();
        assert_eq!(s.invalid_names, vec!["BadName"]);
        assert_eq!(s.counters.len(), 2, "invalid names still record");
    }

    #[test]
    fn sample_cap_drops_but_keeps_aggregating() {
        let r = Recorder::fake(1);
        // Exercise the cap without a million pushes: pre-fill the sample
        // buffer to one below the cap, then emit twice.
        {
            let mut inner = r.lock();
            let filler = MetricSample {
                kind: MetricKind::Counter,
                name: "test.cap.filler",
                value: 1.0,
                ts_ns: 0,
                span: None,
            };
            inner.samples = vec![filler; MAX_SAMPLES - 1];
        }
        r.counter("test.cap.hits", 1); // lands in the last slot
        r.counter("test.cap.hits", 1); // dropped
        let s = r.snapshot();
        assert_eq!(s.dropped_samples, 1);
        assert_eq!(s.samples.len(), MAX_SAMPLES);
        assert_eq!(s.counters["test.cap.hits"].total, 2, "aggregates keep updating");
    }
}
