//! The thread-safe event sink behind the `span!`/`counter!`/`gauge!`/
//! `histogram!` macros.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::clock::{Clock, FakeClock, RealClock};
use crate::AttrValue;

/// Cap on stored metric samples: a runaway emitter degrades to dropped
/// samples (counted in [`Snapshot::dropped_samples`]) instead of
/// unbounded memory growth. Aggregates keep updating past the cap.
pub const MAX_SAMPLES: usize = 1 << 20;

/// Upper bounds of the fixed histogram buckets (`value <= bound`); the
/// last bucket is the `+inf` overflow.
pub const HISTOGRAM_BUCKETS: [f64; 12] = [
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
    32.0,
    64.0,
    128.0,
    256.0,
    512.0,
    1024.0,
    f64::INFINITY,
];

/// One recorded span: a named wall-clock region with optional parent and
/// attributes. `end_ns` is `None` while the span is open.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Recorder-unique id (allocation order, starting at 1).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Span name (`stage.subsystem.name` scheme).
    pub name: &'static str,
    /// Attributes captured at entry.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Small per-process thread index (not the OS thread id).
    pub thread: u64,
    /// Start timestamp.
    pub start_ns: u64,
    /// End timestamp; `None` while open.
    pub end_ns: Option<u64>,
}

impl SpanRecord {
    /// Span duration in nanoseconds (`None` while open).
    #[must_use]
    pub fn dur_ns(&self) -> Option<u64> {
        self.end_ns.map(|e| e.saturating_sub(self.start_ns))
    }
}

/// Which metric family a sample belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count (increments).
    Counter,
    /// Instantaneous level.
    Gauge,
    /// Distribution observation.
    Histogram,
}

impl MetricKind {
    /// Lowercase name used by the JSON-lines exporter.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One timestamped metric observation (the series shape of the export).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric family.
    pub kind: MetricKind,
    /// Metric name (`stage.subsystem.name` scheme).
    pub name: &'static str,
    /// Observed value (counter increments are exact up to 2^53).
    pub value: f64,
    /// Observation timestamp.
    pub ts_ns: u64,
    /// Id of the span open on the emitting thread, if any.
    pub span: Option<u64>,
}

/// Running total of one counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CounterAgg {
    /// Sum of all increments.
    pub total: u64,
    /// Number of increments.
    pub count: u64,
}

/// Running aggregate of one gauge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeAgg {
    /// Most recent observation.
    pub last: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Number of observations.
    pub count: u64,
}

/// Running fixed-bucket aggregate of one histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramAgg {
    /// Per-bucket observation counts, aligned with [`HISTOGRAM_BUCKETS`].
    pub buckets: [u64; HISTOGRAM_BUCKETS.len()],
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
}

impl Default for HistogramAgg {
    fn default() -> Self {
        Self { buckets: [0; HISTOGRAM_BUCKETS.len()], count: 0, sum: 0.0 }
    }
}

/// Everything a recorder captured, in a stable order: spans by id,
/// samples in emission order, aggregates sorted by name.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// All spans, open and closed, in id order.
    pub spans: Vec<SpanRecord>,
    /// Metric samples in emission order (capped at [`MAX_SAMPLES`]).
    pub samples: Vec<MetricSample>,
    /// Counter totals by name.
    pub counters: BTreeMap<&'static str, CounterAgg>,
    /// Gauge aggregates by name.
    pub gauges: BTreeMap<&'static str, GaugeAgg>,
    /// Histogram aggregates by name.
    pub hists: BTreeMap<&'static str, HistogramAgg>,
    /// Samples discarded after the [`MAX_SAMPLES`] cap was hit.
    pub dropped_samples: u64,
    /// Names that violate the `stage.subsystem.name` scheme, with the
    /// offenders recorded so exports are debuggable rather than silently
    /// wrong. `gpumech obs-validate` fails on any of these.
    pub invalid_names: Vec<&'static str>,
}

#[derive(Default)]
struct Inner {
    spans: Vec<SpanRecord>,
    samples: Vec<MetricSample>,
    counters: BTreeMap<&'static str, CounterAgg>,
    gauges: BTreeMap<&'static str, GaugeAgg>,
    hists: BTreeMap<&'static str, HistogramAgg>,
    dropped_samples: u64,
    invalid_names: Vec<&'static str>,
    open_spans: usize,
}

impl Inner {
    fn check_name(&mut self, name: &'static str) {
        if !crate::valid_metric_name(name) && !self.invalid_names.contains(&name) {
            self.invalid_names.push(name);
        }
    }

    fn push_sample(&mut self, sample: MetricSample) {
        if self.samples.len() < MAX_SAMPLES {
            self.samples.push(sample);
        } else {
            self.dropped_samples += 1;
        }
    }
}

/// A thread-safe observability sink. Usually installed process-wide via
/// [`crate::install`]; exporters and tests can also drive one directly.
pub struct Recorder {
    clock: Box<dyn Clock>,
    next_span: AtomicU64,
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl Recorder {
    /// A recorder on the real monotonic clock.
    #[must_use]
    pub fn new() -> Self {
        Self::with_clock(Box::new(RealClock))
    }

    /// A recorder on a deterministic fake clock advancing `step_ns` per
    /// observation (golden tests).
    #[must_use]
    pub fn fake(step_ns: u64) -> Self {
        Self::with_clock(Box::new(FakeClock::new(step_ns)))
    }

    /// A recorder on an explicit clock.
    #[must_use]
    pub fn with_clock(clock: Box<dyn Clock>) -> Self {
        Self { clock, next_span: AtomicU64::new(1), inner: Mutex::new(Inner::default()) }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Current timestamp of the recorder's clock.
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.clock.now_ns()
    }

    /// Opens a span; returns its id. [`crate::SpanGuard`] drives this with
    /// the thread-local stack; it is public so tests and tools can build
    /// fully deterministic snapshots (explicit parent and thread) on a
    /// fake clock — the golden-file tests do exactly that.
    pub fn start_span(
        &self,
        name: &'static str,
        attrs: Vec<(&'static str, AttrValue)>,
        parent: Option<u64>,
        thread: u64,
    ) -> u64 {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let start_ns = self.clock.now_ns();
        let mut inner = self.lock();
        inner.check_name(name);
        inner.open_spans += 1;
        inner.spans.push(SpanRecord { id, parent, name, attrs, thread, start_ns, end_ns: None });
        id
    }

    /// Closes the span with `id` (idempotent for unknown ids).
    pub fn end_span(&self, id: u64) {
        let end_ns = self.clock.now_ns();
        let mut inner = self.lock();
        // Spans close in LIFO order per thread, so the open span is almost
        // always near the tail.
        if let Some(span) =
            inner.spans.iter_mut().rev().find(|s| s.id == id && s.end_ns.is_none())
        {
            span.end_ns = Some(end_ns);
            inner.open_spans = inner.open_spans.saturating_sub(1);
        }
    }

    /// Records a counter increment.
    pub fn counter(&self, name: &'static str, value: u64) {
        let ts_ns = self.clock.now_ns();
        let span = crate::span::current_span_id();
        let mut inner = self.lock();
        inner.check_name(name);
        let agg = inner.counters.entry(name).or_default();
        agg.total = agg.total.saturating_add(value);
        agg.count += 1;
        inner.push_sample(MetricSample {
            kind: MetricKind::Counter,
            name,
            value: value as f64,
            ts_ns,
            span,
        });
    }

    /// Records a gauge observation. Non-finite values are counted but do
    /// not disturb min/max/last (the export must stay valid JSON).
    pub fn gauge(&self, name: &'static str, value: f64) {
        let ts_ns = self.clock.now_ns();
        let span = crate::span::current_span_id();
        let mut inner = self.lock();
        inner.check_name(name);
        let agg = inner.gauges.entry(name).or_insert(GaugeAgg {
            last: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            count: 0,
        });
        agg.count += 1;
        if value.is_finite() {
            agg.last = value;
            agg.min = agg.min.min(value);
            agg.max = agg.max.max(value);
        }
        inner.push_sample(MetricSample { kind: MetricKind::Gauge, name, value, ts_ns, span });
    }

    /// Records a histogram observation into the fixed buckets.
    pub fn histogram(&self, name: &'static str, value: f64) {
        let ts_ns = self.clock.now_ns();
        let span = crate::span::current_span_id();
        let mut inner = self.lock();
        inner.check_name(name);
        let agg = inner.hists.entry(name).or_default();
        let bucket = HISTOGRAM_BUCKETS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(HISTOGRAM_BUCKETS.len() - 1);
        agg.buckets[bucket] += 1;
        agg.count += 1;
        if value.is_finite() {
            agg.sum += value;
        }
        inner.push_sample(MetricSample { kind: MetricKind::Histogram, name, value, ts_ns, span });
    }

    /// Number of spans started but not yet closed — the fault suite
    /// asserts this is zero after every error-path exit.
    #[must_use]
    pub fn open_spans(&self) -> usize {
        self.lock().open_spans
    }

    /// A consistent copy of everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            spans: inner.spans.clone(),
            samples: inner.samples.clone(),
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            hists: inner.hists.clone(),
            dropped_samples: inner.dropped_samples,
            invalid_names: inner.invalid_names.clone(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate_and_sample() {
        let r = Recorder::fake(1);
        r.counter("test.agg.hits", 2);
        r.counter("test.agg.hits", 3);
        let s = r.snapshot();
        let agg = s.counters["test.agg.hits"];
        assert_eq!(agg.total, 5);
        assert_eq!(agg.count, 2);
        assert_eq!(s.samples.len(), 2);
        assert_eq!(s.samples[0].value, 2.0);
        assert!(s.invalid_names.is_empty());
    }

    #[test]
    fn gauges_track_min_max_last_and_survive_nan() {
        let r = Recorder::fake(1);
        r.gauge("test.agg.level", 2.0);
        r.gauge("test.agg.level", -1.0);
        r.gauge("test.agg.level", f64::NAN);
        r.gauge("test.agg.level", 0.5);
        let g = r.snapshot().gauges["test.agg.level"];
        assert_eq!(g.last, 0.5);
        assert_eq!(g.min, -1.0);
        assert_eq!(g.max, 2.0);
        assert_eq!(g.count, 4);
    }

    #[test]
    fn histogram_buckets_cover_the_range() {
        let r = Recorder::fake(1);
        for v in [0.5, 1.0, 1.5, 100.0, 1e9] {
            r.histogram("test.agg.sizes", v);
        }
        let h = &r.snapshot().hists["test.agg.sizes"];
        assert_eq!(h.count, 5);
        assert_eq!(h.buckets[0], 2, "0.5 and 1.0 land in the <=1 bucket");
        assert_eq!(h.buckets[1], 1, "1.5 lands in the <=2 bucket");
        assert_eq!(h.buckets[7], 1, "100 lands in the <=128 bucket");
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS.len() - 1], 1, "1e9 overflows to +inf");
        assert!((h.sum - (0.5 + 1.0 + 1.5 + 100.0 + 1e9)).abs() < 1e-3);
    }

    #[test]
    fn invalid_names_are_reported_not_dropped() {
        let r = Recorder::fake(1);
        r.counter("BadName", 1);
        r.counter("BadName", 1);
        r.counter("good.name.here", 1);
        let s = r.snapshot();
        assert_eq!(s.invalid_names, vec!["BadName"]);
        assert_eq!(s.counters.len(), 2, "invalid names still record");
    }

    #[test]
    fn sample_cap_drops_but_keeps_aggregating() {
        let r = Recorder::fake(1);
        // Exercise the cap without a million pushes: pre-fill the sample
        // buffer to one below the cap, then emit twice.
        {
            let mut inner = r.lock();
            let filler = MetricSample {
                kind: MetricKind::Counter,
                name: "test.cap.filler",
                value: 1.0,
                ts_ns: 0,
                span: None,
            };
            inner.samples = vec![filler; MAX_SAMPLES - 1];
        }
        r.counter("test.cap.hits", 1); // lands in the last slot
        r.counter("test.cap.hits", 1); // dropped
        let s = r.snapshot();
        assert_eq!(s.dropped_samples, 1);
        assert_eq!(s.samples.len(), MAX_SAMPLES);
        assert_eq!(s.counters["test.cap.hits"].total, 2, "aggregates keep updating");
    }
}
