//! Per-stage pipeline reports that ride along on prediction results.
//!
//! A [`PipelineReport`] is a compact, serializable digest of one
//! pipeline run: which stages ran, how long each took, and a few key
//! counters per stage. It is deliberately much smaller than a recorder
//! [`crate::Snapshot`] — it is meant to be embedded in prediction JSON,
//! not to replace the exporters.

use serde::{Deserialize, Serialize};

/// One pipeline stage's digest: name, wall time, and key counters.
///
/// Equality ignores `wall_ns` so that value-level comparisons of
/// predictions (e.g. "re-running analysis yields the same prediction")
/// stay meaningful even though wall-clock time differs run to run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StageReport {
    /// Stage name in the `stage.subsystem.name` span scheme.
    pub name: String,
    /// Wall-clock nanoseconds the stage took. Excluded from equality.
    pub wall_ns: u64,
    /// Key counters for the stage, in emission order.
    pub counters: Vec<(String, u64)>,
}

impl PartialEq for StageReport {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.counters == other.counters
    }
}

impl StageReport {
    /// A report for `name` with no counters yet.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), wall_ns: 0, counters: Vec::new() }
    }

    /// Appends one key counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        self.counters.push((name.into(), value));
    }

    /// Looks up a counter by exact name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| n == name).map(|&(_, v)| v)
    }
}

/// Per-stage wall time and key counters for one pipeline run.
///
/// Carried on `Prediction` (with `#[serde(default)]` so pre-existing
/// serialized predictions still deserialize) and rendered by
/// `gpumech profile` and the bench binaries.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PipelineReport {
    /// Stage digests in execution order.
    pub stages: Vec<StageReport>,
}

impl PipelineReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a stage digest.
    pub fn push(&mut self, stage: StageReport) {
        self.stages.push(stage);
    }

    /// Sum of all stages' wall time in nanoseconds.
    #[must_use]
    pub fn total_wall_ns(&self) -> u64 {
        self.stages.iter().map(|s| s.wall_ns).sum()
    }

    /// Looks up a stage by exact name.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageReport> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Renders an aligned per-stage table (name, wall time, counters).
    #[must_use]
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for s in &self.stages {
            let ms = s.wall_ns as f64 / 1e6;
            let counters: Vec<String> =
                s.counters.iter().map(|(n, v)| format!("{n}={v}")).collect();
            let _ = writeln!(out, "  {:<28} {ms:>9.3} ms  {}", s.name, counters.join(" "));
        }
        let _ = writeln!(out, "  {:<28} {:>9.3} ms", "total", self.total_wall_ns() as f64 / 1e6);
        out
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    fn sample() -> PipelineReport {
        let mut report = PipelineReport::new();
        let mut s = StageReport::new("core.pipeline.cachesim");
        s.wall_ns = 1_500_000;
        s.counter("l1_hits", 10);
        s.counter("l2_misses", 3);
        report.push(s);
        let mut s = StageReport::new("core.pipeline.intervals");
        s.wall_ns = 500_000;
        s.counter("profiles", 4);
        report.push(s);
        report
    }

    #[test]
    fn equality_ignores_wall_time() {
        let a = sample();
        let mut b = sample();
        b.stages[0].wall_ns = 999;
        assert_eq!(a, b);
        b.stages[0].counters[0].1 = 11;
        assert_ne!(a, b);
    }

    #[test]
    fn serde_round_trip_preserves_counters() {
        let report = sample();
        let json = serde_json::to_string(&report).unwrap();
        let back: PipelineReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        assert_eq!(back.stage("core.pipeline.cachesim").unwrap().get("l1_hits"), Some(10));
    }

    #[test]
    fn totals_and_render() {
        let report = sample();
        assert_eq!(report.total_wall_ns(), 2_000_000);
        let text = report.render();
        assert!(text.contains("core.pipeline.cachesim"));
        assert!(text.contains("l1_hits=10"));
        assert!(text.contains("total"));
    }
}
