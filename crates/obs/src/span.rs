//! RAII span guards and per-thread span-stack / thread-id bookkeeping.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::recorder::Recorder;
use crate::AttrValue;

/// Next small per-process thread index handed out by [`thread_index`].
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Small dense id for this thread (exports are nicer than OS ids).
    static THREAD_INDEX: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// Stack of open span ids on this thread (innermost last).
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// This thread's small dense index.
fn thread_index() -> u64 {
    THREAD_INDEX.with(|i| *i)
}

/// Id of the innermost open span on this thread, if any. Used to tag
/// metric samples with their emitting span.
pub(crate) fn current_span_id() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// RAII guard for one span: created by [`crate::span!`], closes the span
/// when dropped — including during unwinding, which is what guarantees
/// error paths never leak open spans.
#[must_use = "binding the guard keeps the span open; `let _ = span!()` closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when tracing was disabled at entry (the cheap path).
    active: Option<(Arc<Recorder>, u64)>,
}

impl SpanGuard {
    /// Opens a span on the installed recorder; a no-op guard when
    /// observability is disabled.
    pub fn enter(name: &'static str, attrs: Vec<(&'static str, AttrValue)>) -> Self {
        let Some(rec) = crate::installed() else {
            return Self { active: None };
        };
        let parent = current_span_id();
        let id = rec.start_span(name, attrs, parent, thread_index());
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        Self { active: Some((rec, id)) }
    }

    /// An inert guard (used by the `span!` macro's disabled branch).
    pub fn disabled() -> Self {
        Self { active: None }
    }

    /// The span's recorder-unique id, if it is recording.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.active.as_ref().map(|(_, id)| *id)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((rec, id)) = self.active.take() {
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Guards drop LIFO per thread; defend against a forgotten
                // inner guard by popping through to our own id.
                while let Some(top) = stack.pop() {
                    if top == id {
                        break;
                    }
                }
            });
            rec.end_span(id);
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_is_inert() {
        let g = SpanGuard::disabled();
        assert_eq!(g.id(), None);
        drop(g);
        assert_eq!(current_span_id(), None);
    }
}
